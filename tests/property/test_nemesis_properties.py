"""Property-based tests of the nemesis pipeline itself.

Three contracts, each over randomized inputs:

* every schedule the generator produces respects the system model
  (minority crashes, HOLD-only link faults) and builds a valid run;
* all three fault-tolerant stacks satisfy the four atomic-broadcast
  properties *and* liveness under arbitrary generated schedules (the
  sequencer under its benign-only schedules);
* whatever the shrinker outputs for a failing case still fails — a
  shrunk counterexample that passes would be worse than no shrinking.
"""

import random

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.config import RunConfig
from repro.nemesis.schedule import generate_faultload
from repro.nemesis.swarm import (
    DEFAULT_STACKS,
    generate_case,
    run_case,
    shrink_case,
)

SEEDS = st.integers(min_value=0, max_value=2**16)


@settings(max_examples=25, deadline=None)
@given(seed=SEEDS, n=st.sampled_from([3, 4, 5, 7]))
def test_generated_schedules_respect_the_system_model(seed, n):
    faultload = generate_faultload(random.Random(seed), n)
    assert len(faultload.crashed_processes()) <= (n - 1) // 2
    assert faultload.liveness_safe
    RunConfig(n=n, faultload=faultload)  # validates times/endpoints/groups


@settings(max_examples=15, deadline=None)
@given(stack=st.sampled_from(DEFAULT_STACKS), seed=SEEDS)
def test_invariants_hold_for_every_stack_under_random_schedules(stack, seed):
    result = run_case(generate_case(stack, seed))
    assert result.passed, "\n".join(str(v) for v in result.violations)
    assert result.deliveries > 0


@settings(max_examples=6, deadline=None)
@given(seed=SEEDS)
def test_sequencer_holds_under_benign_schedules(seed):
    result = run_case(generate_case("sequencer", seed))
    assert result.passed, "\n".join(str(v) for v in result.violations)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=500))
def test_shrunk_counterexamples_still_fail(seed):
    case = generate_case("broken", seed)
    result = run_case(case)
    assume(not result.passed)  # only failing schedules can be shrunk
    minimal = shrink_case(case)
    assert not minimal.passed
    assert len(minimal.case.faultload.events()) <= len(case.faultload.events())
    assert minimal.case.faultload.events()  # some fault must remain
