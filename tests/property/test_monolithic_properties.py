"""Adversarial property tests focused on the monolithic module.

The monolithic fast path (§4.1/§4.2/§4.3) shares state across protocol
layers, which is where subtle interactions live; these tests churn
suspicion of the *live* initial coordinator on and off at random points
of random schedules and require the full abcast contract to hold.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.stack.events import AbcastRequest, AdeliverIndication
from repro.types import AppMessage, MessageId

from tests.harness import ModulePump


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n=st.sampled_from([3, 5]),
    per_process=st.integers(min_value=1, max_value=4),
    suspect_at=st.integers(min_value=1, max_value=20),
    clear_after=st.integers(min_value=1, max_value=15),
)
def test_wrong_suspicion_churn_preserves_the_contract(
    seed, n, per_process, suspect_at, clear_after
):
    rng = random.Random(seed)
    pump = ModulePump(lambda ctx: MonolithicAtomicBroadcast(ctx), n)
    sent = []
    for pid in range(n):
        for seq in range(per_process):
            m = AppMessage(MessageId(pid, seq), size=32, abcast_time=0.0)
            sent.append(m.msg_id)
            pump.inject(pid, AbcastRequest(m))
    steps = 0
    suspected = False
    cleared = False
    while pump.queue:
        pump.deliver_next(rng.randrange(len(pump.queue)))
        steps += 1
        if steps == suspect_at and not suspected:
            suspected = True
            for observer in range(1, n):
                pump.suspect(observer, 0)
        if suspected and not cleared and steps == suspect_at + clear_after:
            cleared = True
            for observer in range(1, n):
                pump.unsuspect(observer, 0)
    # ◇S good period: ensure suspicions are cleared, then drain fully.
    if suspected and not cleared:
        for observer in range(1, n):
            pump.unsuspect(observer, 0)
    pump.run(pick=lambda size: rng.randrange(size))
    # Any stalled pending work gets one more kick via its timers.
    for (pid, name) in list(pump.timers):
        if name.startswith("recover"):
            pump.fire_timer(pid, name)
    pump.run(pick=lambda size: rng.randrange(size))

    sequences = [adelivered(pump, pid) for pid in range(n)]
    reference = max(sequences, key=len)
    for pid, sequence in enumerate(sequences):
        assert sequence == reference[: len(sequence)], f"p{pid} diverged"
        assert len(set(sequence)) == len(sequence)
    # With no crash, everyone eventually delivers everything.
    assert set(reference) == set(sent)
    assert all(len(s) == len(sent) for s in sequences)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    burst=st.integers(min_value=1, max_value=6),
)
def test_bursty_traffic_from_one_process_keeps_agreement(seed, burst):
    """One process floods while others are idle: deliveries must be
    identical everywhere and complete.

    Note: atomic broadcast does NOT promise per-sender FIFO order (that
    is FIFO-atomic broadcast), and this pump's random scheduling models
    an adversary stronger than the paper's FIFO channels — hypothesis
    found exactly that when an earlier version of this test asserted
    seq-ordered delivery.
    """
    rng = random.Random(seed)
    pump = ModulePump(lambda ctx: MonolithicAtomicBroadcast(ctx), 3)
    for seq in range(burst):
        pump.inject(2, AbcastRequest(AppMessage(MessageId(2, seq), 32, 0.0)))
    pump.run(pick=lambda size: rng.randrange(size))
    sequences = [adelivered(pump, pid) for pid in range(3)]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == burst
    assert {mid.seq for mid in sequences[0]} == set(range(burst))
