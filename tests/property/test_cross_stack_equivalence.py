"""Metamorphic cross-stack properties.

All three total-order implementations (modular direct, modular indirect,
monolithic) run the *same* seeded workload; whatever ordering they pick,
they must agree with themselves (prefix total order, checked per run)
and with each other on the delivered *set* — every accepted message is
delivered exactly once by every process in a fully drained good run,
regardless of stack.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    ConsensusVariant,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation
from repro.metrics.ordering import OrderingChecker

STACKS = (
    StackConfig(kind=StackKind.MODULAR),
    StackConfig(kind=StackKind.MODULAR, consensus=ConsensusVariant.INDIRECT),
    StackConfig(kind=StackKind.MONOLITHIC),
)


def delivered_sets(stack, seed, load, size, n):
    config = RunConfig(
        n=n,
        stack=stack,
        workload=WorkloadConfig(offered_load=load, message_size=size),
        duration=0.4,
        warmup=0.1,
    )
    sim = Simulation(config, seed=seed)
    checker = OrderingChecker(n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    sim.run(drain=1.5)
    checker.verify(expect_all_delivered=True)
    accepted = set(checker._abcast)
    return accepted, set(checker.sequence(0))


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**10),
    load=st.sampled_from([150.0, 450.0]),
    n=st.sampled_from([3, 4]),
)
def test_all_stacks_deliver_exactly_the_accepted_set(seed, load, n):
    for stack in STACKS:
        accepted, delivered = delivered_sets(stack, seed, load, 256, n)
        assert delivered == accepted, (
            f"{stack.kind.value}/{stack.consensus.value}: delivered set "
            "diverges from accepted set"
        )


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**10))
def test_same_stack_same_seed_is_equivalent_across_variants(seed):
    """Direct and indirect modular stacks accept identical workloads
    (same arrival times, same flow-control windows at light load), so
    their delivered sets coincide message-for-message."""
    __, direct = delivered_sets(STACKS[0], seed, 150.0, 256, 3)
    __, indirect = delivered_sets(STACKS[1], seed, 150.0, 256, 3)
    assert direct == indirect
