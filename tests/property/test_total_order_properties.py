"""Property-based total-order tests across all four protocol stacks.

The defining guarantee of atomic broadcast is *total order*: any two
processes deliver the messages they both deliver in the same order.
These tests state it directly on the delivery sequences recorded by the
:class:`~repro.nemesis.invariants.InvariantMonitor` — for randomized
workloads (load, message size, arrival process, seed) over the modular,
monolithic, indirect and sequencer stacks, both fault-free and (for the
fault-tolerant stacks) under generated fault schedules.

This duplicates some ground the monitor's own checks cover on purpose:
the prefix property below is an independent, self-contained statement of
total order, so a bug in the monitor's bookkeeping cannot silently
weaken the oracle.
"""

from __future__ import annotations

import warnings

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ArrivalProcess, RunConfig, WorkloadConfig
from repro.errors import StationarityWarning
from repro.experiments.runner import Simulation
from repro.nemesis.invariants import InvariantMonitor
from repro.nemesis.swarm import STACKS, build_config, generate_case

#: All four stacks of the paper's evaluation plus the high-throughput
#: extension stacks (and none of the fixtures).
ALL_STACKS = (
    "modular",
    "monolithic",
    "indirect",
    "sequencer",
    "ringpaxos",
    "batched-sequencer",
)

#: Short run shape: enough traffic for real batching, fast enough for CI.
RUN_WARMUP = 0.1
RUN_DURATION = 0.5

SEEDS = st.integers(min_value=0, max_value=2**16)


def _sequences(stack: str, seed: int, n: int, workload: WorkloadConfig):
    """Run one fault-free configuration; return (monitor, violations)."""
    config = RunConfig(
        n=n,
        stack=STACKS[stack].config,
        workload=workload,
        warmup=RUN_WARMUP,
        duration=RUN_DURATION,
    )
    simulation = Simulation(config, seed=seed)
    monitor = InvariantMonitor(n)
    monitor.attach(simulation)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StationarityWarning)
        # The generated grid reaches saturating loads (n=7 at 900 msg/s),
        # where the default drain cannot flush the flow-control windows;
        # finalize would then flag agreement/validity on messages that
        # are merely still in flight. One extra simulated second empties
        # the backlog at every grid point.
        simulation.run(drain=1.0)
    violations = monitor.finalize()
    return monitor, violations


def assert_total_order(monitor: InvariantMonitor, pids) -> None:
    """The prefix property: any two sequences agree on their overlap."""
    sequences = [monitor.sequence(pid) for pid in pids]
    for i, a in enumerate(sequences):
        for b in sequences[i + 1 :]:
            shared = min(len(a), len(b))
            assert a[:shared] == b[:shared], (
                f"delivery orders diverge within their common prefix: "
                f"{a[:shared]} != {b[:shared]}"
            )


def assert_no_duplicates(monitor: InvariantMonitor, pids) -> None:
    for pid in pids:
        sequence = monitor.sequence(pid)
        assert len(sequence) == len(set(sequence)), (
            f"process {pid} delivered a message twice"
        )


@settings(max_examples=10, deadline=None)
@given(
    stack=st.sampled_from(ALL_STACKS),
    seed=SEEDS,
    n=st.sampled_from([3, 5, 7]),
    load=st.sampled_from([60.0, 240.0, 900.0]),
    size=st.sampled_from([64, 1024, 8192]),
    arrival=st.sampled_from(list(ArrivalProcess)),
)
def test_total_order_holds_fault_free(stack, seed, n, load, size, arrival):
    """All four stacks totally order randomized fault-free workloads."""
    workload = WorkloadConfig(
        offered_load=load, message_size=size, arrival=arrival
    )
    monitor, violations = _sequences(stack, seed, n, workload)
    assert not violations, "\n".join(str(v) for v in violations)
    assert monitor.delivery_count > 0
    assert_total_order(monitor, range(n))
    assert_no_duplicates(monitor, range(n))


@settings(max_examples=10, deadline=None)
@given(
    stack=st.sampled_from(("modular", "monolithic", "indirect", "ringpaxos")),
    seed=SEEDS,
)
def test_total_order_holds_under_fault_schedules(stack, seed):
    """Fault-tolerant stacks keep total order under generated faultloads.

    Only the *correct* (never-crashed) processes are compared: a crashed
    process legitimately stops mid-sequence, which the prefix property
    tolerates, but restricting to survivors also pins the stronger claim
    that all of them keep delivering in lockstep order.
    """
    case = generate_case(stack, seed)
    config = build_config(case)
    simulation = Simulation(config, seed=case.seed)
    monitor = InvariantMonitor(case.n)
    monitor.attach(simulation)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StationarityWarning)
        simulation.run(drain=1.0)
    violations = monitor.finalize()
    assert not violations, "\n".join(str(v) for v in violations)
    crashed = case.faultload.crashed_processes()
    correct = [pid for pid in range(case.n) if pid not in crashed]
    assert_total_order(monitor, range(case.n))
    assert_no_duplicates(monitor, range(case.n))
    # Survivors must have delivered everything that any survivor did.
    lengths = {len(monitor.sequence(pid)) for pid in correct}
    assert len(lengths) == 1, "correct processes ended with different logs"


@settings(max_examples=8, deadline=None)
@given(seed=SEEDS, n=st.sampled_from([3, 5]))
def test_validity_every_accepted_message_is_delivered(seed, n):
    """Fault-free validity: accepted messages reach every process."""
    workload = WorkloadConfig(offered_load=120.0, message_size=256)
    monitor, violations = _sequences("modular", seed, n, workload)
    assert not violations, "\n".join(str(v) for v in violations)
    reference = monitor.sequence(0)
    for pid in range(1, n):
        assert monitor.sequence(pid) == reference
