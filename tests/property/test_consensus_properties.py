"""Property-based tests of the consensus safety/liveness invariants.

Adversarial schedules: random delivery interleavings, a random minority
of crashes (the coordinator included), and suspicion of every crashed
process. Under every such schedule the optimized Chandra–Toueg
implementation must guarantee, per instance:

* **Agreement** — no two processes decide differently.
* **Validity** — the decided value is one of the proposed values.
* **Termination** — every correct process decides (the pump drains and
  suspicion of crashed coordinators is eventually complete).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consensus.optimized import OptimizedConsensus
from repro.stack.events import DecideIndication, ProposeRequest
from repro.types import AppMessage, Batch, MessageId

from tests.harness import ModulePump


def decisions(pump, pid):
    return [e for e in pump.up_events[pid] if isinstance(e, DecideIndication)]


def run_adversarial_instance(n, crashed, schedule_seed, crash_point):
    """One consensus instance under an adversarial schedule."""
    rng = random.Random(schedule_seed)
    pump = ModulePump(lambda ctx: OptimizedConsensus(ctx), n, bridge_rbcast=True)
    values = [
        Batch(0, (AppMessage(MessageId(pid, 0), 16, 0.0),)) for pid in range(n)
    ]
    for pid in range(n):
        pump.inject(pid, ProposeRequest(0, values[pid]))

    # Deliver a random prefix of traffic, then crash the chosen minority.
    steps_before_crash = crash_point
    while pump.queue and steps_before_crash > 0:
        pump.deliver_next(rng.randrange(len(pump.queue)))
        steps_before_crash -= 1
    for pid in crashed:
        pump.crash(pid)
    for pid in crashed:
        pump.suspect_everywhere(pid)
    pump.run(pick=lambda size: rng.randrange(size))
    # Late, complete suspicion knowledge (◇S eventual accuracy): re-notify
    # in case earlier suspicions raced with in-flight traffic.
    for pid in crashed:
        pump.suspect_everywhere(pid)
    pump.run(pick=lambda size: rng.randrange(size))
    return pump, values


@settings(max_examples=40, deadline=None)
@given(
    n=st.sampled_from([3, 4, 5]),
    data=st.data(),
)
def test_agreement_validity_termination_under_adversarial_schedules(n, data):
    crash_count = data.draw(st.integers(min_value=0, max_value=(n - 1) // 2))
    crashed = set(data.draw(
        st.permutations(range(n)).map(lambda p: p[:crash_count])
    ))
    schedule_seed = data.draw(st.integers(min_value=0, max_value=2**20))
    crash_point = data.draw(st.integers(min_value=0, max_value=30))

    pump, values = run_adversarial_instance(n, crashed, schedule_seed, crash_point)

    correct = [pid for pid in range(n) if pid not in crashed]
    decided = {pid: decisions(pump, pid) for pid in range(n)}

    # Termination: every correct process decided exactly once.
    for pid in correct:
        assert len(decided[pid]) == 1, f"p{pid} decided {len(decided[pid])} times"

    # Agreement (uniform): every decision anywhere is the same value.
    all_values = [d[0].value for d in decided.values() if d]
    assert len({id(v) if not isinstance(v, Batch) else tuple(m.msg_id for m in v.messages) for v in all_values}) == 1

    # Validity: the decided value is one of the initial values.
    decided_ids = tuple(m.msg_id for m in all_values[0].messages)
    assert decided_ids in [tuple(m.msg_id for m in v.messages) for v in values]


@settings(max_examples=25, deadline=None)
@given(
    schedule_seed=st.integers(min_value=0, max_value=2**20),
    wrongly_suspected=st.sampled_from([0, 1]),
)
def test_wrong_suspicions_never_break_agreement(schedule_seed, wrongly_suspected):
    """Suspecting live processes at random points is always safe."""
    rng = random.Random(schedule_seed)
    n = 3
    pump = ModulePump(lambda ctx: OptimizedConsensus(ctx), n, bridge_rbcast=True)
    values = [
        Batch(0, (AppMessage(MessageId(pid, 0), 16, 0.0),)) for pid in range(n)
    ]
    for pid in range(n):
        pump.inject(pid, ProposeRequest(0, values[pid]))
    steps = 0
    while pump.queue:
        pump.deliver_next(rng.randrange(len(pump.queue)))
        steps += 1
        if steps == 5:
            pump.suspect_everywhere(wrongly_suspected)
        if steps == 12:
            for observer in range(n):
                pump.unsuspect(observer, wrongly_suspected)
    decided = [decisions(pump, pid) for pid in range(n)]
    assert all(len(d) == 1 for d in decided)
    ids = {tuple(m.msg_id for m in d[0].value.messages) for d in decided}
    assert len(ids) == 1
