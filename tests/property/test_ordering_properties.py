"""Property-based tests of the safety checker itself.

The checker is our oracle for every integration test, so it gets its own
adversary: any prefix family of a global order must pass, and random
single mutations (swap, duplicate, foreign insertion) must be caught.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OrderingViolation
from repro.metrics.ordering import OrderingChecker
from repro.types import AppMessage, MessageId


def build_order(length):
    return [
        AppMessage(MessageId(i % 3, i // 3), size=1, abcast_time=0.0)
        for i in range(length)
    ]


def checker_for(global_order, prefixes):
    checker = OrderingChecker(len(prefixes))
    for m in global_order:
        checker.on_abcast(m)
    for pid, cut in enumerate(prefixes):
        for m in global_order[:cut]:
            checker.on_adeliver(pid, m, 0.0)
    return checker


@settings(max_examples=50, deadline=None)
@given(
    length=st.integers(min_value=0, max_value=40),
    data=st.data(),
)
def test_any_prefix_family_passes(length, data):
    order = build_order(length)
    prefixes = data.draw(
        st.lists(st.integers(min_value=0, max_value=length), min_size=2, max_size=5)
    )
    checker_for(order, prefixes).verify()


@settings(max_examples=50, deadline=None)
@given(
    length=st.integers(min_value=2, max_value=40),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_adjacent_swap_in_one_sequence_is_caught(length, seed):
    rng = random.Random(seed)
    order = build_order(length)
    checker = OrderingChecker(2)
    for m in order:
        checker.on_abcast(m)
    mutated = list(order)
    index = rng.randrange(length - 1)
    mutated[index], mutated[index + 1] = mutated[index + 1], mutated[index]
    for m in order:
        checker.on_adeliver(0, m, 0.0)
    for m in mutated:
        checker.on_adeliver(1, m, 0.0)
    with pytest.raises(OrderingViolation):
        checker.verify()


@settings(max_examples=50, deadline=None)
@given(
    length=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**20),
)
def test_duplicated_delivery_is_caught(length, seed):
    rng = random.Random(seed)
    order = build_order(length)
    checker = OrderingChecker(1)
    for m in order:
        checker.on_abcast(m)
    duplicated = list(order)
    duplicated.append(order[rng.randrange(length)])
    for m in duplicated:
        checker.on_adeliver(0, m, 0.0)
    with pytest.raises(OrderingViolation, match="integrity"):
        checker.verify()


@settings(max_examples=30, deadline=None)
@given(length=st.integers(min_value=0, max_value=30))
def test_foreign_message_is_caught(length):
    order = build_order(length)
    checker = OrderingChecker(1)
    for m in order:
        checker.on_abcast(m)
    ghost = AppMessage(MessageId(9, 999), size=1, abcast_time=0.0)
    for m in [*order, ghost]:
        checker.on_adeliver(0, m, 0.0)
    with pytest.raises(OrderingViolation, match="integrity"):
        checker.verify()
