"""Property-based tests for batch delivery ordering."""

from hypothesis import given
from hypothesis import strategies as st

from repro.types import AppMessage, Batch, MessageId

message_ids = st.builds(
    MessageId,
    sender=st.integers(min_value=0, max_value=10),
    seq=st.integers(min_value=0, max_value=1000),
)

messages = st.builds(
    AppMessage,
    msg_id=message_ids,
    size=st.integers(min_value=0, max_value=65536),
    abcast_time=st.floats(min_value=0, max_value=100, allow_nan=False),
)


@given(st.lists(messages, max_size=30, unique_by=lambda m: m.msg_id))
def test_delivery_order_is_permutation_invariant(items):
    a = Batch(0, tuple(items)).in_delivery_order()
    b = Batch(0, tuple(reversed(items))).in_delivery_order()
    assert a == b


@given(st.lists(messages, max_size=30))
def test_delivery_order_is_sorted_by_id(items):
    ordered = Batch(0, tuple(items)).in_delivery_order()
    ids = [m.msg_id for m in ordered]
    assert ids == sorted(ids)


@given(st.lists(messages, max_size=30))
def test_size_is_sum_of_payloads(items):
    assert Batch(0, tuple(items)).size_bytes == sum(m.size for m in items)
