"""Property-based tests for the statistics helpers."""

from hypothesis import given
from hypothesis import strategies as st

from repro.metrics.stats import (
    is_stationary,
    mean,
    mean_confidence_interval,
    relative_difference,
)

values = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=100,
)


@given(values)
def test_mean_is_within_min_max(samples):
    m = mean(samples)
    assert min(samples) - 1e-9 <= m <= max(samples) + 1e-9


@given(values)
def test_ci_is_symmetric_and_contains_mean(samples):
    ci = mean_confidence_interval(samples)
    assert ci.half_width >= 0
    assert ci.low <= ci.mean <= ci.high
    scale = max(1.0, abs(ci.mean), ci.half_width)
    assert abs((ci.mean - ci.low) - (ci.high - ci.mean)) <= 1e-9 * scale


@given(values)
def test_ci_of_constant_shift(samples):
    """Shifting all samples shifts the mean, not the width."""
    base = mean_confidence_interval(samples)
    shifted = mean_confidence_interval([v + 10.0 for v in samples])
    assert shifted.mean - base.mean == abs(shifted.mean - base.mean)
    assert abs(shifted.half_width - base.half_width) < max(
        1e-6, 1e-9 * abs(base.mean)
    )


@given(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
)
def test_relative_difference_is_symmetric_and_bounded(a, b):
    d = relative_difference(a, b)
    assert d == relative_difference(b, a)
    assert d >= 0


@given(values)
def test_identical_halves_are_stationary(samples):
    assert is_stationary(samples, list(samples))
