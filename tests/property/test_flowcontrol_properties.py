"""Property-based tests for the backlog window invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.flowcontrol.window import BacklogWindow


@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.sampled_from(["acquire", "release"]), max_size=200),
)
def test_window_invariants_under_any_interleaving(capacity, operations):
    window = BacklogWindow(capacity)
    model_in_flight = 0
    model_blocked = 0
    for operation in operations:
        if operation == "acquire":
            granted = window.try_acquire()
            if model_in_flight < capacity:
                assert granted
                model_in_flight += 1
            else:
                assert not granted
                model_blocked += 1
        else:
            if model_in_flight > 0:
                window.release()
                model_in_flight -= 1
        assert 0 <= window.in_flight <= capacity
        assert window.in_flight == model_in_flight
        assert window.available == capacity - model_in_flight
    assert window.total_blocked == model_blocked
