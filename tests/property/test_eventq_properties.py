"""Property-based tests for the event calendar."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.eventq import EventQueue

schedules = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
        st.booleans(),  # whether to cancel this event
    ),
    max_size=200,
)


@given(schedules)
def test_pop_order_is_stable_sort_by_time(schedule):
    q = EventQueue()
    events = []
    for index, (time, cancel) in enumerate(schedule):
        handle = q.push(time, lambda: None)
        if cancel:
            handle.cancel()
        else:
            events.append((time, index))
    popped = []
    while (event := q.pop()) is not None:
        popped.append(event)
    assert [(e.time, ) for e in popped] == [(t, ) for t, __ in sorted(events)]
    # Stability: among equal times, insertion order is preserved.
    assert [e.seq for e in popped] == [
        seq for __, seq in sorted(events, key=lambda x: (x[0], x[1]))
    ]


@given(schedules)
def test_peek_matches_next_pop(schedule):
    q = EventQueue()
    for time, cancel in schedule:
        handle = q.push(time, lambda: None)
        if cancel:
            handle.cancel()
    while True:
        peeked = q.peek_time()
        event = q.pop()
        if event is None:
            assert peeked is None
            break
        assert peeked == event.time
