"""Property-based, adversarial-schedule tests of full atomic broadcast.

The monolithic module is a self-contained state machine, so the pump can
drive whole groups of it through randomly interleaved schedules with
crashes; the modular stack is exercised end-to-end through short kernel
simulations with randomized workloads and crash times. Both must satisfy
the abcast contract under every generated scenario.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.config import (
    CrashEvent,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation
from repro.metrics.ordering import OrderingChecker
from repro.stack.events import AbcastRequest, AdeliverIndication
from repro.types import AppMessage, MessageId

from tests.harness import ModulePump


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


@settings(max_examples=30, deadline=None)
@given(
    n=st.sampled_from([3, 5]),
    seed=st.integers(min_value=0, max_value=2**20),
    per_process=st.integers(min_value=1, max_value=5),
    crash_coordinator=st.booleans(),
    crash_point=st.integers(min_value=0, max_value=25),
)
def test_monolithic_contract_under_random_schedules(
    n, seed, per_process, crash_coordinator, crash_point
):
    rng = random.Random(seed)
    pump = ModulePump(lambda ctx: MonolithicAtomicBroadcast(ctx), n)
    sent = []
    for pid in range(n):
        for seq in range(per_process):
            m = AppMessage(MessageId(pid, seq), size=64, abcast_time=0.0)
            sent.append(m)
            pump.inject(pid, AbcastRequest(m))
    steps = 0
    crashed = set()
    while pump.queue:
        pump.deliver_next(rng.randrange(len(pump.queue)))
        steps += 1
        if crash_coordinator and steps == crash_point and not crashed:
            pump.crash(0)
            crashed.add(0)
            pump.suspect_everywhere(0)
    # ◇S eventual completeness: one more full round of suspicion + drain.
    for pid in crashed:
        pump.suspect_everywhere(pid)
    pump.run(pick=lambda size: rng.randrange(size))
    # Fire any pending recovery timers until quiescence.
    for __ in range(5):
        for (pid, name) in list(pump.timers):
            if name.startswith("recover-") and pid not in crashed:
                pump.fire_timer(pid, name)
        pump.run(pick=lambda size: rng.randrange(size))

    correct = [pid for pid in range(n) if pid not in crashed]
    sequences = {pid: adelivered(pump, pid) for pid in correct}
    reference = sequences[correct[0]]

    # Total order + uniform agreement among correct processes.
    for pid in correct:
        assert sequences[pid] == reference, f"p{pid} diverged"
        assert len(set(sequences[pid])) == len(sequences[pid])  # integrity

    # Validity: messages from correct processes are all delivered.
    must_deliver = {m.msg_id for m in sent if m.msg_id.sender in correct}
    assert must_deliver <= set(reference)


@settings(max_examples=10, deadline=None)
@given(
    kind=st.sampled_from([StackKind.MODULAR, StackKind.MONOLITHIC]),
    seed=st.integers(min_value=0, max_value=2**10),
    load=st.sampled_from([100.0, 400.0]),
    crash_time=st.one_of(st.none(), st.floats(min_value=0.05, max_value=0.4)),
    victim=st.sampled_from([0, 2]),
)
def test_full_stack_contract_under_random_workloads(
    kind, seed, load, crash_time, victim
):
    crashes = () if crash_time is None else (CrashEvent(crash_time, victim),)
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=load, message_size=256),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.05
        ),
        faultload=FaultloadConfig(crashes=crashes),
        duration=0.4,
        warmup=0.1,
    )
    sim = Simulation(config, seed=seed)
    checker = OrderingChecker(3)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    sim.run(drain=1.5)
    correct = set(range(3)) - config.faultload.crashed_processes()
    checker.verify(correct=correct, expect_all_delivered=True)
