"""End-to-end behaviour of the post-2007 high-throughput stacks.

Pins the PR's headline acceptance claims in simulation: the ring stack
orders real workloads correctly and cheaply, and the distillation layer
buys the promised throughput multiple over the plain sequencer at high
offered load.
"""

from __future__ import annotations

import warnings

import pytest

from repro.config import (
    BatchingConfig,
    FlowControlConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.errors import StationarityWarning
from repro.experiments.runner import Simulation, run_simulation
from repro.nemesis.invariants import InvariantMonitor


def high_load_config(kind: StackKind) -> RunConfig:
    """The 2x acceptance operating point: the sequencer saturates here,
    the distillation layer should not."""
    return RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=8000.0, message_size=64),
        flow_control=FlowControlConfig(window=64),
        warmup=0.3,
        duration=1.0,
    )


def test_batched_sequencer_doubles_sequencer_throughput():
    """The PR's acceptance bar: >= 2x delivered throughput at high load."""
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StationarityWarning)
        plain = run_simulation(high_load_config(StackKind.SEQUENCER), seed=1)
        batched = run_simulation(
            high_load_config(StackKind.BATCHED_SEQUENCER), seed=1
        )
    assert batched.metrics.throughput >= 2 * plain.metrics.throughput
    # And distillation keeps latency bounded where the sequencer queues.
    assert batched.metrics.latency_p99 < plain.metrics.latency_p99


def test_batching_composes_over_the_modular_stack():
    """The layer is reusable, not sequencer-specific: bolted onto the
    modular stack it must preserve every delivery invariant."""
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MODULAR, batching=BatchingConfig()),
        workload=WorkloadConfig(offered_load=500.0, message_size=256),
        warmup=0.2,
        duration=0.6,
    )
    simulation = Simulation(config, seed=7)
    monitor = InvariantMonitor(config.n)
    monitor.attach(simulation)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StationarityWarning)
        simulation.run(drain=1.0)
    assert not monitor.finalize()
    assert monitor.delivery_count > 0
    sequences = [monitor.sequence(pid) for pid in range(3)]
    assert sequences[0] == sequences[1] == sequences[2]


@pytest.mark.parametrize("n", [3, 5])
def test_ringpaxos_orders_a_real_workload(n):
    config = RunConfig(
        n=n,
        stack=StackConfig(kind=StackKind.RINGPAXOS),
        workload=WorkloadConfig(offered_load=400.0, message_size=512),
        warmup=0.2,
        duration=0.6,
    )
    simulation = Simulation(config, seed=3)
    monitor = InvariantMonitor(n)
    monitor.attach(simulation)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", StationarityWarning)
        result = simulation.run(drain=1.0)
    assert not monitor.finalize()
    assert monitor.delivery_count > 0
    assert result.metrics.throughput > 0


def test_ring_dissemination_cost_stays_flat_per_link():
    """The ring's point: per-process message cost does not grow with n.

    The modular stack's coordinator pushes the value to everyone (plus
    rbcast's n^2 decision traffic); on the ring each process sends O(1)
    value-bearing messages per instance regardless of n.
    """
    per_process = {}
    for n in (3, 7):
        config = RunConfig(
            n=n,
            stack=StackConfig(kind=StackKind.RINGPAXOS),
            workload=WorkloadConfig(offered_load=200.0, message_size=4096),
            warmup=0.2,
            duration=0.8,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", StationarityWarning)
            result = run_simulation(config, seed=5)
        delivered = result.metrics.throughput * config.duration
        per_process[n] = result.network["messages_sent"] / (n * delivered)
    # Going 3 -> 7 processes, per-process per-delivery messages must not
    # blow up ring-unrelated (diffusion is n-1 per submission; allow that
    # linear term but nothing quadratic).
    assert per_process[7] < per_process[3] * (6 / 2) * 1.25
