"""End-to-end good-run integration tests for both stacks.

Every run is wrapped by the :class:`OrderingChecker`, so these tests
verify the full atomic broadcast contract (validity, uniform agreement,
integrity, total order) while also sanity-checking the performance
metrics the benchmark harness relies on.
"""

import pytest

from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.experiments.runner import Simulation
from repro.metrics.ordering import OrderingChecker

STACKS = (StackKind.MODULAR, StackKind.MONOLITHIC)


def run_checked(config, seed=1, drain=1.0, expect_all_delivered=True):
    """Run under the safety checker.

    ``expect_all_delivered=False`` is used by saturated runs: their
    flow-control queues hold thousands of pending attempts at cut-off,
    so completeness (validity/uniform agreement) cannot be asserted at
    a finite drain — prefix/total-order/integrity still are.
    """
    sim = Simulation(config, seed=seed)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    result = sim.run(drain=drain)
    checker.verify(expect_all_delivered=expect_all_delivered)
    return result, checker


@pytest.mark.parametrize("kind", STACKS)
@pytest.mark.parametrize("n", [2, 3, 4, 5, 7])
def test_all_group_sizes_satisfy_abcast_properties(kind, n):
    config = RunConfig(
        n=n,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=300.0, message_size=512),
        duration=0.5,
        warmup=0.2,
    )
    result, checker = run_checked(config)
    assert result.metrics.throughput > 0
    # Everyone delivered the same non-trivial sequence.
    lengths = {len(checker.sequence(pid)) for pid in range(n)}
    assert lengths == {len(checker.sequence(0))}
    assert len(checker.sequence(0)) > 50


@pytest.mark.parametrize("kind", STACKS)
def test_light_load_throughput_equals_offered_load(kind):
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=400.0, message_size=1024),
        duration=1.0,
        warmup=0.3,
    )
    result, __ = run_checked(config)
    assert result.metrics.throughput == pytest.approx(400.0, rel=0.05)
    assert result.metrics.blocked_attempts < 40


@pytest.mark.parametrize("kind", STACKS)
def test_saturation_blocks_offers_and_plateaus(kind):
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=6000.0, message_size=16384),
        duration=1.0,
        warmup=0.4,
    )
    result, __ = run_checked(config, expect_all_delivered=False)
    assert result.metrics.throughput < 3000.0
    assert result.metrics.blocked_attempts > 100
    assert max(result.cpu_utilization) > 0.5


@pytest.mark.parametrize("kind", STACKS)
def test_empty_payloads_are_legal(kind):
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=200.0, message_size=0),
        duration=0.4,
        warmup=0.2,
    )
    result, __ = run_checked(config)
    assert result.metrics.throughput > 0


def test_monolithic_beats_modular_under_load():
    """The paper's core claim, end to end."""
    results = {}
    for kind in STACKS:
        config = RunConfig(
            n=3,
            stack=StackConfig(kind=kind),
            workload=WorkloadConfig(offered_load=4000.0, message_size=16384),
            duration=1.0,
            warmup=0.4,
        )
        results[kind], __ = run_checked(config, expect_all_delivered=False)
    modular = results[StackKind.MODULAR].metrics
    mono = results[StackKind.MONOLITHIC].metrics
    assert mono.latency_mean < modular.latency_mean
    assert mono.throughput > modular.throughput


def test_stacks_are_close_at_low_load():
    """Fig. 8: 'the latency of both implementations is relatively close
    for small offered loads'."""
    latencies = {}
    for kind in STACKS:
        config = RunConfig(
            n=3,
            stack=StackConfig(kind=kind),
            workload=WorkloadConfig(offered_load=250.0, message_size=16384),
            duration=1.0,
            warmup=0.3,
        )
        result, __ = run_checked(config)
        latencies[kind] = result.metrics.latency_mean
    ratio = latencies[StackKind.MODULAR] / latencies[StackKind.MONOLITHIC]
    assert ratio < 2.0  # far closer than the 2x+ gap seen at saturation


def test_runs_reach_stationarity():
    config = RunConfig(
        n=3,
        workload=WorkloadConfig(offered_load=1000.0, message_size=4096),
        duration=1.5,
        warmup=0.5,
    )
    result, __ = run_checked(config)
    assert result.metrics.stationary
