"""Acceptance wall for the million-client population layer at scale.

The whole point of the lazy population model is that a simulated run
with 10⁵⁺ Zipf-distributed clients costs the same kernel work as the
plain symmetric workload: events scale with *arrivals*, never with the
client count. These tests pin that bound on a real n = 7 run and walk
the resulting percentiles end to end — RunResult → sweep summary →
JSON/CSV export → the latency-distribution figure.
"""

from __future__ import annotations

import csv
import io
import json
import math

from repro.config import (
    ClientArrival,
    ClientPopulationConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.export import (
    dumps_canonical,
    run_to_dict,
    sweep_to_dict,
    write_sweep_csv,
)
from repro.experiments.figures import latency_distribution
from repro.experiments.runner import run_simulation
from repro.experiments.sweeps import run_load_sweep

CLIENTS = 100_000


def scale_config(**workload_overrides) -> RunConfig:
    population = ClientPopulationConfig(
        clients=CLIENTS, zipf_s=1.1, arrival=ClientArrival.POISSON
    )
    workload = dict(
        offered_load=700.0, message_size=1024, population=population
    )
    workload.update(workload_overrides)
    return RunConfig(
        n=7,
        stack=StackConfig(kind=StackKind.MONOLITHIC),
        workload=WorkloadConfig(**workload),
        duration=0.8,
        warmup=0.2,
    )


class TestHundredThousandClients:
    def test_kernel_events_bounded_by_arrivals_not_clients(self):
        result = run_simulation(scale_config(), seed=1)
        # ~700 arrivals/s over ~1 s shared by 7 processes: the kernel
        # event count must track that, not the 10^5 logical clients.
        assert result.events_executed < CLIENTS
        assert result.metrics.throughput > 0
        # The population really was attributed: many distinct clients
        # sent, but (Zipf skew) far fewer than the arrival count.
        assert 0 < result.metrics.active_clients < CLIENTS

    def test_percentiles_are_finite_and_ordered(self):
        result = run_simulation(scale_config(), seed=1)
        m = result.metrics
        for value in (m.latency_p50, m.latency_p99, m.latency_p999):
            assert value is not None and math.isfinite(value) and value > 0
        assert m.latency_p50 <= m.latency_p99 <= m.latency_p999
        # The histogram backs the percentiles: totals must agree.
        assert sum(c for __, c in m.latency_histogram) == m.latency_count

    def test_run_export_carries_population_metrics(self):
        result = run_simulation(scale_config(), seed=1)
        document = json.loads(dumps_canonical(run_to_dict(result)))
        metrics = document["metrics"]
        assert metrics["latency_p999"] > 0
        assert metrics["active_clients"] == result.metrics.active_clients
        assert metrics["latency_histogram"], "histogram must export non-empty"

    def test_sweep_summary_export_and_figure_agree(self):
        sweep = run_load_sweep(
            loads=(700.0,),
            group_sizes=(7,),
            stacks=(StackKind.MONOLITHIC,),
            seeds=(1,),
            base=scale_config(),
        )
        point = sweep.points[0]
        assert point.latency_p999 is not None
        assert math.isfinite(point.latency_p999.mean)
        assert point.latency_p999.mean > 0
        assert point.histogram

        document = sweep_to_dict(sweep)
        exported = document["points"][0]
        assert exported["latency_p999"]["mean"] == point.latency_p999.mean
        assert exported["histogram"] == [list(b) for b in point.histogram]

        buffer = io.StringIO()
        write_sweep_csv(sweep, buffer)
        rows = list(csv.DictReader(io.StringIO(buffer.getvalue())))
        assert float(rows[0]["latency_p999_s"]) > 0
        assert rows[0]["histogram"].count(":") == len(point.histogram)

        figure = latency_distribution(sweep)
        assert "p999" in figure.table
        assert "#" in figure.table, "figure must render histogram bars"
