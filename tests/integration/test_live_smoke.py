"""Live deployment smoke: real worker processes over real TCP.

One short run (n=3, low load, sub-second window) per stack family we
care most about; marked ``slow`` company is not available, so keep the
windows tight — each test costs roughly warmup + duration + drain plus
interpreter start-up for three workers.
"""

import pytest

from repro.errors import ConfigurationError, DeploymentError
from repro.live.deploy import LiveSpec, run_live

#: Keys every result dict must carry (the sim RunResult schema).
RESULT_KEYS = {
    "mode",
    "config",
    "seed",
    "metrics",
    "network",
    "cpu_utilization",
    "instances_decided",
    "events_executed",
}


def smoke_spec(**overrides) -> LiveSpec:
    defaults = dict(
        n=3, stack="monolithic", load=40.0, duration=0.8, warmup=0.3, drain=0.3
    )
    defaults.update(overrides)
    return LiveSpec(**defaults)


class TestLiveSmoke:
    def test_monolithic_end_to_end(self):
        result = run_live(smoke_spec())
        assert result["mode"] == "live"
        assert set(result) == RESULT_KEYS
        metrics = result["metrics"]
        assert metrics["throughput"] > 0
        assert metrics["latency_count"] > 0
        assert metrics["latency_mean"] is not None and metrics["latency_mean"] > 0
        assert result["instances_decided"] > 0
        assert result["network"]["messages_sent"] > 0
        assert len(result["cpu_utilization"]) == 3

    def test_modular_end_to_end(self):
        result = run_live(smoke_spec(stack="modular"))
        assert result["metrics"]["throughput"] > 0
        assert result["instances_decided"] > 0

    def test_schema_matches_sim_result(self):
        from repro.config import RunConfig
        from repro.experiments.runner import run_simulation
        from repro.live.results import sim_result_to_dict

        sim = sim_result_to_dict(run_simulation(RunConfig(n=3, duration=0.5)))
        live = run_live(smoke_spec())
        assert set(sim) == set(live)
        assert set(sim["metrics"]) == set(live["metrics"])
        assert set(sim["config"]) == set(live["config"])


class TestClientFleet:
    def test_fleet_multiplexes_over_1000_logical_clients_per_connection(self):
        # 3600 logical clients over 3 workers = 1200 per connection —
        # above the 1000-per-connection bar the fleet driver must clear.
        result = run_live(
            smoke_spec(clients=3600, zipf_s=1.1, client_arrival="bursty")
        )
        metrics = result["metrics"]
        assert metrics["throughput"] > 0
        assert metrics["latency_count"] > 0
        assert metrics["latency_p999"] is not None
        assert metrics["latency_p999"] > 0
        # Attribution really ran: some (skew: not all) of the 3600
        # clients sent during the window.
        assert 0 < metrics["active_clients"] <= 3600

    def test_fleet_smaller_than_group_rejected(self):
        with pytest.raises(DeploymentError):
            run_live(smoke_spec(clients=2))


class TestSpecValidation:
    def test_unknown_stack_rejected_before_deploying(self):
        with pytest.raises(ConfigurationError):
            run_live(smoke_spec(stack="bogus"))

    def test_nonpositive_load_rejected(self):
        with pytest.raises(DeploymentError):
            run_live(smoke_spec(load=0.0))

    def test_unknown_fd_rejected(self):
        with pytest.raises(DeploymentError):
            run_live(smoke_spec(fd="oracle"))
