"""Validates the design-time performance predictor against the simulator.

The predictor prices one good-run consensus from the cost model and the
measured batch size M; its saturation-throughput prediction must land
near the simulated Fig.-10 plateau. Modular predictions are tight
(the coordinator CPU is the clean bottleneck); monolithic ones carry
more slack because part of its pipeline is latency- rather than
resource-bound.
"""

import pytest

from repro.analysis.performance_model import (
    predict_gap,
    predict_modular,
    predict_monolithic,
)
from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_simulation


def measure_plateau(n, kind, size):
    config = RunConfig(
        n=n,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=8000.0, message_size=size),
        duration=0.8,
        warmup=0.4,
    )
    result = run_simulation(config, seed=1)
    return result.metrics.throughput, result.delivered_per_consensus


@pytest.mark.parametrize("n", [3, 7])
@pytest.mark.parametrize("size", [64, 4096, 16384])
def test_modular_prediction_matches_simulated_plateau(n, size):
    measured, m = measure_plateau(n, StackKind.MODULAR, size)
    predicted = predict_modular(n, m, size).saturation_throughput
    assert predicted == pytest.approx(measured, rel=0.25)


@pytest.mark.parametrize("n", [3, 7])
@pytest.mark.parametrize("size", [64, 4096, 16384])
def test_monolithic_prediction_bounds_simulated_plateau(n, size):
    measured, m = measure_plateau(n, StackKind.MONOLITHIC, size)
    predicted = predict_monolithic(n, m, size).saturation_throughput
    # The monolithic pipeline is serial across instances and partly
    # round-trip/queueing-bound, which a pure resource model cannot see:
    # the prediction is an optimistic upper bound. It must never be
    # pessimistic, and stays within ~2x of the measurement (tight for
    # n=7, where the coordinator CPU genuinely binds).
    assert measured <= predicted * 1.1
    assert predicted <= measured * 2.2
    if n == 7 and size <= 4096:
        assert predicted == pytest.approx(measured, rel=0.15)


def test_predicted_gap_direction_matches_paper():
    """At any configuration the model must predict the monolith ahead."""
    for n in (3, 5, 7):
        for size in (64, 16384):
            gap = predict_gap(n, 4, size)
            assert gap.throughput_gain > 0


def test_prediction_scales_with_costs():
    from repro.config import CpuCosts

    cheap = CpuCosts()
    slow = CpuCosts(send_fixed=cheap.send_fixed * 2, recv_fixed=cheap.recv_fixed * 2)
    fast_pred = predict_modular(3, 4, 1024, costs=cheap)
    slow_pred = predict_modular(3, 4, 1024, costs=slow)
    assert slow_pred.saturation_throughput < fast_pred.saturation_throughput


def test_nic_becomes_the_bottleneck_for_huge_messages():
    from repro.config import NetworkConfig

    slow_net = NetworkConfig(bandwidth=5e6)  # 5 MB/s
    prediction = predict_modular(3, 4, 65536, net=slow_net)
    assert prediction.bottleneck == prediction.coordinator_nic


def test_input_validation():
    with pytest.raises(ConfigurationError):
        predict_modular(1, 4, 100)
    with pytest.raises(ConfigurationError):
        predict_monolithic(3, 0, 100)
