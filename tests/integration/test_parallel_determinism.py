"""The determinism wall around the parallel sweep engine.

Two families of guarantees:

* **Determinism under parallelism** — a sweep's results (and the
  canonical JSON rendered from them) are byte-identical whether the
  grid runs serially or fans out over worker processes. This is what
  makes ``--jobs`` safe to use for *any* experiment in the repo.
* **Seed stability** — the exact metric values of representative
  figure-8/9 operating points are pinned for two known seeds. Any
  change to the simulator's event ordering, float association or RNG
  stream layout shows up here as a hard diff, not as a silent drift in
  regenerated figures.
"""

from __future__ import annotations

import pytest

from repro.config import (
    ClientArrival,
    ClientPopulationConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.export import dumps_canonical, sweep_to_dict
from repro.experiments.parallel import run_simulations, run_tasks
from repro.experiments.runner import run_simulation
from repro.experiments.sweeps import run_load_sweep
from repro.nemesis.swarm import generate_case, run_cases


def _square(value):  # module-level: must be picklable for worker processes
    return value * value


class TestRunTasks:
    def test_serial_and_parallel_agree_in_order(self):
        tasks = list(range(24))
        serial = run_tasks(_square, tasks, jobs=1)
        parallel = run_tasks(_square, tasks, jobs=3)
        assert serial == parallel == [v * v for v in tasks]

    def test_single_task_runs_in_process(self):
        assert run_tasks(_square, [7], jobs=8) == [49]


class TestDeterminismUnderParallelism:
    def test_sweep_json_is_byte_identical_across_jobs(self):
        kwargs = dict(
            loads=(500.0, 2000.0),
            group_sizes=(3,),
            seeds=(1, 2),
        )
        serial = run_load_sweep(jobs=1, **kwargs)
        fanned = run_load_sweep(jobs=4, **kwargs)
        assert dumps_canonical(sweep_to_dict(serial)) == dumps_canonical(
            sweep_to_dict(fanned)
        )

    def test_run_simulations_matches_direct_runs(self):
        config = RunConfig(
            n=3,
            stack=StackConfig(kind=StackKind.MONOLITHIC),
            workload=WorkloadConfig(offered_load=400.0, message_size=512),
            duration=0.6,
            warmup=0.2,
        )
        tasks = [(config, seed) for seed in (3, 4, 5)]
        batched = run_simulations(tasks, jobs=3)
        for (cfg, seed), result in zip(tasks, batched):
            direct = run_simulation(cfg, seed=seed)
            assert result.metrics == direct.metrics
            assert result.network == direct.network
            assert result.events_executed == direct.events_executed

    def test_population_sweep_json_is_byte_identical_across_jobs(self):
        """The lazy client-population model under the same wall: one
        skewed-bursty sweep point, byte-identical for any job count and
        stable across reruns (same process, fresh RNG registries)."""
        base = RunConfig(
            duration=0.6,
            warmup=0.2,
            workload=WorkloadConfig(
                population=ClientPopulationConfig(
                    clients=50_000, zipf_s=1.2, arrival=ClientArrival.BURSTY
                )
            ),
        )
        kwargs = dict(
            loads=(800.0,),
            group_sizes=(3,),
            stacks=(StackKind.MONOLITHIC,),
            seeds=(1, 2),
            base=base,
        )
        serial = dumps_canonical(sweep_to_dict(run_load_sweep(jobs=1, **kwargs)))
        fanned = dumps_canonical(sweep_to_dict(run_load_sweep(jobs=4, **kwargs)))
        rerun = dumps_canonical(sweep_to_dict(run_load_sweep(jobs=1, **kwargs)))
        assert serial == fanned
        assert serial == rerun
        # The point actually exercises the new reporting: finite p999
        # and a non-empty histogram for every seed.
        import json

        document = json.loads(serial)
        point = document["points"][0]
        assert point["latency_p999"]["mean"] > 0
        assert point["histogram"]
        for run in point["runs"]:
            assert run["metrics"]["latency_p999"] > 0
            assert run["metrics"]["active_clients"] > 0

    def test_nemesis_cases_identical_across_jobs(self):
        cases = [
            generate_case(stack, seed)
            for seed in (1, 2)
            for stack in ("modular", "monolithic")
        ]
        serial = run_cases(cases, jobs=1)
        fanned = run_cases(cases, jobs=3)
        assert [r.case for r in serial] == [r.case for r in fanned]
        assert [r.violations for r in serial] == [r.violations for r in fanned]
        assert [r.deliveries for r in serial] == [r.deliveries for r in fanned]
        assert [r.events_executed for r in serial] == [
            r.events_executed for r in fanned
        ]


# -- seed stability ---------------------------------------------------------

#: (throughput, latency_mean, latency_count, instances_decided,
#: messages_sent) of four figure operating points, for two known seeds.
#: Regenerate deliberately (and say why in the commit) with:
#:   PYTHONPATH=src python -c "see tests/integration/test_parallel_determinism.py"
GOLDEN = {
    ("fig8_modular", 1): (778.6666666666666, 0.011442388326268474, 1557, 389, 6227),
    ("fig8_modular", 2): (778.6666666666666, 0.011442388326268474, 1557, 389, 6227),
    ("fig8_monolithic", 1): (1057.1666666666667, 0.00728394495652219, 2116, 705, 2819),
    ("fig8_monolithic", 2): (1113.6666666666667, 0.006854715624607639, 2227, 743, 2971),
    ("fig9_modular", 1): (1218.0, 0.00728454822660063, 2436, 609, 9744),
    ("fig9_modular", 2): (1120.0, 0.007931343530356665, 2240, 560, 8960),
    ("fig9_monolithic", 1): (1999.6666666666667, 0.002342629295931682, 4001, 1867, 7466),
    ("fig9_monolithic", 2): (2000.3333333333333, 0.0025553365270475806, 3999, 1777, 7110),
}

POINTS = {
    "fig8_modular": (StackKind.MODULAR, 2000.0, 16384),
    "fig8_monolithic": (StackKind.MONOLITHIC, 2000.0, 16384),
    "fig9_modular": (StackKind.MODULAR, 2000.0, 1024),
    "fig9_monolithic": (StackKind.MONOLITHIC, 2000.0, 1024),
}


#: (throughput, latency_mean, latency_count, latency_p999,
#: active_clients) of one skewed-bursty population point, two seeds.
#: Pins the population model's whole draw pipeline: aggregate bursty
#: gaps, Zipf attribution (its own stream) and the histogram's p999.
POPULATION_GOLDEN = {
    1: (932.5, 0.0024733744085752604, 1867, 0.0047315125896148025, 772),
    2: (632.0, 0.002357657165169489, 1264, 0.003981071705534973, 606),
}


@pytest.mark.parametrize("seed", sorted(POPULATION_GOLDEN))
def test_seed_stability_of_population_point(seed):
    """Bit-exact pin of the skewed-bursty population point."""
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MONOLITHIC),
        workload=WorkloadConfig(
            offered_load=800.0,
            population=ClientPopulationConfig(
                clients=50_000, zipf_s=1.2, arrival=ClientArrival.BURSTY
            ),
        ),
    )
    result = run_simulation(config, seed=seed)
    observed = (
        result.metrics.throughput,
        result.metrics.latency_mean,
        result.metrics.latency_count,
        result.metrics.latency_p999,
        result.metrics.active_clients,
    )
    assert observed == POPULATION_GOLDEN[seed], (
        f"population point seed={seed} drifted: "
        f"{observed} != {POPULATION_GOLDEN[seed]}"
    )


@pytest.mark.parametrize("name,seed", sorted(GOLDEN))
def test_seed_stability_of_figure_points(name, seed):
    """Bit-exact pin of figure points under two seeds (no tolerance)."""
    kind, load, size = POINTS[name]
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=load, message_size=size),
    )
    result = run_simulation(config, seed=seed)
    observed = (
        result.metrics.throughput,
        result.metrics.latency_mean,
        result.metrics.latency_count,
        result.instances_decided,
        result.network["messages_sent"],
    )
    assert observed == GOLDEN[(name, seed)], (
        f"{name} seed={seed} drifted: {observed} != {GOLDEN[(name, seed)]}"
    )
