"""Validates the simulator against the paper's §5.2 closed forms.

These are the tests that tie the implementation to the paper: in
steady-state good runs, the network counters must reproduce the
analytical message counts — (n-1)(M + 2 + ⌊(n+1)/2⌋) for the modular
stack, 2(n-1) for the monolithic one — and the §5.2.2 data volumes.
"""

import pytest

from repro.analysis.model import modularity_data_overhead
from repro.config import StackKind
from repro.experiments.tables import validate_stack


@pytest.mark.parametrize("n", [3, 7])
def test_modular_message_count_matches_formula(n):
    row = validate_stack(n, StackKind.MODULAR, message_size=2048, duration=1.0)
    assert row.measured_m == pytest.approx(4.0, abs=0.3)
    assert row.message_error < 0.05, (
        f"modular n={n}: measured {row.measured_messages:.2f} msgs/consensus, "
        f"formula {row.predicted_messages:.2f}"
    )


@pytest.mark.parametrize("n", [3, 7])
def test_monolithic_message_count_matches_formula(n):
    row = validate_stack(n, StackKind.MONOLITHIC, message_size=2048, duration=1.0)
    assert row.measured_messages == pytest.approx(2 * (n - 1), rel=0.05)


@pytest.mark.parametrize("n", [3, 7])
def test_payload_volumes_match_formulas(n):
    modular = validate_stack(n, StackKind.MODULAR, message_size=4096, duration=1.0)
    mono = validate_stack(n, StackKind.MONOLITHIC, message_size=4096, duration=1.0)
    assert modular.payload_error < 0.10
    assert mono.payload_error < 0.10


@pytest.mark.parametrize("n", [3, 7])
def test_measured_data_overhead_approaches_paper_value(n):
    """(n-1)/(n+1): 50% for n=3, 75% for n=7 — measured on the wire.

    The measured overhead uses each stack's own measured M (they differ
    slightly), so allow a modest tolerance around the closed form.
    """
    modular = validate_stack(n, StackKind.MODULAR, message_size=8192, duration=1.0)
    mono = validate_stack(n, StackKind.MONOLITHIC, message_size=8192, duration=1.0)
    per_message_modular = modular.measured_payload_bytes / modular.measured_m
    per_message_mono = mono.measured_payload_bytes / mono.measured_m
    overhead = (per_message_modular - per_message_mono) / per_message_mono
    assert overhead == pytest.approx(modularity_data_overhead(n), abs=0.12)


def test_modular_sends_4x_the_messages_at_n3():
    """The paper's §5.2.1 example: 16 messages vs 4 to order M=4."""
    modular = validate_stack(3, StackKind.MODULAR, message_size=2048, duration=1.0)
    mono = validate_stack(3, StackKind.MONOLITHIC, message_size=2048, duration=1.0)
    ratio = modular.measured_messages / mono.measured_messages
    assert ratio == pytest.approx(4.0, rel=0.10)
