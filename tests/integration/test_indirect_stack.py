"""End-to-end tests of the indirect-consensus modular stack (extension).

The interesting failure mode is ordering-before-content: a process can
decide an id batch whose payloads it never received (sender crashed
mid-diffusion). The fetch protocol must fill the gap without breaking
total order.
"""

import pytest

from repro.config import (
    ConsensusVariant,
    CrashEvent,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation, run_simulation
from repro.metrics.ordering import OrderingChecker


def indirect_config(**overrides):
    fields = dict(
        n=3,
        stack=StackConfig(
            kind=StackKind.MODULAR, consensus=ConsensusVariant.INDIRECT
        ),
        workload=WorkloadConfig(offered_load=300.0, message_size=1024),
        duration=0.8,
        warmup=0.2,
    )
    fields.update(overrides)
    return RunConfig(**fields)


def run_checked(config, seed=1, drain=2.0):
    sim = Simulation(config, seed=seed)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    result = sim.run(drain=drain)
    correct = set(range(config.n)) - config.faultload.crashed_processes()
    checker.verify(correct=correct, expect_all_delivered=True)
    return sim, result, checker


@pytest.mark.parametrize("n", [3, 5, 7])
def test_good_runs_satisfy_the_contract(n):
    __, result, checker = run_checked(indirect_config(n=n))
    assert result.metrics.throughput == pytest.approx(300.0, rel=0.1)
    assert len(checker.sequence(0)) > 100


def test_halves_modular_data_volume():
    indirect = run_simulation(
        indirect_config(
            workload=WorkloadConfig(offered_load=4000.0, message_size=8192),
            duration=0.6,
            warmup=0.3,
        ),
        seed=1,
    )
    direct = run_simulation(
        indirect_config(
            stack=StackConfig(kind=StackKind.MODULAR),
            workload=WorkloadConfig(offered_load=4000.0, message_size=8192),
            duration=0.6,
            warmup=0.3,
        ),
        seed=1,
    )
    ratio = indirect.payload_bytes_per_consensus / direct.payload_bytes_per_consensus
    assert 0.4 < ratio < 0.6


def test_coordinator_crash_is_tolerated():
    config = indirect_config(
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.1
        ),
        faultload=FaultloadConfig(crashes=(CrashEvent(0.5, 0),)),
        duration=1.5,
    )
    __, __, checker = run_checked(config)
    assert checker.sequence(1) == checker.sequence(2)
    post_crash = [m for m in checker.sequence(1) if m.sender != 0 and m.seq > 80]
    assert post_crash


def test_sender_crash_mid_diffusion_exercises_fetch():
    """Crash a sender after one diffusion copy: the other processes can
    decide ids they lack, and must fetch the content."""
    config = indirect_config(
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.1
        ),
        workload=WorkloadConfig(offered_load=60.0, message_size=512),
        duration=1.5,
    )
    sim = Simulation(config, seed=5)
    checker = OrderingChecker(3)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    sim.kernel.schedule_at(0.6, lambda: sim.runtimes[1].crash_after_sends(1))

    def notify_oracle():
        if not sim.runtimes[1].alive:
            for runtime, detector in zip(sim.runtimes, sim.detectors):
                if runtime.alive:
                    detector.observe_crash(1)

    sim.kernel.schedule_at(0.9, notify_oracle)
    sim.run(drain=2.5)
    checker.verify(correct={0, 2}, expect_all_delivered=True)
    assert checker.sequence(0) == checker.sequence(2)


def test_deterministic_under_indirect_mode():
    a = run_simulation(indirect_config(), seed=9)
    b = run_simulation(indirect_config(), seed=9)
    assert a.metrics.latency_mean == b.metrics.latency_mean
    assert a.network == b.network
