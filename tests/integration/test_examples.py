"""Smoke tests: the runnable examples must stay runnable.

Each example is loaded as a module from ``examples/`` and its ``main()``
is executed with stdout captured. The slow studies (full evaluation,
WAN sweep, FD QoS sweep) are exercised indirectly through the APIs they
call; here we run the quick ones end to end.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

QUICK_EXAMPLES = (
    "quickstart",
    "replicated_kv_store",
    "fault_injection_demo",
    "protocol_trace_demo",
)


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", QUICK_EXAMPLES)
def test_example_runs_and_produces_output(name, capsys):
    module = load_example(name)
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 100


def test_quickstart_reports_the_modularity_gap(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "modular" in out and "monolithic" in out
    assert "cost of modularity" in out


def test_kv_store_replicas_converge(capsys):
    load_example("replicated_kv_store").main()
    out = capsys.readouterr().out
    assert "identical contents" in out


def test_fault_demo_verifies_safety(capsys):
    load_example("fault_injection_demo").main()
    out = capsys.readouterr().out
    assert "safety verified" in out


def test_all_examples_have_docstrings_and_main():
    for path in sorted(EXAMPLES_DIR.glob("*.py")):
        source = path.read_text()
        assert source.lstrip().startswith(('#!/usr/bin/env python3', '"""')), path
        assert "def main()" in source, f"{path} lacks a main()"
        assert '"""' in source.split("def main()")[0], f"{path} lacks a docstring"
