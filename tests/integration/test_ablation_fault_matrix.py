"""Every ablation variant of the monolithic stack must stay correct
under faults — the §4 optimizations are good-run-only for performance,
never for safety, and that must hold for each subset of them."""

import itertools

import pytest

from repro.config import (
    CrashEvent,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    MonolithicOptimizations,
    RunConfig,
    WorkloadConfig,
    monolithic_stack,
)
from repro.experiments.runner import Simulation
from repro.metrics.ordering import OrderingChecker

ALL_COMBINATIONS = list(itertools.product((False, True), repeat=3))


@pytest.mark.parametrize("combine,piggyback,cheap", ALL_COMBINATIONS)
def test_every_optimization_subset_survives_coordinator_crash(
    combine, piggyback, cheap
):
    opts = MonolithicOptimizations(
        combine_decision_with_proposal=combine,
        piggyback_on_ack=piggyback,
        cheap_decision_broadcast=cheap,
    )
    config = RunConfig(
        n=3,
        stack=monolithic_stack(opts),
        workload=WorkloadConfig(offered_load=200.0, message_size=256),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.1
        ),
        faultload=FaultloadConfig(crashes=(CrashEvent(0.6, 0),)),
        duration=1.5,
        warmup=0.2,
    )
    sim = Simulation(config, seed=3)
    checker = OrderingChecker(3)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    sim.run(drain=2.0)
    checker.verify(correct={1, 2}, expect_all_delivered=True)
    assert checker.sequence(1) == checker.sequence(2)
    # Progress after the crash: survivors' later messages got through.
    later = [m for m in checker.sequence(1) if m.sender in (1, 2) and m.seq > 80]
    assert later


@pytest.mark.parametrize("combine,piggyback,cheap", ALL_COMBINATIONS)
def test_every_optimization_subset_is_correct_in_good_runs(
    combine, piggyback, cheap
):
    opts = MonolithicOptimizations(
        combine_decision_with_proposal=combine,
        piggyback_on_ack=piggyback,
        cheap_decision_broadcast=cheap,
    )
    config = RunConfig(
        n=5,
        stack=monolithic_stack(opts),
        workload=WorkloadConfig(offered_load=400.0, message_size=512),
        duration=0.6,
        warmup=0.2,
    )
    sim = Simulation(config, seed=1)
    checker = OrderingChecker(5)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    sim.run(drain=1.0)
    checker.verify(expect_all_delivered=True)
