"""End-to-end tests of the fixed-sequencer baseline (extension)."""

import pytest

from repro.config import (
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.errors import ProtocolError
from repro.experiments.runner import Simulation, run_simulation
from repro.metrics.ordering import OrderingChecker


def sequencer_config(**overrides):
    fields = dict(
        n=3,
        stack=StackConfig(kind=StackKind.SEQUENCER),
        workload=WorkloadConfig(offered_load=400.0, message_size=1024),
        duration=0.6,
        warmup=0.2,
    )
    fields.update(overrides)
    return RunConfig(**fields)


@pytest.mark.parametrize("n", [2, 3, 5, 7])
def test_good_runs_satisfy_the_contract(n):
    config = sequencer_config(n=n)
    sim = Simulation(config, seed=1)
    checker = OrderingChecker(n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    result = sim.run(drain=1.0)
    checker.verify(expect_all_delivered=True)
    assert result.metrics.throughput == pytest.approx(400.0, rel=0.1)


def test_sequencer_outperforms_both_stacks_at_n3():
    """The whole point of the baseline: it bounds both stacks from above
    (n=3, where batching cannot compensate)."""
    results = {}
    for kind in (StackKind.SEQUENCER, StackKind.MONOLITHIC, StackKind.MODULAR):
        config = sequencer_config(
            stack=StackConfig(kind=kind),
            workload=WorkloadConfig(offered_load=7000.0, message_size=16384),
            duration=0.8,
            warmup=0.4,
        )
        results[kind] = run_simulation(config, seed=1).metrics
    assert (
        results[StackKind.SEQUENCER].throughput
        > results[StackKind.MONOLITHIC].throughput
        > results[StackKind.MODULAR].throughput
    )


def test_suspecting_the_sequencer_is_a_hard_error():
    """The baseline refuses to fail over — by design, loudly."""
    from repro.config import (
        CrashEvent,
        FailureDetectorConfig,
        FailureDetectorKind,
        FaultloadConfig,
    )

    config = sequencer_config(
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.05
        ),
        faultload=FaultloadConfig(crashes=(CrashEvent(0.3, 0),)),
    )
    sim = Simulation(config, seed=1)
    with pytest.raises(ProtocolError, match="cannot fail over"):
        sim.run()


def test_deterministic():
    a = run_simulation(sequencer_config(), seed=4)
    b = run_simulation(sequencer_config(), seed=4)
    assert a.metrics.latency_mean == b.metrics.latency_mean
    assert a.network == b.network
