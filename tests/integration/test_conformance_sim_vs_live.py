"""Sim-vs-live conformance: same protocol code, same observable contract.

The simulator and the live runtime execute the *identical* protocol
stack modules; what differs is the substrate (virtual clock + modelled
costs vs asyncio + real TCP). These tests pin the conformance claim:

* with a single sender, the total delivery order is fully determined
  (the sender's FIFO sequence), and both substrates must produce it
  exactly — every process, both modes, no reordering anywhere;
* both modes reduce to the same ``RunResult``-schema dictionary, key
  for key, so downstream tooling never branches on the mode.

Marked ``slow``: each test deploys real OS processes over TCP and costs
a few wall-clock seconds; CI runs them in the live-smoke job
(``pytest -m slow``), not in the tier-1 suite.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import Simulation
from repro.live.compare import matched_run_config
from repro.live.deploy import LiveSpec, run_live
from repro.live.results import sim_result_to_dict
from repro.types import MessageId
from repro.workload.generator import ArrivalSchedule

pytestmark = pytest.mark.slow

#: One sender, low rate, sub-second window: the order is forced and the
#: run is short, but several consensus instances still decide.
CONFORMANCE_SPEC = dict(
    n=3,
    load=30.0,
    size=256,
    duration=0.8,
    warmup=0.3,
    drain=0.4,
    senders=(0,),
)


def run_live_logged(stack: str) -> tuple[dict, dict[int, list[MessageId]]]:
    log: dict[int, list[MessageId]] = {}
    result = run_live(
        LiveSpec(stack=stack, **CONFORMANCE_SPEC), delivery_log=log
    )
    return result, log


def run_sim_logged(stack: str) -> tuple[dict, dict[int, list[MessageId]]]:
    """The matched simulation, also restricted to a single sender."""
    spec = LiveSpec(stack=stack, **CONFORMANCE_SPEC)
    config = matched_run_config(spec)
    simulation = Simulation(config, seed=spec.seed, with_workload=False)
    # Only process 0 generates load, mirroring spec.senders == (0,); the
    # whole offered load lands on that one schedule (n=1).
    simulation.schedules.append(
        ArrivalSchedule(
            simulation.kernel,
            simulation.senders[0],
            config.workload,
            1,
            stop_at=config.total_time,
            rng_name="workload.p0",
        )
    )
    log: dict[int, list[MessageId]] = {}
    simulation.add_adeliver_listener(
        lambda pid, message, time: log.setdefault(pid, []).append(message.msg_id)
    )
    result = simulation.run()
    return sim_result_to_dict(result), log


def assert_single_sender_order(log: dict[int, list[MessageId]], n: int) -> None:
    """Every process delivered 0's messages in strict sequence order."""
    assert set(log) <= set(range(n))
    for pid, sequence in log.items():
        assert sequence, f"process {pid} delivered nothing"
        assert all(m.sender == 0 for m in sequence)
        seqs = [m.seq for m in sequence]
        assert seqs == sorted(set(seqs)), (
            f"process {pid} broke the single-sender order: {seqs}"
        )
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs))), (
            f"process {pid} skipped a message: {seqs}"
        )


@pytest.mark.parametrize(
    "stack", ["monolithic", "modular", "ringpaxos", "batched-sequencer"]
)
def test_delivery_order_conforms(stack):
    """Identical single-sender delivery order in both execution modes."""
    live_result, live_log = run_live_logged(stack)
    sim_result, sim_log = run_sim_logged(stack)

    assert_single_sender_order(live_log, 3)
    assert_single_sender_order(sim_log, 3)

    # Both modes produce prefixes of the one canonical order; the common
    # part of any two logs (across processes AND modes) must agree.
    all_logs = list(live_log.values()) + list(sim_log.values())
    for i, a in enumerate(all_logs):
        for b in all_logs[i + 1 :]:
            shared = min(len(a), len(b))
            assert a[:shared] == b[:shared]

    assert live_result["metrics"]["throughput"] > 0
    assert sim_result["metrics"]["throughput"] > 0


def test_result_schema_matches():
    """Both modes fill the exact same RunResult-shaped dictionary."""
    live_result, __ = run_live_logged("monolithic")
    sim_result, __ = run_sim_logged("monolithic")
    assert set(live_result) == set(sim_result)
    assert set(live_result["metrics"]) == set(sim_result["metrics"])
    assert set(live_result["config"]) == set(sim_result["config"])
    assert live_result["mode"] == "live"
    assert sim_result["mode"] == "sim"
    for key in ("messages_sent", "bytes_sent", "payload_bytes_sent"):
        assert key in live_result["network"]
        assert key in sim_result["network"]
