"""Faulted live deployments: kill-and-recover end to end (`-m slow`).

The tentpole claim of the crash-recovery subsystem: a worker SIGKILLed
mid-run restarts, recovers from its write-ahead log, state-transfers
the deliveries it missed, and the merged per-worker logs pass all four
abcast invariants plus the liveness watchdog. And because a faultload
is declarative, the *same* JSON document replays in the simulator — the
nemesis subsystem's sim compilation — with the same verdict.
"""

from __future__ import annotations

import pytest

from repro.config import (
    CrashEvent,
    DelaySpike,
    FaultloadConfig,
    PartitionEvent,
)
from repro.live.deploy import LiveSpec
from repro.live.faults import run_nemesis_live
from repro.nemesis.swarm import NemesisCase, run_case

pytestmark = pytest.mark.slow

#: Short but non-trivial: the group takes load, loses a worker, heals.
SPEC = dict(n=3, load=120.0, size=64, duration=1.2, warmup=0.6, seed=7)

KILL_RECOVER = FaultloadConfig(crashes=(CrashEvent(time=0.45, process=2),))

CHURN = FaultloadConfig(
    crashes=(CrashEvent(time=0.5, process=1),),
    partitions=(PartitionEvent(start=0.25, heal=0.45, groups=((0,), (1, 2))),),
    delay_spikes=(
        DelaySpike(start=1.0, end=1.3, extra_delay=0.008, jitter=0.004),
    ),
)


class TestKillAndRecover:
    def test_modular_worker_recovers_and_invariants_hold(self, tmp_path):
        report = run_nemesis_live(
            LiveSpec(stack="modular", wal_dir=str(tmp_path), **SPEC),
            KILL_RECOVER,
        )
        assert report.passed, [str(v) for v in report.violations]
        assert report.kills == 1 and report.restarts == 1
        assert report.recovered == (2,)
        assert report.deliveries > 0
        # The restarted worker's WAL kept growing after recovery.
        assert (tmp_path / "worker-2.wal").stat().st_size > 0

    def test_monolithic_worker_recovers_too(self, tmp_path):
        report = run_nemesis_live(
            LiveSpec(stack="monolithic", wal_dir=str(tmp_path), **SPEC),
            KILL_RECOVER,
        )
        assert report.passed, [str(v) for v in report.violations]
        assert report.recovered == (2,)

    def test_partition_kill_and_spike_together(self, tmp_path):
        report = run_nemesis_live(
            LiveSpec(stack="modular", wal_dir=str(tmp_path), **SPEC), CHURN
        )
        assert report.passed, [str(v) for v in report.violations]
        assert report.recovered == (1,)


class TestSimLiveConformance:
    def test_same_faultload_passes_in_both_modes(self, tmp_path):
        """One declarative faultload, two compilations, one verdict."""
        live = run_nemesis_live(
            LiveSpec(stack="modular", wal_dir=str(tmp_path), **SPEC),
            KILL_RECOVER,
        )
        assert live.passed, [str(v) for v in live.violations]
        sim = run_case(
            NemesisCase(
                stack="modular",
                seed=SPEC["seed"],
                n=SPEC["n"],
                fd="heartbeat",
                faultload=KILL_RECOVER,
            )
        )
        assert sim.passed, [str(v) for v in sim.violations]
        assert live.deliveries > 0 and sim.deliveries > 0
