"""Determinism: a run is a pure function of (config, seed)."""

import pytest

from repro.config import (
    CrashEvent,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation, run_simulation
from repro.metrics.ordering import OrderingChecker

STACKS = (StackKind.MODULAR, StackKind.MONOLITHIC)


def config_for(kind):
    return RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=500.0, message_size=1024),
        duration=0.6,
        warmup=0.2,
    )


@pytest.mark.parametrize("kind", STACKS)
def test_same_seed_same_numbers(kind):
    a = run_simulation(config_for(kind), seed=11)
    b = run_simulation(config_for(kind), seed=11)
    assert a.metrics.latency_mean == b.metrics.latency_mean
    assert a.metrics.throughput == b.metrics.throughput
    assert a.network == b.network
    assert a.events_executed == b.events_executed


@pytest.mark.parametrize("kind", STACKS)
def test_same_seed_same_delivery_sequence(kind):
    sequences = []
    for __ in range(2):
        sim = Simulation(config_for(kind), seed=11)
        checker = OrderingChecker(3)
        sim.add_accept_listener(checker.on_abcast)
        sim.add_adeliver_listener(checker.on_adeliver)
        sim.run()
        sequences.append(checker.sequence(0))
    assert sequences[0] == sequences[1]


@pytest.mark.parametrize("kind", STACKS)
def test_different_seeds_differ(kind):
    a = run_simulation(config_for(kind), seed=1)
    b = run_simulation(config_for(kind), seed=2)
    # Workload phases differ, so latency profiles should not be equal.
    assert a.metrics.latency_mean != b.metrics.latency_mean


def test_determinism_holds_under_faults():
    config = config_for(StackKind.MODULAR).with_changes(
        faultload=FaultloadConfig(crashes=(CrashEvent(0.3, 0),)),
        duration=1.0,
    )
    a = run_simulation(config, seed=5)
    b = run_simulation(config, seed=5)
    assert a.metrics.throughput == b.metrics.throughput
    assert a.network == b.network
