"""Fault-tolerance integration tests.

The paper measures good runs only but requires correctness in all runs
(§3, §4: "our optimizations focus on good runs but ensure correctness in
all runs"). These tests inject coordinator crashes, mid-broadcast sender
crashes and wrong suspicions into full end-to-end simulations of both
stacks and assert the atomic broadcast contract.
"""

import pytest

from repro.config import (
    CrashEvent,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation
from repro.metrics.ordering import OrderingChecker

STACKS = (StackKind.MODULAR, StackKind.MONOLITHIC)


def faulty_config(kind, n=3, crashes=(), load=200.0, size=512, duration=2.0):
    return RunConfig(
        n=n,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=load, message_size=size),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.1
        ),
        faultload=FaultloadConfig(crashes=tuple(crashes)),
        duration=duration,
        warmup=0.2,
    )


def run_checked(config, seed=1, drain=2.0):
    sim = Simulation(config, seed=seed)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    result = sim.run(drain=drain)
    correct = set(range(config.n)) - config.faultload.crashed_processes()
    checker.verify(correct=correct, expect_all_delivered=True)
    return sim, result, checker


@pytest.mark.parametrize("kind", STACKS)
def test_coordinator_crash_does_not_stop_delivery(kind):
    """p0 coordinates every instance's round 1; crashing it forces the
    round-change machinery on every subsequent instance."""
    config = faulty_config(kind, crashes=[CrashEvent(0.7, 0)])
    sim, result, checker = run_checked(config)
    survivors = (1, 2)
    for pid in survivors:
        deliveries = checker.sequence(pid)
        assert deliveries
        # Messages abcast by survivors *after* the crash are delivered
        # (per-process rate ~67/s, crash at t=0.7 => seq ~47 at crash).
        post_crash = [
            mid for mid in deliveries if mid.sender in survivors and mid.seq > 100
        ]
        assert post_crash, "no progress after the coordinator crashed"


@pytest.mark.parametrize("kind", STACKS)
def test_non_coordinator_crash_is_benign(kind):
    config = faulty_config(kind, crashes=[CrashEvent(0.7, 2)])
    sim, result, checker = run_checked(config)
    assert len(checker.sequence(0)) == len(checker.sequence(1))
    assert len(checker.sequence(0)) > 200


@pytest.mark.parametrize("kind", STACKS)
def test_two_crashes_in_a_group_of_seven(kind):
    config = faulty_config(
        kind,
        n=7,
        crashes=[CrashEvent(0.5, 0), CrashEvent(0.9, 3)],
        duration=2.0,
    )
    sim, result, checker = run_checked(config)
    lengths = {len(checker.sequence(pid)) for pid in (1, 2, 4, 5, 6)}
    assert len(lengths) == 1
    assert lengths.pop() > 100


def test_modular_sender_crash_mid_diffusion_preserves_uniform_agreement():
    """The §3.3 scenario: a sender crashes halfway through diffusing m,
    leaving m at a strict subset of processes. The guard timer must
    re-diffuse it so every correct process eventually adelivers it."""
    config = faulty_config(StackKind.MODULAR, load=50.0, duration=1.5)
    sim = Simulation(config, seed=5)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    # Crash p1 right after the first send of one of its diffusions.
    sim.kernel.schedule_at(0.6, lambda: sim.runtimes[1].crash_after_sends(1))

    def crash_oracle_notice():
        if not sim.runtimes[1].alive:
            for runtime, detector in zip(sim.runtimes, sim.detectors):
                if runtime.alive:
                    detector.observe_crash(1)

    sim.kernel.schedule_at(0.9, crash_oracle_notice)
    sim.run(drain=2.0)
    assert not sim.runtimes[1].alive
    checker.verify(correct={0, 2}, expect_all_delivered=True)
    # Both survivors have identical sequences (uniform agreement already
    # checked; this asserts it was a non-trivial run).
    assert checker.sequence(0) == checker.sequence(2)
    assert len(checker.sequence(0)) > 20


@pytest.mark.parametrize("kind", STACKS)
def test_crash_detected_by_heartbeat_detector(kind):
    config = faulty_config(kind, crashes=[CrashEvent(0.7, 0)]).with_changes(
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.HEARTBEAT,
            heartbeat_interval=0.05,
            timeout=0.2,
        )
    )
    sim, result, checker = run_checked(config)
    assert 0 in sim.detectors[1].suspects()
    assert len(checker.sequence(1)) > 100


@pytest.mark.parametrize("kind", STACKS)
def test_wrong_suspicion_of_live_coordinator_is_safe(kind):
    """◇S detectors may be wrong; suspecting the live p0 forces round
    changes while p0 keeps participating. Safety must hold and the
    system must keep delivering."""
    config = faulty_config(kind, load=300.0, duration=1.5).with_changes(
        failure_detector=FailureDetectorConfig(kind=FailureDetectorKind.SCRIPTED)
    )
    sim = Simulation(config, seed=2)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)
    for pid in range(3):
        sim.detectors[pid].suspect_at(0.6, 0)
        sim.detectors[pid].unsuspect_at(1.0, 0)
    sim.run(drain=2.0)
    checker.verify(expect_all_delivered=True)
    assert len(checker.sequence(0)) > 200
    assert checker.sequence(0) == checker.sequence(1) == checker.sequence(2)


@pytest.mark.parametrize("kind", STACKS)
def test_crash_just_before_measurement_window(kind):
    """Crashing during warm-up exercises start-up round changes."""
    config = faulty_config(kind, crashes=[CrashEvent(0.1, 0)], duration=1.5)
    sim, result, checker = run_checked(config)
    assert len(checker.sequence(1)) > 50


@pytest.mark.parametrize("kind", STACKS)
def test_throughput_survives_a_crash(kind):
    config = faulty_config(kind, crashes=[CrashEvent(1.0, 2)], load=300.0)
    sim, result, checker = run_checked(config)
    # Two-thirds of the offered load comes from survivors; expect at
    # least a meaningful fraction of it to be delivered.
    assert result.metrics.throughput > 100.0
