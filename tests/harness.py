"""Synchronous test harness for protocol state machines.

Because every protocol module is a pure ``handle(event) -> [actions]``
state machine, tests can drive whole groups of them without the
simulation kernel: the :class:`ModulePump` keeps an in-memory message
queue, routes module actions, and lets tests control delivery order,
drop messages, crash processes and script suspicions — which is exactly
what the consensus/abcast property tests need to explore adversarial
schedules cheaply.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.net.message import NetMessage
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.stack.events import Event, RbcastRequest, RdeliverIndication
from repro.stack.module import Microprotocol, ModuleContext


@dataclass
class PendingMessage:
    """A message queued in the pump, not yet delivered."""

    message: NetMessage
    seq: int = field(default=0)


class ModulePump:
    """Drives one module per process, synchronously.

    Args:
        module_factory: Called with each process's :class:`ModuleContext`
            to build its module.
        n: Group size.
        bridge_rbcast: If True, ``EmitDown(RbcastRequest)`` from a module
            is emulated as a perfect reliable broadcast: the payload is
            rdelivered synchronously at the emitter and enqueued as a
            pump-internal delivery for everyone else. Used to test the
            consensus module in isolation from the real rbcast module.
    """

    def __init__(
        self,
        module_factory: Callable[[ModuleContext], Microprotocol],
        n: int,
        *,
        bridge_rbcast: bool = False,
    ) -> None:
        self.n = n
        self.bridge_rbcast = bridge_rbcast
        self.suspect_sets: list[set[int]] = [set() for __ in range(n)]
        self.modules: list[Microprotocol] = []
        self.queue: deque[PendingMessage] = deque()
        #: Events each module emitted up (e.g. DecideIndication).
        self.up_events: list[list[Event]] = [[] for __ in range(n)]
        #: Events each module emitted down (when not bridged).
        self.down_events: list[list[Event]] = [[] for __ in range(n)]
        #: Live timers: (pid, timer name) -> payload.
        self.timers: dict[tuple[int, str], Any] = {}
        self.crashed: set[int] = set()
        self._seq = 0
        for pid in range(n):
            ctx = ModuleContext(
                pid=pid,
                n=n,
                suspects=lambda p=pid: frozenset(self.suspect_sets[p]),
            )
            self.modules.append(module_factory(ctx))
        for pid, module in enumerate(self.modules):
            self._execute(pid, module.on_start())

    # -- driving ---------------------------------------------------------

    def inject(self, pid: int, event: Event) -> None:
        """Deliver an application/upper-layer event to one module."""
        if pid in self.crashed:
            return
        self._execute(pid, self.modules[pid].handle_event(event))

    def crash(self, pid: int) -> None:
        """Crash a process: it stops handling anything from now on."""
        self.crashed.add(pid)

    def suspect(self, observer: int, suspected: int) -> None:
        """Make *observer*'s FD suspect *suspected*."""
        self.suspect_sets[observer].add(suspected)
        self._notify_suspicion(observer)

    def unsuspect(self, observer: int, suspected: int) -> None:
        """Clear a suspicion at *observer*."""
        self.suspect_sets[observer].discard(suspected)
        self._notify_suspicion(observer)

    def suspect_everywhere(self, suspected: int) -> None:
        """Every live process suspects *suspected*."""
        for observer in range(self.n):
            if observer not in self.crashed and observer != suspected:
                self.suspect(observer, suspected)

    def fire_timer(self, pid: int, name: str) -> None:
        """Fire a live timer on a module."""
        payload = self.timers.pop((pid, name))
        if pid in self.crashed:
            return
        self._execute(pid, self.modules[pid].handle_timer(name, payload))

    def deliver_next(self, index: int = 0) -> NetMessage | None:
        """Deliver the index-th queued message (default: FIFO head).

        Messages already in the queue arrive even if their sender has
        crashed since (they were on the wire). Messages to crashed
        destinations are silently discarded.
        """
        if not self.queue:
            return None
        pending = self.queue[index]
        del self.queue[index]
        message = pending.message
        if message.dst in self.crashed:
            return message
        if message.kind == "__RB_BRIDGE__":
            # Emulated reliable broadcast: arrives as an rdeliver event.
            self._execute(
                message.dst, self.modules[message.dst].handle_event(message.payload)
            )
        else:
            self._execute(
                message.dst, self.modules[message.dst].handle_message(message)
            )
        return message

    def drop_next(self, index: int = 0) -> NetMessage:
        """Drop one queued message (models sender crash mid-broadcast)."""
        pending = self.queue[index]
        del self.queue[index]
        return pending.message

    def run(
        self,
        *,
        max_steps: int = 100_000,
        pick: Callable[[int], int] | None = None,
    ) -> int:
        """Deliver queued messages until the queue drains.

        Args:
            max_steps: Safety bound on deliveries.
            pick: Optional chooser of the next message index (e.g. a
                ``random.Random(...).randrange`` for shuffled schedules).

        Returns:
            The number of messages delivered.
        """
        steps = 0
        while self.queue:
            if steps >= max_steps:
                raise AssertionError(f"pump did not quiesce in {max_steps} steps")
            index = pick(len(self.queue)) if pick is not None else 0
            self.deliver_next(index)
            steps += 1
        return steps

    # -- internals ----------------------------------------------------------

    def _notify_suspicion(self, observer: int) -> None:
        if observer in self.crashed:
            return
        module = self.modules[observer]
        self._execute(
            observer,
            module.handle_suspicion(frozenset(self.suspect_sets[observer])),
        )

    def _execute(self, pid: int, actions: list[Action]) -> None:
        for action in actions:
            if pid in self.crashed:
                return
            if isinstance(action, Send):
                self._enqueue(pid, action.dst, action.kind, action.payload, action.payload_size)
            elif isinstance(action, SendToAll):
                for dst in range(self.n):
                    if dst != pid:
                        self._enqueue(pid, dst, action.kind, action.payload, action.payload_size)
            elif isinstance(action, EmitUp):
                self.up_events[pid].append(action.event)
            elif isinstance(action, EmitDown):
                if self.bridge_rbcast and isinstance(action.event, RbcastRequest):
                    self._bridge_rbcast(pid, action.event)
                else:
                    self.down_events[pid].append(action.event)
            elif isinstance(action, StartTimer):
                self.timers[(pid, action.name)] = action.payload
            elif isinstance(action, CancelTimer):
                self.timers.pop((pid, action.name), None)
            else:  # pragma: no cover - new action types must be handled
                raise AssertionError(f"unknown action {action!r}")

    def _bridge_rbcast(self, origin: int, request: RbcastRequest) -> None:
        indication = RdeliverIndication(request.payload, request.payload_size, origin)
        # Local self-delivery is synchronous, as in the real module.
        self._execute(origin, self.modules[origin].handle_event(indication))
        for dst in range(self.n):
            if dst != origin:
                self._enqueue(origin, dst, "__RB_BRIDGE__", indication, request.payload_size)

    def _enqueue(self, src: int, dst: int, kind: str, payload: Any, size: int) -> None:
        if kind == "__RB_BRIDGE__":
            message = NetMessage(
                kind=kind, module="__bridge__", src=src, dst=dst,
                payload=payload, payload_size=size, header_size=0,
            )
        else:
            message = NetMessage(
                kind=kind,
                module=getattr(self.modules[src], "name", "test"),
                src=src,
                dst=dst,
                payload=payload,
                payload_size=size,
                header_size=0,
            )
        self._seq += 1
        self.queue.append(PendingMessage(message, self._seq))

    def deliverable(self) -> list[NetMessage]:
        """Snapshot of the queued messages (for assertions)."""
        return [p.message for p in self.queue]
