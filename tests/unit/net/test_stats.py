"""Unit tests for network statistics."""

from repro.net.message import NetMessage
from repro.net.stats import NetworkStats


def _msg(kind="K", module="m", size=100, header=10):
    return NetMessage(
        kind=kind, module=module, src=0, dst=1, payload=None,
        payload_size=size, header_size=header,
    )


def test_counters_accumulate():
    stats = NetworkStats()
    stats.on_transmit(_msg(size=100, header=10))
    stats.on_transmit(_msg(kind="L", size=50, header=10))
    assert stats.messages_sent == 2
    assert stats.bytes_sent == 170
    assert stats.payload_bytes_sent == 150


def test_breakdown_by_kind_and_module():
    stats = NetworkStats()
    stats.on_transmit(_msg(kind="A", module="abcast"))
    stats.on_transmit(_msg(kind="A", module="abcast"))
    stats.on_transmit(_msg(kind="B", module="consensus"))
    assert stats.messages_by_kind["A"] == 2
    assert stats.messages_by_kind["B"] == 1
    assert stats.messages_by_module["abcast"] == 2
    assert stats.bytes_by_kind["A"] == 220


def test_reset_zeroes_everything():
    stats = NetworkStats()
    stats.on_transmit(_msg())
    stats.reset()
    assert stats.messages_sent == 0
    assert stats.bytes_sent == 0
    assert not stats.messages_by_kind


def test_snapshot_is_a_plain_dict_copy():
    stats = NetworkStats()
    stats.on_transmit(_msg(kind="A"))
    snap = stats.snapshot()
    stats.on_transmit(_msg(kind="A"))
    assert snap["messages_sent"] == 1
    assert snap["messages_by_kind"] == {"A": 1}
