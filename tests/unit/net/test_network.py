"""Unit tests for the network timing model."""

import pytest

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.net.faults import FaultInjector
from repro.net.message import NetMessage
from repro.net.network import Network
from repro.sim.kernel import Kernel


def _msg(src=0, dst=1, size=1000, kind="K"):
    return NetMessage(
        kind=kind, module="m", src=src, dst=dst, payload=None,
        payload_size=size, header_size=0,
    )


def _network(n=3, bandwidth=1000.0, propagation=0.1):
    kernel = Kernel()
    config = NetworkConfig(bandwidth=bandwidth, propagation=propagation)
    network = Network(kernel, n, config)
    arrivals: list[tuple[float, NetMessage]] = []
    for pid in range(n):
        network.register(pid, lambda m, k=kernel: arrivals.append((k.now, m)))
    return kernel, network, arrivals


def test_arrival_time_is_serialization_plus_propagation():
    kernel, network, arrivals = _network(bandwidth=1000.0, propagation=0.1)
    network.transmit(_msg(size=500), depart_time=0.0)  # 0.5s on the NIC
    kernel.run()
    assert arrivals[0][0] == pytest.approx(0.6)


def test_nic_serializes_back_to_back_sends():
    kernel, network, arrivals = _network(bandwidth=1000.0, propagation=0.0)
    network.transmit(_msg(size=500, dst=1), depart_time=0.0)
    network.transmit(_msg(size=500, dst=2), depart_time=0.0)
    kernel.run()
    times = sorted(t for t, __ in arrivals)
    assert times == [pytest.approx(0.5), pytest.approx(1.0)]


def test_different_senders_do_not_contend():
    kernel, network, arrivals = _network(bandwidth=1000.0, propagation=0.0)
    network.transmit(_msg(src=0, dst=2, size=500), depart_time=0.0)
    network.transmit(_msg(src=1, dst=2, size=500), depart_time=0.0)
    kernel.run()
    times = [t for t, __ in arrivals]
    assert times == [pytest.approx(0.5), pytest.approx(0.5)]


def test_per_pair_fifo_is_preserved():
    # A huge message then a tiny one on the same pair: the tiny one may
    # not overtake (TCP channel semantics).
    kernel, network, arrivals = _network(bandwidth=1000.0, propagation=0.5)
    network.transmit(_msg(size=1000), depart_time=0.0)
    network.transmit(_msg(size=1), depart_time=0.0)
    kernel.run()
    uids = [m.uid for __, m in arrivals]
    times = [t for t, __ in arrivals]
    assert uids == sorted(uids)
    assert times[0] <= times[1]


def test_stats_count_transmissions():
    kernel, network, arrivals = _network()
    network.transmit(_msg(size=123), depart_time=0.0)
    assert network.stats.messages_sent == 1
    assert network.stats.bytes_sent == 123


def test_crashed_destination_never_receives():
    kernel, network, arrivals = _network()
    network.faults.mark_crashed(1)
    network.transmit(_msg(dst=1), depart_time=0.0)
    kernel.run()
    assert arrivals == []


def test_crash_after_transmit_but_before_arrival_drops():
    kernel, network, arrivals = _network(propagation=1.0)
    network.transmit(_msg(dst=1, size=0), depart_time=0.0)
    kernel.schedule(0.5, lambda: network.faults.mark_crashed(1))
    kernel.run()
    assert arrivals == []


def test_fault_filter_can_drop_and_delay():
    kernel, network, arrivals = _network(bandwidth=1e9, propagation=0.0)
    network.faults.drop_matching(lambda m: m.kind == "DROPME")
    network.faults.delay_matching(lambda m: m.kind == "SLOW", 2.0)
    network.transmit(_msg(kind="DROPME"), depart_time=0.0)
    network.transmit(_msg(kind="SLOW"), depart_time=0.0)
    kernel.run()
    assert len(arrivals) == 1
    assert arrivals[0][0] == pytest.approx(2.0, abs=1e-5)


def test_unknown_destination_rejected():
    kernel, network, __ = _network(n=2)
    with pytest.raises(NetworkError):
        network.transmit(_msg(dst=5), depart_time=0.0)


def test_depart_in_the_past_rejected():
    kernel, network, __ = _network()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(NetworkError):
        network.transmit(_msg(), depart_time=0.5)


def test_network_requires_two_processes():
    with pytest.raises(NetworkError):
        Network(Kernel(), 1, NetworkConfig())


def test_unregistered_receiver_is_an_error():
    kernel = Kernel()
    network = Network(kernel, 2, NetworkConfig(bandwidth=1e9, propagation=0.0))
    network.transmit(_msg(dst=1), depart_time=0.0)
    with pytest.raises(NetworkError):
        kernel.run()


def test_propagation_matrix_overrides_uniform_delay():
    kernel = Kernel()
    matrix = (
        (0.0, 0.1, 0.5),
        (0.1, 0.0, 0.5),
        (0.5, 0.5, 0.0),
    )
    config = NetworkConfig(
        bandwidth=1e12, propagation=9.9, propagation_matrix=matrix
    )
    network = Network(kernel, 3, config)
    arrivals = []
    for pid in range(3):
        network.register(pid, lambda m, k=kernel: arrivals.append((k.now, m.dst)))
    network.transmit(_msg(src=0, dst=1, size=0), depart_time=0.0)
    network.transmit(_msg(src=0, dst=2, size=0), depart_time=0.0)
    kernel.run()
    by_dst = {dst: t for t, dst in arrivals}
    assert by_dst[1] == pytest.approx(0.1)
    assert by_dst[2] == pytest.approx(0.5)


def test_uniform_delay_used_without_matrix():
    config = NetworkConfig(propagation=0.25)
    assert config.delay(0, 1) == 0.25
    assert config.delay(2, 0) == 0.25


def test_crashed_sender_cannot_put_new_frames_on_the_wire():
    """Fail-stop guard: transmit attempts after mark_crashed are stifled
    (in-flight frames transmitted *before* the crash still arrive)."""
    kernel, network, arrivals = _network(bandwidth=1000.0, propagation=0.1)
    network.transmit(_msg(src=0, dst=1, size=100), depart_time=0.0)  # pre-crash
    network.faults.mark_crashed(0)
    network.transmit(_msg(src=0, dst=1, size=100), depart_time=0.0)  # post-crash
    kernel.run()
    assert len(arrivals) == 1
    assert network.stats.sends_after_crash == 1
    assert network.stats.messages_sent == 1
