"""Unit tests for the wire message model."""

import pytest

from repro.errors import NetworkError
from repro.net.message import NetMessage


def _msg(**overrides):
    fields = dict(
        kind="K", module="m", src=0, dst=1, payload=None,
        payload_size=100, header_size=20,
    )
    fields.update(overrides)
    return NetMessage(**fields)


def test_wire_size_is_payload_plus_headers():
    assert _msg().wire_size == 120


def test_zero_sizes_allowed():
    assert _msg(payload_size=0, header_size=0).wire_size == 0


def test_negative_payload_size_rejected():
    with pytest.raises(NetworkError):
        _msg(payload_size=-1)


def test_negative_header_size_rejected():
    with pytest.raises(NetworkError):
        _msg(header_size=-1)


def test_self_addressed_message_rejected():
    with pytest.raises(NetworkError):
        _msg(src=2, dst=2)


def test_uids_are_unique():
    assert _msg().uid != _msg().uid


def test_str_mentions_kind_and_route():
    text = str(_msg())
    assert "K" in text and "0->1" in text
