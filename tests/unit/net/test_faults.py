"""Unit tests for the fault injector."""

from repro.net.faults import FaultInjector, FilterDecision, Verdict, deliver_all
from repro.net.message import NetMessage


def _msg(kind="K", src=0, dst=1):
    return NetMessage(
        kind=kind, module="m", src=src, dst=dst, payload=None,
        payload_size=1, header_size=0,
    )


def test_default_is_deliver_with_no_delay():
    injector = FaultInjector()
    decision = injector.judge(_msg())
    assert decision.verdict is Verdict.DELIVER
    assert decision.extra_delay == 0.0


def test_deliver_all_filter():
    assert deliver_all(_msg()).verdict is Verdict.DELIVER


def test_drop_matching():
    injector = FaultInjector()
    injector.drop_matching(lambda m: m.kind == "PROPOSAL")
    assert injector.judge(_msg(kind="PROPOSAL")).verdict is Verdict.DROP
    assert injector.judge(_msg(kind="ACK")).verdict is Verdict.DELIVER


def test_delay_matching_accumulates():
    injector = FaultInjector()
    injector.delay_matching(lambda m: m.dst == 1, 0.1)
    injector.delay_matching(lambda m: m.kind == "K", 0.2)
    decision = injector.judge(_msg())
    assert decision.verdict is Verdict.DELIVER
    assert decision.extra_delay == 0.30000000000000004 or abs(decision.extra_delay - 0.3) < 1e-12


def test_first_drop_wins_over_later_delays():
    injector = FaultInjector()
    injector.drop_matching(lambda m: True)
    injector.delay_matching(lambda m: True, 5.0)
    assert injector.judge(_msg()).verdict is Verdict.DROP


def test_crashed_destination_drops_messages():
    injector = FaultInjector()
    injector.mark_crashed(1)
    assert injector.judge(_msg(dst=1)).verdict is Verdict.DROP
    assert injector.judge(_msg(dst=0, src=1)).verdict is Verdict.DELIVER
    assert injector.is_crashed(1)
    assert injector.crashed == frozenset({1})


def test_filter_decision_constructors():
    assert FilterDecision.drop().verdict is Verdict.DROP
    assert FilterDecision.deliver(0.5).extra_delay == 0.5
