"""Versioned wire codec: round-trips and rejection of bad input."""

import json

import pytest

from repro.abcast.messages import AckWithDiffusion, CombinedProposal
from repro.broadcast.reliable import RbMessage
from repro.consensus.messages import Ack, DecisionTag, DecisionValue, Estimate, Proposal
from repro.errors import NetworkError
from repro.net.message import NetMessage, decode_message, encode_message
from repro.net.wire import (
    WIRE_FORMAT_VERSION,
    check_version,
    decode_value,
    encode_value,
    wire_payload,
)
from repro.types import AppMessage, Batch, MessageId


def roundtrip(value):
    encoded = encode_value(value)
    json.dumps(encoded)  # must be JSON-representable
    return decode_value(encoded)


def batch(instance=0, *messages):
    return Batch(instance=instance, messages=tuple(messages))


class TestValueRoundtrip:
    def test_scalars(self):
        for value in (None, True, 0, -7, 3.25, "text", ""):
            assert roundtrip(value) == value

    def test_bytes(self):
        assert roundtrip(b"\x00\xffpayload") == b"\x00\xffpayload"

    def test_containers(self):
        value = {"a": (1, 2), "b": [frozenset({3, 4}), {"nested": "dict"}]}
        result = roundtrip(value)
        assert result == value
        assert isinstance(result["a"], tuple)
        assert isinstance(result["b"][0], frozenset)

    def test_non_string_dict_keys(self):
        value = {MessageId(1, 2): 3.5, 7: "seven"}
        assert roundtrip(value) == value

    def test_app_message_batch(self):
        value = batch(
            4,
            AppMessage(MessageId(0, 1), size=100, abcast_time=0.25),
            AppMessage(MessageId(2, 0), size=0, abcast_time=1.5),
        )
        assert roundtrip(value) == value

    def test_nested_protocol_payloads(self):
        proposal = CombinedProposal(
            proposal=Proposal(
                instance=3,
                round=1,
                value=batch(3, AppMessage(MessageId(1, 4), 10, 0.0)),
            ),
            decided=DecisionTag(instance=2, round=1),
        )
        assert roundtrip(proposal) == proposal

    def test_ack_with_diffusion(self):
        value = AckWithDiffusion(
            ack=Ack(instance=5, round=2),
            messages=(AppMessage(MessageId(0, 0), 8, 0.125),),
        )
        assert roundtrip(value) == value

    def test_rb_wrapped_decision(self):
        message = RbMessage(
            origin=1, seq=9, inner=DecisionTag(instance=5, round=2), inner_size=12
        )
        assert roundtrip(message) == message

    def test_unregistered_dataclass_rejected(self):
        import dataclasses

        @dataclasses.dataclass(frozen=True)
        class NotRegistered:
            x: int

        with pytest.raises(NetworkError):
            encode_value(NotRegistered(1))

    def test_unknown_tag_rejected(self):
        with pytest.raises(NetworkError):
            decode_value({"$t": "NoSuchTag", "f": {}})

    def test_wire_payload_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            wire_payload(type("Plain", (), {}))


class TestVersion:
    def test_current_version_accepted(self):
        check_version(WIRE_FORMAT_VERSION)

    def test_other_versions_rejected(self):
        for bad in (0, WIRE_FORMAT_VERSION + 1, None, "1"):
            with pytest.raises(NetworkError):
                check_version(bad)


class TestMessageRoundtrip:
    def message(self, payload=None):
        if payload is None:
            payload = Estimate(instance=1, round=2, value=batch(1), ts=0)
        return NetMessage(
            kind="estimate",
            module="consensus",
            src=0,
            dst=2,
            payload=payload,
            payload_size=64,
            header_size=12,
        )

    def test_roundtrip(self):
        message = self.message()
        decoded = decode_message(encode_message(message))
        assert decoded.kind == message.kind
        assert decoded.module == message.module
        assert decoded.src == message.src
        assert decoded.dst == message.dst
        assert decoded.payload == message.payload
        assert decoded.payload_size == message.payload_size
        assert decoded.header_size == message.header_size

    def test_roundtrip_decision_value(self):
        message = self.message(DecisionValue(instance=7, value=batch(7)))
        assert decode_message(encode_message(message)).payload == message.payload

    def test_malformed_json_rejected(self):
        with pytest.raises(NetworkError):
            decode_message(b"{not json")

    def test_non_object_rejected(self):
        with pytest.raises(NetworkError):
            decode_message(b"[1, 2, 3]")

    def test_wrong_version_rejected(self):
        doc = json.loads(encode_message(self.message()).decode("utf-8"))
        doc["v"] = WIRE_FORMAT_VERSION + 1
        with pytest.raises(NetworkError):
            decode_message(json.dumps(doc).encode("utf-8"))

    def test_missing_field_rejected(self):
        doc = json.loads(encode_message(self.message()).decode("utf-8"))
        del doc["module"]
        with pytest.raises(NetworkError):
            decode_message(json.dumps(doc).encode("utf-8"))

    def test_no_pickle_on_the_wire(self):
        encoded = encode_message(self.message())
        json.loads(encoded.decode("utf-8"))  # plain JSON text, not pickle
