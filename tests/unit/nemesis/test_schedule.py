"""Unit tests for faultload schedules: scenarios, generation, JSON."""

import random

import pytest

from repro.config import LinkFaultMode, RunConfig
from repro.errors import ConfigurationError
from repro.nemesis.schedule import (
    SCENARIOS,
    dump_faultload,
    faultload_from_dict,
    faultload_to_dict,
    generate_faultload,
    load_faultload,
    named_scenario,
    resolve_faultload,
)


@pytest.mark.parametrize("name", SCENARIOS)
def test_every_named_scenario_builds_a_valid_run_config(name):
    faultload = named_scenario(name, n=3)
    RunConfig(n=3, faultload=faultload)  # __post_init__ validates


def test_unknown_scenario_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown faultload scenario"):
        named_scenario("kitchen-sink")


def test_generation_is_deterministic_in_the_rng_state():
    a = generate_faultload(random.Random(42), n=3)
    b = generate_faultload(random.Random(42), n=3)
    assert a == b


def test_generated_schedules_respect_the_system_model():
    for seed in range(60):
        faultload = generate_faultload(random.Random(seed), n=5)
        # Validates bounds, group membership, minority crashes...
        RunConfig(n=5, faultload=faultload)
        # ...and the swarm promise: only quasi-reliable (HOLD) link
        # faults, so liveness stays checkable.
        assert faultload.liveness_safe
        assert len(faultload.crashed_processes()) <= 2
        for partition in faultload.partitions:
            assert partition.mode is LinkFaultMode.HOLD


def test_benign_only_schedules_contain_only_delay_spikes():
    for seed in range(20):
        faultload = generate_faultload(random.Random(seed), n=3, benign_only=True)
        assert not faultload.crashes
        assert not faultload.partitions
        assert not faultload.loss_bursts
        assert not faultload.wrong_suspicions


def test_faultload_json_round_trip_is_lossless():
    faultload = named_scenario("churn", n=3)
    assert faultload_from_dict(faultload_to_dict(faultload)) == faultload
    generated = generate_faultload(random.Random(7), n=3)
    assert faultload_from_dict(faultload_to_dict(generated)) == generated


def test_faultload_file_round_trip(tmp_path):
    faultload = named_scenario("rolling-partition", n=3)
    path = tmp_path / "fl.json"
    dump_faultload(faultload, path)
    assert load_faultload(path) == faultload


def test_resolve_faultload_accepts_scenario_name_or_json_path(tmp_path):
    assert resolve_faultload("coordinator-crash") == named_scenario(
        "coordinator-crash"
    )
    path = tmp_path / "fl.json"
    dump_faultload(named_scenario("lossy-link"), path)
    assert resolve_faultload(str(path)) == named_scenario("lossy-link")
    with pytest.raises(ConfigurationError, match="neither a named scenario"):
        resolve_faultload("no-such-thing")
