"""Unit tests for the online invariant monitor."""

import pytest

from repro.config import CrashEvent, FaultloadConfig, RunConfig
from repro.errors import LivenessViolation, OrderingViolation
from repro.nemesis.invariants import InvariantMonitor
from repro.net.faults import FaultInjector
from repro.sim.kernel import Kernel
from repro.types import AppMessage, MessageId


def _message(sender, seq):
    return AppMessage(
        msg_id=MessageId(sender=sender, seq=seq), size=10, abcast_time=0.0
    )


def _abcast(monitor, *messages):
    for message in messages:
        monitor.on_abcast(message)


class _StubSimulation:
    """Just enough Simulation surface for InvariantMonitor.attach()."""

    def __init__(self, config, kernel=None):
        self.config = config
        self.kernel = kernel or Kernel(seed=1)
        self.faults = FaultInjector()
        self.accept_listeners = []
        self.adeliver_listeners = []

    def add_accept_listener(self, listener):
        self.accept_listeners.append(listener)

    def add_adeliver_listener(self, listener):
        self.adeliver_listeners.append(listener)


# -- online safety checks ---------------------------------------------------


def test_identical_prefixes_pass():
    monitor = InvariantMonitor(3)
    m1, m2 = _message(0, 1), _message(1, 1)
    _abcast(monitor, m1, m2)
    for pid in range(3):
        monitor.on_adeliver(pid, m1, 0.1)
    monitor.on_adeliver(0, m2, 0.2)  # p0 ahead is fine (prefix form)
    assert monitor.passed
    assert monitor.delivery_count == 4
    assert monitor.finalize(expect_all_delivered=False) == []


def test_duplicate_delivery_is_a_uniform_integrity_violation():
    monitor = InvariantMonitor(2)
    m1 = _message(0, 1)
    _abcast(monitor, m1)
    monitor.on_adeliver(0, m1, 0.1)
    monitor.on_adeliver(0, m1, 0.2)
    assert [v.invariant for v in monitor.violations] == ["uniform-integrity"]
    assert "twice" in monitor.violations[0].description


def test_never_abcast_delivery_is_a_uniform_integrity_violation():
    monitor = InvariantMonitor(2)
    monitor.on_adeliver(0, _message(0, 99), 0.1)
    assert [v.invariant for v in monitor.violations] == ["uniform-integrity"]
    assert "never-abcast" in monitor.violations[0].description


def test_order_divergence_is_flagged_at_the_forking_delivery():
    monitor = InvariantMonitor(2)
    m1, m2 = _message(0, 1), _message(1, 1)
    _abcast(monitor, m1, m2)
    monitor.on_adeliver(0, m1, 0.1)
    monitor.on_adeliver(0, m2, 0.2)
    monitor.on_adeliver(1, m2, 0.3)  # diverges at position 0
    violation = monitor.violations[0]
    assert violation.invariant == "total-order"
    assert violation.time == 0.3
    assert "position 0" in violation.description
    # The trace slice covers the deliveries leading up to the fork.
    assert any("p0 adeliver" in line for line in violation.trace_slice)


def test_raise_on_violation_raises_at_the_offending_delivery():
    monitor = InvariantMonitor(2, raise_on_violation=True)
    m1 = _message(0, 1)
    _abcast(monitor, m1)
    monitor.on_adeliver(0, m1, 0.1)
    with pytest.raises(OrderingViolation, match="twice"):
        monitor.on_adeliver(0, m1, 0.2)


# -- end-of-run checks ------------------------------------------------------


def test_finalize_flags_agreement_and_validity_gaps():
    monitor = InvariantMonitor(3)
    m1, m2 = _message(0, 1), _message(1, 1)
    _abcast(monitor, m1, m2)
    monitor.on_adeliver(0, m1, 0.1)  # m1 delivered only at p0; m2 nowhere
    violations = monitor.finalize()
    kinds = {v.invariant for v in violations}
    assert kinds == {"uniform-agreement", "validity"}
    # p1 and p2 are each missing m1 (agreement); everyone misses m2
    # (validity); p0's validity gap is m2 only.
    agreement = [v for v in violations if v.invariant == "uniform-agreement"]
    assert len(agreement) == 2


def test_finalize_is_idempotent():
    monitor = InvariantMonitor(2)
    m1 = _message(0, 1)
    _abcast(monitor, m1)
    monitor.on_adeliver(0, m1, 0.1)
    first = list(monitor.finalize())
    assert monitor.finalize() == first


# -- liveness watchdog ------------------------------------------------------


def _config(**kwargs):
    return RunConfig(n=3, warmup=0.1, duration=0.5, **kwargs)


def test_watchdog_flags_a_stalled_run():
    simulation = _StubSimulation(_config())
    monitor = InvariantMonitor(3, liveness_bound=0.2).attach(simulation)
    m1 = _message(0, 1)
    _abcast(monitor, m1)  # abcast by a correct process, never delivered
    simulation.kernel.schedule_at(2.0, lambda: None)
    simulation.kernel.run(until=2.0)
    assert [v.invariant for v in monitor.violations] == ["liveness"]
    assert "outstanding" in monitor.violations[0].description


def test_watchdog_stays_quiet_while_progress_continues():
    simulation = _StubSimulation(_config())
    monitor = InvariantMonitor(3, liveness_bound=0.2).attach(simulation)
    messages = [_message(0, seq) for seq in range(1, 8)]
    _abcast(monitor, *messages)
    # Deliver one message (to everyone) every 0.15 s — always something
    # outstanding at check time, but never two silent checks in a row.
    for index, message in enumerate(messages):
        when = 0.1 + 0.15 * index
        for pid in range(3):
            simulation.kernel.schedule_at(
                when, lambda m=message, p=pid, t=when: monitor.on_adeliver(p, m, t)
            )
    simulation.kernel.run(until=1.3)
    assert monitor.passed


def test_watchdog_excuses_messages_owed_only_by_crashed_processes():
    faultload = FaultloadConfig(crashes=(CrashEvent(0.2, 2),))
    simulation = _StubSimulation(_config(faultload=faultload))
    monitor = InvariantMonitor(3, liveness_bound=0.2).attach(simulation)
    m1 = _message(0, 1)
    _abcast(monitor, m1)
    simulation.faults.mark_crashed(2)
    monitor.on_adeliver(0, m1, 0.3)
    monitor.on_adeliver(1, m1, 0.3)  # p2 is dead; nobody owes it delivery
    simulation.kernel.schedule_at(2.0, lambda: None)
    simulation.kernel.run(until=2.0)
    assert monitor.passed


def test_watchdog_disarms_for_drop_mode_faultloads():
    from repro.config import LinkFaultMode, PartitionEvent

    faultload = FaultloadConfig(
        partitions=(
            PartitionEvent(
                start=0.2, heal=0.4, groups=((0,), (1, 2)),
                mode=LinkFaultMode.DROP,
            ),
        )
    )
    simulation = _StubSimulation(_config(faultload=faultload))
    monitor = InvariantMonitor(3, liveness_bound=0.2).attach(simulation)
    _abcast(monitor, _message(0, 1))  # never delivered anywhere
    simulation.kernel.schedule_at(2.0, lambda: None)
    simulation.kernel.run(until=2.0)
    assert monitor.passed  # no watchdog: liveness not guaranteed
    assert monitor.finalize() == []  # agreement/validity skipped too
