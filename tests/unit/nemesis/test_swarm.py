"""Unit tests for the swarm runner and the shrinker."""

import pytest

from repro.config import CrashEvent, FaultloadConfig, WrongSuspicion
from repro.errors import ConfigurationError
from repro.nemesis.schedule import named_scenario
from repro.nemesis.shrink import shrink_faultload
from repro.nemesis.swarm import (
    DEFAULT_STACKS,
    NemesisCase,
    STACKS,
    case_from_dict,
    case_to_dict,
    generate_case,
    load_case,
    repro_command,
    run_case,
    save_case,
    shrink_case,
    sweep,
)

#: One wrong suspicion at a non-coordinator: exactly the trigger of the
#: seeded bug in repro.nemesis.broken, with nothing else going on.
TRIGGER = FaultloadConfig(
    wrong_suspicions=(WrongSuspicion(time=0.5, observer=1, suspect=0),)
)


# -- shrinker (pure) --------------------------------------------------------


def test_shrinker_reduces_to_the_single_relevant_event():
    culprit = CrashEvent(time=0.6, process=2)
    faultload = named_scenario("churn", n=3)
    assert culprit in faultload.events()
    assert len(faultload.events()) > 1

    runs = []

    def still_fails(candidate):
        runs.append(candidate)
        return culprit in candidate.events()

    minimal = shrink_faultload(faultload, still_fails)
    assert minimal.events() == (culprit,)
    assert runs  # the oracle was actually consulted


def test_shrinker_keeps_everything_when_nothing_can_be_dropped():
    faultload = named_scenario("rolling-partition", n=3)

    def still_fails(candidate):
        return len(candidate.events()) == len(faultload.events())

    assert shrink_faultload(faultload, still_fails) == faultload


def test_shrinker_respects_the_run_budget():
    faultload = named_scenario("churn", n=3)
    calls = []

    def still_fails(candidate):
        calls.append(candidate)
        return False

    shrink_faultload(faultload, still_fails, max_runs=2)
    assert len(calls) == 2


# -- case derivation --------------------------------------------------------


def test_generate_case_is_a_pure_function_of_stack_seed_n():
    assert generate_case("modular", 5) == generate_case("modular", 5)
    assert generate_case("modular", 5) != generate_case("modular", 6)
    # Different stacks draw from different streams: same seed, different
    # schedule (checked over several seeds to dodge coincidences).
    assert any(
        generate_case("modular", seed).faultload
        != generate_case("monolithic", seed).faultload
        for seed in range(5)
    )


def test_sequencer_cases_are_benign_only():
    for seed in range(10):
        case = generate_case("sequencer", seed)
        faultload = case.faultload
        assert not faultload.crashes
        assert not faultload.partitions
        assert not faultload.wrong_suspicions


def test_unknown_stack_is_rejected():
    with pytest.raises(ConfigurationError, match="unknown nemesis stack"):
        generate_case("bogus", 1)


def test_default_sweep_covers_the_fault_tolerant_stacks():
    assert DEFAULT_STACKS == ("modular", "monolithic", "indirect", "ringpaxos")
    assert set(DEFAULT_STACKS) <= set(STACKS)
    assert "broken" not in DEFAULT_STACKS
    # The sequencer family is good-run-only and must stay out of the
    # crash/suspicion sweep (but stays reachable via --stacks).
    assert "sequencer" not in DEFAULT_STACKS
    assert "batched-sequencer" not in DEFAULT_STACKS
    assert STACKS["batched-sequencer"].benign_only


def test_case_json_round_trip(tmp_path):
    case = generate_case("indirect", 9)
    assert case_from_dict(case_to_dict(case)) == case
    path = tmp_path / "case.json"
    save_case(case, path)
    assert load_case(path) == case
    assert str(path) in repro_command(path)


# -- execution --------------------------------------------------------------


def test_run_case_passes_on_a_correct_stack():
    case = NemesisCase(
        stack="monolithic", seed=3, n=3, fd="oracle", faultload=TRIGGER
    )
    result = run_case(case)
    assert result.passed
    assert result.deliveries > 0


def test_run_case_catches_the_seeded_bug():
    case = NemesisCase(
        stack="broken", seed=3, n=3, fd="oracle", faultload=TRIGGER
    )
    result = run_case(case)
    assert not result.passed
    assert result.violations[0].invariant in ("uniform-integrity", "total-order")


def test_run_case_is_deterministic():
    case = NemesisCase(
        stack="broken", seed=3, n=3, fd="oracle", faultload=TRIGGER
    )
    first, second = run_case(case), run_case(case)
    assert first.violations == second.violations
    assert first.deliveries == second.deliveries
    assert first.events_executed == second.events_executed


def test_shrunk_counterexample_still_fails_and_is_minimal():
    # Bury the trigger among irrelevant faults; the shrinker must dig
    # it back out.
    noisy = FaultloadConfig(
        crashes=(CrashEvent(0.8, 2),),
        wrong_suspicions=TRIGGER.wrong_suspicions,
        delay_spikes=named_scenario("churn").delay_spikes,
    )
    case = NemesisCase(stack="broken", seed=3, n=3, fd="oracle", faultload=noisy)
    assert not run_case(case).passed
    minimal = shrink_case(case)
    assert not minimal.passed
    assert len(minimal.case.faultload.events()) < len(noisy.events())
    # 1-minimality: dropping any remaining event loses the failure.
    for event in minimal.case.faultload.events():
        smaller = NemesisCase(
            stack="broken", seed=3, n=3, fd="oracle",
            faultload=minimal.case.faultload.without(event),
        )
        assert run_case(smaller).passed


def test_sweep_reports_failures_with_shrunk_counterexamples():
    report = sweep([3], stacks=("monolithic", "broken"))
    assert not report.ok
    assert report.cases_run == 2
    failing = report.failures
    assert [r.case.stack for r in failing] == ["broken"]
    assert len(report.counterexamples) == 1
    ce = report.counterexamples[0]
    assert not ce.minimal.passed
    assert ce.dropped_events >= 0
    assert "FAIL" in report.summary()
