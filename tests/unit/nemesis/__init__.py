"""Unit tests for the nemesis subsystem."""
