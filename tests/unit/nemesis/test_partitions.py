"""Unit tests for compiling link faults onto the FaultInjector."""

from repro.config import (
    DelaySpike,
    FaultloadConfig,
    LinkFaultMode,
    LossBurst,
    PartitionEvent,
)
from repro.net.faults import FaultInjector, Verdict
from repro.net.message import NetMessage
from repro.nemesis.partitions import HEAL_JITTER, install_link_faults
from repro.sim.kernel import Kernel


def _msg(src=0, dst=1):
    return NetMessage(
        kind="K", module="m", src=src, dst=dst, payload=None,
        payload_size=100, header_size=0,
    )


def _installed(faultload, kernel=None):
    kernel = kernel or Kernel(seed=3)
    injector = FaultInjector()
    install_link_faults(injector, faultload, kernel)
    return kernel, injector


def _advance(kernel, until):
    kernel.schedule_at(until, lambda: None)
    kernel.run(until=until)


def test_empty_faultload_installs_no_filters():
    __, injector = _installed(FaultloadConfig())
    assert not injector._filters


def test_hold_partition_delays_severed_messages_until_heal():
    partition = PartitionEvent(start=0.2, heal=0.6, groups=((0,), (1, 2)))
    kernel, injector = _installed(FaultloadConfig(partitions=(partition,)))

    # Before the partition: untouched.
    decision = injector.judge(_msg(0, 1))
    assert decision.verdict is Verdict.DELIVER
    assert decision.extra_delay == 0.0

    # During: held until (at least) the heal time.
    _advance(kernel, 0.3)
    decision = injector.judge(_msg(0, 1))
    assert decision.verdict is Verdict.DELIVER
    assert 0.3 <= decision.extra_delay <= 0.3 + HEAL_JITTER

    # During, but within one side: untouched.
    assert injector.judge(_msg(1, 2)).extra_delay == 0.0

    # After the heal: untouched.
    _advance(kernel, 0.7)
    assert injector.judge(_msg(0, 1)).extra_delay == 0.0


def test_drop_partition_destroys_severed_messages():
    partition = PartitionEvent(
        start=0.0, heal=1.0, groups=((0,), (1, 2)), mode=LinkFaultMode.DROP
    )
    kernel, injector = _installed(FaultloadConfig(partitions=(partition,)))
    _advance(kernel, 0.5)
    assert injector.judge(_msg(0, 1)).verdict is Verdict.DROP
    assert injector.judge(_msg(2, 1)).verdict is Verdict.DELIVER


def test_unlisted_processes_form_the_implicit_rest_group():
    # groups=((0,),) is shorthand for "isolate p0": the others keep
    # talking among themselves.
    partition = PartitionEvent(
        start=0.0, heal=1.0, groups=((0,),), mode=LinkFaultMode.DROP
    )
    kernel, injector = _installed(FaultloadConfig(partitions=(partition,)))
    _advance(kernel, 0.5)
    assert injector.judge(_msg(0, 2)).verdict is Verdict.DROP
    assert injector.judge(_msg(1, 2)).verdict is Verdict.DELIVER


def test_certain_loss_burst_charges_a_retransmission_delay():
    burst = LossBurst(
        start=0.0, end=1.0, probability=1.0, src=0, dst=1, retry_delay=0.2
    )
    kernel, injector = _installed(FaultloadConfig(loss_bursts=(burst,)))
    _advance(kernel, 0.5)
    decision = injector.judge(_msg(0, 1))
    assert decision.verdict is Verdict.DELIVER
    assert 0.1 <= decision.extra_delay <= 0.3  # retry_delay * (0.5 + U[0,1))
    # Other links unaffected.
    assert injector.judge(_msg(1, 0)).extra_delay == 0.0


def test_impossible_loss_burst_never_fires():
    burst = LossBurst(start=0.0, end=1.0, probability=0.0)
    kernel, injector = _installed(FaultloadConfig(loss_bursts=(burst,)))
    _advance(kernel, 0.5)
    for __ in range(50):
        assert injector.judge(_msg(0, 1)).extra_delay == 0.0


def test_drop_loss_burst_destroys_matched_messages():
    burst = LossBurst(
        start=0.0, end=1.0, probability=1.0, mode=LinkFaultMode.DROP
    )
    kernel, injector = _installed(FaultloadConfig(loss_bursts=(burst,)))
    _advance(kernel, 0.5)
    assert injector.judge(_msg(0, 1)).verdict is Verdict.DROP


def test_delay_spike_adds_bounded_extra_delay_only_in_window():
    spike = DelaySpike(start=0.2, end=0.4, extra_delay=0.01, jitter=0.005)
    kernel, injector = _installed(FaultloadConfig(delay_spikes=(spike,)))
    assert injector.judge(_msg()).extra_delay == 0.0
    _advance(kernel, 0.3)
    delay = injector.judge(_msg()).extra_delay
    assert 0.01 <= delay <= 0.015
    _advance(kernel, 0.5)
    assert injector.judge(_msg()).extra_delay == 0.0


def test_link_fault_draws_replay_bit_for_bit_from_the_seed():
    burst = LossBurst(start=0.0, end=1.0, probability=0.5, retry_delay=0.1)
    faultload = FaultloadConfig(loss_bursts=(burst,))

    def delays(seed):
        kernel, injector = _installed(faultload, Kernel(seed=seed))
        _advance(kernel, 0.5)
        return [injector.judge(_msg()).extra_delay for __ in range(30)]

    assert delays(11) == delays(11)
    assert delays(11) != delays(12)
