"""Unit tests for reliable broadcast (classical and majority variants)."""

import pytest

from repro.broadcast.reliable import (
    ReliableBroadcast,
    classical_message_count,
    majority_message_count,
    relay_set,
)
from repro.config import ReliableBroadcastVariant
from repro.stack.events import RbcastRequest, RdeliverIndication

from tests.harness import ModulePump


def make_pump(n, variant=ReliableBroadcastVariant.MAJORITY):
    return ModulePump(lambda ctx: ReliableBroadcast(ctx, variant), n)


def rdelivered(pump, pid):
    return [
        e.payload
        for e in pump.up_events[pid]
        if isinstance(e, RdeliverIndication)
    ]


def test_relay_set_excludes_origin_and_has_right_size():
    assert relay_set(0, 3) == (1,)
    assert relay_set(1, 3) == (0,)
    assert relay_set(0, 7) == (1, 2, 3)
    assert relay_set(2, 7) == (0, 1, 3)
    assert len(relay_set(0, 5)) == 2


def test_message_count_formulas():
    assert classical_message_count(3) == 6
    assert majority_message_count(3) == 4
    assert majority_message_count(7) == 24


def test_origin_rdelivers_its_own_broadcast_immediately():
    pump = make_pump(3)
    pump.inject(0, RbcastRequest("hello", 10))
    assert rdelivered(pump, 0) == ["hello"]


def test_everyone_rdelivers_exactly_once():
    pump = make_pump(3)
    pump.inject(0, RbcastRequest("hello", 10))
    pump.run()
    for pid in range(3):
        assert rdelivered(pump, pid) == ["hello"]


@pytest.mark.parametrize("n", [3, 4, 5, 7])
def test_majority_variant_message_count_matches_paper(n):
    pump = make_pump(n)
    pump.inject(0, RbcastRequest("x", 10))
    delivered = pump.run()
    assert delivered == majority_message_count(n)


@pytest.mark.parametrize("n", [3, 5, 7])
def test_classical_variant_message_count(n):
    pump = make_pump(n, ReliableBroadcastVariant.CLASSICAL)
    pump.inject(0, RbcastRequest("x", 10))
    delivered = pump.run()
    assert delivered == classical_message_count(n)


def test_indication_carries_origin_and_size():
    pump = make_pump(3)
    pump.inject(1, RbcastRequest("payload", 42))
    pump.run()
    indication = pump.up_events[0][0]
    assert indication.origin == 1
    assert indication.payload_size == 42


def test_multiple_broadcasts_from_same_origin_are_distinct():
    pump = make_pump(3)
    pump.inject(0, RbcastRequest("a", 1))
    pump.inject(0, RbcastRequest("b", 1))
    pump.run()
    assert rdelivered(pump, 2) == ["a", "b"]


def test_concurrent_broadcasts_from_different_origins():
    pump = make_pump(5)
    pump.inject(0, RbcastRequest("from0", 1))
    pump.inject(3, RbcastRequest("from3", 1))
    pump.run()
    for pid in range(5):
        assert sorted(rdelivered(pump, pid)) == ["from0", "from3"]


def test_origin_sends_to_relay_set_first():
    pump = make_pump(7)
    pump.inject(0, RbcastRequest("x", 1))
    first_destinations = [m.dst for m in pump.deliverable()[: len(relay_set(0, 7))]]
    assert first_destinations == list(relay_set(0, 7))


def test_origin_crash_after_relay_sends_still_delivers_everywhere():
    """The §3.1 guarantee: relay-first ordering + a correct relay."""
    n = 7
    pump = make_pump(n)
    pump.inject(0, RbcastRequest("x", 1))
    # Keep only the transmissions to the relay set (the origin crashed
    # right after them), then crash the origin.
    relays = set(relay_set(0, n))
    while any(m.dst not in relays for m in pump.deliverable()):
        for index, message in enumerate(pump.deliverable()):
            if message.dst not in relays:
                pump.drop_next(index)
                break
    pump.crash(0)
    pump.run()
    for pid in range(1, n):
        assert rdelivered(pump, pid) == ["x"], f"p{pid} missed the broadcast"


def test_relays_do_not_relay_twice():
    pump = make_pump(7)
    pump.inject(0, RbcastRequest("x", 1))
    total = pump.run()
    # Re-inject nothing; counts already checked. Now verify idempotence
    # by replaying a duplicate to a relay:
    assert total == majority_message_count(7)
    for pid in range(7):
        assert rdelivered(pump, pid) == ["x"]
