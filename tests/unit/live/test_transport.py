"""TCP transport: round-trips, per-peer FIFO, reconnect with backoff.

Plain ``asyncio.run()`` drivers (no pytest-asyncio in the toolchain);
each test owns its loop and closes every transport it opened.
"""

import asyncio
import random
import socket
import struct

from repro.live.transport import (
    FrameDecoder,
    Transport,
    encode_frame,
    next_backoff,
    parse_hello,
)
from repro.net.message import NetMessage


def message(src: int, dst: int, seq: int) -> NetMessage:
    return NetMessage(
        kind="test",
        module="abcast",
        src=src,
        dst=dst,
        payload=seq,
        payload_size=8,
        header_size=4,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def wait_for(predicate, timeout=5.0, poll=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(poll)


def make_pair(addresses, received):
    """Two transports whose inbound messages land in ``received[pid]``."""
    return [
        Transport(pid, addresses, lambda m, pid=pid: received[pid].append(m))
        for pid in (0, 1)
    ]


class TestRoundtrip:
    def test_send_and_receive_both_directions(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            try:
                a.send(message(0, 1, 1))
                b.send(message(1, 0, 2))
                await wait_for(lambda: received[1] and received[0])
            finally:
                await a.close()
                await b.close()
            assert received[1][0].payload == 1
            assert received[1][0].src == 0
            assert received[0][0].payload == 2
            assert a.stats.messages_sent == 1
            assert b.stats.messages_received == 1

        asyncio.run(run())

    def test_fifo_under_concurrent_sends(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            total = 200
            try:
                # Interleave bursts with yields so sends race the writer
                # task instead of queueing up-front in one block.
                for seq in range(total):
                    a.send(message(0, 1, seq))
                    if seq % 10 == 0:
                        await asyncio.sleep(0)
                await wait_for(lambda: len(received[1]) == total)
            finally:
                await a.close()
                await b.close()
            assert [m.payload for m in received[1]] == list(range(total))

        asyncio.run(run())


class TestReconnect:
    def test_peer_that_starts_late_gets_the_backlog(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            await a.start()
            try:
                for seq in range(5):
                    a.send(message(0, 1, seq))
                await asyncio.sleep(0.05)  # several failed dials
                assert a.pending_to(1) == 5
                b = Transport(1, addresses, received[1].append)
                await b.start()
                try:
                    await wait_for(lambda: len(received[1]) == 5)
                finally:
                    await b.close()
            finally:
                await a.close()
            assert [m.payload for m in received[1]] == list(range(5))

        asyncio.run(run())

    def test_restarted_peer_gets_queued_messages_in_order(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            b = Transport(1, addresses, received[1].append)
            await a.start()
            await b.start()
            try:
                a.send(message(0, 1, 0))
                await wait_for(lambda: received[1])
                await b.close()  # the peer dies

                for seq in range(1, 6):
                    a.send(message(0, 1, seq))
                await asyncio.sleep(0.05)  # writes fail, frames stay queued

                b2 = Transport(1, addresses, received[1].append)
                await b2.start()
                try:
                    await wait_for(lambda: len(received[1]) >= 6)
                finally:
                    await b2.close()
            finally:
                await a.close()
            # Exactly-once and in order across the outage: the resume
            # point told the sender where to restart, the ack protocol
            # kept unacked frames queued.
            assert [m.payload for m in received[1]] == list(range(6))
            assert a.stats.reconnects >= 1

        asyncio.run(run())

    def test_exactly_once_across_consecutive_reconnects(self):
        """Two receiver restarts in a row, resume points carried across.

        Each incarnation snapshots ``delivered_counts()`` (what the
        worker's WAL checkpoint persists) and the next one starts from
        it — so across two consecutive outages with traffic queued
        during each, the stream stays exactly-once and in order.
        """

        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            await a.start()
            seq = 0
            resume = {}
            try:
                for outage in range(2):
                    b = Transport(
                        1, addresses, received[1].append, resume_points=resume
                    )
                    await b.start()
                    for __ in range(3):
                        a.send(message(0, 1, seq))
                        seq += 1
                    await wait_for(lambda: len(received[1]) == seq)
                    resume = b.delivered_counts()
                    await b.close()  # outage: frames sent now stay queued
                    for __ in range(2):
                        a.send(message(0, 1, seq))
                        seq += 1
                    await asyncio.sleep(0.03)
                b = Transport(1, addresses, received[1].append, resume_points=resume)
                await b.start()
                try:
                    await wait_for(lambda: len(received[1]) == seq)
                    await asyncio.sleep(0.05)  # no late duplicates either
                finally:
                    await b.close()
            finally:
                await a.close()
            assert [m.payload for m in received[1]] == list(range(seq))

        asyncio.run(run())

    def test_mid_frame_outage_does_not_lose_or_duplicate(self):
        """The connection dies with a torn length-prefix on the wire.

        A raw accept loop plays the receiver: it completes the HELLO /
        resume-point handshake, reads half a frame, and disconnects
        without ever acking. A real transport then takes over the same
        port; the sender must retransmit from the resume point — the
        torn frame arrives exactly once, nothing is skipped.
        """

        async def run():
            port = free_port()
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", port)}
            received = {0: [], 1: []}
            half_read = asyncio.Event()

            async def flaky_receiver(reader, writer):
                decoder = FrameDecoder()
                data = await reader.read(64 * 1024)
                frames = decoder.feed(data)
                assert frames, "expected the HELLO first"
                parse_hello(frames[0])
                writer.write(struct.pack(">Q", 0))  # resume point: nothing yet
                await writer.drain()
                # Read a few bytes — at most half the first data frame,
                # cutting it inside the 4-byte length prefix or body —
                # then drop the connection without acking.
                while decoder.pending_bytes < 2:
                    chunk = await reader.read(2)
                    if not chunk:
                        break
                    decoder.feed(chunk)
                writer.close()
                half_read.set()

            flaky = await asyncio.start_server(flaky_receiver, "127.0.0.1", port)
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            await a.start()
            try:
                for seq in range(4):
                    a.send(message(0, 1, seq))
                await asyncio.wait_for(half_read.wait(), 5.0)
                flaky.close()
                await flaky.wait_closed()
                b = Transport(1, addresses, received[1].append)
                await b.start()
                try:
                    await wait_for(lambda: len(received[1]) == 4)
                finally:
                    await b.close()
            finally:
                await a.close()
            assert [m.payload for m in received[1]] == [0, 1, 2, 3]

        asyncio.run(run())

    def test_restarted_sender_incarnation_is_not_resumed_at_old_count(self):
        """A fresh endpoint at an old address starts its stream at zero.

        Without the incarnation nonce the receiver would answer the new
        sender with the dead incarnation's delivered count, and the new
        stream's first messages would be silently swallowed (the
        restarted worker could then never ask for state transfer).
        """

        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            b = Transport(1, addresses, received[1].append)
            await b.start()
            a = Transport(0, addresses, received[0].append)
            await a.start()
            try:
                for seq in range(3):
                    a.send(message(0, 1, seq))
                await wait_for(lambda: len(received[1]) == 3)
                await a.close()  # the sender process dies...
                a2 = Transport(  # ...and restarts: new incarnation
                    0, addresses, received[0].append,
                    initial_backoff=0.01, max_backoff=0.05,
                )
                assert a2.nonce != a.nonce
                await a2.start()
                try:
                    a2.send(message(0, 1, 100))
                    await wait_for(lambda: len(received[1]) == 4)
                finally:
                    await a2.close()
            finally:
                await b.close()
            assert [m.payload for m in received[1]] == [0, 1, 2, 100]
            # The receiver's count was reset for the new incarnation.
            nonce, count = b.delivered_counts()[0]
            assert nonce == a2.nonce
            assert count == 1

        asyncio.run(run())

    def test_wal_resume_points_skip_already_delivered_frames(self):
        """A restarted receiver answers with its persisted resume point."""

        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            b = Transport(1, addresses, received[1].append)
            await b.start()
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            await a.start()
            try:
                for seq in range(3):
                    a.send(message(0, 1, seq))
                await wait_for(lambda: len(received[1]) == 3)
                snapshot = b.delivered_counts()  # what the WAL would hold
                await b.close()  # the receiver process dies
                for seq in range(3, 5):
                    a.send(message(0, 1, seq))  # queued during the outage
                b2 = Transport(
                    1, addresses, received[1].append, resume_points=snapshot
                )
                await b2.start()
                try:
                    await wait_for(lambda: len(received[1]) == 5)
                    # Nothing the first incarnation already delivered is
                    # replayed into the restarted endpoint.
                    await asyncio.sleep(0.05)
                finally:
                    await b2.close()
            finally:
                await a.close()
            assert [m.payload for m in received[1]] == [0, 1, 2, 3, 4]

        asyncio.run(run())


class TestBackoff:
    def test_next_backoff_stays_within_decorrelated_jitter_bounds(self):
        rng = random.Random(42)
        initial, cap = 0.05, 1.0
        previous = initial
        for __ in range(200):
            nxt = next_backoff(rng, initial, previous, cap)
            assert initial <= nxt <= min(cap, max(initial, previous * 3.0))
            previous = nxt

    def test_backoff_is_capped(self):
        rng = random.Random(7)
        value = 0.05
        for __ in range(50):
            value = next_backoff(rng, 0.05, value, 1.0)
            assert value <= 1.0

    def test_two_seeded_streams_decorrelate(self):
        """Peers redialing after one partition must not march in step."""
        a, b = random.Random(1), random.Random(2)
        seq_a, seq_b = [], []
        prev_a = prev_b = 0.05
        for __ in range(10):
            prev_a = next_backoff(a, 0.05, prev_a, 1.0)
            prev_b = next_backoff(b, 0.05, prev_b, 1.0)
            seq_a.append(prev_a)
            seq_b.append(prev_b)
        assert seq_a != seq_b


class TestFaultHooks:
    def test_hold_and_release(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            try:
                a.hold_links({1})
                for seq in range(3):
                    a.send(message(0, 1, seq))
                await asyncio.sleep(0.05)
                assert received[1] == []  # held, not lost
                assert a.pending_to(1) == 3
                a.release_links({1})
                await wait_for(lambda: len(received[1]) == 3)
            finally:
                await a.close()
                await b.close()
            assert [m.payload for m in received[1]] == [0, 1, 2]

        asyncio.run(run())

    def test_drop_discards_and_undrop_restores(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            try:
                a.drop_links({1})
                a.send(message(0, 1, 0))
                a.undrop_links({1})
                a.send(message(0, 1, 1))
                await wait_for(lambda: received[1])
            finally:
                await a.close()
                await b.close()
            assert [m.payload for m in received[1]] == [1]
            assert a.stats.messages_dropped == 1

        asyncio.run(run())

    def test_congested_signals_at_the_unacked_cap(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(0, addresses, received[0].append, max_unacked=4)
            b = Transport(1, addresses, received[1].append)
            await a.start()
            await b.start()
            try:
                assert not a.congested
                a.hold_links({1})  # a slow consumer, in effect
                for seq in range(4):
                    a.send(message(0, 1, seq))
                assert a.congested  # at the cap: stop offering load
                a.release_links({1})
                await wait_for(lambda: len(received[1]) == 4)
                await wait_for(lambda: not a.congested)
            finally:
                await a.close()
                await b.close()

        asyncio.run(run())
