"""TCP transport: round-trips, per-peer FIFO, reconnect with backoff.

Plain ``asyncio.run()`` drivers (no pytest-asyncio in the toolchain);
each test owns its loop and closes every transport it opened.
"""

import asyncio
import socket

from repro.live.transport import Transport
from repro.net.message import NetMessage


def message(src: int, dst: int, seq: int) -> NetMessage:
    return NetMessage(
        kind="test",
        module="abcast",
        src=src,
        dst=dst,
        payload=seq,
        payload_size=8,
        header_size=4,
    )


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def wait_for(predicate, timeout=5.0, poll=0.005):
    deadline = asyncio.get_running_loop().time() + timeout
    while not predicate():
        assert asyncio.get_running_loop().time() < deadline, "condition never held"
        await asyncio.sleep(poll)


def make_pair(addresses, received):
    """Two transports whose inbound messages land in ``received[pid]``."""
    return [
        Transport(pid, addresses, lambda m, pid=pid: received[pid].append(m))
        for pid in (0, 1)
    ]


class TestRoundtrip:
    def test_send_and_receive_both_directions(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            try:
                a.send(message(0, 1, 1))
                b.send(message(1, 0, 2))
                await wait_for(lambda: received[1] and received[0])
            finally:
                await a.close()
                await b.close()
            assert received[1][0].payload == 1
            assert received[1][0].src == 0
            assert received[0][0].payload == 2
            assert a.stats.messages_sent == 1
            assert b.stats.messages_received == 1

        asyncio.run(run())

    def test_fifo_under_concurrent_sends(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a, b = make_pair(addresses, received)
            await a.start()
            await b.start()
            total = 200
            try:
                # Interleave bursts with yields so sends race the writer
                # task instead of queueing up-front in one block.
                for seq in range(total):
                    a.send(message(0, 1, seq))
                    if seq % 10 == 0:
                        await asyncio.sleep(0)
                await wait_for(lambda: len(received[1]) == total)
            finally:
                await a.close()
                await b.close()
            assert [m.payload for m in received[1]] == list(range(total))

        asyncio.run(run())


class TestReconnect:
    def test_peer_that_starts_late_gets_the_backlog(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            await a.start()
            try:
                for seq in range(5):
                    a.send(message(0, 1, seq))
                await asyncio.sleep(0.05)  # several failed dials
                assert a.pending_to(1) == 5
                b = Transport(1, addresses, received[1].append)
                await b.start()
                try:
                    await wait_for(lambda: len(received[1]) == 5)
                finally:
                    await b.close()
            finally:
                await a.close()
            assert [m.payload for m in received[1]] == list(range(5))

        asyncio.run(run())

    def test_restarted_peer_gets_queued_messages_in_order(self):
        async def run():
            addresses = {0: ("127.0.0.1", free_port()), 1: ("127.0.0.1", free_port())}
            received = {0: [], 1: []}
            a = Transport(
                0, addresses, received[0].append, initial_backoff=0.01, max_backoff=0.05
            )
            b = Transport(1, addresses, received[1].append)
            await a.start()
            await b.start()
            try:
                a.send(message(0, 1, 0))
                await wait_for(lambda: received[1])
                await b.close()  # the peer dies

                for seq in range(1, 6):
                    a.send(message(0, 1, seq))
                await asyncio.sleep(0.05)  # writes fail, frames stay queued

                b2 = Transport(1, addresses, received[1].append)
                await b2.start()
                try:
                    await wait_for(lambda: len(received[1]) >= 6)
                finally:
                    await b2.close()
            finally:
                await a.close()
            # Exactly-once and in order across the outage: the resume
            # point told the sender where to restart, the ack protocol
            # kept unacked frames queued.
            assert [m.payload for m in received[1]] == list(range(6))
            assert a.stats.reconnects >= 1

        asyncio.run(run())
