"""CLI rejection of malformed --faultload / --replay documents.

Every malformed input must exit with status 2 and an ``error:`` line
that names the offending field — not a traceback, and never a partial
deployment.
"""

import json

import pytest

from repro.cli import main


def run_cli(capsys, *argv):
    code = main(list(argv))
    return code, capsys.readouterr()


def write(tmp_path, name, document):
    path = tmp_path / name
    path.write_text(
        document if isinstance(document, str) else json.dumps(document)
    )
    return str(path)


class TestMalformedFaultload:
    def test_invalid_json_names_the_file(self, tmp_path, capsys):
        path = write(tmp_path, "f.json", "{not json")
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "error:" in captured.err
        assert "f.json" in captured.err

    def test_non_object_top_level(self, tmp_path, capsys):
        path = write(tmp_path, "f.json", [1, 2, 3])
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "error:" in captured.err

    def test_unknown_top_level_key_is_named(self, tmp_path, capsys):
        path = write(tmp_path, "f.json", {"crashs": []})
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "crashs" in captured.err

    def test_missing_crash_time_names_the_field(self, tmp_path, capsys):
        path = write(tmp_path, "f.json", {"crashes": [{"process": 0}]})
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "crashes[0]" in captured.err and "time" in captured.err

    def test_boolean_is_not_a_number(self, tmp_path, capsys):
        path = write(
            tmp_path, "f.json", {"crashes": [{"time": True, "process": 0}]}
        )
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "crashes[0].time" in captured.err

    def test_partition_groups_must_be_lists_of_ints(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "f.json",
            {"partitions": [{"start": 0.1, "heal": 0.2, "groups": ["a"]}]},
        )
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "partitions[0].groups" in captured.err

    def test_bad_link_mode_names_valid_modes(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "f.json",
            {
                "partitions": [
                    {"start": 0.1, "heal": 0.2, "groups": [[0]], "mode": "zap"}
                ]
            },
        )
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "mode" in captured.err
        assert "hold" in captured.err and "drop" in captured.err

    def test_entries_must_be_objects(self, tmp_path, capsys):
        path = write(tmp_path, "f.json", {"delay_spikes": [42]})
        code, captured = run_cli(capsys, "nemesis", "--faultload", path)
        assert code == 2
        assert "delay_spikes[0]" in captured.err

    def test_live_without_schedule_is_a_usage_error(self, capsys):
        code, captured = run_cli(capsys, "nemesis", "--live")
        assert code == 2
        assert "--faultload" in captured.err


class TestMalformedReplayCase:
    def test_invalid_json_case(self, tmp_path, capsys):
        path = write(tmp_path, "case.json", "oops{")
        code, captured = run_cli(capsys, "nemesis", "--replay", path)
        assert code == 2
        assert "case.json" in captured.err

    def test_missing_required_key_is_named(self, tmp_path, capsys):
        path = write(tmp_path, "case.json", {"stack": "modular", "seed": 1})
        code, captured = run_cli(capsys, "nemesis", "--replay", path)
        assert code == 2
        assert "n" in captured.err

    def test_wrong_type_for_seed(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "case.json",
            {"stack": "modular", "seed": "one", "n": 3, "faultload": {}},
        )
        code, captured = run_cli(capsys, "nemesis", "--replay", path)
        assert code == 2
        assert "seed" in captured.err

    def test_unknown_fd_is_rejected(self, tmp_path, capsys):
        path = write(
            tmp_path,
            "case.json",
            {
                "stack": "modular",
                "seed": 1,
                "n": 3,
                "faultload": {},
                "fd": "psychic",
            },
        )
        code, captured = run_cli(capsys, "nemesis", "--replay", path)
        assert code == 2
        assert "fd" in captured.err
