"""Worker-death triage: fault-injected kills vs unexpected crashes."""

import io
import signal

from repro.live.deploy import _worker_failure
from repro.live.worker import CRASH_EXIT_CODE


class FakeWorker:
    """Just enough of subprocess.Popen for the failure triage."""

    def __init__(self, code, stderr=b""):
        self._code = code
        self.stderr = io.BytesIO(stderr) if stderr is not None else None

    def poll(self):
        return self._code


class TestWorkerFailure:
    def test_running_workers_are_fine(self):
        assert _worker_failure([FakeWorker(None), FakeWorker(None)], set()) is None

    def test_clean_exit_is_fine(self):
        assert _worker_failure([FakeWorker(0)], set()) is None

    def test_scheduled_sigkill_is_tolerated(self):
        workers = [FakeWorker(None), FakeWorker(-signal.SIGKILL)]
        assert _worker_failure(workers, {1}) is None

    def test_unscheduled_sigkill_fails_fast(self):
        workers = [FakeWorker(None), FakeWorker(-signal.SIGKILL)]
        failure = _worker_failure(workers, set())
        assert failure is not None
        assert "worker 1" in failure

    def test_crash_exit_code_fails_fast_with_stderr_tail(self):
        workers = [FakeWorker(CRASH_EXIT_CODE, stderr=b"boom\ntrace line\n")]
        failure = _worker_failure(workers, set())
        assert failure is not None
        assert str(CRASH_EXIT_CODE) in failure
        assert "trace line" in failure

    def test_expected_dead_with_wrong_code_still_fails(self):
        """A scheduled victim that exits on its own (not our SIGKILL) is
        a real bug, not fault injection."""
        workers = [FakeWorker(1)]
        failure = _worker_failure(workers, {0})
        assert failure is not None
        assert "scheduled-kill worker 0" in failure
