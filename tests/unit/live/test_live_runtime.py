"""LiveRuntime: routing, timers, crash semantics, contract conformance."""

import asyncio

import pytest

from repro.errors import ProtocolError
from repro.live.runtime import LiveRuntime
from repro.net.message import NetMessage
from repro.stack.actions import CancelTimer, EmitUp, Send, SendToAll, StartTimer
from repro.stack.events import AdeliverIndication, Event
from repro.stack.interface import RuntimeProtocol
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage, MessageId


class FakeTransport:
    """Captures sends instead of opening sockets."""

    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


class Recorder(Microprotocol):
    """Programmable module: replays canned actions, logs stimuli."""

    name = "recorder"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.log = []
        self.on_timer_actions = []

    def handle_event(self, event):
        self.log.append(("event", type(event).__name__))
        return []

    def handle_message(self, message):
        self.log.append(("message", message.kind))
        return []

    def handle_timer(self, name, payload):
        self.log.append(("timer", name, payload))
        return list(self.on_timer_actions)


def make_runtime(n=3, crashes=None):
    ctx = ModuleContext(pid=0, n=n, suspects=lambda: frozenset())
    module = Recorder(ctx)
    transport = FakeTransport()
    runtime = LiveRuntime(
        0,
        n,
        [module],
        transport,
        on_crash=((lambda: crashes.append(1)) if crashes is not None else None),
    )
    return runtime, module, transport


class TestConformance:
    def test_live_runtime_satisfies_the_contract(self):
        runtime, __, __t = make_runtime()
        assert isinstance(runtime, RuntimeProtocol)

    def test_process_runtime_satisfies_the_contract(self):
        from repro.config import RunConfig
        from repro.experiments.runner import Simulation

        sim = Simulation(RunConfig(n=3, duration=0.1))
        assert isinstance(sim.runtimes[0], RuntimeProtocol)


class TestRouting:
    def message(self, module="recorder", kind="ping"):
        return NetMessage(
            kind=kind, module=module, src=1, dst=0, payload=None,
            payload_size=0, header_size=4,
        )

    def test_network_message_reaches_module(self):
        runtime, module, __ = make_runtime()
        runtime.on_network_message(self.message())
        assert module.log == [("message", "ping")]

    def test_unknown_module_rejected(self):
        runtime, __, __t = make_runtime()
        with pytest.raises(ProtocolError):
            runtime.on_network_message(self.message(module="nonexistent"))

    def test_send_uses_cactus_header_stacking(self):
        runtime, module, transport = make_runtime()
        runtime._execute_actions(module, [Send(dst=2, kind="x", payload=1, payload_size=8)])
        [sent] = transport.sent
        net = runtime.net_config
        assert sent.header_size == net.base_header + net.per_module_header
        assert sent.dst == 2 and sent.src == 0

    def test_send_to_all_targets_every_other_process(self):
        runtime, module, transport = make_runtime(n=4)
        runtime._execute_actions(module, [SendToAll(kind="x", payload=1, payload_size=8)])
        assert sorted(m.dst for m in transport.sent) == [1, 2, 3]

    def test_adeliver_reaches_listener(self):
        runtime, module, __ = make_runtime()
        seen = []
        runtime.set_adeliver_listener(lambda pid, m, t: seen.append((pid, m)))
        message = AppMessage(MessageId(1, 0), 8, 0.0)
        runtime._execute_actions(module, [EmitUp(AdeliverIndication(message))])
        assert seen == [(0, message)]


class TestTimers:
    def test_timer_fires_on_the_loop(self):
        async def run():
            runtime, module, __ = make_runtime()
            runtime._execute_actions(
                module, [StartTimer(name="tick", delay=0.01, payload="p")]
            )
            await asyncio.sleep(0.05)
            assert ("timer", "tick", "p") in module.log

        asyncio.run(run())

    def test_cancel_prevents_firing(self):
        async def run():
            runtime, module, __ = make_runtime()
            runtime._execute_actions(
                module, [StartTimer(name="tick", delay=0.01, payload=None)]
            )
            runtime._execute_actions(module, [CancelTimer(name="tick")])
            await asyncio.sleep(0.05)
            assert module.log == []

        asyncio.run(run())

    def test_rearm_supersedes_earlier_timer(self):
        async def run():
            runtime, module, __ = make_runtime()
            runtime._execute_actions(
                module, [StartTimer(name="tick", delay=0.01, payload="old")]
            )
            runtime._execute_actions(
                module, [StartTimer(name="tick", delay=0.02, payload="new")]
            )
            await asyncio.sleep(0.06)
            assert module.log == [("timer", "tick", "new")]

        asyncio.run(run())

    def test_fd_schedule_suppressed_after_crash(self):
        async def run():
            crashes = []
            runtime, __, __t = make_runtime(crashes=crashes)
            fired = []
            runtime.fd_schedule(0.01, lambda: fired.append(1))
            runtime.crash()
            await asyncio.sleep(0.05)
            assert fired == []
            assert len(crashes) == 1

        asyncio.run(run())


class TestCrash:
    def test_crash_invokes_observer_and_stops_routing(self):
        crashes = []
        runtime, module, transport = make_runtime(crashes=crashes)
        runtime.crash()
        assert len(crashes) == 1
        assert not runtime.alive
        runtime.on_network_message(
            NetMessage(
                kind="late", module="recorder", src=1, dst=0, payload=None,
                payload_size=0, header_size=4,
            )
        )
        assert module.log == []
        runtime.inject(Event())
        assert module.log == []

    def test_crash_cancels_pending_timers(self):
        async def run():
            runtime, module, __ = make_runtime(crashes=[])
            runtime._execute_actions(
                module, [StartTimer(name="tick", delay=0.01, payload=None)]
            )
            runtime.crash()
            await asyncio.sleep(0.05)
            assert module.log == []

        asyncio.run(run())


class TestEpoch:
    def test_now_is_relative_to_epoch(self):
        import time

        runtime, __, __t = make_runtime()
        runtime.set_epoch(time.monotonic() - 100.0)
        assert runtime.now >= 100.0
