"""Unit tests of the live (wall-clock TCP) runtime."""
