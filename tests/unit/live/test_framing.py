"""Length-prefixed framing: split reads, coalesced reads, bad lengths."""

import pytest

from repro.errors import NetworkError
from repro.live.transport import FrameDecoder, encode_frame, hello_frame, parse_hello


class TestFrameDecoder:
    def test_one_frame_one_read(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]
        assert decoder.pending_bytes == 0

    def test_empty_body(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    def test_byte_by_byte_split(self):
        decoder = FrameDecoder()
        stream = encode_frame(b"split across many reads")
        frames = []
        for i in range(len(stream)):
            frames.extend(decoder.feed(stream[i : i + 1]))
        assert frames == [b"split across many reads"]
        assert decoder.pending_bytes == 0

    def test_coalesced_frames_in_one_read(self):
        decoder = FrameDecoder()
        bodies = [b"a", b"bb", b"", b"dddd"]
        stream = b"".join(encode_frame(body) for body in bodies)
        assert decoder.feed(stream) == bodies

    def test_coalesced_plus_partial_tail(self):
        decoder = FrameDecoder()
        stream = encode_frame(b"whole") + encode_frame(b"partial")[:3]
        assert decoder.feed(stream) == [b"whole"]
        assert decoder.pending_bytes == 3
        assert decoder.feed(encode_frame(b"partial")[3:]) == [b"partial"]

    def test_interleaving_preserves_order(self):
        decoder = FrameDecoder()
        bodies = [f"frame-{i}".encode() for i in range(50)]
        stream = b"".join(encode_frame(body) for body in bodies)
        out = []
        for start in range(0, len(stream), 7):
            out.extend(decoder.feed(stream[start : start + 7]))
        assert out == bodies

    def test_oversize_length_rejected(self):
        decoder = FrameDecoder(max_frame=16)
        with pytest.raises(NetworkError):
            decoder.feed(encode_frame(b"x" * 17))

    def test_oversize_encode_rejected(self):
        import repro.live.transport as transport

        body = b"x" * (transport.MAX_FRAME_SIZE + 1)
        with pytest.raises(NetworkError):
            encode_frame(body)


class TestHello:
    def test_roundtrip(self):
        assert parse_hello(hello_frame(5)) == (5, 0)

    def test_roundtrip_with_incarnation_nonce(self):
        assert parse_hello(hello_frame(5, 12345)) == (5, 12345)

    def test_garbage_rejected(self):
        with pytest.raises(NetworkError):
            parse_hello(b"\xff\xfe not json")

    def test_missing_pid_rejected(self):
        with pytest.raises(NetworkError):
            parse_hello(b'{"v": 1}')

    def test_wrong_version_rejected(self):
        with pytest.raises(NetworkError):
            parse_hello(b'{"v": 999, "hello": 1}')
