"""Write-ahead delivery log: framing, torn tails, recovered state."""

import json
import struct

import pytest

from repro.errors import DeploymentError
from repro.live.wal import (
    WalState,
    WalWriter,
    decode_records,
    encode_record,
    load_wal_state,
    read_wal,
    recover_wal,
)


def deliver(s, q, i=0, at=0.0):
    return {"t": "deliver", "s": s, "q": q, "at": at, "i": i}


def accept(s, q, at=0.0):
    return {"t": "accept", "s": s, "q": q, "at": at}


class TestFraming:
    def test_roundtrip_many_records(self):
        records = [deliver(0, q, i=q + 1) for q in range(20)]
        blob = b"".join(encode_record(r) for r in records)
        parsed, valid = decode_records(blob)
        assert parsed == records
        assert valid == len(blob)

    def test_empty_buffer(self):
        assert decode_records(b"") == ([], 0)

    def test_partial_header_is_a_torn_tail(self):
        blob = encode_record(deliver(0, 1)) + b"\x00\x00"
        parsed, valid = decode_records(blob)
        assert parsed == [deliver(0, 1)]
        assert valid == len(blob) - 2

    def test_partial_body_is_a_torn_tail(self):
        whole = encode_record(deliver(0, 1))
        torn = encode_record(deliver(0, 2))[:-3]
        parsed, valid = decode_records(whole + torn)
        assert parsed == [deliver(0, 1)]
        assert valid == len(whole)

    def test_corrupt_crc_stops_the_scan(self):
        first = encode_record(deliver(0, 1))
        second = bytearray(encode_record(deliver(0, 2)))
        second[-1] ^= 0xFF  # flip a body byte; CRC no longer matches
        after = encode_record(deliver(0, 3))
        parsed, valid = decode_records(first + bytes(second) + after)
        # Everything from the corrupt record on is discarded: resuming
        # the scan past garbage would re-admit records whose ordering
        # context is gone.
        assert parsed == [deliver(0, 1)]
        assert valid == len(first)

    def test_insane_length_prefix_is_torn_not_allocated(self):
        blob = encode_record(deliver(0, 1)) + struct.pack(">II", 2**31, 0)
        parsed, valid = decode_records(blob)
        assert parsed == [deliver(0, 1)]
        assert valid == len(blob) - 8


class TestWriterAndRecovery:
    def test_unsynced_appends_are_buffered_not_written(self, tmp_path):
        path = tmp_path / "w.wal"
        writer = WalWriter(path)
        writer.append(deliver(0, 1))
        assert read_wal(path) == ([], 0)  # still only in the buffer
        writer.flush()
        assert read_wal(path)[0] == [deliver(0, 1)]
        writer.close()

    def test_sync_append_is_durable_immediately(self, tmp_path):
        path = tmp_path / "w.wal"
        writer = WalWriter(path)
        writer.append(accept(0, 1), sync=True)
        assert read_wal(path)[0] == [accept(0, 1)]
        writer.close()

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_wal(tmp_path / "absent.wal") == ([], 0)
        assert recover_wal(tmp_path / "absent.wal") == ([], 0)

    def test_recover_truncates_torn_tail_in_place(self, tmp_path):
        path = tmp_path / "w.wal"
        writer = WalWriter(path)
        for q in range(3):
            writer.append(deliver(0, q), sync=True)
        writer.close()
        intact = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(encode_record(deliver(0, 3))[:-5])  # crash mid-write
        records, torn = recover_wal(path)
        assert [r["q"] for r in records] == [0, 1, 2]
        assert torn > 0
        assert path.stat().st_size == intact
        # A new writer appends after the truncation point and the log
        # stays fully parseable.
        writer = WalWriter(path)
        writer.append(deliver(0, 3), sync=True)
        writer.close()
        records, torn = read_wal(path)
        assert [r["q"] for r in records] == [0, 1, 2, 3]
        assert torn == 0


class TestWalState:
    def test_folds_records_into_resumable_state(self):
        records = [
            accept(1, 0, at=0.1),
            deliver(0, 0, i=1, at=0.2),
            deliver(1, 0, i=2, at=0.3),
            {"t": "resume", "counts": {"0": [7, 40], "2": [9, 13]}, "at": 0.4},
            accept(1, 1, at=0.5),
        ]
        state = WalState.from_records(records)
        assert state.delivered == [(0, 0), (1, 0)]
        assert state.delivered_set == {(0, 0), (1, 0)}
        assert state.accepted == [(1, 0, 0.1), (1, 1, 0.5)]
        assert state.next_instance == 2
        assert state.resume_counts == {0: (7, 40), 2: (9, 13)}
        assert state.max_own_seq(1) == 1
        assert state.max_own_seq(0) == -1

    def test_duplicate_delivers_kept_once(self):
        records = [deliver(0, 0, i=1), deliver(0, 0, i=1), deliver(0, 1, i=2)]
        state = WalState.from_records(records)
        assert state.delivered == [(0, 0), (0, 1)]

    def test_last_resume_snapshot_wins(self):
        records = [
            {"t": "resume", "counts": {"0": [7, 10]}},
            {"t": "resume", "counts": {"0": [7, 25]}},
        ]
        state = WalState.from_records(records)
        assert state.resume_counts == {0: (7, 25)}

    def test_unknown_record_type_rejected(self):
        with pytest.raises(DeploymentError):
            WalState.from_records([{"t": "mystery"}])

    def test_load_wal_state_end_to_end(self, tmp_path):
        path = tmp_path / "w.wal"
        writer = WalWriter(path)
        writer.append(accept(2, 0, at=0.1), sync=True)
        writer.append(deliver(2, 0, i=1, at=0.2), sync=True)
        writer.close()
        with open(path, "ab") as handle:
            handle.write(b"\x00\x01garbage")
        state, torn = load_wal_state(path)
        assert state.delivered == [(2, 0)]
        assert state.next_instance == 1
        assert torn == len(b"\x00\x01garbage")

    def test_record_encoding_is_compact_json(self):
        blob = encode_record({"t": "accept", "s": 1, "q": 2, "at": 0.5})
        body = blob[8:]
        assert json.loads(body) == {"t": "accept", "s": 1, "q": 2, "at": 0.5}
        assert b" " not in body
