"""Live faultload compilation and offline merged-log checking."""

import pytest

from repro.config import (
    CrashEvent,
    DelaySpike,
    FaultloadConfig,
    LinkFaultMode,
    LossBurst,
    PartitionEvent,
    WrongSuspicion,
)
from repro.errors import DeploymentError
from repro.live.faults import check_merged_logs, compile_live_faultload
from repro.live.wal import WalWriter


class TestCompile:
    def test_crash_becomes_kill_plus_restart(self):
        faultload = FaultloadConfig(crashes=(CrashEvent(time=1.0, process=2),))
        actions = compile_live_faultload(faultload, 3, restart_delay=0.5)
        assert [(a.at, a.kind, a.pid) for a in actions] == [
            (1.0, "kill", 2),
            (1.5, "restart", 2),
        ]

    def test_partition_compiles_to_hold_and_release_directives(self):
        faultload = FaultloadConfig(
            partitions=(
                PartitionEvent(start=0.2, heal=0.6, groups=((0,), (1, 2))),
            )
        )
        up, down = compile_live_faultload(faultload, 3)
        assert (up.at, up.kind) == (0.2, "fault")
        assert (down.at, down.kind) == (0.6, "fault")
        # Every severed direction gets a directive; none cross within a
        # group.
        ops = {pid: doc for pid, doc in up.directives}
        assert ops[0] == {"type": "fault", "op": "hold", "peers": [1, 2]}
        assert ops[1] == {"type": "fault", "op": "hold", "peers": [0]}
        assert ops[2] == {"type": "fault", "op": "hold", "peers": [0]}
        heal_ops = {pid: doc["op"] for pid, doc in down.directives}
        assert set(heal_ops.values()) == {"release"}

    def test_drop_partition_uses_drop_directives(self):
        faultload = FaultloadConfig(
            partitions=(
                PartitionEvent(
                    start=0.2, heal=0.6, groups=((0,),), mode=LinkFaultMode.DROP
                ),
            )
        )
        up, down = compile_live_faultload(faultload, 3)
        assert all(doc["op"] == "drop" for __, doc in up.directives)
        assert all(doc["op"] == "undrop" for __, doc in down.directives)

    def test_delay_spike_compiles_to_delay_directives(self):
        faultload = FaultloadConfig(
            delay_spikes=(
                DelaySpike(start=0.3, end=0.8, extra_delay=0.01, jitter=0.002),
            )
        )
        up, down = compile_live_faultload(faultload, 2)
        assert up.at == 0.3 and down.at == 0.8
        for __, doc in up.directives:
            assert doc["op"] == "delay"
            assert doc["extra"] == 0.01
            assert doc["jitter"] == 0.002
        assert all(doc["op"] == "clear_delay" for __, doc in down.directives)

    def test_schedule_is_time_sorted_across_fault_kinds(self):
        faultload = FaultloadConfig(
            crashes=(CrashEvent(time=0.5, process=1),),
            partitions=(PartitionEvent(start=0.1, heal=0.9, groups=((0,),)),),
        )
        actions = compile_live_faultload(faultload, 3, restart_delay=0.2)
        assert [a.at for a in actions] == sorted(a.at for a in actions)

    def test_loss_bursts_are_rejected(self):
        faultload = FaultloadConfig(
            loss_bursts=(LossBurst(start=0.1, end=0.2, probability=0.5),)
        )
        with pytest.raises(DeploymentError, match="loss_bursts"):
            compile_live_faultload(faultload, 3)

    def test_wrong_suspicions_are_rejected(self):
        faultload = FaultloadConfig(
            wrong_suspicions=(WrongSuspicion(time=0.1, observer=0, suspect=1),)
        )
        with pytest.raises(DeploymentError, match="wrong_suspicions"):
            compile_live_faultload(faultload, 3)

    def test_out_of_range_victim_is_rejected(self):
        faultload = FaultloadConfig(crashes=(CrashEvent(time=0.1, process=7),))
        with pytest.raises(DeploymentError, match="outside the group"):
            compile_live_faultload(faultload, 3)

    def test_double_crash_of_one_process_is_rejected(self):
        faultload = FaultloadConfig(
            crashes=(
                CrashEvent(time=0.1, process=1),
                CrashEvent(time=0.5, process=1),
            )
        )
        with pytest.raises(DeploymentError, match="crashed twice"):
            compile_live_faultload(faultload, 3)


def write_wal(path, accepts=(), delivers=()):
    writer = WalWriter(path)
    for s, q, at in accepts:
        writer.append({"t": "accept", "s": s, "q": q, "at": at}, sync=True)
    for s, q, at, i in delivers:
        writer.append({"t": "deliver", "s": s, "q": q, "at": at, "i": i})
    writer.close()


class TestCheckMergedLogs:
    def test_consistent_logs_pass(self, tmp_path):
        # p0 abcasts two messages; everyone delivers both in order.
        for pid in range(3):
            write_wal(
                tmp_path / f"worker-{pid}.wal",
                accepts=[(0, 0, 0.1), (0, 1, 0.2)] if pid == 0 else [],
                delivers=[(0, 0, 0.3, 1), (0, 1, 0.4, 2)],
            )
        monitor, accepted = check_merged_logs(3, tmp_path, quiet_time=0.0)
        assert monitor.passed, monitor.violations
        assert accepted == 2
        assert monitor.delivery_count == 6

    def test_order_divergence_is_a_violation(self, tmp_path):
        write_wal(
            tmp_path / "worker-0.wal",
            accepts=[(0, 0, 0.1), (0, 1, 0.1)],
            delivers=[(0, 0, 0.3, 1), (0, 1, 0.4, 2)],
        )
        write_wal(
            tmp_path / "worker-1.wal",
            delivers=[(0, 1, 0.3, 1), (0, 0, 0.4, 2)],  # swapped
        )
        monitor, __ = check_merged_logs(2, tmp_path, quiet_time=0.0)
        assert not monitor.passed

    def test_missing_deliveries_violate_agreement(self, tmp_path):
        write_wal(
            tmp_path / "worker-0.wal",
            accepts=[(0, 0, 0.1)],
            delivers=[(0, 0, 0.3, 1)],
        )
        write_wal(tmp_path / "worker-1.wal", delivers=[(0, 0, 0.3, 1)])
        write_wal(tmp_path / "worker-2.wal")  # never caught up
        monitor, __ = check_merged_logs(3, tmp_path, quiet_time=0.0)
        assert not monitor.passed

    def test_liveness_watchdog_flags_a_stalled_worker(self, tmp_path):
        # Both logs agree, but p1 shows nothing after the disruption
        # quieted at t=1.0.
        write_wal(
            tmp_path / "worker-0.wal",
            accepts=[(0, 0, 0.1), (0, 1, 1.1)],
            delivers=[(0, 0, 0.3, 1), (0, 1, 1.2, 2)],
        )
        write_wal(tmp_path / "worker-1.wal", delivers=[(0, 0, 0.3, 1)])
        monitor, __ = check_merged_logs(2, tmp_path, quiet_time=1.0)
        assert any(v.invariant == "liveness" for v in monitor.violations)

    def test_liveness_check_can_be_disabled(self, tmp_path):
        write_wal(
            tmp_path / "worker-0.wal",
            accepts=[(0, 0, 0.1)],
            delivers=[(0, 0, 0.3, 1)],
        )
        write_wal(tmp_path / "worker-1.wal", delivers=[(0, 0, 0.3, 1)])
        monitor, __ = check_merged_logs(
            2,
            tmp_path,
            quiet_time=1.0,
            check_liveness=False,
            expect_all_delivered=False,
        )
        assert not any(v.invariant == "liveness" for v in monitor.violations)

    def test_empty_wal_dir_is_quietly_empty(self, tmp_path):
        monitor, accepted = check_merged_logs(2, tmp_path, quiet_time=0.0)
        assert accepted == 0
        assert monitor.delivery_count == 0
