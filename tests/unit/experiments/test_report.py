"""Unit tests for the text rendering of figures."""

import pytest

from repro.config import RunConfig, StackKind
from repro.experiments.report import format_table, gap_summary, sweep_table
from repro.experiments.sweeps import run_load_sweep


def test_format_table_aligns_columns():
    text = format_table(["a", "long-header"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert all(len(line) == len(lines[0]) for line in lines)


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_load_sweep(
        loads=(200.0, 400.0),
        message_size=256,
        group_sizes=(3,),
        seeds=(1,),
        base=RunConfig(duration=0.3, warmup=0.15),
    )


def test_latency_table_contains_curves_and_rows(tiny_sweep):
    text = sweep_table(tiny_sweep, "latency", x_label="load", group_sizes=(3,))
    assert "n=3 monolithic" in text
    assert "n=3 modular" in text
    assert "200" in text and "400" in text
    # Single-seed sweep: means only — a "±0.00" here would dress the
    # absent variance information up as a measured zero-width interval.
    assert "±" not in text


def test_throughput_table(tiny_sweep):
    text = sweep_table(tiny_sweep, "throughput", x_label="load", group_sizes=(3,))
    assert "load" in text.splitlines()[0]


def test_unknown_metric_rejected(tiny_sweep):
    with pytest.raises(ValueError):
        sweep_table(tiny_sweep, "jitter", x_label="load")


def test_gap_summaries(tiny_sweep):
    latency_line = gap_summary(tiny_sweep, "latency", 400.0, 3)
    throughput_line = gap_summary(tiny_sweep, "throughput", 400.0, 3)
    assert "latency" in latency_line and "%" in latency_line
    assert "throughput" in throughput_line


def test_absent_group_sizes_are_skipped(tiny_sweep):
    text = sweep_table(tiny_sweep, "latency", x_label="load", group_sizes=(3, 7))
    assert "n=7" not in text


def test_format_table_with_no_rows():
    text = format_table(["only", "headers"], [])
    lines = text.splitlines()
    assert len(lines) == 2
    assert "only" in lines[0]
