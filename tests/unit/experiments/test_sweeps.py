"""Unit tests for sweeps and point summaries (small grids)."""

import pytest

from repro.config import RunConfig, StackKind, WorkloadConfig
from repro.experiments.runner import run_simulation
from repro.experiments.sweeps import (
    PAPER_GROUP_SIZES,
    PAPER_LOADS,
    PAPER_SIZES,
    run_load_sweep,
    run_size_sweep,
    summarize_point,
)


def small_base():
    return RunConfig(duration=0.3, warmup=0.15)


def test_paper_parameter_constants():
    assert PAPER_GROUP_SIZES == (3, 7)
    assert 2000 in PAPER_LOADS and 7000 in PAPER_LOADS
    assert 64 in PAPER_SIZES and 32768 in PAPER_SIZES


def test_load_sweep_shape_and_indexing():
    sweep = run_load_sweep(
        loads=(200.0, 400.0),
        message_size=256,
        group_sizes=(3,),
        seeds=(1,),
        base=small_base(),
    )
    assert sweep.parameter == "offered_load"
    assert len(sweep.points) == 4  # 2 loads x 2 stacks
    series = sweep.series(3, StackKind.MODULAR)
    assert [p.x for p in series] == [200.0, 400.0]
    point = sweep.point(3, StackKind.MONOLITHIC, 200.0)
    assert point.stack is StackKind.MONOLITHIC


def test_point_lookup_missing_raises():
    sweep = run_load_sweep(
        loads=(200.0,), message_size=256, group_sizes=(3,), seeds=(1,),
        base=small_base(),
    )
    with pytest.raises(KeyError):
        sweep.point(3, StackKind.MODULAR, 999.0)


def test_size_sweep_runs_both_stacks():
    sweep = run_size_sweep(
        sizes=(128, 1024),
        offered_load=200.0,
        group_sizes=(3,),
        seeds=(1,),
        base=small_base(),
    )
    assert sweep.parameter == "message_size"
    for stack in (StackKind.MODULAR, StackKind.MONOLITHIC):
        assert len(sweep.series(3, stack)) == 2


def test_summary_aggregates_across_seeds():
    config = RunConfig(
        workload=WorkloadConfig(offered_load=200.0, message_size=256),
        duration=0.3,
        warmup=0.15,
    )
    runs = [run_simulation(config, seed=s) for s in (1, 2, 3)]
    summary = summarize_point(3, StackKind.MODULAR, 200.0, runs)
    assert summary.latency.count == 3
    assert summary.throughput.count == 3
    assert summary.latency.half_width >= 0
    assert summary.runs == tuple(runs)
    assert summary.delivered_per_consensus is not None


def test_unsaturated_throughput_tracks_offered_load():
    sweep = run_load_sweep(
        loads=(150.0,), message_size=128, group_sizes=(3,), seeds=(1,),
        base=small_base(),
    )
    for stack in (StackKind.MODULAR, StackKind.MONOLITHIC):
        point = sweep.point(3, stack, 150.0)
        assert point.throughput.mean == pytest.approx(150.0, rel=0.2)
