"""Unit tests for the knee/gap curve analysis."""

import pytest

from repro.config import StackKind
from repro.errors import MetricsError
from repro.experiments.crossover import gap_series, peak_gap, saturation_knee
from repro.experiments.sweeps import PointSummary, SweepResult
from repro.metrics.stats import ConfidenceInterval


def point(n, stack, x, latency, throughput):
    ci = lambda v: ConfidenceInterval(v, 0.0, 0.95, 1)
    return PointSummary(
        n=n,
        stack=stack,
        x=x,
        latency=ci(latency),
        latency_p50=ci(latency),
        latency_p99=ci(latency),
        throughput=ci(throughput),
        delivered_per_consensus=4.0,
        stationary=True,
        runs=(),
    )


def synthetic_sweep():
    """Latency ramps then plateaus; throughput tracks load then caps."""
    points = []
    profile = {
        StackKind.MODULAR: [(250, 4, 250), (500, 8, 500), (1000, 12, 800),
                            (2000, 12.2, 810), (4000, 12.1, 805)],
        StackKind.MONOLITHIC: [(250, 3, 250), (500, 5, 500), (1000, 7, 900),
                               (2000, 7.1, 1000), (4000, 7.0, 1005)],
    }
    for stack, rows in profile.items():
        for x, latency, throughput in rows:
            points.append(point(3, stack, float(x), latency * 1e-3, throughput))
    return SweepResult(parameter="offered_load", points=tuple(points))


def test_knee_finds_the_plateau_onset():
    sweep = synthetic_sweep()
    knee = saturation_knee(sweep, 3, StackKind.MODULAR, "latency")
    assert knee == 1000.0


def test_knee_of_monotone_curve_is_last_x():
    points = tuple(
        point(3, StackKind.MODULAR, float(x), x * 1e-3, x) for x in (1, 2, 4, 8)
    )
    sweep = SweepResult(parameter="offered_load", points=points)
    assert saturation_knee(sweep, 3, StackKind.MODULAR, "latency") == 8.0


def test_gap_series_directions():
    sweep = synthetic_sweep()
    latency_gaps = gap_series(sweep, 3, "latency")
    throughput_gaps = gap_series(sweep, 3, "throughput")
    assert all(0 <= g.gap < 1 for g in latency_gaps)
    # At 4000: latency gap 1 - 7.0/12.1 ~ 0.42; throughput ~ +24.8%.
    assert latency_gaps[-1].gap == pytest.approx(1 - 7.0 / 12.1)
    assert throughput_gaps[-1].gap == pytest.approx(1005 / 805 - 1)


def test_peak_gap_is_the_headline_number():
    sweep = synthetic_sweep()
    peak = peak_gap(sweep, 3, "latency")
    assert peak.x == 4000.0  # 1 - 7.0/12.1 edges out the earlier points
    assert peak.gap == pytest.approx(1 - 7.0 / 12.1)


def test_missing_series_raises():
    sweep = synthetic_sweep()
    with pytest.raises(MetricsError):
        saturation_knee(sweep, 7, StackKind.MODULAR, "latency")
    with pytest.raises(MetricsError):
        gap_series(sweep, 7, "latency")


def test_unknown_metric_raises():
    sweep = synthetic_sweep()
    with pytest.raises(MetricsError):
        saturation_knee(sweep, 3, StackKind.MODULAR, "jitter")


def test_on_a_real_reduced_sweep():
    """Wire the analysis to an actual simulation sweep: the knee exists
    and the peak latency gap is positive (the paper's core claim)."""
    from repro.config import RunConfig
    from repro.experiments.sweeps import run_load_sweep

    sweep = run_load_sweep(
        loads=(300.0, 1500.0, 4000.0),
        message_size=2048,
        group_sizes=(3,),
        seeds=(1,),
        base=RunConfig(duration=0.4, warmup=0.2),
    )
    knee = saturation_knee(sweep, 3, StackKind.MODULAR, "throughput")
    assert knee in (300.0, 1500.0, 4000.0)
    assert peak_gap(sweep, 3, "latency").gap > 0
