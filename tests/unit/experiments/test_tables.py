"""Unit tests for the analytical tables (§5.2)."""

from repro.config import StackKind
from repro.experiments.tables import analytical_table, validate_stack


def test_analytical_table_contains_paper_numbers():
    text = analytical_table()
    assert "16" in text  # modular messages, n=3, M=4
    assert "50%" in text
    assert "75%" in text


def test_validate_modular_small_run():
    row = validate_stack(
        3, StackKind.MODULAR, message_size=512, offered_load=2000.0, duration=0.5
    )
    assert row.measured_m is not None and row.measured_m > 0
    # The steady-state simulator matches the closed form within a few %.
    assert row.message_error < 0.10
    assert row.payload_error < 0.15


def test_validate_monolithic_small_run():
    row = validate_stack(
        3, StackKind.MONOLITHIC, message_size=512, offered_load=2000.0, duration=0.5
    )
    assert row.measured_messages > 0
    assert row.message_error < 0.10
