"""Unit tests for the CLI (with monkeypatched experiment drivers)."""

import pytest

import repro.cli as cli


class FakeReport:
    def __str__(self):
        return "FAKE FIGURE REPORT"


def test_figure_command_routes_to_driver(monkeypatch, capsys):
    calls = {}

    def fake_figure8(*, fast, seeds, jobs, stacks):
        calls["args"] = (fast, seeds, jobs, stacks)
        return FakeReport()

    monkeypatch.setattr(cli, "figure8", fake_figure8)
    assert cli.main(["figure8", "--fast"]) == 0
    assert calls["args"] == (True, None, 1, None)
    assert "FAKE FIGURE REPORT" in capsys.readouterr().out


def test_seeds_flag_builds_seed_tuple(monkeypatch):
    seen = {}
    monkeypatch.setattr(
        cli,
        "figure9",
        lambda *, fast, seeds, jobs, stacks: seen.update(seeds=seeds) or FakeReport(),
    )
    cli.main(["figure9", "--seeds", "4"])
    assert seen["seeds"] == (1, 2, 3, 4)


def test_figures_command_prints_all(monkeypatch, capsys):
    monkeypatch.setattr(
        cli, "all_figures", lambda *, fast, seeds, jobs, stacks: [FakeReport(), FakeReport()]
    )
    cli.main(["figures", "--fast"])
    assert capsys.readouterr().out.count("FAKE FIGURE REPORT") == 2


def test_analysis_command(monkeypatch, capsys):
    monkeypatch.setattr(cli, "analytical_table", lambda: "ANALYTICAL")
    monkeypatch.setattr(cli, "validation_table", lambda: "VALIDATION")
    cli.main(["analysis"])
    out = capsys.readouterr().out
    assert "ANALYTICAL" in out and "VALIDATION" in out


def test_ablation_command(monkeypatch, capsys):
    monkeypatch.setattr(cli, "run_ablation", lambda seeds: ["row"])
    monkeypatch.setattr(cli, "ablation_table", lambda rows: "ABLATION TABLE")
    cli.main(["ablation", "--fast"])
    assert "ABLATION TABLE" in capsys.readouterr().out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        cli.main(["not-a-command"])


def test_predict_command_prints_table(capsys):
    cli.main(["predict"])
    out = capsys.readouterr().out
    assert "Design-time prediction" in out
    assert "T modular" in out


def test_repro_errors_exit_with_usage_message(monkeypatch, capsys):
    from repro.errors import ConfigurationError

    def boom(*, fast, seeds, jobs, stacks):
        raise ConfigurationError("synthetic config problem")

    monkeypatch.setattr(cli, "figure8", boom)
    assert cli.main(["figure8"]) == 2
    err = capsys.readouterr().err
    assert "error: synthetic config problem" in err
    assert "--help" in err
    assert "Traceback" not in err


def test_nemesis_unknown_stack_label_is_a_clean_error(capsys):
    assert cli.main(["nemesis", "--stacks", "no-such-stack"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no-such-stack" in err


def test_sweep_unknown_stack_label_lists_the_registry(capsys):
    from repro.config import STACK_LABELS

    assert cli.main(["sweep", "--fast", "--stacks", "no-such-stack"]) == 2
    err = capsys.readouterr().err
    assert "error:" in err and "no-such-stack" in err
    # The sorted registry is the error's fix-it hint.
    for label in STACK_LABELS:
        assert label in err


def test_sweep_rejects_non_kind_pure_stack_labels(capsys):
    # "indirect" is modular-with-a-variant, not a plain StackKind; the
    # sweep grid is keyed by kind, so it cannot appear there.
    assert cli.main(["sweep", "--fast", "--stacks", "indirect"]) == 2
    assert "not sweepable" in capsys.readouterr().err


def test_nemesis_unknown_faultload_file_is_a_clean_error(capsys):
    assert cli.main(["nemesis", "--faultload", "/nonexistent/faults.json"]) == 2
    assert "error:" in capsys.readouterr().err


def test_live_command_routes_to_runner(monkeypatch, capsys):
    import repro.live.deploy as deploy

    seen = {}

    def fake_run_live(spec, observability=None):
        seen["spec"] = spec
        return {
            "mode": "live",
            "config": {
                "n": spec.n, "stack": spec.stack, "load": spec.load,
                "message_size": spec.size, "duration": spec.duration,
                "warmup": spec.warmup,
            },
            "seed": spec.seed,
            "metrics": {
                "throughput": 10.0, "offered_rate": 10.0, "latency_mean": 0.001,
                "latency_p50": 0.001, "latency_p95": 0.002, "latency_p99": 0.002,
                "latency_count": 5, "blocked_attempts": 0, "stationary": True,
            },
            "network": {"messages_sent": 42},
            "cpu_utilization": [0.1, 0.1],
            "instances_decided": 5,
            "events_executed": 0,
        }

    monkeypatch.setattr(deploy, "run_live", fake_run_live)
    assert cli.main(["live", "--n", "2", "--stack", "sequencer", "--load", "20"]) == 0
    assert seen["spec"].n == 2
    assert seen["spec"].stack == "sequencer"
    assert seen["spec"].load == 20.0
    out = capsys.readouterr().out
    assert "live run" in out and "throughput" in out


def test_live_json_output_is_parseable(monkeypatch, capsys):
    import json

    import repro.live.deploy as deploy

    monkeypatch.setattr(
        deploy,
        "run_live",
        lambda spec, observability=None: {
            "mode": "live", "metrics": {"throughput": 1.0}
        },
    )
    assert cli.main(["live", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["mode"] == "live"


def test_sweep_command_writes_canonical_json(monkeypatch, tmp_path, capsys):
    import json

    target = tmp_path / "sweeps.json"
    assert cli.main(["sweep", "--fast", "--json-out", str(target)]) == 0
    document = json.loads(target.read_text())
    assert set(document) == {"offered_load", "message_size"}
    assert document["offered_load"]["points"]
    assert str(target) in capsys.readouterr().out


def test_sweep_command_prints_tables(capsys):
    assert cli.main(["sweep", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "latency" in out and "throughput" in out
    assert "n=3 monolithic" in out


def test_csv_flag_writes_figure_data(monkeypatch, tmp_path, capsys):
    from repro.config import RunConfig
    from repro.experiments.figures import figure8
    from repro.experiments.sweeps import run_load_sweep

    sweep = run_load_sweep(
        loads=(200.0,), message_size=256, group_sizes=(3,), seeds=(1,),
        base=RunConfig(duration=0.3, warmup=0.15),
    )
    monkeypatch.setattr(
        cli, "figure8", lambda *, fast, seeds, jobs, stacks: figure8(sweep)
    )
    cli.main(["figure8", "--csv", str(tmp_path)])
    target = tmp_path / "figure8.csv"
    assert target.exists()
    assert "offered_load" in target.read_text()
