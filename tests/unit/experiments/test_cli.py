"""Unit tests for the CLI (with monkeypatched experiment drivers)."""

import pytest

import repro.cli as cli


class FakeReport:
    def __str__(self):
        return "FAKE FIGURE REPORT"


def test_figure_command_routes_to_driver(monkeypatch, capsys):
    calls = {}

    def fake_figure8(*, fast, seeds):
        calls["args"] = (fast, seeds)
        return FakeReport()

    monkeypatch.setattr(cli, "figure8", fake_figure8)
    assert cli.main(["figure8", "--fast"]) == 0
    assert calls["args"] == (True, None)
    assert "FAKE FIGURE REPORT" in capsys.readouterr().out


def test_seeds_flag_builds_seed_tuple(monkeypatch):
    seen = {}
    monkeypatch.setattr(
        cli, "figure9", lambda *, fast, seeds: seen.update(seeds=seeds) or FakeReport()
    )
    cli.main(["figure9", "--seeds", "4"])
    assert seen["seeds"] == (1, 2, 3, 4)


def test_figures_command_prints_all(monkeypatch, capsys):
    monkeypatch.setattr(
        cli, "all_figures", lambda *, fast, seeds: [FakeReport(), FakeReport()]
    )
    cli.main(["figures", "--fast"])
    assert capsys.readouterr().out.count("FAKE FIGURE REPORT") == 2


def test_analysis_command(monkeypatch, capsys):
    monkeypatch.setattr(cli, "analytical_table", lambda: "ANALYTICAL")
    monkeypatch.setattr(cli, "validation_table", lambda: "VALIDATION")
    cli.main(["analysis"])
    out = capsys.readouterr().out
    assert "ANALYTICAL" in out and "VALIDATION" in out


def test_ablation_command(monkeypatch, capsys):
    monkeypatch.setattr(cli, "run_ablation", lambda seeds: ["row"])
    monkeypatch.setattr(cli, "ablation_table", lambda rows: "ABLATION TABLE")
    cli.main(["ablation", "--fast"])
    assert "ABLATION TABLE" in capsys.readouterr().out


def test_unknown_command_exits():
    with pytest.raises(SystemExit):
        cli.main(["not-a-command"])


def test_predict_command_prints_table(capsys):
    cli.main(["predict"])
    out = capsys.readouterr().out
    assert "Design-time prediction" in out
    assert "T modular" in out


def test_csv_flag_writes_figure_data(monkeypatch, tmp_path, capsys):
    from repro.config import RunConfig
    from repro.experiments.figures import figure8
    from repro.experiments.sweeps import run_load_sweep

    sweep = run_load_sweep(
        loads=(200.0,), message_size=256, group_sizes=(3,), seeds=(1,),
        base=RunConfig(duration=0.3, warmup=0.15),
    )
    monkeypatch.setattr(
        cli, "figure8", lambda *, fast, seeds: figure8(sweep)
    )
    cli.main(["figure8", "--csv", str(tmp_path)])
    target = tmp_path / "figure8.csv"
    assert target.exists()
    assert "offered_load" in target.read_text()
