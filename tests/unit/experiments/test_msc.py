"""Unit tests for the message-sequence-chart extraction/rendering."""

from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.experiments.msc import Arrow, extract_arrows, render_msc, summarize_kinds
from repro.experiments.runner import Simulation
from repro.sim.tracing import TraceRecorder


def traced_run(kind=StackKind.MONOLITHIC):
    trace = TraceRecorder()
    config = RunConfig(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=1000.0, message_size=512),
        duration=0.3,
        warmup=0.0,
    )
    Simulation(config, seed=2, trace=trace).run(drain=0.1)
    return trace


def test_arrows_pair_sends_with_receptions():
    trace = traced_run()
    arrows = extract_arrows(trace)
    assert arrows
    delivered = [a for a in arrows if a.delivered]
    assert len(delivered) / len(arrows) > 0.95
    for arrow in delivered[:50]:
        assert arrow.recv_time >= arrow.send_time
        assert arrow.src != arrow.dst


def test_window_filters_by_send_time():
    trace = traced_run()
    window = extract_arrows(trace, start=0.1, end=0.15)
    assert window
    assert all(0.1 <= a.send_time <= 0.15 for a in window)


def test_kind_and_module_filters():
    trace = traced_run()
    only_combined = extract_arrows(trace, kinds={"COMBINED"})
    assert only_combined
    assert {a.kind for a in only_combined} == {"COMBINED"}
    only_mono = extract_arrows(trace, modules={"mono"})
    assert {a.module for a in only_mono} == {"mono"}


def test_limit_truncates_earliest_first():
    trace = traced_run()
    limited = extract_arrows(trace, limit=5)
    assert len(limited) == 5
    all_arrows = extract_arrows(trace)
    assert limited == all_arrows[:5]


def test_monolithic_steady_state_mix_matches_fig6():
    """The traffic is dominated by COMBINED/ACKPIGGY pairs (Fig. 6);
    occasional idles add a few standalone DECISIONs and FORWARDs."""
    trace = traced_run(StackKind.MONOLITHIC)
    histogram = summarize_kinds(extract_arrows(trace, start=0.1, end=0.25))
    assert set(histogram) <= {"COMBINED", "ACKPIGGY", "FORWARD", "DECISION"}
    pipeline = histogram["COMBINED"] + histogram["ACKPIGGY"]
    stragglers = histogram.get("DECISION", 0) + histogram.get("FORWARD", 0)
    assert pipeline > 10 * stragglers
    assert abs(histogram["COMBINED"] - histogram["ACKPIGGY"]) <= 4


def test_modular_steady_state_has_all_four_kinds():
    trace = traced_run(StackKind.MODULAR)
    histogram = summarize_kinds(extract_arrows(trace, start=0.1, end=0.25))
    assert {"DIFFUSE", "PROPOSAL", "ACK", "RB"} <= set(histogram)


def test_render_produces_one_line_per_arrow():
    arrows = [
        Arrow(0.001, 0.0015, 0, 1, "PING", "m", 100),
        Arrow(0.002, None, 0, 2, "PING", "m", 20000),
    ]
    text = render_msc(arrows, n=3)
    lines = text.splitlines()
    assert len(lines) == 2
    assert "p0 ─PING(100B)→ p1" in lines[0]
    assert "(lost)" in lines[1]
    assert "20KiB" in lines[1]


def test_render_empty_window():
    assert "no messages" in render_msc([], n=3)


def test_render_with_explicit_origin():
    arrows = [Arrow(1.5, 1.6, 0, 1, "X", "m", 10)]
    text = render_msc(arrows, n=2, origin=1.0)
    assert "+ 500.000ms" in text or "+  500.000ms" in text.replace("  ", " ")
    assert "arrives +600.000ms" in text
