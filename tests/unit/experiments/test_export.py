"""Unit tests for the CSV export."""

import csv
import io

import pytest

from repro.config import RunConfig
from repro.experiments.export import CSV_FIELDS, write_sweep_csv
from repro.experiments.sweeps import run_load_sweep


@pytest.fixture(scope="module")
def tiny_sweep():
    return run_load_sweep(
        loads=(200.0, 400.0),
        message_size=256,
        group_sizes=(3,),
        seeds=(1,),
        base=RunConfig(duration=0.3, warmup=0.15),
    )


def test_csv_has_header_and_all_points(tiny_sweep):
    buffer = io.StringIO()
    rows = write_sweep_csv(tiny_sweep, buffer)
    assert rows == 4
    parsed = list(csv.reader(io.StringIO(buffer.getvalue())))
    assert tuple(parsed[0]) == CSV_FIELDS
    assert len(parsed) == 5


def test_csv_values_roundtrip(tiny_sweep):
    buffer = io.StringIO()
    write_sweep_csv(tiny_sweep, buffer)
    parsed = list(csv.DictReader(io.StringIO(buffer.getvalue())))
    row = next(
        r for r in parsed if r["stack"] == "modular" and float(r["x"]) == 200.0
    )
    point = tiny_sweep.point(3, __import__("repro.config", fromlist=["StackKind"]).StackKind.MODULAR, 200.0)
    assert float(row["throughput_mean"]) == pytest.approx(
        point.throughput.mean, abs=0.01
    )
    assert float(row["latency_mean_s"]) == pytest.approx(point.latency.mean, rel=1e-6)
    assert row["parameter"] == "offered_load"


def test_csv_writes_to_path(tiny_sweep, tmp_path):
    target = tmp_path / "fig.csv"
    rows = write_sweep_csv(tiny_sweep, target)
    assert rows == 4
    assert target.read_text().startswith("parameter,")
