"""Unit tests for the Simulation assembly and single-run driver."""

import pytest

from repro.config import (
    CrashEvent,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.experiments.runner import Simulation, run_simulation
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.fd.oracle import OracleFailureDetector


def tiny(kind=StackKind.MODULAR, **overrides):
    fields = dict(
        n=3,
        stack=StackConfig(kind=kind),
        workload=WorkloadConfig(offered_load=200.0, message_size=256),
        duration=0.4,
        warmup=0.2,
    )
    fields.update(overrides)
    return RunConfig(**fields)


def test_run_produces_sane_metrics():
    result = run_simulation(tiny(), seed=1)
    assert result.metrics.latency_mean is not None
    assert 0 < result.metrics.latency_mean < 0.1
    assert result.metrics.throughput == pytest.approx(200.0, rel=0.15)
    assert result.instances_decided > 0
    assert result.events_executed > 100
    assert len(result.cpu_utilization) == 3
    assert all(0 <= u <= 1 for u in result.cpu_utilization)


def test_run_result_derived_quantities():
    result = run_simulation(tiny(), seed=1)
    assert result.messages_per_consensus is not None
    assert result.messages_per_consensus > 0
    assert result.payload_bytes_per_consensus is not None
    assert result.delivered_per_consensus is not None


def test_monolithic_runs_too():
    result = run_simulation(tiny(StackKind.MONOLITHIC), seed=1)
    assert result.metrics.throughput == pytest.approx(200.0, rel=0.15)


def test_listeners_observe_events():
    sim = Simulation(tiny(), seed=1)
    accepted, delivered = [], []
    sim.add_accept_listener(accepted.append)
    sim.add_adeliver_listener(lambda pid, m, t: delivered.append((pid, m.msg_id)))
    sim.run()
    assert accepted
    assert delivered
    delivered_ids = {mid for __, mid in delivered}
    assert {m.msg_id for m in accepted} <= delivered_ids


def test_faultload_crashes_the_process():
    config = tiny(faultload=FaultloadConfig(crashes=(CrashEvent(0.3, 2),)))
    sim = Simulation(config, seed=1)
    result = sim.run()
    assert not sim.runtimes[2].alive
    assert sim.runtimes[0].alive and sim.runtimes[1].alive
    assert result.metrics.throughput > 0


def test_oracle_detectors_learn_about_crashes():
    config = tiny(
        faultload=FaultloadConfig(crashes=(CrashEvent(0.25, 2),)),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.ORACLE, detection_delay=0.05
        ),
    )
    sim = Simulation(config, seed=1)
    sim.run()
    assert 2 in sim.detectors[0].suspects()
    assert isinstance(sim.detectors[0], OracleFailureDetector)


def test_heartbeat_detector_can_be_selected():
    config = tiny(
        failure_detector=FailureDetectorConfig(kind=FailureDetectorKind.HEARTBEAT)
    )
    sim = Simulation(config, seed=1)
    sim.run()
    assert isinstance(sim.detectors[0], HeartbeatFailureDetector)


def test_without_workload_nothing_is_generated():
    sim = Simulation(tiny(), seed=1, with_workload=False)
    result = sim.run()
    assert result.metrics.throughput == 0.0
    assert result.instances_decided == 0


def test_network_window_counters_reset_at_warmup():
    result = run_simulation(tiny(), seed=1)
    # Counters cover only the measurement window: at 200 msgs/s over a
    # 0.4 s window the modular stack sends on the order of a few hundred
    # messages, not the thousands a full run with no reset would show.
    assert 0 < result.network["messages_sent"] < 2500


def test_start_is_idempotent():
    sim = Simulation(tiny(), seed=1)
    sim.start()
    sim.start()
    sim.run()


def test_non_stationary_run_warns():
    """A run whose measurement window starts with an empty pipeline and
    immediately saturates drifts across the window, which must emit a
    StationarityWarning rather than pass silently."""
    import warnings as warnings_module

    from repro.errors import StationarityWarning

    config = tiny(
        workload=WorkloadConfig(offered_load=7000.0, message_size=16384),
        warmup=0.0,  # no warm-up: the window sees the ramp-up drift
        duration=1.0,
    )
    with warnings_module.catch_warnings(record=True) as caught:
        warnings_module.simplefilter("always")
        result = run_simulation(config, seed=1)
    if not result.metrics.stationary:
        assert any(issubclass(w.category, StationarityWarning) for w in caught)
    else:  # pragma: no cover - calibration-dependent branch
        assert not any(
            issubclass(w.category, StationarityWarning) for w in caught
        )


def test_stationary_run_does_not_warn():
    import warnings as warnings_module

    from repro.errors import StationarityWarning

    with warnings_module.catch_warnings(record=True) as caught:
        warnings_module.simplefilter("always")
        run_simulation(tiny(), seed=1)
    assert not any(issubclass(w.category, StationarityWarning) for w in caught)


def test_crash_is_idempotent():
    sim = Simulation(tiny(), seed=1)
    sim.start()
    sim.crash(2)
    sim.crash(2)  # second call must be a no-op
    sim.run()
    assert not sim.runtimes[2].alive


def test_injecting_after_crash_is_ignored():
    from repro.stack.events import AbcastRequest
    from repro.types import AppMessage, MessageId

    sim = Simulation(tiny(), seed=1, with_workload=False)
    sim.start()
    sim.crash(0)
    message = AppMessage(MessageId(0, 0), size=10, abcast_time=0.0)
    sim.runtimes[0].inject(AbcastRequest(message))  # must not raise
    result = sim.run()
    assert result.metrics.throughput == 0.0
