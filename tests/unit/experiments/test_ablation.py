"""Unit tests for the ablation experiment."""

from repro.experiments.ablation import VARIANTS, ablation_table, run_ablation


def test_variants_cover_all_single_toggles():
    labels = [label for label, __ in VARIANTS]
    assert labels[0].startswith("modular")
    assert any("§4.1" in label for label in labels)
    assert any("§4.2" in label for label in labels)
    assert any("§4.3" in label for label in labels)
    assert labels[-1].endswith("(paper)")


def test_run_ablation_small():
    rows = run_ablation(
        n=3, offered_load=1500.0, message_size=512, seeds=(1,), duration=0.4
    )
    assert len(rows) == len(VARIANTS)
    assert all(row.latency_ms > 0 for row in rows)
    assert all(row.throughput > 0 for row in rows)
    # The full monolithic stack uses strictly fewer messages per
    # consensus than the modular reference.
    modular = rows[0]
    full_mono = rows[-1]
    assert full_mono.messages_per_consensus < modular.messages_per_consensus


def test_ablation_table_renders():
    rows = run_ablation(
        n=3, offered_load=1500.0, message_size=512, seeds=(1,), duration=0.4
    )
    text = ablation_table(rows)
    assert "variant" in text
    assert "modular (reference)" in text
