"""Unit tests for the §5.2 closed-form model — the paper's own numbers."""

import pytest

from repro.analysis.model import (
    compare,
    modular_data_per_consensus,
    modular_messages_per_consensus,
    modularity_data_overhead,
    monolithic_data_per_consensus,
    monolithic_messages_per_consensus,
)
from repro.errors import ConfigurationError


def test_paper_headline_message_counts_n3():
    """§5.2.1: n=3, M=4 -> modular 16 messages, monolithic 4."""
    assert modular_messages_per_consensus(3, 4) == 16
    assert monolithic_messages_per_consensus(3) == 4


def test_paper_message_counts_n7():
    assert modular_messages_per_consensus(7, 4) == 60
    assert monolithic_messages_per_consensus(7) == 12


def test_modular_count_components():
    # (n-1) * (M + 2 + floor((n+1)/2))
    assert modular_messages_per_consensus(5, 10) == 4 * (10 + 2 + 3)


def test_paper_data_volumes():
    """§5.2.2: Datamod = 2(n-1)Ml; Datamono = (n-1)(1+1/n)Ml."""
    assert modular_data_per_consensus(3, 4, 1000) == 16000
    assert monolithic_data_per_consensus(3, 4, 1000) == pytest.approx(
        2 * (4 / 3) * 4 * 1000
    )


def test_paper_overhead_headline_numbers():
    """50% for n=3 and 75% for n=7 — the paper's headline result."""
    assert modularity_data_overhead(3) == pytest.approx(0.5)
    assert modularity_data_overhead(7) == pytest.approx(0.75)


def test_overhead_is_consistent_with_data_formulas():
    for n in range(2, 12):
        modular = modular_data_per_consensus(n, 4, 512)
        mono = monolithic_data_per_consensus(n, 4, 512)
        assert (modular - mono) / mono == pytest.approx(modularity_data_overhead(n))


def test_overhead_approaches_one_for_large_groups():
    assert modularity_data_overhead(99) == pytest.approx(0.98)


def test_compare_bundles_everything():
    c = compare(3, 4, 16384)
    assert c.modular_messages == 16
    assert c.monolithic_messages == 4
    assert c.message_ratio == 4
    assert c.data_overhead == pytest.approx(0.5)
    assert c.modular_data == 2 * 2 * 4 * 16384


def test_validation_of_inputs():
    with pytest.raises(ConfigurationError):
        modular_messages_per_consensus(1, 4)
    with pytest.raises(ConfigurationError):
        modular_messages_per_consensus(3, 0)
    with pytest.raises(ConfigurationError):
        monolithic_messages_per_consensus(0)
