"""Unit tests for the design-time performance predictor (pure math)."""

import pytest

from repro.analysis.performance_model import (
    predict_gap,
    predict_modular,
    predict_monolithic,
)
from repro.config import CpuCosts, NetworkConfig, StackKind


def test_prediction_identifies_stack_and_inputs():
    p = predict_modular(3, 4, 1024)
    assert p.stack is StackKind.MODULAR
    assert p.n == 3
    assert p.messages_per_consensus == 4
    assert p.message_size == 1024


def test_bottleneck_is_the_max_resource():
    p = predict_modular(3, 4, 1024)
    assert p.bottleneck == max(
        p.coordinator_busy, p.noncoordinator_busy, p.coordinator_nic
    )
    assert p.saturation_throughput == pytest.approx(4 / p.bottleneck)


def test_coordinator_is_busier_than_noncoordinators():
    for n in (3, 5, 7):
        p = predict_modular(n, 4, 4096)
        assert p.coordinator_busy > p.noncoordinator_busy
        q = predict_monolithic(n, 4, 4096)
        assert q.coordinator_busy > q.noncoordinator_busy


def test_modular_costs_more_than_monolithic_everywhere():
    for n in (2, 3, 5, 7, 9):
        for size in (0, 64, 1024, 16384, 65536):
            gap = predict_gap(n, 4, size)
            assert gap.modular.coordinator_busy > gap.monolithic.coordinator_busy
            assert gap.throughput_gain > 0


def test_gap_shrinks_as_bytes_dominate():
    small = predict_gap(3, 4, 64).throughput_gain
    large = predict_gap(3, 4, 65536).throughput_gain
    assert large < small


def test_throughput_decreases_with_message_size():
    previous = float("inf")
    for size in (64, 1024, 8192, 32768):
        t = predict_modular(3, 4, size).saturation_throughput
        assert t < previous
        previous = t


def test_more_processes_cost_more_per_consensus():
    for size in (64, 16384):
        small_group = predict_modular(3, 4, size)
        large_group = predict_modular(7, 4, size)
        assert large_group.coordinator_busy > small_group.coordinator_busy


def test_batching_amortizes_fixed_costs():
    """Per delivered message, a larger M is cheaper for both stacks."""
    for predict in (predict_modular, predict_monolithic):
        m2 = predict(3, 2, 1024)
        m8 = predict(3, 8, 1024)
        per_message_m2 = m2.coordinator_busy / 2
        per_message_m8 = m8.coordinator_busy / 8
        assert per_message_m8 < per_message_m2


def test_zero_byte_messages_are_priced():
    p = predict_monolithic(3, 4, 0)
    assert p.coordinator_busy > 0
    assert p.saturation_throughput > 0


def test_custom_costs_and_network_flow_through():
    slow_cpu = CpuCosts(send_fixed=1e-3, recv_fixed=1e-3)
    slow = predict_modular(3, 4, 1024, costs=slow_cpu)
    fast = predict_modular(3, 4, 1024)
    assert slow.saturation_throughput < fast.saturation_throughput
    thin_pipe = NetworkConfig(bandwidth=1e6)
    choked = predict_modular(3, 4, 16384, net=thin_pipe)
    assert choked.bottleneck == choked.coordinator_nic
