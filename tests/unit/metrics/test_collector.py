"""Unit tests for the metrics collector (early latency, throughput)."""

import pytest

from repro.metrics.collector import MetricsCollector
from repro.types import AppMessage, MessageId


def accepted(sender, seq, t0, size=10):
    return AppMessage(MessageId(sender, seq), size=size, abcast_time=t0)


def test_early_latency_uses_first_delivery():
    collector = MetricsCollector(3, window_start=0.0, window_end=10.0)
    m = accepted(0, 0, t0=1.0)
    collector.on_accept(m)
    collector.on_adeliver(2, m, 1.4)  # earliest
    collector.on_adeliver(0, m, 1.6)
    collector.on_adeliver(1, m, 1.9)
    metrics = collector.finalize()
    assert metrics.latency_mean == pytest.approx(0.4)
    assert metrics.latency_count == 1


def test_throughput_is_mean_per_process_rate():
    collector = MetricsCollector(2, window_start=0.0, window_end=2.0)
    for seq in range(4):
        m = accepted(0, seq, t0=0.1)
        collector.on_accept(m)
        collector.on_adeliver(0, m, 0.5)
        collector.on_adeliver(1, m, 0.6)
    metrics = collector.finalize()
    # 4 deliveries per process over 2 seconds -> 2/s per process.
    assert metrics.throughput == pytest.approx(2.0)


def test_messages_abcast_before_window_do_not_count_for_latency():
    collector = MetricsCollector(2, window_start=1.0, window_end=2.0)
    warm = accepted(0, 0, t0=0.5)
    collector.on_accept(warm)
    collector.on_adeliver(0, warm, 1.5)
    metrics = collector.finalize()
    assert metrics.latency_count == 0
    assert metrics.latency_mean is None


def test_deliveries_outside_window_do_not_count_for_throughput():
    collector = MetricsCollector(1, window_start=1.0, window_end=2.0)
    m = accepted(0, 0, t0=1.5)
    collector.on_accept(m)
    collector.on_adeliver(0, m, 2.5)  # in the drain period
    metrics = collector.finalize()
    assert metrics.throughput == 0.0
    assert metrics.latency_count == 1  # latency still attributed


def test_unknown_message_delivery_is_ignored_for_latency():
    collector = MetricsCollector(1, window_start=0.0, window_end=1.0)
    stranger = accepted(0, 99, t0=0.1)
    collector.on_adeliver(0, stranger, 0.2)
    assert collector.finalize().latency_count == 0


def test_latency_samples_sorted_by_abcast_time():
    collector = MetricsCollector(1, window_start=0.0, window_end=10.0)
    m2 = accepted(0, 2, t0=5.0)
    m1 = accepted(0, 1, t0=1.0)
    for m, t in ((m2, 5.2), (m1, 1.5)):
        collector.on_accept(m)
        collector.on_adeliver(0, m, t)
    assert collector.latency_samples == [pytest.approx(0.5), pytest.approx(0.2)]


def test_offered_rate_counts_attempts():
    collector = MetricsCollector(1, window_start=0.0, window_end=2.0)
    for __ in range(10):
        collector.on_offered()
    assert collector.finalize().offered_rate == pytest.approx(5.0)


def test_blocked_attempts_pass_through():
    collector = MetricsCollector(1, window_start=0.0, window_end=1.0)
    assert collector.finalize(blocked_attempts=7).blocked_attempts == 7


def test_latency_percentiles():
    collector = MetricsCollector(1, window_start=0.0, window_end=100.0)
    for seq in range(100):
        m = accepted(0, seq, t0=float(seq))
        collector.on_accept(m)
        collector.on_adeliver(0, m, float(seq) + (seq + 1) / 1000.0)
    metrics = collector.finalize()
    # Latencies are 1..100 ms.
    assert metrics.latency_p50 == pytest.approx(0.050, abs=0.002)
    assert metrics.latency_p95 == pytest.approx(0.095, abs=0.002)
    assert metrics.latency_p99 == pytest.approx(0.099, abs=0.002)
    assert metrics.latency_p99 >= metrics.latency_p95 >= metrics.latency_p50


def test_percentiles_none_without_samples():
    collector = MetricsCollector(1, window_start=0.0, window_end=1.0)
    metrics = collector.finalize()
    assert metrics.latency_p50 is None
    assert metrics.latency_p95 is None
    assert metrics.latency_p99 is None


def test_single_sample_percentiles_collapse():
    collector = MetricsCollector(1, window_start=0.0, window_end=10.0)
    m = accepted(0, 0, t0=1.0)
    collector.on_accept(m)
    collector.on_adeliver(0, m, 1.25)
    metrics = collector.finalize()
    assert metrics.latency_p50 == metrics.latency_p99 == pytest.approx(0.25)
