"""Unit tests for the atomic broadcast safety checker."""

import pytest

from repro.errors import OrderingViolation
from repro.metrics.ordering import OrderingChecker
from repro.types import AppMessage, MessageId


def msg(sender, seq):
    return AppMessage(MessageId(sender, seq), size=1, abcast_time=0.0)


def checker_with(sequences, abcast=None, n=None):
    n = n if n is not None else len(sequences)
    checker = OrderingChecker(n)
    all_messages = {}
    for sequence in sequences:
        for m in sequence:
            all_messages[m.msg_id] = m
    for m in (abcast if abcast is not None else all_messages.values()):
        checker.on_abcast(m)
    for pid, sequence in enumerate(sequences):
        for m in sequence:
            checker.on_adeliver(pid, m, 0.0)
    return checker


def test_identical_sequences_pass():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a, b], [a, b], [a, b]])
    checker.verify(expect_all_delivered=True)


def test_prefixes_pass_without_completeness():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a, b], [a], []])
    checker.verify()  # prefixes are fine mid-run


def test_prefix_gap_fails_uniform_agreement_when_complete():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a, b], [a], [a, b]])
    with pytest.raises(OrderingViolation, match="uniform agreement"):
        checker.verify(expect_all_delivered=True)


def test_total_order_violation_detected():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a, b], [b, a]])
    with pytest.raises(OrderingViolation, match="total order"):
        checker.verify()


def test_duplicate_delivery_detected():
    a = msg(0, 0)
    checker = checker_with([[a, a], [a]])
    with pytest.raises(OrderingViolation, match="integrity"):
        checker.verify()


def test_delivery_of_never_abcast_message_detected():
    a, ghost = msg(0, 0), msg(9, 9)
    checker = checker_with([[a, ghost], [a, ghost]], abcast=[a])
    with pytest.raises(OrderingViolation, match="integrity"):
        checker.verify()


def test_validity_failure_detected():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a], [a]], abcast=[a, b])
    with pytest.raises(OrderingViolation, match="validity"):
        checker.verify(expect_all_delivered=True)


def test_crashed_process_prefix_is_allowed():
    a, b = msg(0, 0), msg(1, 0)
    checker = checker_with([[a, b], [a, b], [a]])
    # p2 crashed mid-run: exclude it from the correct set.
    checker.verify(correct={0, 1}, expect_all_delivered=True)


def test_message_abcast_by_crashed_process_need_not_be_delivered():
    a = msg(0, 0)  # abcast by p0, which crashed before diffusing
    checker = checker_with([[], [], []], abcast=[a], n=3)
    checker.verify(correct={1, 2}, expect_all_delivered=True)


def test_sequence_accessor():
    a = msg(0, 0)
    checker = checker_with([[a], [a]])
    assert checker.sequence(0) == (a.msg_id,)
