"""Unit tests for the statistics helpers."""

import pytest

from repro.errors import MetricsError
from repro.metrics.stats import (
    is_stationary,
    mean,
    mean_confidence_interval,
    relative_difference,
)


def test_mean():
    assert mean([1.0, 2.0, 3.0]) == 2.0


def test_mean_of_empty_raises():
    with pytest.raises(MetricsError):
        mean([])


def test_confidence_interval_contains_the_mean():
    ci = mean_confidence_interval([10.0, 12.0, 11.0, 9.0])
    assert ci.low <= ci.mean <= ci.high
    assert ci.mean == pytest.approx(10.5)
    assert ci.count == 4
    assert ci.confidence == 0.95


def test_single_observation_has_zero_width():
    ci = mean_confidence_interval([5.0])
    assert ci.mean == 5.0
    assert ci.half_width == 0.0


def test_identical_observations_have_zero_width():
    ci = mean_confidence_interval([3.0, 3.0, 3.0])
    assert ci.half_width == pytest.approx(0.0)


def test_wider_spread_gives_wider_interval():
    narrow = mean_confidence_interval([10.0, 10.1, 9.9])
    wide = mean_confidence_interval([5.0, 15.0, 10.0])
    assert wide.half_width > narrow.half_width


def test_empty_confidence_interval_raises():
    with pytest.raises(MetricsError):
        mean_confidence_interval([])


def test_interval_str_format():
    assert "±" in str(mean_confidence_interval([1.0, 2.0]))


def test_single_observation_str_has_no_interval():
    # "5.000 ± 0.000" would misread as measured zero variance; one
    # sample renders as its value flagged with the ensemble size.
    text = str(mean_confidence_interval([5.0]))
    assert "±" not in text
    assert "n=1" in text
    assert "5.000" in text


def test_nan_mean_renders_as_na_and_keeps_width_finite():
    ci = mean_confidence_interval([float("nan")])
    assert str(ci) == "n/a"
    assert ci.half_width == 0.0


def test_nan_values_in_ensemble_never_produce_nan_width():
    ci = mean_confidence_interval([1.0, float("nan"), 2.0])
    assert ci.half_width == ci.half_width  # not NaN
    assert ci.half_width == 0.0
    assert str(ci) == "n/a"


def test_relative_difference():
    assert relative_difference(100.0, 110.0) == pytest.approx(10 / 110)
    assert relative_difference(0.0, 0.0) == 0.0
    assert relative_difference(-10.0, 10.0) == 2.0


def test_stationarity_accepts_similar_halves():
    assert is_stationary([1.0, 1.1], [1.05, 0.95])


def test_stationarity_rejects_drift():
    assert not is_stationary([1.0, 1.0], [2.0, 2.0])


def test_stationarity_with_insufficient_data_passes():
    assert is_stationary([], [1.0])
    assert is_stationary([1.0], [])
