"""Property wall for the mergeable log-bucketed latency histogram.

Pins the two claims the population layer's reporting rests on: merging
is a commutative monoid over histograms (so per-process, per-seed and
per-run histograms can be combined in any order or grouping), and a
percentile read from a merged histogram equals the exact percentile of
the concatenated samples up to one bucket width (≈ 5.9 % relative).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import MetricsError
from repro.metrics.stats import (
    BUCKETS_PER_DECADE,
    HISTOGRAM_MIN,
    LatencyHistogram,
)

#: One relative bucket width: the guaranteed percentile resolution.
BUCKET_FACTOR = 10 ** (1.0 / BUCKETS_PER_DECADE)

latencies = st.floats(
    min_value=HISTOGRAM_MIN, max_value=100.0, allow_nan=False
)
sample_lists = st.lists(latencies, max_size=60)
fractions = st.sampled_from([0.0, 0.5, 0.9, 0.99, 0.999, 1.0])


def _exact_percentile(ordered: list[float], fraction: float) -> float:
    """The collector's nearest-rank rule, on raw samples."""
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


@given(sample_lists, sample_lists)
def test_merge_is_commutative(a, b):
    ha, hb = LatencyHistogram.of(a), LatencyHistogram.of(b)
    assert ha.merge(hb) == hb.merge(ha)


@given(sample_lists, sample_lists, sample_lists)
def test_merge_is_associative(a, b, c):
    ha, hb, hc = (LatencyHistogram.of(s) for s in (a, b, c))
    assert ha.merge(hb).merge(hc) == ha.merge(hb.merge(hc))


@given(sample_lists)
def test_empty_histogram_is_the_merge_identity(a):
    h = LatencyHistogram.of(a)
    empty = LatencyHistogram()
    assert h.merge(empty) == h
    assert empty.merge(h) == h


@given(sample_lists, sample_lists)
def test_merge_equals_histogram_of_concatenation(a, b):
    merged = LatencyHistogram.of(a).merge(LatencyHistogram.of(b))
    assert merged == LatencyHistogram.of(a + b)
    assert merged.total == len(a) + len(b)


@settings(max_examples=200)
@given(
    st.lists(latencies, min_size=1, max_size=60),
    sample_lists,
    fractions,
)
def test_merged_percentile_matches_exact_within_one_bucket_width(a, b, q):
    merged = LatencyHistogram.of(a).merge(LatencyHistogram.of(b))
    exact = _exact_percentile(sorted(a + b), q)
    reported = merged.percentile(q)
    # The reported value is the containing bucket's upper bound: never
    # below the exact sample, never more than one bucket width above.
    assert reported >= exact * (1 - 1e-9)
    assert reported <= exact * BUCKET_FACTOR * (1 + 1e-9)


@given(sample_lists)
def test_counts_round_trip(a):
    h = LatencyHistogram.of(a)
    assert LatencyHistogram.from_counts(h.counts()) == h
    # The JSON form (lists instead of tuples) round-trips too.
    assert LatencyHistogram.from_counts(
        [list(pair) for pair in h.counts()]
    ) == h


def test_bucket_bounds_bracket_every_sample():
    for value in (HISTOGRAM_MIN, 1e-4, 0.003, 0.5, 7.0, 99.0):
        index = LatencyHistogram.bucket_index(value)
        low, high = LatencyHistogram.bucket_bounds(index)
        assert low * (1 + 1e-12) > value / BUCKET_FACTOR
        assert low <= value * (1 + 1e-12) < high * (1 + 1e-12)


def test_sub_resolution_samples_land_in_bucket_zero():
    h = LatencyHistogram.of([0.0, HISTOGRAM_MIN / 10])
    assert h.counts() == ((0, 2),)
    assert h.percentile(0.5) == pytest.approx(HISTOGRAM_MIN * BUCKET_FACTOR)


def test_empty_percentile_is_none_and_bad_inputs_raise():
    empty = LatencyHistogram()
    assert empty.percentile(0.999) is None
    with pytest.raises(MetricsError):
        empty.record(float("nan"))
    with pytest.raises(MetricsError):
        empty.record(-1.0)
    with pytest.raises(MetricsError):
        empty.percentile(1.5)
    with pytest.raises(MetricsError):
        LatencyHistogram.from_counts([(3, -1)])
