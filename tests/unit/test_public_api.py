"""Sanity checks on the public API surface."""

import importlib

import pytest

import repro


def test_every_exported_name_resolves():
    for name in repro.__all__:
        assert hasattr(repro, name), f"repro.__all__ exports missing {name}"


def test_version_is_a_string():
    assert isinstance(repro.__version__, str)
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize(
    "module",
    [
        "repro.sim",
        "repro.net",
        "repro.fd",
        "repro.stack",
        "repro.broadcast",
        "repro.consensus",
        "repro.abcast",
        "repro.flowcontrol",
        "repro.workload",
        "repro.metrics",
        "repro.analysis",
        "repro.experiments",
        "repro.obs",
    ],
)
def test_subpackages_import_and_export(module):
    mod = importlib.import_module(module)
    assert mod.__doc__, f"{module} lacks a module docstring"
    for name in getattr(mod, "__all__", []):
        assert hasattr(mod, name), f"{module}.__all__ exports missing {name}"


def test_quickstart_snippet_from_the_readme():
    from repro import RunConfig, StackConfig, StackKind, run_simulation

    config = RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MONOLITHIC),
        duration=0.3,
        warmup=0.1,
    )
    result = run_simulation(config, seed=1)
    assert result.metrics.throughput > 0
