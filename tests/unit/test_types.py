"""Unit tests for core value types."""

from repro.types import AppMessage, Batch, MessageId


def test_message_ids_order_by_sender_then_seq():
    assert MessageId(0, 5) < MessageId(1, 0)
    assert MessageId(1, 0) < MessageId(1, 1)
    assert sorted([MessageId(2, 0), MessageId(0, 9), MessageId(0, 1)]) == [
        MessageId(0, 1),
        MessageId(0, 9),
        MessageId(2, 0),
    ]


def test_message_ids_are_hashable_and_equal_by_value():
    assert MessageId(1, 2) == MessageId(1, 2)
    assert len({MessageId(1, 2), MessageId(1, 2), MessageId(1, 3)}) == 2


def test_batch_size_bytes_sums_payloads():
    m1 = AppMessage(MessageId(0, 0), size=100, abcast_time=0.0)
    m2 = AppMessage(MessageId(1, 0), size=250, abcast_time=0.0)
    assert Batch(0, (m1, m2)).size_bytes == 350


def test_empty_batch():
    batch = Batch(3)
    assert len(batch) == 0
    assert batch.size_bytes == 0
    assert batch.in_delivery_order() == ()


def test_delivery_order_is_canonical_regardless_of_insertion():
    m = [
        AppMessage(MessageId(2, 0), size=1, abcast_time=0.0),
        AppMessage(MessageId(0, 1), size=1, abcast_time=0.0),
        AppMessage(MessageId(0, 0), size=1, abcast_time=0.0),
    ]
    forward = Batch(0, tuple(m)).in_delivery_order()
    backward = Batch(0, tuple(reversed(m))).in_delivery_order()
    assert forward == backward
    assert [x.msg_id for x in forward] == [
        MessageId(0, 0),
        MessageId(0, 1),
        MessageId(2, 0),
    ]


def test_str_representations():
    m = AppMessage(MessageId(1, 2), size=64, abcast_time=0.0)
    assert "1:2" in str(m)
    assert "64" in str(m)
    assert "k=7" in str(Batch(7, (m,)))
