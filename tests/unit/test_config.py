"""Unit tests for configuration validation and helpers."""

import pytest

from repro.config import (
    CpuCosts,
    CrashEvent,
    FaultloadConfig,
    FlowControlConfig,
    RunConfig,
    StackKind,
    WorkloadConfig,
    modular_stack,
    monolithic_stack,
)
from repro.errors import ConfigurationError


def test_defaults_build_a_valid_config():
    config = RunConfig()
    assert config.n == 3
    assert config.total_time == config.warmup + config.duration


def test_group_size_must_be_at_least_two():
    with pytest.raises(ConfigurationError):
        RunConfig(n=1)


def test_duration_must_be_positive():
    with pytest.raises(ConfigurationError):
        RunConfig(duration=0.0)


def test_warmup_may_be_zero_but_not_negative():
    assert RunConfig(warmup=0.0).warmup == 0.0
    with pytest.raises(ConfigurationError):
        RunConfig(warmup=-0.1)


def test_workload_validation():
    with pytest.raises(ConfigurationError):
        WorkloadConfig(offered_load=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadConfig(message_size=-1)


def test_per_process_rate_splits_offered_load():
    workload = WorkloadConfig(offered_load=3000.0)
    assert workload.per_process_rate(3) == 1000.0


def test_flow_control_validation():
    with pytest.raises(ConfigurationError):
        FlowControlConfig(window=0)
    with pytest.raises(ConfigurationError):
        FlowControlConfig(max_batch=0)
    assert FlowControlConfig(max_batch=None).max_batch is None


def test_crash_targets_must_exist():
    faultload = FaultloadConfig(crashes=(CrashEvent(0.1, 5),))
    with pytest.raises(ConfigurationError):
        RunConfig(n=3, faultload=faultload)


def test_majority_must_stay_correct():
    faultload = FaultloadConfig(crashes=(CrashEvent(0.1, 0), CrashEvent(0.2, 1)))
    with pytest.raises(ConfigurationError):
        RunConfig(n=3, faultload=faultload)
    # One crash out of three is fine.
    RunConfig(n=3, faultload=FaultloadConfig(crashes=(CrashEvent(0.1, 0),)))


def test_with_changes_replaces_fields():
    config = RunConfig()
    changed = config.with_changes(n=5, duration=9.0)
    assert changed.n == 5
    assert changed.duration == 9.0
    assert config.n == 3  # original untouched


def test_stack_constructors():
    assert modular_stack().kind is StackKind.MODULAR
    assert monolithic_stack().kind is StackKind.MONOLITHIC


def test_send_cost_serializes_only_first_copy():
    costs = CpuCosts(
        send_fixed=1e-6, send_per_byte=1e-9, serialize_per_byte=10e-9
    )
    first = costs.send_cost(1000, first_copy=True)
    later = costs.send_cost(1000, first_copy=False)
    assert first == pytest.approx(1e-6 + 1e-6 + 10e-6)
    assert later == pytest.approx(1e-6 + 1e-6)


def test_recv_cost_scales_with_size():
    costs = CpuCosts(recv_fixed=1e-6, recv_per_byte=1e-9)
    assert costs.recv_cost(0) == pytest.approx(1e-6)
    assert costs.recv_cost(1000) == pytest.approx(2e-6)


def test_crashed_processes_set():
    faultload = FaultloadConfig(crashes=(CrashEvent(0.1, 2), CrashEvent(0.5, 2)))
    assert faultload.crashed_processes() == frozenset({2})
