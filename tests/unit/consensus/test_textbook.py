"""Unit tests for the textbook Chandra–Toueg baseline."""

from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.messages import DecisionValue
from repro.stack.events import DecideIndication, ProposeRequest
from repro.types import Batch

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3):
    return ModulePump(lambda ctx: TextbookConsensus(ctx), n, bridge_rbcast=True)


def decisions(pump, pid):
    return [e for e in pump.up_events[pid] if isinstance(e, DecideIndication)]


def batches_for(k, n):
    return [Batch(k, (app_message(sender=pid),)) for pid in range(n)]


def test_round_one_runs_the_estimate_phase():
    pump = make_pump(3)
    values = batches_for(0, 3)
    pump.inject(1, ProposeRequest(0, values[1]))
    pending = pump.deliverable()
    assert [m.kind for m in pending] == ["ESTIMATE"]
    assert pending[0].dst == 0  # to the round-1 coordinator


def test_coordinator_waits_for_majority_of_estimates():
    pump = make_pump(5)
    values = batches_for(0, 5)
    pump.inject(0, ProposeRequest(0, values[0]))  # 1 estimate (own)
    pump.inject(1, ProposeRequest(0, values[1]))
    pump.run()
    assert not decisions(pump, 0)  # 2 of 3 needed estimates: no proposal
    pump.inject(2, ProposeRequest(0, values[2]))  # majority reached
    pump.run()
    assert decisions(pump, 0)


def test_good_run_decides_for_everyone():
    pump = make_pump(3)
    values = batches_for(0, 3)
    for pid in range(3):
        pump.inject(pid, ProposeRequest(0, values[pid]))
    pump.run()
    decided = [decisions(pump, pid) for pid in range(3)]
    assert all(decided)
    assert len({d[0].value for d in decided}) == 1
    # Validity: the decided value is one of the proposals.
    assert decided[0][0].value in values


def test_decision_carries_full_value_not_a_tag():
    pump = make_pump(3)
    values = batches_for(0, 3)
    for pid in range(3):
        pump.inject(pid, ProposeRequest(0, values[pid]))
    # Drain until the decision bridge message appears.
    seen_payloads = []
    while pump.deliverable():
        message = pump.deliver_next()
        if message and message.kind == "__RB_BRIDGE__":
            seen_payloads.append(message.payload.payload)
    assert seen_payloads
    assert all(isinstance(p, DecisionValue) for p in seen_payloads)


def test_crash_of_coordinator_is_tolerated():
    pump = make_pump(3)
    values = batches_for(0, 3)
    pump.crash(0)
    pump.inject(1, ProposeRequest(0, values[1]))
    pump.inject(2, ProposeRequest(0, values[2]))
    pump.suspect_everywhere(0)
    pump.run()
    d1, d2 = decisions(pump, 1), decisions(pump, 2)
    assert d1 and d2 and d1[0].value == d2[0].value


def test_textbook_and_optimized_share_round_two_machinery():
    """After a suspicion both variants use estimates; sanity-check the
    textbook variant also converges across five processes."""
    pump = make_pump(5)
    values = batches_for(0, 5)
    pump.crash(0)
    for pid in range(1, 5):
        pump.inject(pid, ProposeRequest(0, values[pid]))
    pump.suspect_everywhere(0)
    pump.run()
    final = {decisions(pump, pid)[0].value for pid in range(1, 5)}
    assert len(final) == 1
