"""Edge cases of the consensus machinery: tiny groups, even groups,
interleaved instances, stale traffic."""

from repro.consensus.messages import Ack, Proposal
from repro.consensus.optimized import OptimizedConsensus
from repro.stack.events import DecideIndication, ProposeRequest
from repro.types import Batch

from tests.conftest import app_message, net_message
from tests.harness import ModulePump


def make_pump(n):
    return ModulePump(lambda ctx: OptimizedConsensus(ctx), n, bridge_rbcast=True)


def decisions(pump, pid):
    return [e for e in pump.up_events[pid] if isinstance(e, DecideIndication)]


def batch_for(k, pid):
    return Batch(k, (app_message(sender=pid),))


def test_two_process_group_decides():
    """n=2: majority is 2, so the coordinator needs the other's ack."""
    pump = make_pump(2)
    pump.inject(0, ProposeRequest(0, batch_for(0, 0)))
    assert not decisions(pump, 0)  # own ack alone is not a majority
    pump.run()
    assert decisions(pump, 0) and decisions(pump, 1)
    assert decisions(pump, 1)[0].value == decisions(pump, 0)[0].value


def test_even_group_majority():
    """n=4: majority is 3 — the coordinator plus two acks."""
    pump = make_pump(4)
    pump.inject(0, ProposeRequest(0, batch_for(0, 0)))
    # Deliver the proposal to p1 only and its ack back: 2 < 3 majority.
    for __ in range(2):
        index = next(
            i
            for i, m in enumerate(pump.deliverable())
            if m.dst in (0, 1) and m.kind in ("PROPOSAL", "ACK")
        )
        pump.deliver_next(index)
    assert not decisions(pump, 0)
    pump.run()
    assert all(decisions(pump, pid) for pid in range(4))


def test_many_interleaved_instances_decide_independently():
    pump = make_pump(3)
    values = {}
    for k in range(6):
        values[k] = batch_for(k, 0)
        pump.inject(0, ProposeRequest(k, values[k]))
    # Shuffle-ish delivery: always pick the last queued message.
    while pump.queue:
        pump.deliver_next(len(pump.queue) - 1)
    for pid in range(3):
        decided = {d.instance: d.value for d in decisions(pump, pid)}
        assert decided == values


def test_stale_proposal_from_older_round_is_not_acked():
    pump = make_pump(3)
    module = pump.modules[2]
    # p2 is already in round 2 (it suspected p0 after proposing).
    pump.inject(2, ProposeRequest(0, batch_for(0, 2)))
    pump.suspect(2, 0)
    assert module.instance(0).round == 2
    stale = Proposal(0, 1, batch_for(0, 0))
    actions = module.handle_message(net_message("PROPOSAL", 0, 2, stale))
    acks = [a for a in actions if getattr(a, "kind", None) == "ACK"]
    assert acks == []


def test_ack_for_unproposed_round_is_inert():
    pump = make_pump(3)
    module = pump.modules[0]
    actions = module.handle_message(net_message("ACK", 1, 0, Ack(5, 3)))
    assert actions == []
    assert module.instance(5).decided is None


def test_jump_to_later_round_via_proposal():
    pump = make_pump(5)
    module = pump.modules[3]
    advanced = Proposal(0, 3, batch_for(0, 2))
    actions = module.handle_message(net_message("PROPOSAL", 2, 3, advanced))
    assert module.instance(0).round == 3
    acks = [a for a in actions if getattr(a, "kind", None) == "ACK"]
    assert len(acks) == 1
    assert acks[0].dst == 2  # the round-3 coordinator


def test_estimate_to_decided_instance_gets_help():
    pump = make_pump(3)
    pump.inject(0, ProposeRequest(0, batch_for(0, 0)))
    pump.run()
    module = pump.modules[0]
    from repro.consensus.messages import Estimate

    actions = module.handle_message(
        net_message("ESTIMATE", 2, 0, Estimate(0, 2, Batch(0), 0))
    )
    responses = [a for a in actions if getattr(a, "kind", None) == "RECOVER_RESP"]
    assert len(responses) == 1
    assert responses[0].dst == 2


def test_suspicion_without_active_instances_is_harmless():
    pump = make_pump(3)
    pump.suspect(1, 0)
    pump.run()
    assert all(not decisions(pump, pid) for pid in range(3))


def test_lone_wrong_suspicion_plus_crash_cannot_strand_the_group():
    """Regression (found by the nemesis swarm): p2 is crashed and p1
    *alone* wrongly suspects the live round-1 coordinator p0. p1 moves
    to round 2 and stops acking round 1, so neither round has a
    majority among the suspecting processes alone. The JOIN broadcast
    must pull p0 into round 2 even though p0 suspects nobody."""
    pump = make_pump(3)
    pump.crash(2)
    pump.inject(0, ProposeRequest(0, batch_for(0, 0)))
    pump.inject(1, ProposeRequest(0, batch_for(0, 1)))
    pump.suspect(1, 0)
    pump.run()
    assert decisions(pump, 0) and decisions(pump, 1)
    assert decisions(pump, 0)[0].value == decisions(pump, 1)[0].value


def test_join_for_a_fresh_instance_is_safe():
    """A JOIN may reach a process that never proposed for the instance;
    it must join with an empty estimate rather than ignore or crash."""
    from repro.consensus.messages import JoinRound

    pump = make_pump(3)
    module = pump.modules[2]
    actions = module.handle_message(net_message("JOIN", 1, 2, JoinRound(0, 2)))
    assert module.instance(0).round == 2
    estimates = [a for a in actions if getattr(a, "kind", None) == "ESTIMATE"]
    assert [a.dst for a in estimates] == [1]  # to the round-2 coordinator
