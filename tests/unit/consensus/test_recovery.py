"""Unit tests for the DECISION-tag recovery path (§3.2).

The optimized consensus broadcasts decisions as a small tag naming the
deciding round; a process that rdelivers the tag without holding that
round's proposal must recover the value explicitly. The paper notes this
can only happen when the coordinator crashes ("additional communication
steps may be required if the coordinator crashes").
"""

from repro.consensus.base import RECOVERY_RETRY_DELAY
from repro.consensus.messages import DecisionTag
from repro.consensus.optimized import OptimizedConsensus
from repro.stack.events import DecideIndication, ProposeRequest, RdeliverIndication
from repro.types import Batch

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3):
    return ModulePump(lambda ctx: OptimizedConsensus(ctx), n, bridge_rbcast=True)


def decisions(pump, pid):
    return [e for e in pump.up_events[pid] if isinstance(e, DecideIndication)]


def test_tag_without_proposal_triggers_recovery_request():
    pump = make_pump(3)
    # p2 rdelivers a decision tag for a round it never saw.
    pump.inject(2, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    requests = [m for m in pump.deliverable() if m.kind == "RECOVER_REQ"]
    assert len(requests) == 2  # asked everyone else
    assert (2, "recover-0") in pump.timers


def test_recovery_response_from_decided_process():
    pump = make_pump(3)
    value = Batch(0, (app_message(0),))
    pump.inject(0, ProposeRequest(0, value))
    # Let p0 and p1 complete; drop everything addressed to p2 so it
    # misses both the proposal and the decision (as if p2 was slow).
    while pump.deliverable():
        head = pump.deliverable()[0]
        if head.dst == 2:
            pump.drop_next()
        else:
            pump.deliver_next()
    assert decisions(pump, 0) and decisions(pump, 1)
    assert not decisions(pump, 2)
    # Now p2 learns only the tag (e.g. a late relay) and recovers.
    pump.inject(2, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    pump.run()
    assert decisions(pump, 2)
    assert decisions(pump, 2)[0].value == value


def test_recovery_retry_timer_re_asks():
    pump = make_pump(3)
    pump.inject(2, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    while pump.deliverable():
        pump.drop_next()  # first round of requests is lost to crashes
    pump.fire_timer(2, "recover-0")
    requests = [m for m in pump.deliverable() if m.kind == "RECOVER_REQ"]
    assert len(requests) == 2
    assert RECOVERY_RETRY_DELAY > 0


def test_late_proposal_completes_recovery_without_response():
    pump = make_pump(3)
    value = Batch(0, (app_message(0),))
    pump.inject(2, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    while pump.deliverable():
        pump.drop_next()
    # The round-1 proposal finally arrives (it was in flight).
    from repro.consensus.messages import Proposal
    from tests.conftest import net_message

    pump._execute(
        2,
        pump.modules[2].handle_message(
            net_message("PROPOSAL", 0, 2, Proposal(0, 1, value))
        ),
    )
    assert decisions(pump, 2)
    assert decisions(pump, 2)[0].value == value
    assert (2, "recover-0") not in pump.timers


def test_responder_uses_tagged_round_proposal_even_if_undecided():
    pump = make_pump(3)
    value = Batch(0, (app_message(0),))
    pump.inject(0, ProposeRequest(0, value))
    # Deliver the proposal to p1 only; p1 has the proposal but not the
    # decision.
    while pump.deliverable():
        head = pump.deliverable()[0]
        if head.kind == "PROPOSAL" and head.dst == 1:
            pump.deliver_next()
        else:
            pump.drop_next()
    assert not decisions(pump, 1)
    # p2 recovers; p1 can answer from the tagged round's proposal.
    pump.inject(2, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    pump.run()
    assert decisions(pump, 2)
    assert decisions(pump, 2)[0].value == value


def test_duplicate_decisions_are_idempotent():
    pump = make_pump(3)
    value = Batch(0, (app_message(0),))
    pump.inject(0, ProposeRequest(0, value))
    pump.run()
    before = len(decisions(pump, 1))
    pump.inject(1, RdeliverIndication(DecisionTag(0, 1), 24, origin=0))
    pump.run()
    assert len(decisions(pump, 1)) == before
