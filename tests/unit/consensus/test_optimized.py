"""Unit tests for the good-run-optimized consensus (§3.2)."""

from repro.consensus.optimized import OptimizedConsensus
from repro.stack.events import DecideIndication, ProposeRequest
from repro.types import Batch

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3):
    return ModulePump(lambda ctx: OptimizedConsensus(ctx), n, bridge_rbcast=True)


def decisions(pump, pid):
    return [e for e in pump.up_events[pid] if isinstance(e, DecideIndication)]


def propose_all(pump, k, batches):
    for pid, batch in enumerate(batches):
        pump.inject(pid, ProposeRequest(k, batch))


def batches_for(k, n):
    return [Batch(k, (app_message(sender=pid),)) for pid in range(n)]


def test_good_run_decides_coordinator_value_everywhere():
    pump = make_pump(3)
    values = batches_for(0, 3)
    propose_all(pump, 0, values)
    pump.run()
    for pid in range(3):
        decided = decisions(pump, pid)
        assert len(decided) == 1
        assert decided[0].instance == 0
        assert decided[0].value == values[0]  # coordinator's initial value


def test_round_one_has_no_estimate_phase():
    pump = make_pump(3)
    propose_all(pump, 0, batches_for(0, 3))
    kinds = {m.kind for m in pump.deliverable()}
    assert "ESTIMATE" not in kinds
    assert "PROPOSAL" in kinds


def test_good_run_message_pattern():
    """Proposal to n-1, acks back, then the small rbcast decision tag."""
    pump = make_pump(3)
    propose_all(pump, 0, batches_for(0, 3))
    pump.run()
    # The bridge models rbcast as n-1 deliveries; real counts are checked
    # in the integration validation tests. Here: everyone decided once.
    assert all(len(decisions(pump, pid)) == 1 for pid in range(3))


def test_participant_decides_without_having_proposed():
    pump = make_pump(3)
    pump.inject(0, ProposeRequest(0, batches_for(0, 3)[0]))
    pump.run()
    # p1 and p2 never proposed, yet decide via proposal/ack/decision flow.
    assert decisions(pump, 1) and decisions(pump, 2)


def test_late_propose_after_decision_is_harmless():
    pump = make_pump(3)
    values = batches_for(0, 3)
    pump.inject(0, ProposeRequest(0, values[0]))
    pump.run()
    pump.inject(1, ProposeRequest(0, values[1]))
    pump.run()
    assert len(decisions(pump, 1)) == 1
    assert decisions(pump, 1)[0].value == values[0]


def test_multiple_instances_are_independent():
    pump = make_pump(3)
    first = batches_for(0, 3)
    second = batches_for(1, 3)
    propose_all(pump, 0, first)
    propose_all(pump, 1, second)
    pump.run()
    for pid in range(3):
        decided = {d.instance: d.value for d in decisions(pump, pid)}
        assert decided == {0: first[0], 1: second[0]}


def test_suspected_coordinator_triggers_round_two():
    pump = make_pump(3)
    values = batches_for(0, 3)
    # The coordinator is crashed before proposing.
    pump.crash(0)
    pump.inject(1, ProposeRequest(0, values[1]))
    pump.inject(2, ProposeRequest(0, values[2]))
    pump.suspect_everywhere(0)
    pump.run()
    # Round 2 coordinator is p1; its estimate selection must pick one of
    # the proposed values, and both survivors decide the same.
    d1, d2 = decisions(pump, 1), decisions(pump, 2)
    assert d1 and d2
    assert d1[0].value == d2[0].value
    assert d1[0].value in (values[1], values[2])


def test_coordinator_crash_after_partial_decision_keeps_agreement():
    """Uniform agreement: a decided-then-crashed coordinator cannot
    diverge from what the survivors later decide."""
    pump = make_pump(3)
    values = batches_for(0, 3)
    propose_all(pump, 0, values)
    # Deliver proposal to p1 and p2, acks back to p0 -> p0 decides and
    # bridges the decision; drop the decision deliveries (crash).
    while any(m.kind == "PROPOSAL" or m.kind == "ACK" for m in pump.deliverable()):
        pump.deliver_next()
    decided_at_0 = decisions(pump, 0)
    assert decided_at_0, "coordinator should have decided"
    while pump.deliverable():
        pump.drop_next()
    pump.crash(0)
    pump.suspect_everywhere(0)
    pump.run()
    for pid in (1, 2):
        assert decisions(pump, pid)
        assert decisions(pump, pid)[0].value == decided_at_0[0].value


def test_wrong_suspicion_is_safe():
    """Suspecting a live coordinator may cost messages, never agreement."""
    pump = make_pump(3)
    values = batches_for(0, 3)
    propose_all(pump, 0, values)
    pump.suspect(1, 0)  # p1 wrongly suspects the live coordinator
    pump.run()
    decided = [decisions(pump, pid) for pid in range(3)]
    assert all(decided)
    assert len({d[0].value for d in decided}) == 1


def test_round_change_sends_estimates_to_next_coordinator():
    pump = make_pump(3)
    pump.crash(0)
    # p2 advances to round 2 and must send its estimate to p1, the round-2
    # coordinator (p1 itself records its estimate locally, no message).
    pump.inject(2, ProposeRequest(0, batches_for(0, 3)[2]))
    pump.suspect(2, 0)
    estimates = [m for m in pump.deliverable() if m.kind == "ESTIMATE"]
    assert estimates
    assert all(m.dst == 1 for m in estimates)


def test_unsuspicion_then_resuspicion_converges():
    pump = make_pump(5)
    values = batches_for(0, 5)
    pump.crash(0)
    for pid in range(1, 5):
        pump.inject(pid, ProposeRequest(0, values[pid]))
    pump.suspect_everywhere(0)
    pump.run()
    final = {decisions(pump, pid)[0].value for pid in range(1, 5)}
    assert len(final) == 1
