"""Unit tests for per-instance consensus state."""

import pytest

from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.types import Batch

from tests.conftest import app_message


def test_round_one_coordinator_is_process_zero_for_every_instance():
    for n in (3, 5, 7):
        assert coordinator_of_round(1, n) == 0


def test_coordinator_rotates_with_rounds():
    assert [coordinator_of_round(r, 3) for r in (1, 2, 3, 4)] == [0, 1, 2, 0]


def test_rounds_are_one_based():
    with pytest.raises(ValueError):
        coordinator_of_round(0, 3)


def test_instance_default_coordinator_uses_current_round():
    state = InstanceState(instance=0, n=3)
    assert state.coordinator() == 0
    state.round = 2
    assert state.coordinator() == 1
    assert state.coordinator(1) == 0


def test_best_estimate_prefers_highest_timestamp():
    state = InstanceState(instance=0, n=3)
    old = Batch(0, (app_message(0),))
    new = Batch(0, (app_message(1),))
    state.record_estimate(2, 0, 0, old)
    state.record_estimate(2, 1, 1, new)
    assert state.best_estimate(2) is new


def test_best_estimate_ts_zero_tie_prefers_larger_batch():
    state = InstanceState(instance=0, n=3)
    small = Batch(0, (app_message(0),))
    big = Batch(0, (app_message(1), app_message(1)))
    state.record_estimate(2, 2, 0, small)
    state.record_estimate(2, 0, 0, big)
    assert state.best_estimate(2) is big


def test_best_estimate_full_tie_breaks_by_sender():
    state = InstanceState(instance=0, n=3)
    a = Batch(0, (app_message(0),))
    b = Batch(0, (app_message(1),))
    state.record_estimate(2, 0, 0, a)
    state.record_estimate(2, 1, 0, b)
    assert state.best_estimate(2) is b  # higher sender pid wins ties


def test_best_estimate_requires_estimates():
    state = InstanceState(instance=0, n=3)
    with pytest.raises(ValueError):
        state.best_estimate(2)


def test_estimate_overwrite_by_same_sender():
    state = InstanceState(instance=0, n=3)
    first = Batch(0, (app_message(0),))
    second = Batch(0, (app_message(1),))
    state.record_estimate(2, 1, 0, first)
    state.record_estimate(2, 1, 3, second)
    assert state.best_estimate(2) is second
    assert len(state.estimates[2]) == 1
