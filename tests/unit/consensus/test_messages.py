"""Unit tests for consensus wire payload size accounting."""

from repro.consensus.messages import (
    CONTROL_OVERHEAD,
    Ack,
    DecisionTag,
    DecisionValue,
    Estimate,
    Proposal,
    RecoveryRequest,
)
from repro.stack.events import batch_wire_size
from repro.types import Batch

from tests.conftest import app_message


def test_control_messages_are_small_and_constant():
    assert Ack(3, 1).wire_size == CONTROL_OVERHEAD
    assert DecisionTag(3, 1).wire_size == CONTROL_OVERHEAD
    assert RecoveryRequest(3, 1).wire_size == CONTROL_OVERHEAD


def test_value_messages_scale_with_batch():
    batch = Batch(0, (app_message(size=1000), app_message(size=500)))
    expected = batch_wire_size(batch) + CONTROL_OVERHEAD
    assert Proposal(0, 1, batch).wire_size == expected
    assert Estimate(0, 2, batch, 1).wire_size == expected
    assert DecisionValue(0, batch).wire_size == expected


def test_decision_tag_much_smaller_than_decision_value():
    batch = Batch(0, tuple(app_message(size=16384) for __ in range(4)))
    assert DecisionTag(0, 1).wire_size * 100 < DecisionValue(0, batch).wire_size
