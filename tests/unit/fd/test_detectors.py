"""Unit tests for the three failure detector implementations."""

import pytest

from repro.config import CpuCosts, NetworkConfig
from repro.errors import ProtocolError
from repro.fd.base import FailureDetector
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.fd.oracle import OracleFailureDetector
from repro.fd.scripted import ScriptedFailureDetector
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.stack.module import Microprotocol
from repro.stack.runtime import ProcessRuntime

from tests.conftest import make_ctx, net_message

FAST_NET = NetworkConfig(bandwidth=1e12, propagation=1e-6)
TINY_COSTS = CpuCosts(
    dispatch=0.0, boundary_crossing=0.0, send_fixed=0.0, recv_fixed=0.0,
    serialize_per_byte=0.0, send_per_byte=0.0, recv_per_byte=0.0, adeliver=0.0,
)


class SuspicionSpy(Microprotocol):
    name = "spy"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.changes = []

    def handle_suspicion(self, suspects):
        self.changes.append(suspects)
        return []


def build_group(n, detector_factory):
    kernel = Kernel()
    network = Network(kernel, n, FAST_NET)
    runtimes, detectors, spies = [], [], []
    for pid in range(n):
        ctx = make_ctx(pid=pid, n=n)
        spy = SuspicionSpy(ctx)
        runtime = ProcessRuntime(
            pid, [spy], kernel=kernel, network=network,
            costs=TINY_COSTS, net_config=FAST_NET,
        )
        detector = detector_factory()
        runtime.attach_failure_detector(detector)
        runtimes.append(runtime)
        detectors.append(detector)
        spies.append(spy)
    for runtime in runtimes:
        runtime.start()
    return kernel, runtimes, detectors, spies


def test_unattached_detector_rejects_use():
    with pytest.raises(ProtocolError):
        FailureDetector().runtime


def test_base_detector_rejects_unknown_messages():
    kernel, runtimes, detectors, spies = build_group(2, FailureDetector)
    with pytest.raises(ProtocolError):
        detectors[0].handle_message(net_message("WAT", 1, 0, module="fd"))


# -- oracle ----------------------------------------------------------------


def test_oracle_suspects_after_detection_delay():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: OracleFailureDetector(detection_delay=0.2)
    )
    detectors[0].observe_crash(2)
    kernel.run(until=0.1)
    assert detectors[0].suspects() == frozenset()
    kernel.run(until=0.3)
    assert detectors[0].suspects() == frozenset({2})
    assert spies[0].changes == [frozenset({2})]


def test_oracle_rejects_negative_delay():
    with pytest.raises(ValueError):
        OracleFailureDetector(-1.0)


def test_oracle_never_suspects_spontaneously():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: OracleFailureDetector(0.1)
    )
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    assert all(d.suspects() == frozenset() for d in detectors)


# -- scripted -----------------------------------------------------------------


def test_scripted_suspicion_schedule():
    def factory():
        fd = ScriptedFailureDetector()
        fd.suspect_at(1.0, 2)
        fd.unsuspect_at(2.0, 2)
        return fd

    kernel, runtimes, detectors, spies = build_group(3, factory)
    kernel.run(until=1.5)
    assert detectors[0].suspects() == frozenset({2})
    kernel.run(until=2.5)
    assert detectors[0].suspects() == frozenset()
    assert spies[0].changes == [frozenset({2}), frozenset()]


def test_scripted_wrong_suspicion_of_live_process():
    def factory():
        fd = ScriptedFailureDetector()
        fd.suspect_at(0.5, 0)
        return fd

    kernel, runtimes, detectors, spies = build_group(2, factory)
    kernel.run(until=1.0)
    # p0 is alive yet suspected everywhere, including by itself.
    assert all(d.suspects() == frozenset({0}) for d in detectors)
    assert runtimes[0].alive


# -- heartbeat -----------------------------------------------------------------


def test_heartbeat_quiet_group_never_suspects():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: HeartbeatFailureDetector(0.05, 0.2)
    )
    kernel.run(until=2.0)
    assert all(d.suspects() == frozenset() for d in detectors)


def test_heartbeat_detects_a_crash():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: HeartbeatFailureDetector(0.05, 0.2)
    )
    kernel.schedule(1.0, runtimes[2].crash)
    kernel.run(until=2.0)
    assert detectors[0].suspects() == frozenset({2})
    assert detectors[1].suspects() == frozenset({2})


def test_heartbeat_unsuspects_after_delayed_messages_resume():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: HeartbeatFailureDetector(0.05, 0.2)
    )
    # Delay heartbeats from p2 between t=0.5 and t=1.0 by routing through
    # a filter window: drop them during that interval.
    network = runtimes[0].network
    network.faults.drop_matching(
        lambda m: m.src == 2
        and m.module == "fd"
        and 0.5 <= kernel.now <= 1.0
    )
    kernel.run(until=0.95)
    assert 2 in detectors[0].suspects()
    kernel.run(until=2.0)
    assert 2 not in detectors[0].suspects()


def test_heartbeat_validation():
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(0.0, 1.0)
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(0.1, 0.1)


def test_heartbeats_cost_network_messages():
    kernel, runtimes, detectors, spies = build_group(
        2, lambda: HeartbeatFailureDetector(0.05, 0.2)
    )
    kernel.run(until=1.0)
    assert runtimes[0].network.stats.messages_by_kind["HEARTBEAT"] > 10


def test_heartbeat_rejects_non_heartbeat_without_counting_it_as_liveness():
    """Regression: the non-HEARTBEAT branch must not fall through into
    the aliveness bookkeeping (updating _last_heard / un-suspecting)."""
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: HeartbeatFailureDetector(0.05, 0.2)
    )
    detector = detectors[0]
    detector.force_suspect(2)
    assert 2 in detector.suspects()
    heard_before = dict(detector._last_heard)
    with pytest.raises(ProtocolError):
        detector.handle_message(net_message("WAT", 2, 0, module="fd"))
    assert detector._last_heard == heard_before
    assert 2 in detector.suspects()


def test_force_suspect_and_retract_are_published_to_the_stack():
    kernel, runtimes, detectors, spies = build_group(
        3, lambda: OracleFailureDetector(0.1)
    )
    detectors[0].force_suspect(1)
    assert detectors[0].suspects() == frozenset({1})
    detectors[0].retract_suspicion(1)
    assert detectors[0].suspects() == frozenset()
    assert spies[0].changes == [frozenset({1}), frozenset()]
