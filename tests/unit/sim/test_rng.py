"""Unit tests for named RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream_object():
    reg = RngRegistry(seed=1)
    assert reg.stream("a") is reg.stream("a")


def test_streams_are_reproducible_across_registries():
    a = RngRegistry(seed=42).stream("workload.p0")
    b = RngRegistry(seed=42).stream("workload.p0")
    assert [a.random() for __ in range(5)] == [b.random() for __ in range(5)]


def test_different_names_give_independent_draws():
    reg = RngRegistry(seed=42)
    a = [reg.stream("a").random() for __ in range(5)]
    b = [reg.stream("b").random() for __ in range(5)]
    assert a != b


def test_different_seeds_give_different_draws():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_adding_a_stream_does_not_perturb_existing_ones():
    reg1 = RngRegistry(seed=9)
    s1 = reg1.stream("stable")
    first = s1.random()
    reg2 = RngRegistry(seed=9)
    reg2.stream("newcomer")  # extra stream created before "stable"
    s2 = reg2.stream("stable")
    assert s2.random() == first


def test_seed_property():
    assert RngRegistry(seed=5).seed == 5
