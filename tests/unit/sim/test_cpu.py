"""Unit tests for the single-server CPU model."""

import pytest

from repro.errors import SimulationError
from repro.sim.cpu import Cpu
from repro.sim.kernel import Kernel


def test_work_starts_immediately_when_idle():
    kernel = Kernel()
    cpu = Cpu(kernel)
    done = cpu.execute(0.5)
    assert done == 0.5
    assert cpu.busy_until == 0.5


def test_work_queues_fifo_behind_earlier_work():
    kernel = Kernel()
    cpu = Cpu(kernel)
    cpu.execute(1.0)
    done = cpu.execute(0.5)
    assert done == 1.5


def test_callback_fires_at_completion_time():
    kernel = Kernel()
    cpu = Cpu(kernel)
    completions = []
    cpu.execute(0.25, lambda: completions.append(kernel.now))
    cpu.execute(0.25, lambda: completions.append(kernel.now))
    kernel.run()
    assert completions == [0.25, 0.5]


def test_idle_gap_is_not_worked_through():
    kernel = Kernel()
    cpu = Cpu(kernel)
    cpu.execute(0.1)
    kernel.schedule(1.0, lambda: None)
    kernel.run()  # now = 1.0, CPU idle since 0.1
    done = cpu.execute(0.2)
    assert done == pytest.approx(1.2)


def test_busy_time_accumulates_service_only():
    kernel = Kernel()
    cpu = Cpu(kernel)
    cpu.execute(0.1)
    cpu.execute(0.3)
    assert cpu.busy_time == pytest.approx(0.4)


def test_utilization_is_clamped():
    kernel = Kernel()
    cpu = Cpu(kernel)
    cpu.execute(2.0)
    assert cpu.utilization(1.0) == 1.0
    assert cpu.utilization(4.0) == pytest.approx(0.5)
    assert cpu.utilization(0.0) == 0.0


def test_speed_scales_service_time():
    kernel = Kernel()
    cpu = Cpu(kernel, speed=2.0)
    assert cpu.execute(1.0) == pytest.approx(0.5)


def test_negative_cost_rejected():
    cpu = Cpu(Kernel())
    with pytest.raises(SimulationError):
        cpu.execute(-1.0)


def test_invalid_speed_rejected():
    with pytest.raises(SimulationError):
        Cpu(Kernel(), speed=0.0)


def test_halted_cpu_rejects_work():
    cpu = Cpu(Kernel())
    cpu.halt()
    with pytest.raises(SimulationError):
        cpu.execute(0.1)


def test_zero_cost_work_completes_now():
    kernel = Kernel()
    cpu = Cpu(kernel)
    assert cpu.execute(0.0) == 0.0
