"""Unit tests for the simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Kernel


def test_run_executes_in_time_order():
    kernel = Kernel()
    seen = []
    kernel.schedule(2.0, lambda: seen.append(("b", kernel.now)))
    kernel.schedule(1.0, lambda: seen.append(("a", kernel.now)))
    kernel.run()
    assert seen == [("a", 1.0), ("b", 2.0)]


def test_now_advances_to_event_times():
    kernel = Kernel()
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    assert kernel.now == 5.0


def test_run_until_stops_before_later_events():
    kernel = Kernel()
    seen = []
    kernel.schedule(1.0, lambda: seen.append("early"))
    kernel.schedule(10.0, lambda: seen.append("late"))
    end = kernel.run(until=5.0)
    assert seen == ["early"]
    assert end == 5.0
    assert kernel.now == 5.0  # fast-forwarded exactly to the horizon


def test_run_can_resume_after_until():
    kernel = Kernel()
    seen = []
    kernel.schedule(1.0, lambda: seen.append("a"))
    kernel.schedule(3.0, lambda: seen.append("b"))
    kernel.run(until=2.0)
    kernel.run()
    assert seen == ["a", "b"]


def test_events_can_schedule_more_events():
    kernel = Kernel()
    seen = []

    def first():
        kernel.schedule(1.0, lambda: seen.append(kernel.now))

    kernel.schedule(1.0, first)
    kernel.run()
    assert seen == [2.0]


def test_stop_exits_the_loop():
    kernel = Kernel()
    seen = []
    kernel.schedule(1.0, kernel.stop)
    kernel.schedule(2.0, lambda: seen.append("should not run"))
    kernel.run()
    assert seen == []
    assert kernel.pending_events == 1


def test_negative_delay_rejected():
    kernel = Kernel()
    with pytest.raises(SimulationError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected():
    kernel = Kernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    with pytest.raises(SimulationError):
        kernel.schedule_at(0.5, lambda: None)


def test_event_budget_guards_against_livelock():
    kernel = Kernel(max_events=100)

    def loop():
        kernel.schedule(0.0, loop)

    kernel.schedule(0.0, loop)
    with pytest.raises(SimulationError, match="event budget"):
        kernel.run()


def test_cancelled_event_does_not_run():
    kernel = Kernel()
    seen = []
    handle = kernel.schedule(1.0, lambda: seen.append("x"))
    handle.cancel()
    kernel.run()
    assert seen == []


def test_events_executed_counter():
    kernel = Kernel()
    for delay in (1.0, 2.0, 3.0):
        kernel.schedule(delay, lambda: None)
    kernel.run()
    assert kernel.events_executed == 3


def test_rng_is_seeded_from_kernel_seed():
    draws_a = Kernel(seed=7).rng.stream("x").random()
    draws_b = Kernel(seed=7).rng.stream("x").random()
    draws_c = Kernel(seed=8).rng.stream("x").random()
    assert draws_a == draws_b
    assert draws_a != draws_c
