"""Unit tests for the event calendar."""

from repro.sim.eventq import EventQueue


def test_pop_returns_events_in_time_order():
    q = EventQueue()
    order = []
    q.push(3.0, lambda: order.append("c"))
    q.push(1.0, lambda: order.append("a"))
    q.push(2.0, lambda: order.append("b"))
    while (event := q.pop()) is not None:
        event.callback()
    assert order == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    q = EventQueue()
    order = []
    for tag in ("first", "second", "third"):
        q.push(5.0, lambda t=tag: order.append(t))
    while (event := q.pop()) is not None:
        event.callback()
    assert order == ["first", "second", "third"]


def test_cancelled_events_are_skipped():
    q = EventQueue()
    keep = q.push(1.0, lambda: "keep")
    cancel = q.push(0.5, lambda: "cancel")
    cancel.cancel()
    assert q.pop() is keep
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    event = q.push(1.0, lambda: None)
    event.cancel()
    event.cancel()
    assert q.pop() is None


def test_peek_time_skips_cancelled_head():
    q = EventQueue()
    head = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    head.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_len_counts_entries():
    q = EventQueue()
    assert len(q) == 0
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2


def test_pop_on_empty_returns_none():
    assert EventQueue().pop() is None
