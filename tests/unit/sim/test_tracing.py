"""Unit tests for the trace recorder."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.tracing import NullTraceRecorder, TraceRecorder


def test_records_are_appended_and_counted():
    trace = TraceRecorder()
    trace.record(1.0, "net.send", 0, "x")
    trace.record(2.0, "net.recv", 1, "y")
    assert len(trace) == 2
    assert trace.count("net") == 2
    assert trace.count("net.send") == 1


def test_select_filters_by_prefix():
    trace = TraceRecorder()
    trace.record(1.0, "abcast.adeliver", 0)
    trace.record(2.0, "net.send", 0)
    selected = list(trace.select("abcast"))
    assert len(selected) == 1
    assert selected[0].category == "abcast.adeliver"


def test_disabled_recorder_drops_records():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "x", 0)
    assert len(trace) == 0


def test_clear_empties_the_trace():
    trace = TraceRecorder()
    trace.record(1.0, "x", 0)
    trace.clear()
    assert len(trace) == 0


def test_null_recorder_never_records():
    trace = NullTraceRecorder()
    trace.record(1.0, "x", 0)
    assert len(trace) == 0
    assert trace.enabled is False


def test_record_fields_roundtrip():
    trace = TraceRecorder()
    trace.record(3.5, "fd.change", 2, frozenset({1}))
    record = next(trace.select("fd"))
    assert record.time == 3.5
    assert record.process == 2
    assert record.detail == frozenset({1})


class TestRingBuffer:
    def test_below_cap_behaves_append_only(self):
        trace = TraceRecorder(cap=5)
        for i in range(3):
            trace.record(float(i), "x", 0, i)
        assert len(trace) == 3
        assert trace.dropped_records == 0
        assert [r.detail for r in trace.records()] == [0, 1, 2]

    def test_cap_evicts_oldest_and_counts_drops(self):
        trace = TraceRecorder(cap=3)
        for i in range(5):
            trace.record(float(i), "x", 0, i)
        assert len(trace) == 3
        assert trace.dropped_records == 2
        assert [r.detail for r in trace.records()] == [2, 3, 4]

    def test_records_unwinds_after_full_wraparound(self):
        trace = TraceRecorder(cap=3)
        for i in range(7):
            trace.record(float(i), "x", 0, i)
        # 7 records through a cap-3 ring: kept 4, 5, 6 in time order.
        assert [r.detail for r in trace.records()] == [4, 5, 6]
        assert trace.dropped_records == 4

    def test_select_respects_ring_order(self):
        trace = TraceRecorder(cap=2)
        trace.record(0.0, "a.one", 0)
        trace.record(1.0, "b.two", 0)
        trace.record(2.0, "a.three", 0)
        assert [r.category for r in trace.select("a")] == ["a.three"]
        assert trace.count("b") == 1

    def test_clear_resets_ring_state(self):
        trace = TraceRecorder(cap=2)
        for i in range(5):
            trace.record(float(i), "x", 0, i)
        trace.clear()
        assert len(trace) == 0
        assert trace.dropped_records == 0
        trace.record(9.0, "x", 0, "fresh")
        assert [r.detail for r in trace.records()] == ["fresh"]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecorder(cap=0)
        with pytest.raises(ConfigurationError):
            TraceRecorder(cap=-1)

    def test_unbounded_recorder_never_drops(self):
        trace = TraceRecorder()
        for i in range(1000):
            trace.record(float(i), "x", 0)
        assert len(trace) == 1000
        assert trace.dropped_records == 0
