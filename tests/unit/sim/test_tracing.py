"""Unit tests for the trace recorder."""

from repro.sim.tracing import NullTraceRecorder, TraceRecorder


def test_records_are_appended_and_counted():
    trace = TraceRecorder()
    trace.record(1.0, "net.send", 0, "x")
    trace.record(2.0, "net.recv", 1, "y")
    assert len(trace) == 2
    assert trace.count("net") == 2
    assert trace.count("net.send") == 1


def test_select_filters_by_prefix():
    trace = TraceRecorder()
    trace.record(1.0, "abcast.adeliver", 0)
    trace.record(2.0, "net.send", 0)
    selected = list(trace.select("abcast"))
    assert len(selected) == 1
    assert selected[0].category == "abcast.adeliver"


def test_disabled_recorder_drops_records():
    trace = TraceRecorder(enabled=False)
    trace.record(1.0, "x", 0)
    assert len(trace) == 0


def test_clear_empties_the_trace():
    trace = TraceRecorder()
    trace.record(1.0, "x", 0)
    trace.clear()
    assert len(trace) == 0


def test_null_recorder_never_records():
    trace = NullTraceRecorder()
    trace.record(1.0, "x", 0)
    assert len(trace) == 0
    assert trace.enabled is False


def test_record_fields_roundtrip():
    trace = TraceRecorder()
    trace.record(3.5, "fd.change", 2, frozenset({1}))
    record = next(trace.select("fd"))
    assert record.time == 3.5
    assert record.process == 2
    assert record.detail == frozenset({1})
