"""Rendering of nemesis trace slices and per-message timelines."""

from repro.net.message import NetMessage
from repro.obs.format import format_message_path, format_trace_slice
from repro.sim.tracing import TraceRecord
from repro.types import MessageId


class TestTraceSlice:
    def test_classifies_events_into_layers(self):
        lines = [
            "t=1.250000 p0 adeliver m(0,1)",
            "t=1.251000 p1 decide instance 4",
            "t=1.252000 p2 rdeliver batch",
            "t=1.300000 fault: partition {0} | {1,2}",
            "t=1.400000 VIOLATION agreement broken",
        ]
        out = format_trace_slice(lines)
        rows = out.splitlines()
        assert rows[0].split() == ["t", "proc", "layer", "event"]
        assert "abcast" in rows[1] and "p0" in rows[1]
        assert "consensus" in rows[2]
        assert "rbcast" in rows[3]
        assert "fault" in rows[4]
        assert "violation" in rows[5]

    def test_unparseable_lines_pass_through(self):
        out = format_trace_slice(["not a trace line"])
        assert "not a trace line" in out


class TestMessagePath:
    def records(self):
        msg = MessageId(0, 3)
        net = NetMessage(
            kind="seq", module="abcast", src=0, dst=1, payload=None,
            payload_size=512, header_size=24,
        )
        return [
            TraceRecord(0.100, "abcast.submit", 0, msg),
            TraceRecord(0.1004, "net.send", 0, net),
            TraceRecord(0.1009, "net.recv", 1, net),
            TraceRecord(0.101, "span.adeliver", 1, ("app", 1e-05, msg)),
            TraceRecord(0.101, "abcast.adeliver", 1, msg),
        ]

    def test_timeline_rows_and_deltas(self):
        out = format_message_path(self.records())
        rows = out.splitlines()
        assert rows[0].split()[:3] == ["t", "(ms)", "+µs"]
        assert "submit" in rows[1]
        assert "seq" in rows[2] and "p0->p1" in rows[2]
        assert "adeliver upcall in app" in rows[4]
        assert "adeliver" in rows[5]
        # Delta column: second row is +400µs after the submit.
        assert "+400" in rows[2]

    def test_empty_path_reads_as_such(self):
        assert "no records" in format_message_path([])
