"""Span extraction, schema validation and the span-balance invariant."""

from repro.obs.spans import (
    SPAN_ARG_KEYS,
    adelivers,
    message_path,
    span_balance,
    spans_from_serialized,
    spans_from_trace,
    submits,
    validate_spans,
)
from repro.sim.tracing import TraceRecorder
from repro.types import MessageId


class TestExtraction:
    def test_traced_run_emits_spans(self, modular_run):
        __, trace = modular_run
        spans = spans_from_trace(trace)
        assert spans
        assert {s.name for s in spans} <= set(SPAN_ARG_KEYS)

    def test_spans_conform_to_schema(self, modular_run):
        __, trace = modular_run
        assert validate_spans(spans_from_trace(trace)) == []

    def test_span_starts_and_durations_nonnegative(self, modular_run):
        __, trace = modular_run
        for span in spans_from_trace(trace):
            assert span.start >= 0.0
            assert span.duration >= 0.0

    def test_all_span_kinds_observed(self, modular_run):
        __, trace = modular_run
        # A modular stack under load exercises the full schema: inject,
        # receive, send, boundary crossing and adeliver upcall.
        assert {s.name for s in spans_from_trace(trace)} == set(SPAN_ARG_KEYS)

    def test_serialized_roundtrip_matches_in_memory(self, modular_run):
        __, trace = modular_run
        rows = [
            [r.time, r.category, r.process, list(r.detail)]
            for r in trace.select("span.")
        ]
        assert spans_from_serialized(rows) == spans_from_trace(trace)

    def test_serialized_rows_skip_non_span_categories(self):
        rows = [
            [0.5, "abcast.submit", 0, [0, 1]],
            [0.6, "span.recv", 1, ["abcast", 0.001, "seq"]],
        ]
        [span] = spans_from_serialized(rows)
        assert span.name == "recv"
        assert span.layer == "abcast"
        assert span.args == (("kind", "seq"),)


class TestValidation:
    def test_rejects_unknown_name_and_bad_args(self):
        rows = [
            [0.0, "span.teleport", 0, ["abcast", 0.001]],
            [0.0, "span.recv", 0, ["abcast", 0.001]],  # missing kind
            [0.0, "span.recv", 0, ["abcast", -0.5, "seq"]],
        ]
        errors = validate_spans(spans_from_serialized(rows))
        assert len(errors) == 3
        assert "unknown span name" in errors[0]
        assert "schema" in errors[1]
        assert "negative duration" in errors[2]


class TestBalance:
    def test_healthy_run_is_balanced(self, modular_run):
        result, trace = modular_run
        assert span_balance(
            trace, correct=range(result.config.n), before=0.3
        ) == []

    def test_markers_are_paired(self, modular_run):
        result, trace = modular_run
        submitted = {m for __, __, m in submits(trace)}
        delivered = {m for __, __, m in adelivers(trace)}
        assert delivered <= submitted

    def test_double_delivery_detected(self):
        trace = TraceRecorder()
        msg = MessageId(0, 0)
        trace.record(0.0, "abcast.submit", 0, msg)
        trace.record(0.1, "abcast.adeliver", 1, msg)
        trace.record(0.2, "abcast.adeliver", 1, msg)
        [error] = span_balance(trace)
        assert "twice" in error

    def test_delivery_without_submit_detected(self):
        trace = TraceRecorder()
        trace.record(0.1, "abcast.adeliver", 2, MessageId(0, 7))
        [error] = span_balance(trace)
        assert "without a submit" in error

    def test_missing_delivery_detected(self):
        trace = TraceRecorder()
        msg = MessageId(0, 0)
        trace.record(0.0, "abcast.submit", 0, msg)
        trace.record(0.1, "abcast.adeliver", 0, msg)
        [error] = span_balance(trace, correct={0, 1}, before=1.0)
        assert "never adelivered" in error and "[1]" in error

    def test_dropped_records_make_balance_unprovable(self):
        trace = TraceRecorder(cap=1)
        trace.record(0.0, "abcast.submit", 0, MessageId(0, 0))
        trace.record(0.1, "abcast.submit", 0, MessageId(0, 1))
        [finding] = span_balance(trace)
        assert "dropped" in finding and "--trace-cap" in finding


class TestMessagePath:
    def test_path_is_time_ordered_and_complete(self, modular_run):
        __, trace = modular_run
        t0, __, msg = sorted(submits(trace))[0]
        path = message_path(trace, msg)
        times = [r.time for r in path]
        assert times == sorted(times)
        categories = {r.category for r in path}
        assert "abcast.submit" in categories
        assert "abcast.adeliver" in categories
        assert any(c.startswith("net.") for c in categories)
