"""Chrome-trace export: structure, validation and file round-trip."""

import json

from repro.obs.perfetto import (
    chrome_trace,
    merge_traces,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import Span, spans_from_trace

SPANS = [
    Span(name="recv", layer="abcast", process=0, start=0.001, duration=0.0005,
         args=(("kind", "seq"),)),
    Span(name="cross", layer="boundary", process=0, start=0.002, duration=0.0001,
         args=(("from", "abcast"), ("to", "consensus"))),
    Span(name="send", layer="consensus", process=1, start=0.003, duration=0.0002,
         args=(("kind", "propose"), ("dst", 2))),
]


class TestChromeTrace:
    def test_export_validates(self):
        assert validate_chrome_trace(chrome_trace(SPANS)) == []

    def test_complete_events_carry_microsecond_times(self):
        document = chrome_trace(SPANS)
        events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert len(events) == len(SPANS)
        recv = next(e for e in events if e["name"] == "recv")
        assert recv["ts"] == 1000.0 and recv["dur"] == 500.0
        assert recv["cat"] == "abcast"
        assert recv["args"] == {"kind": "seq"}

    def test_one_thread_track_per_process_layer(self):
        document = chrome_trace(SPANS)
        threads = [
            e for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        ]
        assert {(t["pid"], t["args"]["name"]) for t in threads} == {
            (0, "abcast"), (0, "boundary"), (1, "consensus"),
        }

    def test_pid_offset_and_names_group_stacks(self):
        document = chrome_trace(
            SPANS, pid_offset=100, process_names={100: "modular/p0"}
        )
        pids = {e["pid"] for e in document["traceEvents"] if e["ph"] == "X"}
        assert pids == {100, 101}
        names = {
            e["pid"]: e["args"]["name"]
            for e in document["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names[100] == "modular/p0"
        assert names[101] == "p101"

    def test_real_trace_exports_clean(self, modular_run):
        __, trace = modular_run
        document = chrome_trace(spans_from_trace(trace))
        assert validate_chrome_trace(document) == []


class TestValidation:
    def test_rejects_non_documents(self):
        assert validate_chrome_trace([]) == ["document is not a JSON object"]
        assert validate_chrome_trace({}) == ["missing or non-array traceEvents"]

    def test_rejects_malformed_events(self):
        document = {
            "traceEvents": [
                {"ph": "B", "name": "x", "pid": 0, "tid": 0},
                {"ph": "X", "name": "", "pid": 0, "tid": 0, "ts": 0, "dur": 0,
                 "cat": "c"},
                {"ph": "X", "name": "x", "pid": "0", "tid": 0, "ts": -1.0,
                 "dur": 0, "cat": "c"},
                "not-an-object",
            ]
        }
        errors = validate_chrome_trace(document)
        assert any("phase" in e for e in errors)
        assert any("missing name" in e for e in errors)
        assert any("pid is not an integer" in e for e in errors)
        assert any("ts is negative" in e for e in errors)
        assert any("not an object" in e for e in errors)


def test_merge_concatenates_documents():
    merged = merge_traces([chrome_trace(SPANS[:1]), chrome_trace(SPANS[1:])])
    assert validate_chrome_trace(merged) == []
    names = [e["name"] for e in merged["traceEvents"] if e["ph"] == "X"]
    assert names == ["recv", "cross", "send"]


def test_write_chrome_trace_round_trips(tmp_path):
    target = write_chrome_trace(tmp_path / "trace.json", SPANS)
    document = json.loads(target.read_text(encoding="utf-8"))
    assert validate_chrome_trace(document) == []
