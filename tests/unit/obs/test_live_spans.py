"""Sim-vs-live span conformance: one schema, two runtimes.

The live runtime must record the *same* span schema the simulator does
— same categories, same detail layout — so every obs tool (validator,
Perfetto export, profile tables) works on either trace. This drives a
LiveRuntime in-process through all five span kinds and checks its
records against the schema and against a real simulated trace.
"""

from repro.live.runtime import LiveRuntime
from repro.net.message import NetMessage
from repro.obs.spans import (
    SPAN_ARG_KEYS,
    adelivers,
    spans_from_serialized,
    spans_from_trace,
    submits,
    validate_spans,
)
from repro.sim.tracing import TraceRecorder
from repro.stack.actions import EmitDown, EmitUp, Send
from repro.stack.events import AbcastRequest, AdeliverIndication, Event
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage, MessageId


class Upper(Microprotocol):
    name = "upper"

    def handle_event(self, event):
        return []

    def handle_message(self, message):
        return []

    def handle_timer(self, name, payload):
        return []


class Lower(Upper):
    name = "lower"


class FakeTransport:
    def __init__(self):
        self.sent = []

    def send(self, message):
        self.sent.append(message)


def traced_live_runtime():
    trace = TraceRecorder()
    modules = [
        Upper(ModuleContext(pid=0, n=3, suspects=lambda: frozenset())),
        Lower(ModuleContext(pid=0, n=3, suspects=lambda: frozenset())),
    ]
    runtime = LiveRuntime(0, 3, modules, FakeTransport(), trace=trace)
    return runtime, modules, trace


def drive_all_span_kinds(runtime, modules):
    """Exercise inject, recv, send, cross and adeliver exactly once."""
    upper, lower = modules
    message = AppMessage(MessageId(0, 0), 512, 0.0)
    runtime.inject(AbcastRequest(message))
    runtime.on_network_message(
        NetMessage(
            kind="ping", module="lower", src=1, dst=0, payload=None,
            payload_size=0, header_size=4,
        )
    )
    runtime._execute_actions(
        lower, [Send(dst=2, kind="ack", payload=None, payload_size=8)]
    )
    runtime._execute_actions(lower, [EmitUp(Event())])
    runtime._execute_actions(upper, [EmitUp(AdeliverIndication(message))])
    return message


class TestConformance:
    def test_live_spans_cover_the_schema_and_validate(self):
        runtime, modules, trace = traced_live_runtime()
        drive_all_span_kinds(runtime, modules)
        spans = spans_from_trace(trace)
        assert {s.name for s in spans} == set(SPAN_ARG_KEYS)
        assert validate_spans(spans) == []

    def test_live_and_sim_record_identical_span_shapes(self, modular_run):
        __, sim_trace = modular_run
        runtime, modules, live_trace = traced_live_runtime()
        drive_all_span_kinds(runtime, modules)

        def shapes(trace):
            return {
                (s.name, tuple(key for key, __ in s.args))
                for s in spans_from_trace(trace)
            }

        assert shapes(live_trace) == shapes(sim_trace)

    def test_live_markers_bracket_the_message(self):
        runtime, modules, trace = traced_live_runtime()
        message = drive_all_span_kinds(runtime, modules)
        [(t_submit, pid_s, submitted)] = submits(trace)
        [(t_deliver, pid_d, delivered)] = adelivers(trace)
        assert submitted == delivered == message.msg_id
        assert pid_s == pid_d == 0
        assert t_deliver >= t_submit

    def test_worker_serialization_round_trips(self):
        # The worker ships spans as [time, category, process, detail]
        # JSON rows; the orchestrator must rebuild identical spans.
        runtime, modules, trace = traced_live_runtime()
        drive_all_span_kinds(runtime, modules)
        rows = [
            [r.time, r.category, r.process, list(r.detail)]
            for r in trace.select("span.")
        ]
        assert spans_from_serialized(rows) == spans_from_trace(trace)

    def test_disabled_trace_records_nothing_but_still_counts_crossings(self):
        modules = [
            Upper(ModuleContext(pid=0, n=3, suspects=lambda: frozenset())),
            Lower(ModuleContext(pid=0, n=3, suspects=lambda: frozenset())),
        ]
        runtime = LiveRuntime(0, 3, modules, FakeTransport())
        drive_all_span_kinds(runtime, modules)
        assert runtime.boundary_crossings == 1
        traced_runtime, traced_modules, trace = traced_live_runtime()
        drive_all_span_kinds(traced_runtime, traced_modules)
        assert traced_runtime.boundary_crossings == 1
        assert len(trace) > 0
