"""Shared traced runs for the observability tests.

One traced simulation per stack kind, session-scoped: the span/
attribution/perfetto tests all assert on the same pair of runs instead
of re-simulating per test.
"""

import pytest

from repro.config import RunConfig, WorkloadConfig, stack_from_label
from repro.experiments.runner import run_simulation
from repro.sim.tracing import TraceRecorder


def traced_run(label, *, seed=1, duration=0.5, warmup=0.1):
    trace = TraceRecorder()
    config = RunConfig(
        n=3,
        stack=stack_from_label(label),
        workload=WorkloadConfig(offered_load=50.0, message_size=512),
        duration=duration,
        warmup=warmup,
    )
    result = run_simulation(config, seed=seed, trace=trace)
    return result, trace


@pytest.fixture(scope="session")
def modular_run():
    return traced_run("modular")


@pytest.fixture(scope="session")
def monolithic_run():
    return traced_run("monolithic")
