"""Per-layer attribution: unit algebra plus the paper-level invariants.

The two load-bearing properties of the whole observability subsystem
are pinned here: a monolithic stack accrues *exactly zero* boundary
time (the overhead is a property of modular composition, not of the
instrumentation), and enabling the span trace changes no metric bit.
"""

from dataclasses import asdict

import pytest

from repro.config import RunConfig, WorkloadConfig, stack_from_label
from repro.experiments.runner import run_simulation
from repro.obs.attribution import (
    EMPTY_ATTRIBUTION,
    LayerAttribution,
    delta_layers,
)
from repro.sim.tracing import TraceRecorder


class TestAlgebra:
    def test_from_totals_sorts_and_drops_idle_layers(self):
        attribution = LayerAttribution.from_totals(
            {"rbcast": 2.0, "abcast": 1.0, "idle": 0.0}, 0.5, 3
        )
        assert attribution.layer_busy == (("abcast", 1.0), ("rbcast", 2.0))
        assert attribution.layer_time == 3.0
        assert attribution.total_time == 3.5
        assert attribution.overhead_fraction == pytest.approx(0.5 / 3.5)

    def test_empty_attribution_has_no_overhead(self):
        assert EMPTY_ATTRIBUTION.overhead_fraction is None
        assert EMPTY_ATTRIBUTION.total_time == 0.0

    def test_merge_sums_layers_and_boundaries(self):
        a = LayerAttribution.from_totals({"x": 1.0}, 0.25, 2)
        b = LayerAttribution.from_totals({"x": 1.0, "y": 3.0}, 0.75, 5)
        merged = a.merge(b)
        assert dict(merged.layer_busy) == {"x": 2.0, "y": 3.0}
        assert merged.boundary_time == 1.0
        assert merged.boundary_crossings == 7

    def test_delta_layers_subtracts_snapshots(self):
        end = {"a": 5.0, "b": 2.0}
        start = {"a": 3.0}
        assert delta_layers(end, start) == {"a": 2.0, "b": 2.0}


class TestRunInvariants:
    def test_monolithic_boundary_time_is_exactly_zero(self, monolithic_run):
        result, __ = monolithic_run
        metrics = result.metrics
        assert metrics.boundary_time == 0.0
        assert metrics.boundary_crossings == 0
        assert metrics.modularity_overhead == 0.0

    def test_modular_boundary_time_is_nonzero(self, modular_run):
        result, __ = modular_run
        metrics = result.metrics
        assert metrics.boundary_time > 0.0
        assert metrics.boundary_crossings > 0
        assert metrics.modularity_overhead is not None
        assert 0.0 < metrics.modularity_overhead < 1.0

    def test_modular_layers_cover_the_stack(self, modular_run):
        result, __ = modular_run
        layers = dict(result.metrics.layer_busy)
        assert {"abcast", "consensus", "rbcast", "app"} <= set(layers)
        assert all(seconds > 0.0 for seconds in layers.values())

    def test_monolithic_has_one_protocol_layer(self, monolithic_run):
        result, __ = monolithic_run
        layers = dict(result.metrics.layer_busy)
        assert "mono" in layers
        assert not {"abcast", "consensus", "rbcast"} & set(layers)


def test_metrics_identical_with_tracing_on_and_off():
    config = RunConfig(
        n=3,
        stack=stack_from_label("modular"),
        workload=WorkloadConfig(offered_load=50.0, message_size=512),
        duration=0.3,
        warmup=0.1,
    )
    plain = run_simulation(config, seed=7)
    traced = run_simulation(config, seed=7, trace=TraceRecorder())
    assert asdict(plain.metrics) == asdict(traced.metrics)
