"""Reduction of live-worker telemetry snapshot streams."""

from repro.obs.telemetry import summarize_telemetry, telemetry_rows


def snapshot(pid, t, **fields):
    base = {
        "type": "telemetry", "pid": pid, "t": t,
        "queue_depth": 0, "unacked": 0, "congested": False,
        "backpressure_stalls": 0, "reconnects": 0, "wal_fsyncs": 0,
    }
    base.update(fields)
    return base


def test_empty_stream_summarizes_to_zero():
    summary = summarize_telemetry([])
    assert summary["snapshots"] == 0
    assert summary["queue_depth_peak"] == 0
    assert summary["wal_fsyncs"] == 0


def test_gauges_take_the_peak_across_snapshots():
    summary = summarize_telemetry([
        snapshot(0, 0.25, queue_depth=2, unacked=10),
        snapshot(0, 0.50, queue_depth=7, unacked=3),
        snapshot(1, 0.25, queue_depth=4, unacked=12),
    ])
    assert summary["queue_depth_peak"] == 7
    assert summary["unacked_peak"] == 12
    assert summary["snapshots"] == 3


def test_counters_sum_final_values_across_workers():
    # Counters are cumulative per worker: the reduction must take each
    # worker's max (= final value), then sum workers — not sum every
    # snapshot, which would count early flushes many times over.
    summary = summarize_telemetry([
        snapshot(0, 0.25, wal_fsyncs=3, reconnects=1),
        snapshot(0, 0.50, wal_fsyncs=9, reconnects=1),
        snapshot(1, 0.50, wal_fsyncs=4, backpressure_stalls=2),
    ])
    assert summary["wal_fsyncs"] == 13
    assert summary["reconnects"] == 1
    assert summary["backpressure_stalls"] == 2


def test_congested_snapshots_are_counted():
    summary = summarize_telemetry([
        snapshot(0, 0.25, congested=True),
        snapshot(0, 0.50),
        snapshot(1, 0.25, congested=True),
    ])
    assert summary["congested_snapshots"] == 2


def test_rows_render_only_when_snapshots_exist():
    assert telemetry_rows(summarize_telemetry([])) == []
    rows = telemetry_rows(
        summarize_telemetry([snapshot(0, 0.25, wal_fsyncs=5)])
    )
    as_dict = {metric: value for metric, value in rows}
    assert as_dict["WAL fsyncs"] == "5"
    assert as_dict["telemetry snapshots"] == "1"
