"""Unit tests for the backlog window."""

import pytest

from repro.errors import FlowControlError
from repro.flowcontrol.window import BacklogWindow


def test_acquire_until_full():
    window = BacklogWindow(2)
    assert window.try_acquire()
    assert window.try_acquire()
    assert not window.try_acquire()
    assert window.in_flight == 2
    assert window.available == 0


def test_blocked_attempts_are_counted():
    window = BacklogWindow(1)
    window.try_acquire()
    window.try_acquire()
    window.try_acquire()
    assert window.total_blocked == 2


def test_release_frees_a_slot():
    window = BacklogWindow(1)
    window.try_acquire()
    window.release()
    assert window.try_acquire()


def test_release_without_acquire_is_an_error():
    with pytest.raises(FlowControlError):
        BacklogWindow(1).release()


def test_capacity_must_be_positive():
    with pytest.raises(FlowControlError):
        BacklogWindow(0)


def test_capacity_property():
    assert BacklogWindow(5).capacity == 5
