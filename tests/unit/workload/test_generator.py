"""Unit tests for the flow-controlled workload generators."""

import enum
import random

import pytest

from repro.config import (
    ArrivalProcess,
    CpuCosts,
    NetworkConfig,
    WorkloadConfig,
)
from repro.errors import ConfigurationError
from repro.flowcontrol.window import BacklogWindow
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.stack.events import AbcastRequest
from repro.stack.module import Microprotocol
from repro.stack.runtime import ProcessRuntime
from repro.workload.generator import (
    GAP_SAMPLER_FACTORIES,
    ArrivalSchedule,
    FlowControlledSender,
    PoissonGaps,
    UniformGaps,
    make_gap_sampler,
)

from tests.conftest import make_ctx

FAST_NET = NetworkConfig(bandwidth=1e12, propagation=1e-6)
FREE_COSTS = CpuCosts(
    dispatch=0.0, boundary_crossing=0.0, send_fixed=0.0, recv_fixed=0.0,
    serialize_per_byte=0.0, send_per_byte=0.0, recv_per_byte=0.0, adeliver=0.0,
)


class Sink(Microprotocol):
    """Top module that swallows abcast requests."""

    name = "sink"

    def __init__(self, ctx):
        super().__init__(ctx)
        self.received = []

    def handle_event(self, event):
        assert isinstance(event, AbcastRequest)
        self.received.append(event.message)
        return []


def build_sender(window=2, size=100):
    kernel = Kernel(seed=3)
    network = Network(kernel, 2, FAST_NET)
    sink = Sink(make_ctx(pid=0, n=2))
    runtime = ProcessRuntime(
        0, [sink], kernel=kernel, network=network,
        costs=FREE_COSTS, net_config=FAST_NET,
    )
    network.register(1, lambda m: None)
    accepted = []
    sender = FlowControlledSender(
        runtime, BacklogWindow(window), size, on_accept=accepted.append
    )
    return kernel, sink, sender, accepted


def test_offer_injects_when_window_open():
    kernel, sink, sender, accepted = build_sender()
    sender.offer()
    assert len(sink.received) == 1
    assert sender.accepted == 1
    assert accepted[0].size == 100


def test_offers_block_when_window_full():
    kernel, sink, sender, accepted = build_sender(window=2)
    for __ in range(5):
        sender.offer()
    assert sender.accepted == 2
    assert sender.queued == 3
    assert sender.offered == 5


def test_own_delivery_releases_and_drains_queue():
    kernel, sink, sender, accepted = build_sender(window=1)
    sender.offer()
    sender.offer()
    assert sender.queued == 1
    sender.on_own_delivery(accepted[0])
    assert sender.accepted == 2
    assert sender.queued == 0


def test_foreign_delivery_does_not_release():
    kernel, sink, sender, accepted = build_sender(window=1)
    sender.offer()
    from repro.types import AppMessage, MessageId

    foreign = AppMessage(MessageId(0, 999), size=1, abcast_time=0.0)
    sender.on_own_delivery(foreign)  # not ours: must be ignored
    assert sender.window.in_flight == 1


def test_duplicate_own_delivery_is_idempotent():
    kernel, sink, sender, accepted = build_sender(window=2)
    sender.offer()
    sender.on_own_delivery(accepted[0])
    sender.on_own_delivery(accepted[0])
    assert sender.window.in_flight == 0


def test_message_ids_are_sequential_for_this_process():
    kernel, sink, sender, accepted = build_sender(window=10)
    for __ in range(3):
        sender.offer()
    assert [m.msg_id.seq for m in accepted] == [0, 1, 2]
    assert all(m.msg_id.sender == 0 for m in accepted)


def test_abcast_time_is_acceptance_time():
    kernel, sink, sender, accepted = build_sender(window=1)
    sender.offer()
    sender.offer()  # blocked
    kernel.schedule(1.0, lambda: sender.on_own_delivery(accepted[0]))
    kernel.run()
    assert accepted[1].abcast_time == pytest.approx(1.0)


def test_uniform_schedule_generates_expected_rate():
    kernel, sink, sender, accepted = build_sender(window=1000)
    workload = WorkloadConfig(offered_load=100.0, message_size=10)
    schedule = ArrivalSchedule(
        kernel, sender, workload, n=2, stop_at=2.0, rng_name="w"
    )
    schedule.start()
    kernel.run(until=2.1)
    # per-process rate = 50/s over 2s = ~100 arrivals.
    assert 95 <= sender.offered <= 105


def test_poisson_schedule_generates_expected_mean_rate():
    kernel, sink, sender, accepted = build_sender(window=10000)
    workload = WorkloadConfig(
        offered_load=400.0, message_size=10, arrival=ArrivalProcess.POISSON
    )
    schedule = ArrivalSchedule(
        kernel, sender, workload, n=2, stop_at=5.0, rng_name="w"
    )
    schedule.start()
    kernel.run(until=5.1)
    # mean 200/s over 5s = 1000 arrivals; allow 15% statistical slack.
    assert 850 <= sender.offered <= 1150


def test_schedule_stops_at_deadline():
    kernel, sink, sender, accepted = build_sender(window=1000)
    workload = WorkloadConfig(offered_load=100.0, message_size=10)
    schedule = ArrivalSchedule(
        kernel, sender, workload, n=2, stop_at=1.0, rng_name="w"
    )
    schedule.start()
    kernel.run(until=10.0)
    assert sender.offered <= 51


def test_gap_sampler_dispatch_is_by_registry():
    """Each arrival process maps to its own sampler, by lookup."""
    rng = random.Random(1)
    assert isinstance(
        make_gap_sampler(WorkloadConfig(offered_load=100.0), 2, rng),
        UniformGaps,
    )
    assert isinstance(
        make_gap_sampler(
            WorkloadConfig(offered_load=100.0, arrival=ArrivalProcess.POISSON),
            2,
            rng,
        ),
        PoissonGaps,
    )


def test_unregistered_arrival_process_is_a_loud_error():
    """Regression: the old ``_gap()`` branched POISSON-vs-everything, so
    any new arrival law silently got constant spacing. An arrival value
    missing from the registry must now raise, not fall through."""

    class PhantomArrival(enum.Enum):
        SELF_SIMILAR = "self-similar"

    workload = WorkloadConfig(offered_load=100.0)
    # Bypass enum validation the way a half-wired new process would:
    # the config carries an arrival value no sampler is registered for.
    object.__setattr__(workload, "arrival", PhantomArrival.SELF_SIMILAR)
    assert workload.arrival not in GAP_SAMPLER_FACTORIES
    with pytest.raises(ConfigurationError, match="no gap sampler registered"):
        make_gap_sampler(workload, 2, random.Random(1))


def test_population_workload_dispatches_to_the_population_sampler():
    from repro.config import ClientPopulationConfig
    from repro.workload.population import PopulationPoissonGaps

    workload = WorkloadConfig(
        offered_load=100.0, population=ClientPopulationConfig(clients=10)
    )
    sampler = make_gap_sampler(workload, 2, random.Random(1))
    assert isinstance(sampler, PopulationPoissonGaps)


def test_on_arrival_hook_fires_for_live_and_lazily_materialized_arrivals():
    """The attribution hook must see every arrival exactly once, in
    order, whether the schedule ticked live or replayed a blocked span
    lazily — otherwise population attribution would drift under load."""
    kernel, sink, sender, accepted = build_sender(window=1)
    arrivals = []
    workload = WorkloadConfig(offered_load=100.0, message_size=10)
    schedule = ArrivalSchedule(
        kernel,
        sender,
        workload,
        n=2,
        stop_at=2.0,
        rng_name="w",
        on_arrival=lambda: arrivals.append(kernel.now),
    )
    schedule.start()
    kernel.run(until=2.1)
    schedule.finalize()
    # window=1 with no deliveries: the first offer is accepted, the
    # rest are blocked and materialized lazily at finalize; the hook
    # still counts each of them.
    assert len(arrivals) == sender.offered
    assert sender.offered >= 95


def test_schedule_stops_when_process_crashes():
    kernel, sink, sender, accepted = build_sender(window=1000)
    workload = WorkloadConfig(offered_load=100.0, message_size=10)
    schedule = ArrivalSchedule(
        kernel, sender, workload, n=2, stop_at=10.0, rng_name="w"
    )
    schedule.start()
    kernel.schedule(1.0, sender.runtime.crash)
    kernel.run(until=10.0)
    assert sender.offered <= 51
