"""Statistical test wall for the client-population workload layer.

Every stochastic component of :mod:`repro.workload.population` ships
behind a distribution-goodness test at fixed seeds: goodness-of-fit for
the Poisson aggregate and the Zipf activity ranks, overdispersion
(burstiness index > 1) for the on/off mix, monotone intensity ramps for
the diurnal law, and mean preservation for all three. Fixed seeds make
these exact regression tests, not flaky statistical ones — a failure
means the generator's distribution actually changed.
"""

from __future__ import annotations

import math
import random

import pytest
from scipy import stats as scipy_stats

from repro.config import ClientArrival, ClientPopulationConfig
from repro.errors import ConfigurationError
from repro.workload.population import (
    BurstyGaps,
    ClientPool,
    ClientPopulation,
    DiurnalGaps,
    PopulationPoissonGaps,
    ZipfSampler,
    population_gap_sampler,
)

RATE = 200.0


def _gaps(sampler, count: int) -> list[float]:
    out = [sampler.first_delay()]
    at = out[0]
    for __ in range(count - 1):
        gap = sampler.gap(at)
        out.append(gap)
        at += gap
    return out


# -- Poisson aggregate -------------------------------------------------------


def test_poisson_interarrivals_pass_ks_goodness_of_fit():
    sampler = PopulationPoissonGaps(RATE, random.Random(42))
    gaps = _gaps(sampler, 4000)
    # KS against Exponential(rate): the aggregate of independent client
    # Poisson streams must itself be Poisson.
    statistic, p_value = scipy_stats.kstest(gaps, "expon", args=(0, 1.0 / RATE))
    assert p_value > 0.01, f"KS rejected exponential gaps: p={p_value:.4f}"


def test_poisson_mean_rate_matches_configured_rate():
    sampler = PopulationPoissonGaps(RATE, random.Random(7))
    gaps = _gaps(sampler, 20000)
    measured = len(gaps) / sum(gaps)
    assert measured == pytest.approx(RATE, rel=0.05)


# -- Zipf activity ranks ------------------------------------------------------


def test_zipf_ranks_pass_chi_square_goodness_of_fit():
    size, s = 50, 1.1
    sampler = ZipfSampler(size, s, random.Random(42))
    draws = 30000
    observed = [0] * size
    for __ in range(draws):
        observed[sampler.sample() - 1] += 1
    weights = [r ** -s for r in range(1, size + 1)]
    total = sum(weights)
    expected = [draws * w / total for w in weights]
    statistic, p_value = scipy_stats.chisquare(observed, expected)
    assert p_value > 0.01, f"chi-square rejected Zipf({s}): p={p_value:.4f}"


def test_zipf_exponent_zero_is_uniform():
    size = 20
    sampler = ZipfSampler(size, 0.0, random.Random(3))
    draws = 20000
    observed = [0] * size
    for __ in range(draws):
        observed[sampler.sample() - 1] += 1
    statistic, p_value = scipy_stats.chisquare(observed)
    assert p_value > 0.01
    assert min(observed) > 0


def test_zipf_skew_concentrates_traffic_on_hot_ranks():
    rng = random.Random(11)
    sampler = ZipfSampler(10_000, 1.3, rng)
    draws = [sampler.sample() for __ in range(20000)]
    top_10_share = sum(1 for r in draws if r <= 10) / len(draws)
    # With s=1.3 over 10k ranks the 10 hottest clients carry a large
    # fraction of all traffic; uniform would give them 0.1 %.
    assert top_10_share > 0.3
    assert all(1 <= r <= 10_000 for r in draws)


def test_zipf_supports_population_sized_supports_in_constant_memory():
    # 10^7 ranks: rejection inversion needs no weight table, so the
    # only cost is a handful of floats. A draw must stay in range.
    sampler = ZipfSampler(10_000_000, 1.1, random.Random(1))
    for __ in range(1000):
        assert 1 <= sampler.sample() <= 10_000_000


def test_zipf_rejects_bad_parameters():
    with pytest.raises(ConfigurationError):
        ZipfSampler(0, 1.0, random.Random(1))
    with pytest.raises(ConfigurationError):
        ZipfSampler(10, -0.5, random.Random(1))


# -- bursty on/off mix --------------------------------------------------------


def _dispersion_index(gaps: list[float], window: float) -> float:
    """Index of dispersion of counts: Var(N)/E(N) over fixed windows."""
    at = 0.0
    arrivals = []
    for gap in gaps:
        at += gap
        arrivals.append(at)
    horizon = arrivals[-1]
    bins = int(horizon / window)
    counts = [0] * bins
    for t in arrivals:
        index = int(t / window)
        if index < bins:
            counts[index] += 1
    mean_count = sum(counts) / len(counts)
    variance = sum((c - mean_count) ** 2 for c in counts) / len(counts)
    return variance / mean_count


def test_bursty_mix_is_overdispersed_poisson_is_not():
    config = ClientPopulationConfig(
        clients=1000, arrival=ClientArrival.BURSTY, burst_on=0.05, burst_off=0.15
    )
    bursty = _dispersion_index(
        _gaps(BurstyGaps(RATE, config, random.Random(42)), 20000), window=0.1
    )
    poisson = _dispersion_index(
        _gaps(PopulationPoissonGaps(RATE, random.Random(42)), 20000), window=0.1
    )
    # The Markov-modulated on/off mix must be visibly burstier than
    # Poisson: IoD well above 1 (Poisson's is ~1 by definition).
    assert bursty > 1.5, f"burstiness index {bursty:.2f} not > 1"
    assert poisson == pytest.approx(1.0, abs=0.35)
    assert bursty > poisson


def test_bursty_mix_preserves_the_mean_rate():
    config = ClientPopulationConfig(
        clients=1000, arrival=ClientArrival.BURSTY, burst_on=0.05, burst_off=0.15
    )
    gaps = _gaps(BurstyGaps(RATE, config, random.Random(9)), 40000)
    measured = len(gaps) / sum(gaps)
    assert measured == pytest.approx(RATE, rel=0.07)


# -- diurnal ramps ------------------------------------------------------------


def test_diurnal_intensity_ramps_monotonically_to_the_peak():
    config = ClientPopulationConfig(
        clients=1000,
        arrival=ClientArrival.DIURNAL,
        diurnal_period=4.0,
        diurnal_trough=0.2,
    )
    sampler = DiurnalGaps(RATE, config, random.Random(1))
    half = config.diurnal_period / 2
    ramp_up = [sampler._intensity(t) for t in [i * half / 50 for i in range(51)]]
    assert ramp_up == sorted(ramp_up), "intensity must rise trough → peak"
    ramp_down = [
        sampler._intensity(half + i * half / 50) for i in range(51)
    ]
    assert ramp_down == sorted(ramp_down, reverse=True)
    # Trough and peak pin the raised-cosine endpoints.
    peak = 2.0 * RATE / (1.0 + config.diurnal_trough)
    assert sampler._intensity(0.0) == pytest.approx(peak * config.diurnal_trough)
    assert sampler._intensity(half) == pytest.approx(peak)


def test_diurnal_arrivals_follow_the_ramp_and_preserve_the_mean():
    config = ClientPopulationConfig(
        clients=1000,
        arrival=ClientArrival.DIURNAL,
        diurnal_period=2.0,
        diurnal_trough=0.2,
    )
    gaps = _gaps(DiurnalGaps(RATE, config, random.Random(42)), 30000)
    measured = len(gaps) / sum(gaps)
    assert measured == pytest.approx(RATE, rel=0.07)
    # Per-phase-quarter counts: mid-cycle quarters (around the peak)
    # must carry more arrivals than the edge quarters (the trough).
    at = 0.0
    quarters = [0, 0, 0, 0]
    for gap in gaps:
        at += gap
        phase = (at % config.diurnal_period) / config.diurnal_period
        quarters[min(3, int(phase * 4))] += 1
    assert quarters[1] > quarters[0]
    assert quarters[2] > quarters[3]
    assert quarters[1] + quarters[2] > 1.5 * (quarters[0] + quarters[3])


# -- attribution and dispatch -------------------------------------------------


def test_population_gap_sampler_dispatches_every_arrival_law():
    rng = random.Random(1)
    cases = {
        ClientArrival.POISSON: PopulationPoissonGaps,
        ClientArrival.BURSTY: BurstyGaps,
        ClientArrival.DIURNAL: DiurnalGaps,
    }
    for arrival, expected in cases.items():
        config = ClientPopulationConfig(clients=10, arrival=arrival)
        assert isinstance(
            population_gap_sampler(config, RATE, rng), expected
        )


def test_client_pools_split_the_population_and_keep_ids_disjoint():
    config = ClientPopulationConfig(clients=10, zipf_s=1.0)
    n = 3
    pools = [
        ClientPool(config, pid, n, random.Random(pid)) for pid in range(n)
    ]
    assert [pool.size for pool in pools] == [4, 3, 3]
    assert sum(pool.size for pool in pools) == config.clients
    seen: set[int] = set()
    for pool in pools:
        ids = {pool.on_arrival() for __ in range(200)}
        assert not ids & seen, "global client ids must be disjoint across pools"
        seen |= ids
    assert all(0 <= cid < config.clients for cid in seen)


def test_client_population_counts_active_clients_lazily():
    config = ClientPopulationConfig(clients=1_000_000, zipf_s=1.1)
    population = ClientPopulation(
        config, 4, lambda name: random.Random(hash(name) & 0xFFFF)
    )
    hooks = [population.arrival_hook(pid) for pid in range(4)]
    for __ in range(500):
        for hook in hooks:
            hook()
    assert population.arrivals == 2000
    # Skew means far fewer distinct clients than arrivals — and the
    # million-client pool itself costs nothing (no per-client state).
    assert 0 < population.active_clients <= 2000


def test_population_config_validation():
    with pytest.raises(ConfigurationError):
        ClientPopulationConfig(clients=0)
    with pytest.raises(ConfigurationError):
        ClientPopulationConfig(zipf_s=-1.0)
    with pytest.raises(ConfigurationError):
        ClientPopulationConfig(burst_on=0.0)
    with pytest.raises(ConfigurationError):
        ClientPopulationConfig(diurnal_trough=0.0)
    config = ClientPopulationConfig(clients=10, burst_on=0.05, burst_off=0.15)
    assert config.duty_cycle == pytest.approx(0.25)
