"""Unit tests for inter-module events and size accounting."""

from repro.stack.events import (
    PER_MESSAGE_OVERHEAD,
    batch_wire_size,
    message_wire_size,
)
from repro.types import Batch

from tests.conftest import app_message


def test_message_wire_size_adds_metadata_overhead():
    m = app_message(size=100)
    assert message_wire_size(m) == 100 + PER_MESSAGE_OVERHEAD


def test_batch_wire_size_counts_each_entry():
    m1 = app_message(size=100)
    m2 = app_message(size=50)
    batch = Batch(0, (m1, m2))
    assert batch_wire_size(batch) == 150 + PER_MESSAGE_OVERHEAD * 3


def test_empty_batch_still_has_frame_overhead():
    assert batch_wire_size(Batch(0)) == PER_MESSAGE_OVERHEAD
