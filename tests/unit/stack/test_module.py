"""Unit tests for the Microprotocol base class and ModuleContext."""

import pytest

from repro.errors import ProtocolError
from repro.stack.events import AbcastRequest
from repro.stack.module import Microprotocol

from tests.conftest import app_message, make_ctx, net_message


def test_context_majority():
    assert make_ctx(n=3).majority == 2
    assert make_ctx(n=7).majority == 4
    assert make_ctx(n=4).majority == 3


def test_context_others_excludes_self():
    ctx = make_ctx(pid=1, n=4)
    assert ctx.others == (0, 2, 3)


def test_context_suspicion_queries():
    suspects = {2}
    ctx = make_ctx(pid=0, n=3, suspects=suspects)
    assert ctx.is_suspected(2)
    assert not ctx.is_suspected(1)
    suspects.discard(2)
    assert not ctx.is_suspected(2)


def test_default_handlers_reject_unknown_stimuli():
    module = Microprotocol(make_ctx())
    with pytest.raises(ProtocolError):
        module.handle_event(AbcastRequest(app_message()))
    with pytest.raises(ProtocolError):
        module.handle_message(net_message("X", 1, 0))
    with pytest.raises(ProtocolError):
        module.handle_timer("nope", None)


def test_default_suspicion_handler_is_a_noop():
    module = Microprotocol(make_ctx())
    assert module.handle_suspicion(frozenset({1})) == []


def test_on_start_default_is_empty():
    assert Microprotocol(make_ctx()).on_start() == []
