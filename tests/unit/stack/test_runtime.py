"""Unit tests for the per-process runtime: costs, routing, timers, crash."""

import pytest

from repro.config import CpuCosts, NetworkConfig
from repro.errors import ProtocolError
from repro.net.network import Network
from repro.sim.kernel import Kernel
from repro.stack.actions import (
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.stack.events import AdeliverIndication, Event
from repro.stack.module import Microprotocol
from repro.stack.runtime import ProcessRuntime

from tests.conftest import app_message, make_ctx


class Probe(Event):
    """A typed event used to ping modules up/down the test stack."""

    __slots__ = ("tag",)

    def __init__(self, tag: str) -> None:
        self.tag = tag


class Recorder(Microprotocol):
    """A scriptable module that records stimuli and replays actions."""

    name = "recorder"

    def __init__(self, ctx, name=None):
        super().__init__(ctx)
        if name:
            self.name = name
        self.log = []
        self.next_actions = []

    def _pop_actions(self):
        actions, self.next_actions = self.next_actions, []
        return actions

    def handle_event(self, event):
        self.log.append(("event", event))
        return self._pop_actions()

    def handle_message(self, message):
        self.log.append(("message", message.kind, message.src))
        return self._pop_actions()

    def handle_timer(self, name, payload):
        self.log.append(("timer", name, payload))
        return self._pop_actions()

    def handle_suspicion(self, suspects):
        self.log.append(("suspicion", suspects))
        return self._pop_actions()


FAST_NET = NetworkConfig(bandwidth=1e12, propagation=1e-6)

SIMPLE_COSTS = CpuCosts(
    dispatch=1e-6,
    boundary_crossing=10e-6,
    send_fixed=100e-6,
    recv_fixed=100e-6,
    serialize_per_byte=0.0,
    send_per_byte=0.0,
    recv_per_byte=0.0,
    adeliver=1e-6,
)


def build_pair(n=2, modules_per_stack=1, costs=SIMPLE_COSTS):
    """Two (or n) single/multi-module stacks on one kernel+network."""
    kernel = Kernel()
    network = Network(kernel, n, FAST_NET)
    runtimes = []
    for pid in range(n):
        ctx = make_ctx(pid=pid, n=n)
        modules = [
            Recorder(ctx, name=f"m{depth}") for depth in range(modules_per_stack)
        ]
        runtimes.append(
            ProcessRuntime(
                pid, modules, kernel=kernel, network=network,
                costs=costs, net_config=FAST_NET,
            )
        )
    return kernel, network, runtimes


def top(runtime) -> Recorder:
    return runtime.modules[0]


def bottom(runtime) -> Recorder:
    return runtime.modules[-1]


def test_send_is_routed_to_same_named_module():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [Send(1, "PING", "hello", 10)]
    a.inject(Probe("go"))
    kernel.run()
    assert ("message", "PING", 0) in top(b).log


def test_send_to_all_reaches_everyone_but_self():
    kernel, network, runtimes = build_pair(n=3)
    top(runtimes[0]).next_actions = [SendToAll("PING", None, 1)]
    runtimes[0].inject(Probe("go"))
    kernel.run()
    assert ("message", "PING", 0) in top(runtimes[1]).log
    assert ("message", "PING", 0) in top(runtimes[2]).log
    assert all(entry[0] != "message" for entry in top(runtimes[0]).log)


def test_send_charges_cpu_before_transmit():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [Send(1, "PING", None, 0)]
    a.inject(Probe("go"))
    kernel.run()
    # dispatch (1µs) + send_fixed (100µs) before the wire, then recv at
    # arrival costs another 100µs + dispatch.
    arrival_handling = [e for e in top(b).log if e[0] == "message"]
    assert arrival_handling
    assert kernel.now == pytest.approx(1e-6 + 100e-6 + 1e-6 + 100e-6 + 1e-6, rel=0.1)


def test_emit_up_from_top_delivers_to_application():
    kernel, network, (a, b) = build_pair()
    received = []
    a.set_adeliver_listener(lambda pid, m, t: received.append((pid, m, t)))
    message = app_message()
    top(a).next_actions = [EmitUp(AdeliverIndication(message))]
    a.inject(Probe("go"))
    kernel.run()
    assert received and received[0][0] == 0
    assert received[0][1] is message


def test_emit_up_of_wrong_event_type_is_a_protocol_error():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [EmitUp(Probe("bad"))]
    with pytest.raises(ProtocolError):
        a.inject(Probe("go"))


def test_emit_down_routes_to_module_below():
    kernel, network, (a, b) = build_pair(modules_per_stack=2)
    probe = Probe("down")
    top(a).next_actions = [EmitDown(probe)]
    a.inject(Probe("go"))
    assert ("event", probe) in bottom(a).log


def test_emit_down_from_bottom_is_a_protocol_error():
    kernel, network, (a, b) = build_pair(modules_per_stack=1)
    top(a).next_actions = [EmitDown(Probe("oops"))]
    with pytest.raises(ProtocolError):
        a.inject(Probe("go"))


def test_headers_grow_with_module_height():
    kernel, network, (a, b) = build_pair(modules_per_stack=2)
    sizes = []
    original = network.transmit

    def spy(message, depart):
        sizes.append((message.module, message.header_size))
        original(message, depart)

    network.transmit = spy
    top(a).next_actions = [Send(1, "HI", None, 0)]  # height 1
    bottom(a).next_actions = [Send(1, "LO", None, 0)]  # height 0
    a.inject(Probe("go"))
    a._run_handler(bottom(a), lambda: bottom(a)._pop_actions() or [Send(1, "LO", None, 0)])
    kernel.run()
    by_module = dict(sizes)
    base, per_mod = FAST_NET.base_header, FAST_NET.per_module_header
    assert by_module["m0"] == base + 2 * per_mod
    assert by_module["m1"] == base + per_mod


def test_timer_fires_with_payload():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [StartTimer("tick", 0.5, payload="data")]
    a.inject(Probe("go"))
    kernel.run()
    assert ("timer", "tick", "data") in top(a).log
    assert kernel.now >= 0.5


def test_timer_rearm_replaces_previous():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [StartTimer("tick", 0.5, payload="old")]
    a.inject(Probe("go"))
    top(a).next_actions = [StartTimer("tick", 1.0, payload="new")]
    a.inject(Probe("again"))
    kernel.run()
    fired = [e for e in top(a).log if e[0] == "timer"]
    assert fired == [("timer", "tick", "new")]


def test_cancelled_timer_never_fires():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [StartTimer("tick", 0.5)]
    a.inject(Probe("go"))
    top(a).next_actions = [CancelTimer("tick")]
    a.inject(Probe("again"))
    kernel.run()
    assert all(e[0] != "timer" for e in top(a).log)


def test_cancel_unknown_timer_is_noop():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [CancelTimer("ghost")]
    a.inject(Probe("go"))  # must not raise


def test_crashed_process_stops_handling():
    kernel, network, (a, b) = build_pair()
    a.crash()
    a.inject(Probe("go"))
    assert top(a).log == []
    assert not a.alive


def test_crash_prevents_timer_firing():
    kernel, network, (a, b) = build_pair()
    top(a).next_actions = [StartTimer("tick", 0.5)]
    a.inject(Probe("go"))
    kernel.schedule(0.1, a.crash)
    kernel.run()
    assert all(e[0] != "timer" for e in top(a).log)


def test_crash_after_sends_interrupts_a_broadcast():
    kernel, network, runtimes = build_pair(n=4)
    runtimes[0].crash_after_sends(2)
    top(runtimes[0]).next_actions = [SendToAll("PING", None, 1)]
    runtimes[0].inject(Probe("go"))
    kernel.run()
    receivers = [
        pid
        for pid in (1, 2, 3)
        if ("message", "PING", 0) in top(runtimes[pid]).log
    ]
    assert len(receivers) == 2  # third send never happened
    assert not runtimes[0].alive


def test_crashed_destination_does_not_receive():
    kernel, network, (a, b) = build_pair()
    b.crash()
    top(a).next_actions = [Send(1, "PING", None, 1)]
    a.inject(Probe("go"))
    kernel.run()
    assert top(b).log == []


def test_messages_to_unknown_module_raise():
    kernel, network, (a, b) = build_pair()
    # Bypass module naming by sending from a renamed module.
    top(a).name = "other"
    a._by_name["other"] = top(a)
    a._height["other"] = 0
    top(a).next_actions = [Send(1, "PING", None, 1)]
    a.inject(Probe("go"))
    with pytest.raises(ProtocolError):
        kernel.run()


def test_duplicate_module_names_rejected():
    kernel = Kernel()
    network = Network(kernel, 2, FAST_NET)
    ctx = make_ctx(pid=0, n=2)
    with pytest.raises(ProtocolError):
        ProcessRuntime(
            0,
            [Recorder(ctx, name="dup"), Recorder(ctx, name="dup")],
            kernel=kernel, network=network,
            costs=SIMPLE_COSTS, net_config=FAST_NET,
        )


def test_empty_stack_rejected():
    kernel = Kernel()
    network = Network(kernel, 2, FAST_NET)
    with pytest.raises(ProtocolError):
        ProcessRuntime(
            0, [], kernel=kernel, network=network,
            costs=SIMPLE_COSTS, net_config=FAST_NET,
        )


def test_serialize_once_for_broadcasts():
    costs = CpuCosts(
        dispatch=0.0, boundary_crossing=0.0,
        send_fixed=0.0, recv_fixed=0.0,
        serialize_per_byte=1e-6, send_per_byte=0.0, recv_per_byte=0.0,
    )
    kernel, network, runtimes = build_pair(n=3, costs=costs)
    a = runtimes[0]
    payload = {"big": True}
    top(a).next_actions = [
        Send(1, "PING", payload, 1000),
        Send(2, "PING", payload, 1000),
    ]
    a.inject(Probe("go"))
    # Only the first copy pays serialization: ~1000µs once, not twice.
    wire = 1000 + FAST_NET.base_header + FAST_NET.per_module_header
    assert a.cpu.busy_time == pytest.approx(wire * 1e-6, rel=1e-6)


def test_suspects_empty_without_fd():
    kernel, network, (a, b) = build_pair()
    assert a.suspects() == frozenset()
