"""Bad-run paths of the monolithic module that the good-run tests skip."""

from repro.abcast.messages import JoinRound, RbDecision
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.broadcast.reliable import relay_set
from repro.config import MonolithicOptimizations
from repro.consensus.messages import DecisionTag
from repro.stack.events import AbcastRequest, AdeliverIndication

from tests.conftest import app_message, net_message
from tests.harness import ModulePump


def make_pump(n=3, opts=None):
    return ModulePump(
        lambda ctx: MonolithicAtomicBroadcast(ctx, opts or MonolithicOptimizations()),
        n,
    )


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


def test_round_two_decision_carries_full_value():
    """After p0 crashes, the round-2 coordinator announces decisions
    with their full value (standalone DECISION), reaching everyone."""
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    while pump.deliverable():  # forward is lost with the coordinator
        pump.drop_next()
    pump.crash(0)
    pump.suspect_everywhere(0)
    pump.run()
    assert adelivered(pump, 1) == [m.msg_id]
    assert adelivered(pump, 2) == [m.msg_id]
    # p1's decided state exists for instance 0, decided in round >= 2.
    state = pump.modules[1].instance(0)
    assert state.decided is not None


def test_join_for_decided_instance_returns_help():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.run()  # instance 0 decided everywhere
    module = pump.modules[1]
    actions = module.handle_message(net_message("JOIN", 2, 1, JoinRound(0, 2)))
    kinds = [getattr(a, "kind", None) for a in actions]
    assert "RECOVER_RESP" in kinds


def test_rb_decision_is_relayed_once_by_relay_set_members():
    pump = make_pump(5, opts=MonolithicOptimizations(
        combine_decision_with_proposal=False, cheap_decision_broadcast=False
    ))
    relays = relay_set(0, 5)
    relay_pid = relays[0]
    module = pump.modules[relay_pid]
    # The relay must hold proposal state for the tag lookup to succeed;
    # missing state triggers recovery, which is fine for this test: we
    # only check the relay re-send happens exactly once.
    rb = RbDecision(DecisionTag(0, 1), origin=0)
    first = module.handle_message(net_message("RB_DECISION", 0, relay_pid, rb))
    resent = [a for a in first if getattr(a, "kind", None) == "RB_DECISION"]
    assert len(resent) == 4  # to everyone else
    second = module.handle_message(net_message("RB_DECISION", 3, relay_pid, rb))
    resent_again = [a for a in second if getattr(a, "kind", None) == "RB_DECISION"]
    assert resent_again == []


def test_non_relay_member_does_not_relay():
    pump = make_pump(5, opts=MonolithicOptimizations(
        combine_decision_with_proposal=False, cheap_decision_broadcast=False
    ))
    outsider = [p for p in range(1, 5) if p not in relay_set(0, 5)][0]
    module = pump.modules[outsider]
    rb = RbDecision(DecisionTag(0, 1), origin=0)
    actions = module.handle_message(net_message("RB_DECISION", 0, outsider, rb))
    assert all(getattr(a, "kind", None) != "RB_DECISION" for a in actions)


def test_decision_tag_without_proposal_triggers_recovery_in_mono():
    pump = make_pump(3)
    module = pump.modules[2]
    actions = module.handle_message(
        net_message("DECISION", 0, 2, DecisionTag(4, 1))
    )
    kinds = [getattr(a, "kind", None) for a in actions]
    assert kinds.count("RECOVER_REQ") == 2


def test_stale_combined_still_processes_decision_piggyback():
    """A receiver that advanced past round 1 must not ack the stale
    proposal but must still consume the piggybacked decision."""
    pump = make_pump(3)
    # Instance 0 decided normally so everyone holds its proposal.
    m0 = app_message(sender=0, seq=100)
    pump.inject(0, AbcastRequest(m0))
    pump.run()
    module = pump.modules[1]
    # Instance 1 starts; p1 receives its COMBINED (acks round 1), then
    # wrongly suspects p0 and advances to round 2.
    m1 = app_message(sender=0, seq=101)
    pump.inject(0, AbcastRequest(m1))
    to_p1 = next(
        i
        for i, msg in enumerate(pump.deliverable())
        if msg.dst == 1 and msg.kind == "COMBINED"
    )
    pump.deliver_next(to_p1)
    pump.suspect(1, 0)
    state = module.instance(1)
    assert state.round >= 2
    # A COMBINED for instance 2 arrives, piggybacking decision (1, r=1):
    # p1 holds round 1's proposal, so the piggyback resolves, while the
    # fresh instance-2 proposal is acked normally.
    from repro.abcast.messages import CombinedProposal
    from repro.consensus.messages import Proposal
    from repro.types import Batch

    combined = CombinedProposal(
        Proposal(2, 1, Batch(2)), decided=DecisionTag(1, 1)
    )
    actions = module.handle_message(net_message("COMBINED", 0, 1, combined))
    delivered_now = [
        a.event.message.msg_id
        for a in actions
        if hasattr(a, "event") and isinstance(getattr(a, "event"), AdeliverIndication)
    ]
    assert m1.msg_id in delivered_now
    # Stale round-1 proposal for instance 2? No: instance 2 is fresh, so
    # it IS acked; the stale case is instance 1, already covered by the
    # round jump. Verify no ack was produced for instance 1.
    acks = [a for a in actions if getattr(a, "kind", None) == "ACKPIGGY"]
    assert all(a.payload.ack.instance == 2 for a in acks)


def test_message_riding_a_straggler_ack_is_not_stranded():
    """Regression: a message piggybacked on an ack that arrives *after*
    its instance already decided (on the other majority member's ack)
    must still trigger a new instance at the coordinator. Previously it
    was admitted to the pool and stranded forever when the pipeline had
    drained — a validity violation at run end."""
    from repro.abcast.messages import AckWithDiffusion
    from repro.consensus.messages import Ack

    from tests.conftest import make_ctx

    coordinator = MonolithicAtomicBroadcast(make_ctx(pid=0, n=3))
    m1 = app_message(sender=0)
    first = coordinator.handle_event(AbcastRequest(m1))
    assert [a.kind for a in first] == ["COMBINED", "COMBINED"]

    # p1's ack arrives first and decides instance 0 (majority with self).
    ack1 = AckWithDiffusion(ack=Ack(0, 1), messages=())
    decided = coordinator.handle_message(net_message("ACKPIGGY", 1, 0, ack1))
    assert coordinator.next_instance == 1
    assert coordinator.pool_count == 0

    # p2's straggler ack for the decided instance carries a fresh m2.
    m2 = app_message(sender=2)
    ack2 = AckWithDiffusion(ack=Ack(0, 1), messages=(m2,))
    actions = coordinator.handle_message(net_message("ACKPIGGY", 2, 0, ack2))
    combined = [a for a in actions if getattr(a, "kind", None) == "COMBINED"]
    assert combined, "straggler-ack piggyback did not start a new instance"
    assert any(
        m2 in a.payload.proposal.value.messages for a in combined
    ), "new instance does not carry the piggybacked message"


def test_join_catches_up_processes_that_do_not_suspect():
    """Regression (found by the nemesis swarm): with p2 crashed, a
    wrong suspicion held only by p1 used to strand p0 in round 1 (no
    acks left) and p1 in round 2 (no second estimate) forever. The JOIN
    broadcast must make the non-suspecting p0 join round 2."""
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    pump.crash(2)
    pump.suspect(1, 0)  # only p1 suspects the live coordinator
    pump.run()
    assert adelivered(pump, 0) == [m.msg_id]
    assert adelivered(pump, 1) == [m.msg_id]
