"""Unit tests for the monolithic atomic broadcast module (§4)."""

import pytest

from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.config import MonolithicOptimizations
from repro.errors import ProtocolError
from repro.stack.events import AbcastRequest, AdeliverIndication, ProposeRequest
from repro.types import Batch

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3, opts=None, max_batch=None):
    return ModulePump(
        lambda ctx: MonolithicAtomicBroadcast(
            ctx, opts or MonolithicOptimizations(), max_batch=max_batch
        ),
        n,
    )


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


def kinds_in_queue(pump):
    return [m.kind for m in pump.deliverable()]


def test_coordinator_abcast_starts_combined_proposal():
    pump = make_pump(3)
    pump.inject(0, AbcastRequest(app_message(sender=0)))
    assert kinds_in_queue(pump) == ["COMBINED", "COMBINED"]


def test_non_coordinator_forwards_when_idle():
    pump = make_pump(3)
    pump.inject(1, AbcastRequest(app_message(sender=1)))
    assert kinds_in_queue(pump) == ["FORWARD"]
    assert pump.deliverable()[0].dst == 0


def test_forward_triggers_instance_at_coordinator():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    pump.deliver_next()  # FORWARD reaches p0
    assert "COMBINED" in kinds_in_queue(pump)


def test_full_good_run_everyone_adelivers():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    pump.run()
    for pid in range(3):
        assert adelivered(pump, pid) == [m.msg_id]


def test_good_run_idle_message_pattern():
    """Idle group, one abcast: FORWARD + 2 COMBINED + 2 ACKPIGGY +
    2 standalone DECISION (nothing to piggyback on)."""
    pump = make_pump(3)
    pump.inject(1, AbcastRequest(app_message(sender=1)))
    seen = []
    while pump.deliverable():
        seen.append(pump.deliver_next().kind)
    assert sorted(seen) == ["ACKPIGGY", "ACKPIGGY", "COMBINED", "COMBINED",
                            "DECISION", "DECISION", "FORWARD"]


def test_pipelined_load_piggybacks_decisions_on_proposals():
    """Under continuous load the decision of k rides the proposal of k+1
    (§4.1): only COMBINED and ACKPIGGY appear, 2(n-1) per consensus."""
    pump = make_pump(3)
    # Preload: coordinator and both others always have something pending.
    for pid in range(3):
        for __ in range(4):
            pump.inject(pid, AbcastRequest(app_message(sender=pid)))
    kinds = []
    for __ in range(44):
        message = pump.deliver_next()
        if message is None:
            break
        kinds.append(message.kind)
        # Keep the pipeline fed so it never drains to idle.
        for pid in range(3):
            pump.inject(pid, AbcastRequest(app_message(sender=pid)))
    # After the start-up transient (first forwards and acks), the steady
    # state is a pure COMBINED/ACKPIGGY cycle: 2(n-1) per consensus.
    steady = kinds[14:44]
    assert steady
    assert set(steady) == {"COMBINED", "ACKPIGGY"}
    assert steady.count("COMBINED") == steady.count("ACKPIGGY")


def test_ack_piggybacks_pending_messages():
    pump = make_pump(3)
    # Start an instance from p0, then p1 abcasts while the proposal is
    # in flight: its message must ride the ACKPIGGY, not a FORWARD.
    pump.inject(0, AbcastRequest(app_message(sender=0)))
    m1 = app_message(sender=1)
    combined_to_1 = next(
        i for i, m in enumerate(pump.deliverable()) if m.dst == 1
    )
    pump.deliver_next(combined_to_1)  # p1 acks instance 0
    pump.inject(1, AbcastRequest(m1))  # now in flight; expecting combined
    assert "FORWARD" not in kinds_in_queue(pump)
    pump.run()
    assert m1.msg_id in adelivered(pump, 0)


def test_no_duplicate_relay_of_same_message():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    pump.run()
    # Re-injecting progress should not resend m anywhere: it was removed
    # from the pool at adelivery.
    assert pump.modules[1].pool_count == 0


def test_batch_cap_respected():
    pump = make_pump(3, max_batch=2)
    for __ in range(5):
        pump.inject(0, AbcastRequest(app_message(sender=0)))
    first_combined = pump.deliverable()[0]
    assert len(first_combined.payload.proposal.value) <= 2


def test_adeliver_order_is_canonical_within_batch():
    pump = make_pump(3)
    # Occupy instance 0 so both forwarded messages pool into instance 1.
    dummy = app_message(sender=0, seq=1)
    pump.inject(0, AbcastRequest(dummy))
    late = app_message(sender=2, seq=7)
    early = app_message(sender=1, seq=7)
    pump.inject(2, AbcastRequest(late))  # forwarded (arrives) first
    pump.inject(1, AbcastRequest(early))
    pump.run()
    delivered = adelivered(pump, 0)
    # Within instance 1's batch, canonical MessageId order wins over the
    # order in which the coordinator received the messages.
    assert delivered.index(early.msg_id) < delivered.index(late.msg_id)


def test_total_order_identical_on_all_processes():
    pump = make_pump(3)
    for pid in range(3):
        for __ in range(3):
            pump.inject(pid, AbcastRequest(app_message(sender=pid)))
    pump.run()
    sequences = [adelivered(pump, pid) for pid in range(3)]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == 9


def test_propose_request_is_rejected():
    pump = make_pump(3)
    with pytest.raises(ProtocolError):
        pump.inject(0, ProposeRequest(0, Batch(0)))


# -- ablation variants ----------------------------------------------------


def test_no_piggyback_falls_back_to_diffusion():
    pump = make_pump(3, opts=MonolithicOptimizations(piggyback_on_ack=False))
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    kinds = kinds_in_queue(pump)
    assert kinds.count("M_DIFFUSE") == 2
    assert "FORWARD" not in kinds
    pump.run()
    for pid in range(3):
        assert adelivered(pump, pid) == [m.msg_id]


def test_no_combine_always_sends_standalone_decisions():
    pump = make_pump(
        3, opts=MonolithicOptimizations(combine_decision_with_proposal=False)
    )
    for pid in range(3):
        pump.inject(pid, AbcastRequest(app_message(sender=pid)))
    kinds = []
    while pump.deliverable():
        kinds.append(pump.deliver_next().kind)
    assert "DECISION" in kinds
    combined = [
        m for m in []  # placeholder to document: every COMBINED had no tag
    ]
    assert not combined


def test_no_cheap_broadcast_uses_relayed_decisions():
    pump = make_pump(
        3,
        opts=MonolithicOptimizations(
            combine_decision_with_proposal=False, cheap_decision_broadcast=False
        ),
    )
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    kinds = []
    while pump.deliverable():
        kinds.append(pump.deliver_next().kind)
    assert "RB_DECISION" in kinds
    assert "DECISION" not in kinds
    for pid in range(3):
        assert adelivered(pump, pid) == [m.msg_id]


def test_all_optimizations_off_still_correct():
    pump = make_pump(3, opts=MonolithicOptimizations(False, False, False))
    messages = [app_message(sender=pid) for pid in range(3)]
    for pid, m in enumerate(messages):
        pump.inject(pid, AbcastRequest(m))
    pump.run()
    sequences = [adelivered(pump, pid) for pid in range(3)]
    assert sequences[0] == sequences[1] == sequences[2]
    assert set(sequences[0]) == {m.msg_id for m in messages}
