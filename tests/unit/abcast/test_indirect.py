"""Unit tests for the indirect-consensus abcast module (extension)."""

from repro.abcast.indirect import (
    ID_WIRE_SIZE,
    IdBatch,
    IndirectModularAtomicBroadcast,
    decided_ids,
)
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    ProposeRequest,
    batch_wire_size,
)
from repro.types import Batch

from tests.conftest import app_message, net_message
from tests.harness import ModulePump


def make_pump(n=3, max_batch=None):
    return ModulePump(
        lambda ctx: IndirectModularAtomicBroadcast(ctx, max_batch=max_batch), n
    )


def proposals(pump, pid):
    return [e for e in pump.down_events[pid] if isinstance(e, ProposeRequest)]


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


def test_proposals_carry_ids_not_payloads():
    pump = make_pump(3)
    m = app_message(sender=0, size=16384)
    pump.inject(0, AbcastRequest(m))
    proposal = proposals(pump, 0)[0]
    assert isinstance(proposal.value, IdBatch)
    assert proposal.value.ids == (m.msg_id,)
    # The id batch is tiny regardless of payload size.
    assert batch_wire_size(proposal.value) == ID_WIRE_SIZE * 2


def test_decide_with_local_content_delivers():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.inject(0, DecideIndication(0, IdBatch(0, (m.msg_id,))))
    assert adelivered(pump, 0) == [m.msg_id]


def test_decide_without_content_fetches_then_delivers():
    pump = make_pump(3)
    m = app_message(sender=1)
    # p0 learns the order before the diffusion reached it.
    pump.inject(0, DecideIndication(0, IdBatch(0, (m.msg_id,))))
    fetches = [x for x in pump.deliverable() if x.kind == "FETCH"]
    assert len(fetches) == 2
    assert (0, "fetch") in pump.timers
    assert adelivered(pump, 0) == []
    # Content arrives from a peer that has it.
    pump._execute(
        0, pump.modules[0].handle_message(net_message("CONTENT", 1, 0, (m,)))
    )
    assert adelivered(pump, 0) == [m.msg_id]
    assert (0, "fetch") not in pump.timers


def test_fetch_answered_from_unordered_pool():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))  # p1 holds the content
    while pump.deliverable():
        pump.drop_next()  # diffusion lost (sender about to crash)
    actions = pump.modules[1].handle_message(
        net_message("FETCH", 0, 1, (m.msg_id,))
    )
    pump._execute(1, actions)
    replies = [x for x in pump.deliverable() if x.kind == "CONTENT"]
    assert len(replies) == 1
    assert replies[0].payload[0].msg_id == m.msg_id


def test_fetch_answered_from_delivered_cache():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.inject(0, DecideIndication(0, IdBatch(0, (m.msg_id,))))
    assert adelivered(pump, 0) == [m.msg_id]  # content left the pool
    actions = pump.modules[0].handle_message(
        net_message("FETCH", 2, 0, (m.msg_id,))
    )
    pump._execute(0, actions)
    replies = [x for x in pump.deliverable() if x.kind == "CONTENT"]
    assert len(replies) == 1 and replies[0].dst == 2


def test_fetch_for_unknown_id_is_silent():
    pump = make_pump(3)
    ghost = app_message(sender=2)
    actions = pump.modules[0].handle_message(
        net_message("FETCH", 1, 0, (ghost.msg_id,))
    )
    assert actions == []


def test_fetch_retry_timer_reissues_requests():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(0, DecideIndication(0, IdBatch(0, (m.msg_id,))))
    while pump.deliverable():
        pump.drop_next()
    pump.fire_timer(0, "fetch")
    assert [x.kind for x in pump.deliverable()] == ["FETCH", "FETCH"]


def test_stall_preserves_total_order():
    """Decision k misses content; decision k+1 must not jump the queue."""
    pump = make_pump(3)
    early = app_message(sender=1)
    late = app_message(sender=0)
    pump.inject(0, AbcastRequest(late))  # p0 holds late's content only
    pump.inject(0, DecideIndication(0, IdBatch(0, (early.msg_id,))))
    pump.inject(0, DecideIndication(1, IdBatch(1, (late.msg_id,))))
    assert adelivered(pump, 0) == []  # stalled at instance 0
    pump._execute(
        0, pump.modules[0].handle_message(net_message("CONTENT", 1, 0, (early,)))
    )
    assert adelivered(pump, 0) == [early.msg_id, late.msg_id]


def test_plain_batch_decisions_are_accepted():
    """Round changes can decide a plain (possibly empty) Batch."""
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    assert adelivered(pump, 0) == [m.msg_id]
    pump.inject(0, DecideIndication(1, Batch(1)))
    assert pump.modules[0].next_instance == 2


def test_decided_ids_helper():
    m = app_message(sender=0)
    assert decided_ids(IdBatch(0, (m.msg_id,))) == (m.msg_id,)
    assert decided_ids(Batch(0, (m,))) == (m.msg_id,)


def test_batch_cap_applies_to_id_batches():
    pump = make_pump(3, max_batch=2)
    for __ in range(5):
        pump.inject(0, AbcastRequest(app_message(sender=0)))
    assert len(proposals(pump, 0)[0].value) == 1
    pump.inject(0, DecideIndication(0, IdBatch(0, proposals(pump, 0)[0].value.ids)))
    assert len(proposals(pump, 0)[1].value) == 2
