"""Unit tests for the fixed-sequencer baseline."""

import pytest

from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.errors import ProtocolError
from repro.stack.events import AbcastRequest, AdeliverIndication

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3):
    return ModulePump(lambda ctx: SequencerAtomicBroadcast(ctx), n)


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


def test_sequencer_orders_and_delivers_locally_first():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    assert adelivered(pump, 0) == [m.msg_id]
    kinds = [x.kind for x in pump.deliverable()]
    assert kinds == ["SEQUENCED", "SEQUENCED"]


def test_non_sequencer_forwards():
    pump = make_pump(3)
    m = app_message(sender=1)
    pump.inject(1, AbcastRequest(m))
    queued = pump.deliverable()
    assert [x.kind for x in queued] == ["TO_SEQ"]
    assert queued[0].dst == SequencerAtomicBroadcast.SEQUENCER


def test_total_order_across_concurrent_senders():
    pump = make_pump(3)
    for pid in range(3):
        for __ in range(4):
            pump.inject(pid, AbcastRequest(app_message(sender=pid)))
    pump.run()
    sequences = [adelivered(pump, pid) for pid in range(3)]
    assert sequences[0] == sequences[1] == sequences[2]
    assert len(sequences[0]) == 12


def test_out_of_order_arrivals_are_buffered():
    pump = make_pump(3)
    m1, m2 = app_message(sender=0), app_message(sender=0)
    pump.inject(0, AbcastRequest(m1))
    pump.inject(0, AbcastRequest(m2))
    # Deliver the second SEQUENCED message to p1 before the first.
    to_p1 = [i for i, x in enumerate(pump.deliverable()) if x.dst == 1]
    pump.deliver_next(to_p1[1])
    assert adelivered(pump, 1) == []  # gap: held back
    pump.run()
    assert adelivered(pump, 1) == [m1.msg_id, m2.msg_id]


def test_message_cost_is_n_messages():
    """Per abcast message: 1 forward (non-sequencer) + n-1 sequenced."""
    pump = make_pump(5)
    pump.inject(3, AbcastRequest(app_message(sender=3)))
    delivered = pump.run()
    assert delivered == 1 + 4


def test_sequencer_suspicion_refuses_to_fail_over():
    pump = make_pump(3)
    pump.crash(0)
    with pytest.raises(ProtocolError, match="cannot fail over"):
        pump.suspect(1, 0)


def test_misrouted_to_seq_is_an_error():
    pump = make_pump(3)
    from tests.conftest import net_message

    with pytest.raises(ProtocolError):
        pump.modules[1].handle_message(
            net_message("TO_SEQ", 2, 1, app_message(sender=2))
        )
