"""Unit tests for the modular atomic broadcast module (§3.3)."""

from repro.abcast.modular import GUARD_TIMER, ModularAtomicBroadcast
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    ProposeRequest,
)
from repro.types import Batch

from tests.conftest import app_message
from tests.harness import ModulePump


def make_pump(n=3, max_batch=None):
    return ModulePump(
        lambda ctx: ModularAtomicBroadcast(ctx, guard_timeout=0.5, max_batch=max_batch),
        n,
    )


def proposals(pump, pid):
    return [e for e in pump.down_events[pid] if isinstance(e, ProposeRequest)]


def adelivered(pump, pid):
    return [
        e.message.msg_id
        for e in pump.up_events[pid]
        if isinstance(e, AdeliverIndication)
    ]


def test_abcast_diffuses_to_everyone_and_proposes():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    diffusions = [x for x in pump.deliverable() if x.kind == "DIFFUSE"]
    assert {x.dst for x in diffusions} == {1, 2}
    assert len(proposals(pump, 0)) == 1
    assert proposals(pump, 0)[0].value.messages == (m,)


def test_receiver_of_diffusion_proposes_too():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.run()
    assert proposals(pump, 1) and proposals(pump, 2)


def test_one_consensus_at_a_time():
    pump = make_pump(3)
    pump.inject(0, AbcastRequest(app_message(sender=0)))
    pump.inject(0, AbcastRequest(app_message(sender=0)))
    assert len(proposals(pump, 0)) == 1  # second message waits


def test_decision_adelivers_in_canonical_order():
    pump = make_pump(3)
    late = app_message(sender=2, seq=0)
    early = app_message(sender=0, seq=0)
    pump.inject(0, DecideIndication(0, Batch(0, (late, early))))
    assert adelivered(pump, 0) == [early.msg_id, late.msg_id]


def test_decide_unblocks_next_proposal():
    pump = make_pump(3)
    m1 = app_message(sender=0)
    m2 = app_message(sender=0)
    pump.inject(0, AbcastRequest(m1))
    pump.inject(0, AbcastRequest(m2))
    pump.inject(0, DecideIndication(0, Batch(0, (m1,))))
    assert adelivered(pump, 0) == [m1.msg_id]
    assert len(proposals(pump, 0)) == 2
    assert proposals(pump, 0)[1].instance == 1
    assert proposals(pump, 0)[1].value.messages == (m2,)


def test_out_of_order_decisions_are_buffered():
    pump = make_pump(3)
    m1 = app_message(sender=0)
    m2 = app_message(sender=1)
    pump.inject(0, DecideIndication(1, Batch(1, (m2,))))
    assert adelivered(pump, 0) == []
    pump.inject(0, DecideIndication(0, Batch(0, (m1,))))
    assert adelivered(pump, 0) == [m1.msg_id, m2.msg_id]


def test_duplicate_message_across_batches_not_delivered_twice():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    pump.inject(0, DecideIndication(1, Batch(1, (m,))))
    assert adelivered(pump, 0) == [m.msg_id]


def test_duplicate_decision_for_same_instance_ignored():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    assert adelivered(pump, 0) == [m.msg_id]


def test_batch_cap_limits_proposal_size():
    pump = make_pump(3, max_batch=2)
    messages = [app_message(sender=0) for __ in range(5)]
    pump.inject(0, AbcastRequest(messages[0]))
    for m in messages[1:]:
        pump.inject(0, AbcastRequest(m))
    assert len(proposals(pump, 0)[0].value) == 1
    pump.inject(0, DecideIndication(0, proposals(pump, 0)[0].value))
    assert len(proposals(pump, 0)[1].value) == 2  # capped


def test_duplicate_diffusion_is_ignored():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    queued = [x for x in pump.deliverable() if x.kind == "DIFFUSE" and x.dst == 1]
    pump.run()
    # Replay the same diffusion to p1.
    module = pump.modules[1]
    actions = module.handle_message(queued[0])
    assert actions == [] or all(
        not isinstance(a, type(proposals(pump, 1)[0])) for a in actions
    )
    assert len(proposals(pump, 1)) == 1


def test_guard_timer_armed_while_messages_pending():
    pump = make_pump(3)
    pump.inject(0, AbcastRequest(app_message(sender=0)))
    assert (0, GUARD_TIMER) in pump.timers


def test_guard_timer_cancelled_when_drained():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    assert (0, GUARD_TIMER) not in pump.timers


def test_guard_rediffuses_only_stuck_messages():
    pump = make_pump(3)
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    pump.run()  # initial diffusion consumed
    # First firing: message arrived in the current period; not re-sent.
    pump.fire_timer(0, GUARD_TIMER)
    assert [x for x in pump.deliverable() if x.kind == "DIFFUSE"] == []
    # Second firing: now the message is a full period old; re-diffused.
    pump.fire_timer(0, GUARD_TIMER)
    rediffused = [x for x in pump.deliverable() if x.kind == "DIFFUSE"]
    assert {x.dst for x in rediffused} == {1, 2}


def test_next_instance_property_tracks_decisions():
    pump = make_pump(3)
    module = pump.modules[0]
    assert module.next_instance == 0
    pump.inject(0, DecideIndication(0, Batch(0)))
    assert module.next_instance == 1


def test_unordered_count_property():
    pump = make_pump(3)
    module = pump.modules[0]
    m = app_message(sender=0)
    pump.inject(0, AbcastRequest(m))
    assert module.unordered_count == 1
    pump.inject(0, DecideIndication(0, Batch(0, (m,))))
    assert module.unordered_count == 0
