"""Unit tests for the stack factory."""

from repro.abcast.factory import build_stack
from repro.abcast.modular import ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.config import (
    ConsensusVariant,
    ReliableBroadcastVariant,
    StackConfig,
    StackKind,
    modular_stack,
    monolithic_stack,
)
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.optimized import OptimizedConsensus

from tests.conftest import make_ctx


def test_modular_stack_has_three_modules_in_order():
    modules = build_stack(modular_stack(), make_ctx())
    assert [type(m) for m in modules] == [
        ModularAtomicBroadcast,
        OptimizedConsensus,
        ReliableBroadcast,
    ]
    assert [m.name for m in modules] == ["abcast", "consensus", "rbcast"]


def test_monolithic_stack_is_a_single_module():
    modules = build_stack(monolithic_stack(), make_ctx())
    assert len(modules) == 1
    assert isinstance(modules[0], MonolithicAtomicBroadcast)
    assert modules[0].name == "mono"


def test_textbook_consensus_variant():
    config = StackConfig(kind=StackKind.MODULAR, consensus=ConsensusVariant.TEXTBOOK)
    modules = build_stack(config, make_ctx())
    assert isinstance(modules[1], TextbookConsensus)


def test_rbcast_variant_is_propagated():
    config = StackConfig(rbcast=ReliableBroadcastVariant.CLASSICAL)
    modules = build_stack(config, make_ctx())
    assert modules[2].variant is ReliableBroadcastVariant.CLASSICAL


def test_max_batch_reaches_both_stacks():
    modular = build_stack(modular_stack(), make_ctx(), max_batch=7)
    mono = build_stack(monolithic_stack(), make_ctx(), max_batch=7)
    assert modular[0].max_batch == 7
    assert mono[0].max_batch == 7


def test_guard_timeout_propagated():
    config = StackConfig(guard_timeout=1.25)
    modules = build_stack(config, make_ctx())
    assert modules[0].guard_timeout == 1.25


def test_optimization_flags_propagated():
    from repro.config import MonolithicOptimizations

    opts = MonolithicOptimizations(False, True, False)
    modules = build_stack(monolithic_stack(opts), make_ctx())
    assert modules[0].opts is opts


def test_ringpaxos_stack_has_the_three_paxos_roles_in_order():
    from repro.abcast.ringpaxos import RingAcceptor, RingLearner, RingProposer

    config = StackConfig(kind=StackKind.RINGPAXOS, guard_timeout=0.75)
    modules = build_stack(config, make_ctx(), max_batch=11)
    assert [type(m) for m in modules] == [RingLearner, RingProposer, RingAcceptor]
    assert modules[1].guard_timeout == 0.75
    assert modules[1].max_batch == 11


def test_batched_sequencer_is_distillation_over_the_sequencer():
    from repro.abcast.batching import DistillationLayer
    from repro.abcast.sequencer import SequencerAtomicBroadcast
    from repro.config import BatchingConfig

    config = StackConfig(kind=StackKind.BATCHED_SEQUENCER)
    modules = build_stack(config, make_ctx())
    assert [type(m) for m in modules] == [
        DistillationLayer,
        SequencerAtomicBroadcast,
    ]
    assert modules[0].config == BatchingConfig()  # default knobs implied


def test_explicit_batching_knobs_reach_the_layer():
    from repro.abcast.batching import DistillationLayer
    from repro.config import BatchingConfig

    knobs = BatchingConfig(max_messages=8, flush_interval=0.001)
    config = StackConfig(kind=StackKind.BATCHED_SEQUENCER, batching=knobs)
    modules = build_stack(config, make_ctx())
    assert isinstance(modules[0], DistillationLayer)
    assert modules[0].config is knobs


def test_batching_composes_over_any_stack():
    from repro.abcast.batching import DistillationLayer
    from repro.config import BatchingConfig

    config = StackConfig(kind=StackKind.MODULAR, batching=BatchingConfig())
    modules = build_stack(config, make_ctx())
    assert isinstance(modules[0], DistillationLayer)
    assert len(modules) == 4  # distill over the full modular stack


def test_unknown_stack_kind_lists_the_registry():
    from dataclasses import replace

    import pytest

    from repro.errors import ConfigurationError

    class Bogus:
        value = "bogus"

    broken = replace(StackConfig(), kind=Bogus())
    with pytest.raises(ConfigurationError, match="registered stacks"):
        build_stack(broken, make_ctx())
