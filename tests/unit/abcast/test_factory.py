"""Unit tests for the stack factory."""

from repro.abcast.factory import build_stack
from repro.abcast.modular import ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.config import (
    ConsensusVariant,
    ReliableBroadcastVariant,
    StackConfig,
    StackKind,
    modular_stack,
    monolithic_stack,
)
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.optimized import OptimizedConsensus

from tests.conftest import make_ctx


def test_modular_stack_has_three_modules_in_order():
    modules = build_stack(modular_stack(), make_ctx())
    assert [type(m) for m in modules] == [
        ModularAtomicBroadcast,
        OptimizedConsensus,
        ReliableBroadcast,
    ]
    assert [m.name for m in modules] == ["abcast", "consensus", "rbcast"]


def test_monolithic_stack_is_a_single_module():
    modules = build_stack(monolithic_stack(), make_ctx())
    assert len(modules) == 1
    assert isinstance(modules[0], MonolithicAtomicBroadcast)
    assert modules[0].name == "mono"


def test_textbook_consensus_variant():
    config = StackConfig(kind=StackKind.MODULAR, consensus=ConsensusVariant.TEXTBOOK)
    modules = build_stack(config, make_ctx())
    assert isinstance(modules[1], TextbookConsensus)


def test_rbcast_variant_is_propagated():
    config = StackConfig(rbcast=ReliableBroadcastVariant.CLASSICAL)
    modules = build_stack(config, make_ctx())
    assert modules[2].variant is ReliableBroadcastVariant.CLASSICAL


def test_max_batch_reaches_both_stacks():
    modular = build_stack(modular_stack(), make_ctx(), max_batch=7)
    mono = build_stack(monolithic_stack(), make_ctx(), max_batch=7)
    assert modular[0].max_batch == 7
    assert mono[0].max_batch == 7


def test_guard_timeout_propagated():
    config = StackConfig(guard_timeout=1.25)
    modules = build_stack(config, make_ctx())
    assert modules[0].guard_timeout == 1.25


def test_optimization_flags_propagated():
    from repro.config import MonolithicOptimizations

    opts = MonolithicOptimizations(False, True, False)
    modules = build_stack(monolithic_stack(opts), make_ctx())
    assert modules[0].opts is opts
