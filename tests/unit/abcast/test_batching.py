"""Unit tests for the distillation (batching) layer's edge cases."""

from repro.abcast.batching import (
    PARCEL_HEADER,
    PARCEL_SEQ_BASE,
    DistillationLayer,
    is_parcel,
)
from repro.config import BatchingConfig
from repro.stack.actions import CancelTimer, StartTimer
from repro.stack.events import AbcastRequest, AdeliverIndication

from tests.conftest import app_message, emitted_down, emitted_up, make_ctx


def make_layer(max_messages=3, flush_interval=0.01, pid=0):
    config = BatchingConfig(max_messages=max_messages, flush_interval=flush_interval)
    return DistillationLayer(make_ctx(pid=pid), config)


def submitted(layer, message):
    return layer.handle_event(AbcastRequest(message))


def sealed_parcels(actions):
    return [e.message for e in emitted_down(actions, AbcastRequest)]


def delivered_ids(actions):
    return [e.message.msg_id for e in emitted_up(actions, AdeliverIndication)]


# -- sealing triggers --------------------------------------------------------


def test_first_submission_arms_the_flush_timer():
    layer = make_layer()
    actions = submitted(layer, app_message(sender=0))
    (timer,) = [a for a in actions if isinstance(a, StartTimer)]
    assert timer.name == "flush" and timer.delay == 0.01
    assert not sealed_parcels(actions)  # buffered, not yet sealed
    # The second submission neither seals nor re-arms.
    assert submitted(layer, app_message(sender=0)) == []


def test_timer_flush_seals_whatever_is_buffered():
    layer = make_layer(max_messages=100)
    m1, m2 = app_message(sender=0), app_message(sender=0)
    submitted(layer, m1)
    submitted(layer, m2)
    (parcel,) = sealed_parcels(layer.handle_timer("flush", None))
    assert is_parcel(parcel)
    assert parcel.payload == (m1, m2)


def test_empty_flush_on_timer_is_a_no_op():
    """The timer raced with a size-triggered seal: nothing to flush."""
    layer = make_layer()
    assert layer.handle_timer("flush", None) == []
    assert layer.unordered_count == 0


def test_max_batch_size_boundary_seals_and_cancels_the_timer():
    layer = make_layer(max_messages=3)
    parts = [app_message(sender=0) for __ in range(3)]
    submitted(layer, parts[0])
    submitted(layer, parts[1])
    actions = submitted(layer, parts[2])  # exactly max_messages: seal now
    assert any(isinstance(a, CancelTimer) and a.name == "flush" for a in actions)
    (parcel,) = sealed_parcels(actions)
    assert parcel.payload == tuple(parts)
    # The boundary is exact: the next submission starts a fresh parcel.
    next_actions = submitted(layer, app_message(sender=0))
    assert not sealed_parcels(next_actions)
    assert any(isinstance(a, StartTimer) for a in next_actions)


def test_parcel_framing_and_identity():
    layer = make_layer(max_messages=2, pid=4)
    m1 = app_message(sender=4, size=100)
    m2 = app_message(sender=4, size=250)
    submitted(layer, m1)
    (parcel,) = sealed_parcels(submitted(layer, m2))
    assert parcel.msg_id.sender == 4
    assert parcel.msg_id.seq == PARCEL_SEQ_BASE
    assert parcel.size == 100 + 250 + 2 * PARCEL_HEADER
    assert is_parcel(parcel) and not is_parcel(m1)
    # Successive parcels get successive sequence numbers.
    submitted(layer, app_message(sender=4))
    (second,) = sealed_parcels(submitted(layer, app_message(sender=4)))
    assert second.msg_id.seq == PARCEL_SEQ_BASE + 1


# -- unbatching --------------------------------------------------------------


def test_unbatch_order_is_the_batched_order():
    """Delivered unbatched order == the order the sender batched, even
    when that differs from canonical MessageId order."""
    layer = make_layer(max_messages=3)
    sender = make_layer(max_messages=3, pid=1)
    parts = [app_message(sender=2), app_message(sender=0), app_message(sender=1)]
    for part in parts:
        actions = submitted(sender, part)
    (parcel,) = sealed_parcels(actions)
    assert delivered_ids(layer.handle_event(AdeliverIndication(parcel))) == [
        p.msg_id for p in parts
    ]


def test_metrics_attribution_is_from_submission_not_seal():
    """The original message objects ride through the parcel untouched,
    so their abcast_time (the latency clock's t0) is the submission
    instant — sealing later must not rewrite it."""
    from repro.types import AppMessage, MessageId

    layer = make_layer(max_messages=2)
    early = AppMessage(msg_id=MessageId(0, 1), size=64, abcast_time=1.0)
    late = AppMessage(msg_id=MessageId(0, 2), size=64, abcast_time=2.5)
    submitted(layer, early)
    (parcel,) = sealed_parcels(submitted(layer, late))
    assert parcel.abcast_time == 1.0  # parcel inherits the oldest t0
    out = [
        e.message for e in emitted_up(
            layer.handle_event(AdeliverIndication(parcel)), AdeliverIndication
        )
    ]
    assert out[0] is early and out[1] is late  # identity, not copies
    assert [m.abcast_time for m in out] == [1.0, 2.5]


def test_duplicate_parcels_deliver_once():
    layer = make_layer(max_messages=2)
    submitted(layer, app_message(sender=0))
    (parcel,) = sealed_parcels(submitted(layer, app_message(sender=0)))
    first = delivered_ids(layer.handle_event(AdeliverIndication(parcel)))
    assert len(first) == 2
    assert layer.handle_event(AdeliverIndication(parcel)) == []


def test_bare_messages_pass_through():
    """A peer without a batching layer delivered an unbatched message."""
    layer = make_layer()
    m = app_message(sender=1)
    assert delivered_ids(layer.handle_event(AdeliverIndication(m))) == [m.msg_id]


# -- introspection and recovery ---------------------------------------------


def test_progress_and_backpressure_probes():
    layer = make_layer(max_messages=2)
    assert layer.next_instance == 0
    m1, m2 = app_message(sender=0), app_message(sender=0)
    submitted(layer, m1)
    assert layer.unordered_count == 1  # buffered and outstanding
    (parcel,) = sealed_parcels(submitted(layer, m2))
    assert layer.unordered_count == 2  # sealed but still in flight
    layer.handle_event(AdeliverIndication(parcel))
    assert layer.unordered_count == 0
    assert layer.next_instance == 1  # one parcel unbatched


def test_resume_at_never_reuses_parcel_ids_or_redelivers():
    layer = make_layer(max_messages=2)
    recovered = app_message(sender=0)
    layer.resume_at(3, {recovered.msg_id})
    assert layer.next_instance == 3
    # A replayed pre-crash part is suppressed; fresh parts still flow.
    fresh = app_message(sender=1)
    assert delivered_ids(layer.handle_event(AdeliverIndication(recovered))) == []
    assert delivered_ids(layer.handle_event(AdeliverIndication(fresh))) == [
        fresh.msg_id
    ]
    # Newly sealed parcels number above the recovered count.
    submitted(layer, app_message(sender=0))
    (parcel,) = sealed_parcels(submitted(layer, app_message(sender=0)))
    assert parcel.msg_id.seq == PARCEL_SEQ_BASE + 3
