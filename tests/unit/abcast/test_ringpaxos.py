"""Unit tests for the Ring Paxos acceptor, learner and stack wiring."""

import pytest

from repro.abcast.ringpaxos import (
    HELP_SPAN,
    RingAcceptor,
    RingLearner,
    RingToken,
    ring_stack,
)
from repro.consensus.messages import DecisionValue
from repro.stack.actions import Send, StartTimer
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    ProposeRequest,
)

from tests.conftest import app_message, batch, emitted_down, emitted_up, make_ctx, net_message, sends
from tests.harness import ModulePump


def make_pump(n=3):
    return ModulePump(lambda ctx: RingAcceptor(ctx), n)


def decisions(pump, pid):
    return [
        (e.instance, e.value)
        for e in pump.up_events[pid]
        if isinstance(e, DecideIndication)
    ]


def ring_token(pump, dst=None):
    """The queued RING messages (optionally to one destination)."""
    queued = [m for m in pump.deliverable() if m.kind == "RING"]
    if dst is not None:
        queued = [m for m in queued if m.dst == dst]
    return queued


# -- the good-run lap --------------------------------------------------------


def test_one_lap_decides_everywhere_with_one_message_per_link():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0))
    pump.inject(0, ProposeRequest(0, value))
    # The token leaves the coordinator toward its ring successor only.
    assert [(m.src, m.dst) for m in ring_token(pump)] == [(0, 1)]
    delivered = pump.run()
    assert delivered == 3  # n=3: exactly one token per ring link
    for pid in range(3):
        assert decisions(pump, pid) == [(0, value)]


def test_majority_node_decides_on_the_spot_mid_lap():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0))
    pump.inject(0, ProposeRequest(0, value))
    pump.deliver_next()  # 0 -> 1: votes {0, 1} is already a majority of 3
    assert decisions(pump, 1) == [(0, value)]
    assert decisions(pump, 0) == []  # the coordinator still awaits the lap


def test_decision_rides_the_token_not_a_broadcast():
    """After the mid-lap decision the only traffic is still ring tokens."""
    pump = make_pump(5)
    pump.inject(0, ProposeRequest(0, batch(0, app_message(sender=0))))
    delivered = pump.run()
    assert all(decisions(pump, pid) for pid in range(5))
    # The decided lap wraps past the deciding node: a handful of hops,
    # not the O(n^2) a decision broadcast per decider would cost.
    assert delivered <= 5 + 2


def test_token_to_a_voter_is_tag_only():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0, size=4096))
    pump.inject(0, ProposeRequest(0, value))
    pump.deliver_next()  # 0 -> 1 (full value)
    pump.deliver_next()  # 1 -> 2 (full value, 2 has not voted)
    back_to_zero = ring_token(pump, dst=0)
    assert len(back_to_zero) == 1
    token = back_to_zero[0].payload
    assert token.value is None  # 0 voted: it holds the proposal already
    assert token.wire_size < RingToken(0, value, (), ()).wire_size


def test_tag_only_token_without_the_proposal_is_dropped():
    acceptor = RingAcceptor(make_ctx(pid=1))
    token = RingToken(instance=0, value=None, votes=(0,), learned=())
    assert acceptor.handle_message(net_message("RING", 0, 1, token)) == []
    assert acceptor.instance(0).estimate is None


def test_node_past_round_one_does_not_vote():
    """The CT safety guard: voting is adopting (v, ts=1), which is only
    sound while the node is still in round 1."""
    acceptor = RingAcceptor(make_ctx(pid=1))
    state = acceptor.instance(0)
    held = batch(0, app_message(sender=1))
    state.round = 2
    state.estimate = held
    state.ts = 2
    ring_value = batch(0, app_message(sender=0))
    token = RingToken(instance=0, value=ring_value, votes=(0,), learned=())
    actions = acceptor.handle_message(net_message("RING", 0, 1, token))
    assert state.estimate == held  # not overwritten by the stale round-1 value
    assert state.ts == 2
    for send in sends(actions):
        if send.kind == "RING":
            assert 1 not in send.payload.votes


# -- repair ------------------------------------------------------------------


def test_suspicion_reroutes_the_in_flight_token():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0))
    pump.inject(0, ProposeRequest(0, value))
    dropped = pump.drop_next()  # the token 0 -> 1 dies with its carrier
    assert dropped.dst == 1
    pump.crash(1)
    pump.suspect(0, 1)  # repair: re-forward around the suspect
    rerouted = ring_token(pump)
    assert [(m.src, m.dst) for m in rerouted] == [(0, 2)]
    assert rerouted[0].payload.value == value  # 2 never voted: full value
    pump.suspect(2, 1)
    pump.run()
    assert decisions(pump, 0) == [(0, value)]
    assert decisions(pump, 2) == [(0, value)]


def test_guard_timer_re_forwards_a_stalled_token():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0))
    pump.inject(0, ProposeRequest(0, value))
    assert (0, "ring-guard") in pump.timers
    pump.drop_next()  # token lost on the wire
    pump.fire_timer(0, "ring-guard")
    assert [(m.src, m.dst) for m in ring_token(pump)] == [(0, 1)]
    assert (0, "ring-guard") in pump.timers  # re-armed while in flight
    pump.run()
    assert all(decisions(pump, pid) == [(0, value)] for pid in range(3))


def test_guard_goes_quiet_once_everything_is_decided():
    pump = make_pump(3)
    pump.inject(0, ProposeRequest(0, batch(0, app_message(sender=0))))
    pump.run()
    pump.fire_timer(0, "ring-guard")
    assert not ring_token(pump)  # nothing re-forwarded
    assert (0, "ring-guard") not in pump.timers  # and the guard disarms


def test_stale_ring_traffic_is_answered_with_the_decision():
    pump = make_pump(3)
    value = batch(0, app_message(sender=0))
    pump.inject(0, ProposeRequest(0, value))
    pump.run()
    stale = RingToken(instance=0, value=value, votes=(2,), learned=())
    actions = pump.modules[0].handle_message(net_message("RING", 2, 0, stale))
    responses = [a for a in sends(actions) if a.kind == "RECOVER_RESP"]
    assert responses and responses[0].dst == 2
    assert responses[0].payload == DecisionValue(0, value)


def test_help_decided_bundles_subsequent_decisions():
    acceptor = RingAcceptor(make_ctx(pid=0))
    values = {k: batch(k, app_message(sender=0)) for k in range(5)}
    for k, value in values.items():
        acceptor.handle_message(
            net_message("RECOVER_RESP", 1, 0, DecisionValue(k, value))
        )
    stale = RingToken(instance=0, value=values[0], votes=(2,), learned=())
    actions = acceptor.handle_message(net_message("RING", 2, 0, stale))
    responses = [a for a in sends(actions) if a.kind == "RECOVER_RESP"]
    # The asked instance plus every decided successor (up to HELP_SPAN).
    assert [r.payload.instance for r in responses] == [0, 1, 2, 3, 4]
    assert len(responses) <= 1 + HELP_SPAN


# -- gap recovery ------------------------------------------------------------


def test_out_of_order_decision_pulls_the_gap():
    acceptor = RingAcceptor(make_ctx(pid=1, n=3))
    actions = acceptor.handle_message(
        net_message("RECOVER_RESP", 0, 1, DecisionValue(1, batch(1)))
    )
    requests = [a for a in sends(actions) if a.kind == "RECOVER_REQ"]
    assert {r.dst for r in requests} == {0, 2}
    assert all(r.payload.instance == 0 for r in requests)
    assert any(
        isinstance(a, StartTimer) and a.name == "recover-0" for a in actions
    )
    # The pulled decision closes the gap without a second request.
    closing = acceptor.handle_message(
        net_message("RECOVER_RESP", 0, 1, DecisionValue(0, batch(0)))
    )
    assert not [a for a in sends(closing) if a.kind == "RECOVER_REQ"]


def test_resume_at_never_chases_pre_crash_instances():
    acceptor = RingAcceptor(make_ctx(pid=1, n=3))
    acceptor.resume_at(5, set())
    actions = acceptor.handle_message(
        net_message("RECOVER_RESP", 0, 1, DecisionValue(5, batch(5)))
    )
    assert not [a for a in sends(actions) if a.kind == "RECOVER_REQ"]


# -- the learner -------------------------------------------------------------


def adelivered(actions):
    return [e.message.msg_id for e in emitted_up(actions, AdeliverIndication)]


def test_learner_delivers_in_instance_and_id_order():
    learner = RingLearner(make_ctx())
    m1, m2, m3 = (app_message(sender=s) for s in (2, 0, 1))
    first = learner.handle_event(DecideIndication(0, batch(0, m1, m2)))
    second = learner.handle_event(DecideIndication(1, batch(1, m3)))
    assert adelivered(first) == [m2.msg_id, m1.msg_id]  # canonical id order
    assert adelivered(second) == [m3.msg_id]
    assert learner.next_instance == 2


def test_learner_buffers_out_of_order_decisions():
    learner = RingLearner(make_ctx())
    m1, m2 = app_message(sender=0), app_message(sender=1)
    assert learner.handle_event(DecideIndication(1, batch(1, m2))) == []
    actions = learner.handle_event(DecideIndication(0, batch(0, m1)))
    assert adelivered(actions) == [m1.msg_id, m2.msg_id]


def test_learner_ignores_duplicate_decisions_and_messages():
    learner = RingLearner(make_ctx())
    m = app_message(sender=0)
    learner.handle_event(DecideIndication(0, batch(0, m)))
    assert learner.handle_event(DecideIndication(0, batch(0, m))) == []
    # The same message re-decided in a later instance is not re-delivered.
    assert adelivered(learner.handle_event(DecideIndication(1, batch(1, m)))) == []


def test_learner_tracks_in_flight_submissions():
    learner = RingLearner(make_ctx())
    m = app_message(sender=0)
    actions = learner.handle_event(AbcastRequest(m))
    assert emitted_down(actions, AbcastRequest)  # passes straight down
    assert learner.unordered_count == 1
    learner.handle_event(DecideIndication(0, batch(0, m)))
    assert learner.unordered_count == 0


def test_learner_resume_skips_the_recovered_prefix():
    learner = RingLearner(make_ctx())
    old, new = app_message(sender=0), app_message(sender=1)
    learner.resume_at(3, {old.msg_id})
    assert learner.handle_event(DecideIndication(2, batch(2, old))) == []
    actions = learner.handle_event(DecideIndication(3, batch(3, old, new)))
    assert adelivered(actions) == [new.msg_id]  # old was WAL-recovered
    assert learner.next_instance == 4


# -- stack wiring ------------------------------------------------------------


def test_ring_stack_order_and_knobs():
    modules = ring_stack(make_ctx(), guard_timeout=1.5, max_batch=9)
    assert [m.name for m in modules] == ["ringlearner", "ringproposer", "ringacceptor"]
    assert modules[1].guard_timeout == 1.5
    assert modules[1].max_batch == 9


def test_ring_token_round_trips_on_the_wire():
    from repro.net.wire import decode_value, encode_value

    value = batch(2, app_message(sender=0), app_message(sender=1))
    token = RingToken(instance=2, value=value, votes=(0, 1), learned=(1,))
    assert decode_value(encode_value(token)) == token
    tag_only = RingToken(instance=2, value=None, votes=(0, 1), learned=(1,))
    assert decode_value(encode_value(tag_only)) == tag_only
