"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import itertools

import pytest

from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.net.message import NetMessage
from repro.stack.actions import Action, EmitDown, EmitUp, Send, SendToAll
from repro.stack.module import ModuleContext
from repro.types import AppMessage, Batch, MessageId

_uid = itertools.count()


def make_ctx(pid: int = 0, n: int = 3, suspects: set[int] | None = None) -> ModuleContext:
    """A ModuleContext with a mutable suspect set (mutate via .add/.discard)."""
    suspect_set = suspects if suspects is not None else set()
    return ModuleContext(pid=pid, n=n, suspects=lambda: frozenset(suspect_set))


def app_message(sender: int = 0, seq: int | None = None, size: int = 100) -> AppMessage:
    """A fresh application message with a unique sequence number."""
    if seq is None:
        seq = next(_uid)
    return AppMessage(msg_id=MessageId(sender, seq), size=size, abcast_time=0.0)


def batch(instance: int, *messages: AppMessage) -> Batch:
    """A Batch literal."""
    return Batch(instance, tuple(messages))


def net_message(
    kind: str,
    src: int,
    dst: int,
    payload: object = None,
    *,
    module: str = "test",
    payload_size: int = 10,
) -> NetMessage:
    """A NetMessage literal for driving handle_message directly."""
    return NetMessage(
        kind=kind,
        module=module,
        src=src,
        dst=dst,
        payload=payload,
        payload_size=payload_size,
        header_size=0,
    )


def sends(actions: list[Action]) -> list[Send]:
    """All Send actions (SendToAll not expanded)."""
    return [a for a in actions if isinstance(a, Send)]


def sends_to_all(actions: list[Action]) -> list[SendToAll]:
    """All SendToAll actions."""
    return [a for a in actions if isinstance(a, SendToAll)]


def emitted_up(actions: list[Action], event_type: type | None = None) -> list:
    """Events emitted up, optionally filtered by type."""
    events = [a.event for a in actions if isinstance(a, EmitUp)]
    if event_type is not None:
        events = [e for e in events if isinstance(e, event_type)]
    return events


def emitted_down(actions: list[Action], event_type: type | None = None) -> list:
    """Events emitted down, optionally filtered by type."""
    events = [a.event for a in actions if isinstance(a, EmitDown)]
    if event_type is not None:
        events = [e for e in events if isinstance(e, event_type)]
    return events


@pytest.fixture
def quick_config() -> RunConfig:
    """A small, fast end-to-end run configuration (modular stack)."""
    return RunConfig(
        n=3,
        stack=StackConfig(kind=StackKind.MODULAR),
        workload=WorkloadConfig(offered_load=300.0, message_size=512),
        duration=0.5,
        warmup=0.2,
    )


@pytest.fixture
def quick_mono_config(quick_config: RunConfig) -> RunConfig:
    """The monolithic twin of ``quick_config``."""
    return quick_config.with_changes(stack=StackConfig(kind=StackKind.MONOLITHIC))
