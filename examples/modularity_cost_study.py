#!/usr/bin/env python3
"""Reduced reproduction of the paper's whole evaluation section.

Regenerates Figures 8-11 on a reduced grid (single seed), the §5.2
analytical tables with simulator validation, and the per-optimization
ablation — the same artifacts as ``python -m repro all --fast``, but as
a scripted study with commentary, showing how to drive the experiment
API programmatically.

Usage::

    python examples/modularity_cost_study.py            # ~2-3 minutes
"""

from repro.experiments.ablation import ablation_table, run_ablation
from repro.experiments.figures import FAST_LOADS, FAST_SIZES, figure8, figure9, figure10, figure11
from repro.experiments.sweeps import run_load_sweep, run_size_sweep
from repro.experiments.tables import analytical_table, validation_table


def main() -> None:
    print("=" * 72)
    print("Analytical evaluation (paper §5.2) — exact closed forms")
    print("=" * 72)
    print(analytical_table())
    print()
    print("Validation: the simulator's wire counters vs the closed forms")
    print("(steady-state saturated runs, measured M as input):")
    print(validation_table(message_size=4096))
    print()

    print("=" * 72)
    print("Experimental evaluation (paper §5.3) — reduced grid, seed 1")
    print("=" * 72)
    load_sweep = run_load_sweep(loads=FAST_LOADS, seeds=(1,))
    size_sweep = run_size_sweep(sizes=FAST_SIZES, seeds=(1,))
    for report in (
        figure8(load_sweep),
        figure10(load_sweep),
        figure9(size_sweep),
        figure11(size_sweep),
    ):
        print(report)
        print()

    print("=" * 72)
    print("Beyond the paper: attribution of the §4 optimizations")
    print("(n=3, 1 KiB messages, saturating load)")
    print("=" * 72)
    rows = run_ablation(n=3, offered_load=4000.0, message_size=1024, seeds=(1,))
    print(ablation_table(rows))
    print()
    print("Reading: the gap between 'modular' and 'mono, no optimizations'")
    print("is the mechanical cost of composition (dispatch, headers); the")
    print("rest, down to 'mono, all', is the algorithmic gain of merging.")


if __name__ == "__main__":
    main()
