#!/usr/bin/env python3
"""Reconstruct the paper's protocol diagrams from live traces.

The paper explains its protocols with message-sequence diagrams:
Fig. 3 (optimized consensus: proposal → acks → small DECISION rbcast)
and Fig. 6 (the monolithic pipeline: COMBINED "proposal k + decision
k-1" answered by "ack + diffusion"). This demo runs each stack briefly
with tracing enabled and renders the actual wire traffic of a steady
window — compare it with the figures in the paper.

Usage::

    python examples/protocol_trace_demo.py
"""

from repro import RunConfig, WorkloadConfig, modular_stack, monolithic_stack
from repro.experiments.msc import extract_arrows, render_msc, summarize_kinds
from repro.experiments.runner import Simulation
from repro.sim.tracing import TraceRecorder


def trace_stack(stack, label: str, paper_figure: str) -> None:
    trace = TraceRecorder()
    config = RunConfig(
        n=3,
        stack=stack,
        workload=WorkloadConfig(offered_load=2000.0, message_size=1024),
        duration=0.5,
        warmup=0.0,
    )
    sim = Simulation(config, seed=4, trace=trace)
    sim.run(drain=0.1)

    # A steady-state window a bit after start-up; ~1.5 consensus rounds.
    arrows = extract_arrows(trace, start=0.200, end=0.206)
    print(f"--- {label} (compare with the paper's {paper_figure}) ---")
    print(render_msc(arrows, n=3))
    histogram = summarize_kinds(extract_arrows(trace, start=0.2, end=0.3))
    print(f"message mix over 100 ms: {dict(sorted(histogram.items()))}")
    print()


def main() -> None:
    trace_stack(
        modular_stack(),
        "modular stack: DIFFUSE, then PROPOSAL/ACK, then the small RB tag",
        "Figs. 3-4",
    )
    trace_stack(
        monolithic_stack(),
        "monolithic stack: COMBINED (proposal+decision) / ACKPIGGY only",
        "Fig. 6",
    )


if __name__ == "__main__":
    main()
