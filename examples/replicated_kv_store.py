#!/usr/bin/env python3
"""A replicated key-value store built on atomic broadcast.

The paper motivates atomic broadcast as the enabling protocol for
replicating a service consistently ("maintain replicas consistency by
ensuring a total order of message delivery", §1). This example builds
exactly that: every replica abcasts its clients' write commands; the
total order makes every replica apply the same writes in the same
sequence, so all stores converge despite concurrent writers on every
node — and the example verifies it, byte for byte, on both stacks.

Usage::

    python examples/replicated_kv_store.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import (
    AppMessage,
    MessageId,
    RunConfig,
    WorkloadConfig,
    modular_stack,
    monolithic_stack,
)
from repro.experiments.runner import Simulation
from repro.stack.events import AbcastRequest


@dataclass(frozen=True)
class SetCommand:
    """A client write: store[key] = value."""

    key: str
    value: int

    @property
    def wire_size(self) -> int:
        return len(self.key) + 8


class Replica:
    """One replica: a local dict updated only by adelivered commands."""

    def __init__(self, pid: int) -> None:
        self.pid = pid
        self.store: dict[str, int] = {}
        self.applied: list[MessageId] = []

    def apply(self, message: AppMessage) -> None:
        command: SetCommand = message.payload
        self.store[command.key] = command.value
        self.applied.append(message.msg_id)


def run_store(stack, label: str) -> None:
    config = RunConfig(
        n=3,
        stack=stack,
        # The workload generator is replaced by explicit client commands.
        workload=WorkloadConfig(offered_load=1.0, message_size=64),
        duration=1.0,
        warmup=0.0,
    )
    sim = Simulation(config, seed=7, with_workload=False)
    replicas = [Replica(pid) for pid in range(config.n)]
    sim.add_adeliver_listener(
        lambda pid, message, time: replicas[pid].apply(message)
    )

    # Three concurrent writers, each hammering the same keys from a
    # different replica: only a total order keeps the stores identical.
    rng = sim.kernel.rng.stream("clients")
    keys = [f"key-{i}" for i in range(5)]
    sequence_numbers = [0, 0, 0]

    def client_write(pid: int) -> None:
        runtime = sim.runtimes[pid]
        if not runtime.alive:
            return
        command = SetCommand(rng.choice(keys), rng.randrange(1_000_000))
        message = AppMessage(
            msg_id=MessageId(pid, sequence_numbers[pid]),
            size=command.wire_size,
            abcast_time=sim.kernel.now,
            payload=command,
        )
        sequence_numbers[pid] += 1
        runtime.inject(AbcastRequest(message))

    for pid in range(config.n):
        for i in range(40):
            sim.kernel.schedule_at(0.01 + i * 0.02, lambda p=pid: client_write(p))

    sim.start()
    sim.kernel.run(until=2.0)

    stores = [replica.store for replica in replicas]
    orders = [replica.applied for replica in replicas]
    assert orders[0] == orders[1] == orders[2], "replicas diverged!"
    assert stores[0] == stores[1] == stores[2], "stores diverged!"
    print(
        f"{label:>10}: {len(orders[0])} writes applied in the same order on "
        f"all 3 replicas; {len(stores[0])} keys, identical contents "
        f"(e.g. {sorted(stores[0].items())[0]})"
    )


def main() -> None:
    print("Replicated key-value store over atomic broadcast (3 replicas,")
    print("3 concurrent writers, 120 conflicting writes):\n")
    run_store(modular_stack(), "modular")
    run_store(monolithic_stack(), "monolithic")
    print("\nBoth stacks give the same guarantee; the paper's point is")
    print("what the modular one pays for it. Run quickstart.py to see.")


if __name__ == "__main__":
    main()
