#!/usr/bin/env python3
"""Fault injection demo: crash the coordinator, watch the system heal.

The paper's optimizations target good runs but must stay correct in all
runs (§3, §4). This demo runs the monolithic stack (whose §4.1/§4.2
fast path leans hardest on the initial coordinator) with a *heartbeat*
failure detector — real timeout-based suspicion over real messages —
crashes process 0 mid-run, and shows:

* deliveries stall only until the heartbeat timeout fires,
* the survivors re-run consensus through the estimate path and keep
  delivering, and
* the survivors' delivery sequences stay identical (total order) and
  complete (uniform agreement).

Usage::

    python examples/fault_injection_demo.py
"""

from repro import (
    FailureDetectorConfig,
    FailureDetectorKind,
    OrderingChecker,
    RunConfig,
    WorkloadConfig,
    monolithic_stack,
)
from repro.experiments.runner import Simulation

CRASH_TIME = 0.8


def main() -> None:
    config = RunConfig(
        n=3,
        stack=monolithic_stack(),
        workload=WorkloadConfig(offered_load=300.0, message_size=512),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.HEARTBEAT,
            heartbeat_interval=0.05,
            timeout=0.25,
        ),
        duration=1.8,
        warmup=0.0,
    )
    sim = Simulation(config, seed=3)
    checker = OrderingChecker(config.n)
    sim.add_accept_listener(checker.on_abcast)
    sim.add_adeliver_listener(checker.on_adeliver)

    deliveries_by_second: dict[int, int] = {}

    def count_delivery(pid: int, message, time: float) -> None:
        if pid == 1:  # one survivor's view
            bucket = int(time * 10)
            deliveries_by_second[bucket] = deliveries_by_second.get(bucket, 0) + 1

    sim.add_adeliver_listener(count_delivery)
    sim.kernel.schedule_at(CRASH_TIME, lambda: sim.crash(0))
    sim.run(drain=1.5)

    print(f"crashed p0 (the round-1 coordinator of every instance) at t={CRASH_TIME}s")
    print(f"p1's failure detector now suspects: {sorted(sim.detectors[1].suspects())}")
    print()
    print("p1 deliveries per 100 ms (watch the dip at the crash, then recovery):")
    for bucket in sorted(deliveries_by_second):
        bar = "#" * (deliveries_by_second[bucket] // 2)
        marker = "  <- crash" if bucket == int(CRASH_TIME * 10) else ""
        print(f"  t={bucket / 10:.1f}s {deliveries_by_second[bucket]:4d} {bar}{marker}")

    checker.verify(correct={1, 2}, expect_all_delivered=True)
    assert checker.sequence(1) == checker.sequence(2)
    print()
    print(
        f"safety verified: survivors delivered {len(checker.sequence(1))} "
        "messages in identical order, including every message abcast by a "
        "correct process (validity + uniform agreement + total order)"
    )


if __name__ == "__main__":
    main()
