#!/usr/bin/env python3
"""Quickstart: measure the cost of modularity in one minute.

Runs the paper's two atomic broadcast stacks — the modular composition
(abcast / consensus / reliable broadcast) and the monolithic merged
protocol — at one loaded operating point of the paper's evaluation
(n = 3, 16 KiB messages, 4000 msgs/s offered) and prints the early
latency and throughput of each, plus the modularity gap.

Usage::

    python examples/quickstart.py
"""

from repro import (
    RunConfig,
    StackKind,
    WorkloadConfig,
    modular_stack,
    monolithic_stack,
    run_simulation,
)


def main() -> None:
    workload = WorkloadConfig(offered_load=4000.0, message_size=16384)
    results = {}
    for label, stack in (
        ("modular", modular_stack()),
        ("monolithic", monolithic_stack()),
    ):
        config = RunConfig(
            n=3, stack=stack, workload=workload, duration=1.0, warmup=0.4
        )
        result = run_simulation(config, seed=1)
        results[label] = result
        metrics = result.metrics
        print(
            f"{label:>10}: early latency {metrics.latency_mean * 1e3:6.2f} ms, "
            f"throughput {metrics.throughput:6.0f} msgs/s, "
            f"{result.messages_per_consensus:.1f} msgs/consensus, "
            f"peak CPU {max(result.cpu_utilization):.0%}"
        )

    modular = results["modular"].metrics
    mono = results["monolithic"].metrics
    latency_gap = 100 * (1 - mono.latency_mean / modular.latency_mean)
    throughput_gain = 100 * (mono.throughput / modular.throughput - 1)
    print()
    print(
        f"cost of modularity at this operating point: "
        f"{latency_gap:.0f}% higher latency, "
        f"{throughput_gain:.0f}% lower throughput than the monolithic stack"
    )
    print("(compare with the paper's Figs. 8 and 10: 30-50% / 25-30%)")


if __name__ == "__main__":
    main()
