#!/usr/bin/env python3
"""Does the cost of modularity survive a WAN? (beyond the paper)

The paper's cluster had ~60 µs links, so processing dominated. This
study uses the per-pair propagation matrix to place one replica across
a WAN link (p0, p1 share a LAN; p2 is remote) and compares both stacks
as the WAN delay grows.

Two effects emerge, and neither is the naive "everything gets slower":

1. **Quorum masking.** Both stacks need only a majority (2 of 3), and
   the coordinator's majority is the LAN pair — early latency barely
   moves even at 50 ms WAN delay, and the modularity gap (which lives in
   LAN-side processing) persists almost unchanged.
2. **Flow-control starvation of the remote replica.** p2's window slots
   recycle only after a WAN round trip, so its *own* messages throttle
   to a trickle (watch the per-sender delivery counts); total throughput
   drops by roughly p2's share while the LAN pair is unaffected.

Usage::

    python examples/geo_distribution_study.py
"""

from repro import (
    NetworkConfig,
    RunConfig,
    WorkloadConfig,
    modular_stack,
    monolithic_stack,
)
from repro.experiments.runner import Simulation

LAN_DELAY = 60e-6


def wan_matrix(wan_delay: float) -> tuple[tuple[float, ...], ...]:
    """p0 and p1 share a LAN; p2 sits across a WAN link."""
    return (
        (0.0, LAN_DELAY, wan_delay),
        (LAN_DELAY, 0.0, wan_delay),
        (wan_delay, wan_delay, 0.0),
    )


def run_one(stack, wan_delay_s: float):
    config = RunConfig(
        n=3,
        stack=stack,
        workload=WorkloadConfig(offered_load=2000.0, message_size=1024),
        network=NetworkConfig(propagation_matrix=wan_matrix(wan_delay_s)),
        duration=1.2,
        warmup=0.5,
    )
    sim = Simulation(config, seed=1)
    per_sender = [0, 0, 0]

    def count(pid, message, time):
        if pid == 0:  # one observer's view of the total order
            per_sender[message.msg_id.sender] += 1

    sim.add_adeliver_listener(count)
    result = sim.run()
    return result.metrics, per_sender


def main() -> None:
    print("3 replicas, 2000 msgs/s offered, 1 KiB messages; p2 across a WAN\n")
    header = (
        f"{'WAN':>8} {'stack':>10} {'latency':>9} {'throughput':>11} "
        f"{'delivered by p0/p1/p2':>24}"
    )
    print(header)
    print("-" * len(header))
    for wan_ms in (0.06, 5.0, 50.0):
        gaps = {}
        for label, stack in (
            ("modular", modular_stack()),
            ("monolithic", monolithic_stack()),
        ):
            metrics, per_sender = run_one(stack, wan_ms * 1e-3)
            gaps[label] = metrics.latency_mean
            counts = "/".join(str(c) for c in per_sender)
            print(
                f"{wan_ms:6.2f}ms {label:>10} {metrics.latency_mean * 1e3:7.2f}ms "
                f"{metrics.throughput:9.0f}/s {counts:>24}"
            )
        gap = 100 * (1 - gaps["monolithic"] / gaps["modular"])
        print(f"{'':8} -> modularity latency penalty: {gap:.0f}%\n")
    print("Quorum masking keeps latency flat; flow control starves the")
    print("remote replica; and the cost of modularity — a LAN-side")
    print("processing effect — survives the WAN intact.")


if __name__ == "__main__":
    main()
