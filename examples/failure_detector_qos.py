#!/usr/bin/env python3
"""Failure-detector quality-of-service under load (beyond the paper).

The paper's system model just assumes an FD "that can be inaccurate";
this study shows the engineering trade-off hiding in that sentence.
Heartbeats share the CPU with the protocol, so under load they queue
behind protocol work: an aggressive timeout detects real crashes fast
but misfires on queueing delays, and every wrong suspicion of the
coordinator triggers round changes that cost real throughput.

The sweep runs the modular stack at a loaded operating point (n = 7,
32 KiB messages) with three heartbeat timeouts, counts false-suspicion
events, and measures the detection latency of an actual crash injected
late in the run.

Usage::

    python examples/failure_detector_qos.py
"""

from repro import (
    FailureDetectorConfig,
    FailureDetectorKind,
    RunConfig,
    WorkloadConfig,
    modular_stack,
)
from repro.experiments.runner import Simulation

CRASH_TIME = 1.2
VICTIM = 6


def run_point(interval: float, timeout: float):
    config = RunConfig(
        n=7,
        stack=modular_stack(),
        workload=WorkloadConfig(offered_load=4000.0, message_size=32768),
        failure_detector=FailureDetectorConfig(
            kind=FailureDetectorKind.HEARTBEAT,
            heartbeat_interval=interval,
            timeout=timeout,
        ),
        duration=1.4,
        warmup=0.4,
    )
    sim = Simulation(config, seed=1)

    suspicion_log: list[tuple[float, int, frozenset]] = []
    for pid, detector in enumerate(sim.detectors):
        original = detector._publish

        def spy(new_suspects, original=original, pid=pid):
            suspicion_log.append((sim.kernel.now, pid, frozenset(new_suspects)))
            original(new_suspects)

        detector._publish = spy

    sim.kernel.schedule_at(CRASH_TIME, lambda: sim.crash(VICTIM))
    result = sim.run(drain=0.6)

    false_events = sum(
        1
        for t, __, suspects in suspicion_log
        if t < CRASH_TIME and suspects  # any suspicion before the real crash
    )
    detections = [
        t
        for t, pid, suspects in suspicion_log
        if t >= CRASH_TIME and VICTIM in suspects and pid != VICTIM
    ]
    detection_ms = (min(detections) - CRASH_TIME) * 1e3 if detections else None
    return result, false_events, detection_ms


def main() -> None:
    print("modular stack, n=7, 32 KiB messages, 4000 msgs/s offered;")
    print(f"p{VICTIM} crashes at t={CRASH_TIME}s\n")
    header = (
        f"{'interval':>9} {'timeout':>8} {'throughput':>11} "
        f"{'false suspicions':>17} {'crash detected in':>18}"
    )
    print(header)
    print("-" * len(header))
    for interval_ms, timeout_ms in ((4, 12), (5, 20), (20, 80), (50, 300)):
        result, false_events, detection_ms = run_point(
            interval_ms * 1e-3, timeout_ms * 1e-3
        )
        detected = f"{detection_ms:8.1f} ms" if detection_ms is not None else "missed"
        print(
            f"{interval_ms:7d}ms {timeout_ms:6d}ms {result.metrics.throughput:9.0f}/s "
            f"{false_events:17d} {detected:>18}"
        )
    print()
    print("Aggressive timeouts detect the crash in tens of milliseconds but")
    print("misfire on CPU queueing delays; every wrong suspicion of the")
    print("coordinator forces a round change and costs real throughput.")
    print("Conservative timeouts are stable but leave the group blocked")
    print("longer when a real crash happens — the classic ◇S QoS dial.")


if __name__ == "__main__":
    main()
