"""The runtime contract protocol modules (and their plumbing) rely on.

A *runtime* hosts one process's microprotocol stack: it routes network
messages to modules by name, executes the actions handlers return, arms
named timers, carries the failure-detector attachment and implements
crash semantics. Two implementations exist:

* :class:`~repro.stack.runtime.ProcessRuntime` — the discrete-event
  simulation runtime, where timers live on the simulated kernel and every
  operation charges modelled CPU time;
* :class:`~repro.live.runtime.LiveRuntime` — the wall-clock runtime,
  where timers live on the asyncio event loop and messages travel over
  real TCP connections.

Protocol modules never see the runtime directly (they only return
:class:`~repro.stack.actions.Action` lists), but the workload generator,
the failure detectors and the stack factory do; they are written against
this :class:`RuntimeProtocol` so the same code drives both runtimes.
"""

from __future__ import annotations

from typing import Any, Callable, Protocol, runtime_checkable

from repro.stack.events import Event
from repro.stack.module import Microprotocol
from repro.types import AppMessage

#: Listener signature for application-level deliveries:
#: ``(pid, message, adeliver_time)``.
AdeliverListener = Callable[[int, AppMessage, float], None]


class TimerHandle(Protocol):
    """A cancellable handle returned by :meth:`RuntimeProtocol.fd_schedule`.

    Satisfied by the simulator's
    :class:`~repro.sim.eventq.ScheduledEvent` and by asyncio's
    ``TimerHandle`` alike.
    """

    def cancel(self) -> None:
        """Disarm the timer; a no-op if it already fired."""
        ...  # pragma: no cover - protocol stub


@runtime_checkable
class RuntimeProtocol(Protocol):
    """Everything a per-process runtime must provide.

    The time base differs between implementations — simulated seconds on
    the kernel versus wall-clock seconds since the run epoch — but the
    *semantics* are identical: ``now`` is monotonic within a process,
    timer delays are in the same unit as ``now``, and timestamps of
    different processes are comparable (exactly in the simulator,
    approximately in a live deployment).
    """

    pid: int
    alive: bool

    @property
    def n(self) -> int:
        """Group size."""
        ...  # pragma: no cover - protocol stub

    @property
    def now(self) -> float:
        """Current time in this runtime's time base (seconds)."""
        ...  # pragma: no cover - protocol stub

    @property
    def modules(self) -> tuple[Microprotocol, ...]:
        """The stack, top to bottom."""
        ...  # pragma: no cover - protocol stub

    def module(self, name: str) -> Microprotocol:
        """Look up a module by routing name."""
        ...  # pragma: no cover - protocol stub

    def set_adeliver_listener(self, listener: AdeliverListener) -> None:
        """Register the application callback for adelivered messages."""
        ...  # pragma: no cover - protocol stub

    def attach_failure_detector(self, fd: Any) -> None:
        """Attach a failure detector (see :mod:`repro.fd`)."""
        ...  # pragma: no cover - protocol stub

    def start(self) -> None:
        """Start the failure detector and every module (top to bottom)."""
        ...  # pragma: no cover - protocol stub

    def inject(self, event: Event) -> None:
        """Deliver *event* from the application to the top module."""
        ...  # pragma: no cover - protocol stub

    def crash(self) -> None:
        """Stop this process permanently (fail-stop model)."""
        ...  # pragma: no cover - protocol stub

    def suspects(self) -> frozenset[int]:
        """Current failure-detector output."""
        ...  # pragma: no cover - protocol stub

    def on_suspicion_change(self, suspects: frozenset[int]) -> None:
        """FD callback: propagate a new suspect set to every module."""
        ...  # pragma: no cover - protocol stub

    def fd_send(self, dst: int, kind: str, payload: Any, payload_size: int) -> None:
        """Send a failure-detector message (routed to the peer FD)."""
        ...  # pragma: no cover - protocol stub

    def fd_schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule an FD-internal callback; suppressed after a crash."""
        ...  # pragma: no cover - protocol stub
