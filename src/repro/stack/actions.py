"""Actions returned by protocol module handlers.

Protocol modules are pure state machines: handlers mutate module state
and return a list of actions, and the runtime executes those actions
with modelled CPU and network costs. This keeps every protocol unit-
testable without a kernel — tests call handlers directly and assert on
the returned actions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.stack.events import Event


class Action:
    """Marker base class for module actions."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Send(Action):
    """Send a point-to-point message through the network.

    Attributes:
        dst: Destination process.
        kind: Protocol message type (for routing within the module,
            statistics and traces).
        payload: Opaque content delivered to the peer module.
        payload_size: Modelled serialized size in bytes (headers are added
            by the runtime according to the module's stack position).
    """

    dst: int
    kind: str
    payload: Any
    payload_size: int


@dataclass(frozen=True, slots=True)
class SendToAll(Action):
    """Send the same message to every other process (not to self).

    The runtime expands this to n-1 sequential :class:`Send` operations,
    each charged individually to the CPU — so a crash can (and in fault
    tests, does) interrupt a broadcast halfway through.
    """

    kind: str
    payload: Any
    payload_size: int


@dataclass(frozen=True, slots=True)
class EmitUp(Action):
    """Deliver an event to the module directly above (or the application)."""

    event: Event


@dataclass(frozen=True, slots=True)
class EmitDown(Action):
    """Deliver an event to the module directly below."""

    event: Event


@dataclass(frozen=True, slots=True)
class StartTimer(Action):
    """Arm (or re-arm) a named timer on the emitting module.

    When the timer fires, the runtime invokes the module's
    ``handle_timer(name, payload)``. Re-arming a live timer with the same
    name cancels the previous one.
    """

    name: str
    delay: float
    payload: Any = None


@dataclass(frozen=True, slots=True)
class CancelTimer(Action):
    """Disarm a named timer. Cancelling a non-armed timer is a no-op."""

    name: str
