"""Per-process protocol runtime.

The runtime is the glue between pure protocol state machines and the
simulation substrate. For one process it owns:

* the ordered module stack (top = closest to the application),
* the process CPU, on which every handler invocation, send and module
  boundary crossing charges time,
* the routing of network messages to modules by name,
* named protocol timers,
* the failure detector attachment, and
* crash semantics (a crashed process stops executing instantly; messages
  already handed to the NIC still depart, as on a real host).

Cost model (the crux of the reproduction):

* receiving a message costs ``recv_cost(wire)`` plus one boundary
  crossing per module the message ascends through (its module's height),
* sending costs ``send_cost(wire)`` plus one crossing per descended
  module, and the wire carries one framework header per module below and
  including the sender (Cactus-style header stacking),
* every handler invocation costs ``dispatch``; inter-module events cost
  an additional ``boundary_crossing``.

A monolithic stack has a single module at height 0, so it pays none of
the crossing costs and carries a single framework header — the
*mechanical* advantage of merging; its *algorithmic* advantage (fewer,
larger messages) is implemented in :mod:`repro.abcast.monolithic`.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable

from repro.config import CpuCosts, NetworkConfig
from repro.errors import ProtocolError
from repro.net.message import NetMessage
from repro.net.network import Network
from repro.sim.cpu import Cpu
from repro.sim.eventq import ScheduledEvent
from repro.sim.kernel import Kernel
from repro.sim.tracing import NullTraceRecorder, TraceRecorder
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.stack.events import AbcastRequest, AdeliverIndication, Event
from repro.stack.interface import AdeliverListener
from repro.stack.module import Microprotocol
from repro.types import SimTime

__all__ = ["AdeliverListener", "ProcessRuntime"]


class ProcessRuntime:
    """Hosts one process's protocol stack on the simulation kernel."""

    __slots__ = (
        "pid",
        "kernel",
        "network",
        "costs",
        "net_config",
        "cpu",
        "alive",
        "crashed_at",
        "_trace",
        "_modules",
        "_by_name",
        "_height",
        "_index",
        "_send_header",
        "_crossing_extra",
        "_timers",
        "_adeliver_listener",
        "_fd",
        "_sends_until_crash",
        "_last_sent_payload",
        "layer_busy",
        "boundary_busy",
        "boundary_crossings",
    )

    def __init__(
        self,
        pid: int,
        modules: list[Microprotocol],
        *,
        kernel: Kernel,
        network: Network,
        costs: CpuCosts,
        net_config: NetworkConfig,
        trace: TraceRecorder | None = None,
    ) -> None:
        if not modules:
            raise ProtocolError("a stack needs at least one module")
        self.pid = pid
        self.kernel = kernel
        self.network = network
        self.costs = costs
        self.net_config = net_config
        self.cpu = Cpu(kernel)
        self.alive = True
        #: Simulated time of the crash, or ``None`` while alive. Lets
        #: observers that account lazily (e.g. the workload generator's
        #: blocked-tick batching) reconstruct what happened before the
        #: crash without subscribing to it.
        self.crashed_at: SimTime | None = None
        self._trace = trace if trace is not None else NullTraceRecorder()

        #: Modules ordered top (application side) to bottom (network side).
        self._modules = list(modules)
        self._by_name: dict[str, Microprotocol] = {}
        #: Height of each module: bottom module is 0.
        self._height: dict[str, int] = {}
        #: Stack position of each module (0 = top); avoids list.index()
        #: scans on the emit hot path.
        self._index: dict[str, int] = {}
        #: Precomputed wire header bytes for sends from each module
        #: (base + one per-module header per descended module).
        self._send_header: dict[str, int] = {}
        #: Precomputed ``height * boundary_crossing`` per module — the
        #: exact float product the send/recv cost formulas use, computed
        #: once instead of per message. Keeping the product (rather than
        #: folding it into a larger sum) preserves the bit-exact
        #: association order of the original cost expressions.
        self._crossing_extra: dict[str, float] = {}
        depth = len(modules)
        for index, module in enumerate(modules):
            if module.name in self._by_name:
                raise ProtocolError(f"duplicate module name {module.name!r}")
            self._by_name[module.name] = module
            height = depth - 1 - index
            self._height[module.name] = height
            self._index[module.name] = index
            self._send_header[module.name] = (
                net_config.base_header + net_config.per_module_header * (height + 1)
            )
            self._crossing_extra[module.name] = height * costs.boundary_crossing

        #: Always-on latency attribution (see :mod:`repro.obs`): CPU
        #: seconds charged inside each layer, plus the two pseudo-layers
        #: ``fd`` (failure-detector work) and ``app`` (adeliver
        #: upcalls). Pure observation — never read back into timing, so
        #: metrics are bit-identical with or without tracing.
        self.layer_busy: dict[str, float] = {m.name: 0.0 for m in modules}
        self.layer_busy["fd"] = 0.0
        self.layer_busy["app"] = 0.0
        #: CPU seconds charged to inter-module boundary crossings.
        self.boundary_busy = 0.0
        #: Number of boundary crossings charged.
        self.boundary_crossings = 0

        self._timers: dict[tuple[str, str], ScheduledEvent] = {}
        self._adeliver_listener: AdeliverListener | None = None
        self._fd: Any = None
        self._sends_until_crash: int | None = None
        #: Payload of the previous Send, for serialize-once accounting:
        #: consecutive sends of the same payload object (a broadcast)
        #: only pay the serialization cost on the first copy.
        self._last_sent_payload: Any = object()

        network.register(pid, self._on_network_arrival)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """Group size."""
        return self.network.n

    @property
    def now(self) -> SimTime:
        """Current simulated time (the runtime's time base)."""
        return self.kernel.now

    @property
    def modules(self) -> tuple[Microprotocol, ...]:
        """The stack, top to bottom."""
        return tuple(self._modules)

    def module(self, name: str) -> Microprotocol:
        """Look up a module by routing name."""
        return self._by_name[name]

    def set_adeliver_listener(self, listener: AdeliverListener) -> None:
        """Register the application callback for adelivered messages."""
        self._adeliver_listener = listener

    def attach_failure_detector(self, fd: Any) -> None:
        """Attach a failure detector (see :mod:`repro.fd`)."""
        self._fd = fd
        fd.attach(self)

    def start(self) -> None:
        """Run every module's ``on_start`` hook (top to bottom)."""
        if self._fd is not None:
            self._fd.start()
        for module in self._modules:
            self._execute_actions(module, module.on_start())

    # ------------------------------------------------------------------
    # Application entry points
    # ------------------------------------------------------------------

    def inject(self, event: Event) -> None:
        """Deliver *event* from the application to the top module."""
        if not self.alive:
            return
        done = self.cpu.execute(self.costs.dispatch)
        top = self._modules[0]
        self._charge(top.name, self.costs.dispatch)
        if self._trace.enabled:
            dispatch = self.costs.dispatch
            self._trace.record(
                done - dispatch, "span.inject", self.pid, (top.name, dispatch)
            )
            if type(event) is AbcastRequest:
                self._trace.record(
                    done, "abcast.submit", self.pid, event.message.msg_id
                )
        self._execute_actions(top, top.handle_event(event))

    # ------------------------------------------------------------------
    # Crash semantics
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Stop this process permanently (fail-stop model)."""
        if not self.alive:
            return
        self.alive = False
        self.crashed_at = self.kernel.now
        self.cpu.halt()
        self.network.faults.mark_crashed(self.pid)
        for timer in self._timers.values():
            timer.cancel()
        self._timers.clear()
        self._trace.record(self.kernel.now, "process.crash", self.pid)

    def crash_after_sends(self, remaining_sends: int) -> None:
        """Crash this process right after its next *remaining_sends* sends.

        Used by fault tests to crash a sender halfway through a broadcast
        (the scenario that motivates the paper's §3.3 guard timer).
        """
        if remaining_sends < 1:
            raise ProtocolError("remaining_sends must be >= 1")
        self._sends_until_crash = remaining_sends

    # ------------------------------------------------------------------
    # Failure detector plumbing
    # ------------------------------------------------------------------

    def suspects(self) -> frozenset[int]:
        """Current FD output (empty set when no FD is attached)."""
        if self._fd is None:
            return frozenset()
        return self._fd.suspects()

    def on_suspicion_change(self, suspects: frozenset[int]) -> None:
        """FD callback: propagate the new suspect set to every module."""
        if not self.alive:
            return
        self._trace.record(self.kernel.now, "fd.change", self.pid, suspects)
        self.cpu.execute(self.costs.dispatch)
        self.layer_busy["fd"] += self.costs.dispatch
        for module in self._modules:
            if not self.alive:
                return
            self._run_handler(module, lambda m=module: m.handle_suspicion(suspects))

    def fd_send(self, dst: int, kind: str, payload: Any, payload_size: int) -> None:
        """Send a failure-detector message (routed to the peer FD)."""
        if not self.alive:
            return
        header = self.net_config.base_header + self.net_config.per_module_header
        message = NetMessage(
            kind=kind,
            module="fd",
            src=self.pid,
            dst=dst,
            payload=payload,
            payload_size=payload_size,
            header_size=header,
        )
        cost = self.costs.send_cost(message.wire_size)
        done = self.cpu.execute(cost)
        self.layer_busy["fd"] += cost
        self.network.transmit(message, done)

    def fd_schedule(self, delay: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule an FD-internal callback; suppressed after a crash."""

        def _fire() -> None:
            if self.alive:
                callback()

        return self.kernel.schedule(delay, _fire)

    # ------------------------------------------------------------------
    # Network plumbing
    # ------------------------------------------------------------------

    def _on_network_arrival(self, message: NetMessage) -> None:
        if not self.alive:
            return
        name = message.module
        if name == "fd":
            if self._fd is None:
                raise ProtocolError(f"p{self.pid} got FD message without an FD")
            cost = self.costs.recv_cost(message.wire_size)
            done = self.cpu.execute(cost, partial(self._dispatch_fd_message, message))
            self.layer_busy["fd"] += cost
            if self._trace.enabled:
                self._trace.record(
                    done - cost, "span.recv", self.pid, ("fd", cost, message.kind)
                )
            return
        module = self._by_name.get(name)
        if module is None:
            raise ProtocolError(
                f"p{self.pid} has no module {name!r} for {message}"
            )
        # Same expression as recv_cost(wire) + height*boundary + dispatch,
        # with the height product precomputed (identical association).
        costs = self.costs
        extra = self._crossing_extra[name]
        cost = (
            costs.recv_fixed
            + costs.recv_per_byte * message.wire_size
            + extra
            + costs.dispatch
        )
        done = self.cpu.execute(cost, partial(self._dispatch_message, module, message))
        self.layer_busy[name] += cost - extra
        if extra:
            self.boundary_busy += extra
            self.boundary_crossings += self._height[name]
        if self._trace.enabled:
            self._trace.record(
                done - cost, "span.recv", self.pid, (name, cost, message.kind)
            )

    def _dispatch_fd_message(self, message: NetMessage) -> None:
        if self.alive and self._fd is not None:
            self._fd.handle_message(message)

    def _dispatch_message(self, module: Microprotocol, message: NetMessage) -> None:
        if not self.alive:
            return
        self._execute_actions(module, module.handle_message(message))

    # ------------------------------------------------------------------
    # Action execution
    # ------------------------------------------------------------------

    def _charge(self, layer: str, seconds: float) -> None:
        # Attribution for paths where the module may have been renamed
        # behind the runtime's back (white-box tests).
        self.layer_busy[layer] = self.layer_busy.get(layer, 0.0) + seconds

    def _run_handler(self, module: Microprotocol, thunk: Callable[[], list[Action]]) -> None:
        actions = thunk()
        self._execute_actions(module, actions)

    def _execute_actions(self, module: Microprotocol, actions: list[Action]) -> None:
        # Class-identity dispatch: the action vocabulary is closed (no
        # subclasses exist), and `type is` beats an isinstance chain on
        # the busiest branch of the simulator.
        for action in actions:
            if not self.alive:
                return
            cls = action.__class__
            if cls is Send:
                self._do_send(module, action.dst, action.kind, action.payload, action.payload_size)
            elif cls is SendToAll:
                for dst in module.ctx.others:
                    if not self.alive:
                        return
                    self._do_send(module, dst, action.kind, action.payload, action.payload_size)
            elif cls is EmitUp:
                self._emit(module, action.event, direction=-1)
            elif cls is EmitDown:
                self._emit(module, action.event, direction=+1)
            elif cls is StartTimer:
                self._start_timer(module, action)
            elif cls is CancelTimer:
                self._cancel_timer(module, action.name)
            else:
                raise ProtocolError(
                    f"module {module.name!r} returned unknown action {action!r}"
                )

    def _do_send(
        self, module: Microprotocol, dst: int, kind: str, payload: Any, payload_size: int
    ) -> None:
        name = module.name
        extra = self._crossing_extra.get(name)
        if extra is None:
            # White-box tests rename modules behind the runtime's back;
            # fall back to the uncached formulas.
            height = self._height[name]
            header = self.net_config.base_header + self.net_config.per_module_header * (
                height + 1
            )
            extra = height * self.costs.boundary_crossing
        else:
            header = self._send_header[name]
        message = NetMessage(
            kind=kind,
            module=name,
            src=self.pid,
            dst=dst,
            payload=payload,
            payload_size=payload_size,
            header_size=header,
        )
        first_copy = payload is not self._last_sent_payload or payload is None
        self._last_sent_payload = payload
        # Same expression as send_cost(wire, first_copy=...) +
        # height*boundary, with the height product precomputed.
        costs = self.costs
        wire = message.wire_size
        cost = costs.send_fixed + costs.send_per_byte * wire
        if first_copy:
            cost += costs.serialize_per_byte * wire
        self._charge(name, cost)
        if extra:
            self.boundary_busy += extra
            self.boundary_crossings += self._height[name]
        cost = cost + extra
        done = self.cpu.execute(cost)
        if self._trace.enabled:
            self._trace.record(
                done - cost, "span.send", self.pid, (name, cost, kind, dst)
            )
        self.network.transmit(message, done)
        if self._sends_until_crash is not None:
            self._sends_until_crash -= 1
            if self._sends_until_crash == 0:
                self.crash()

    def _emit(self, module: Microprotocol, event: Event, *, direction: int) -> None:
        index = self._index.get(module.name)
        if index is None:
            index = self._modules.index(module)
        target_index = index + direction
        if direction < 0 and target_index < 0:
            self._deliver_to_application(event)
            return
        if target_index >= len(self._modules):
            raise ProtocolError(
                f"module {module.name!r} emitted {type(event).__name__} below "
                "the bottom of the stack"
            )
        target = self._modules[target_index]
        cost = self.costs.boundary_crossing + self.costs.dispatch
        done = self.cpu.execute(cost)
        self.boundary_busy += self.costs.boundary_crossing
        self.boundary_crossings += 1
        self._charge(target.name, self.costs.dispatch)
        if self._trace.enabled:
            self._trace.record(
                done - cost,
                "span.cross",
                self.pid,
                ("boundary", cost, module.name, target.name),
            )
        self._execute_actions(target, target.handle_event(event))

    def _deliver_to_application(self, event: Event) -> None:
        if not isinstance(event, AdeliverIndication):
            raise ProtocolError(
                f"top module emitted unexpected event {type(event).__name__} "
                "to the application"
            )
        when = self.cpu.execute(self.costs.adeliver)
        self.layer_busy["app"] += self.costs.adeliver
        if self._trace.enabled:
            self._trace.record(
                when - self.costs.adeliver,
                "span.adeliver",
                self.pid,
                ("app", self.costs.adeliver, event.message.msg_id),
            )
            self._trace.record(when, "abcast.adeliver", self.pid, event.message.msg_id)
        if self._adeliver_listener is not None:
            self._adeliver_listener(self.pid, event.message, when)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------

    def _start_timer(self, module: Microprotocol, action: StartTimer) -> None:
        key = (module.name, action.name)
        existing = self._timers.get(key)
        if existing is not None:
            existing.cancel()
        base = max(self.kernel.now, self.cpu.busy_until)
        fire_at = base + action.delay

        def _fire() -> None:
            if not self.alive:
                return
            if self._timers.get(key) is not handle:
                return  # superseded by a later re-arm
            del self._timers[key]
            self.cpu.execute(
                self.costs.dispatch,
                lambda: self._fire_timer(module, action.name, action.payload),
            )
            self._charge(module.name, self.costs.dispatch)

        handle = self.kernel.schedule_at(fire_at, _fire)
        self._timers[key] = handle

    def _fire_timer(self, module: Microprotocol, name: str, payload: Any) -> None:
        if not self.alive:
            return
        self._run_handler(module, lambda: module.handle_timer(name, payload))

    def _cancel_timer(self, module: Microprotocol, name: str) -> None:
        key = (module.name, name)
        existing = self._timers.pop(key, None)
        if existing is not None:
            existing.cancel()
