"""Microprotocol base class and module execution context.

A :class:`Microprotocol` is one box in the paper's Fig. 1. It reacts to
four stimuli — events from adjacent modules, network messages addressed
to it, its own timers, and failure-suspicion changes — and responds with
:class:`~repro.stack.actions.Action` lists. Modules hold no references
to their neighbours, the network or the kernel: composition is entirely
the runtime's business, which is what lets the same consensus
implementation run both under the modular composer and inside unit tests
that feed it events by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ProtocolError
from repro.net.message import NetMessage
from repro.stack.actions import Action
from repro.stack.events import Event


@dataclass(frozen=True, slots=True)
class ModuleContext:
    """Static facts and queries a module may use.

    Attributes:
        pid: This process's identifier.
        n: Group size.
        suspects: Zero-argument callable returning the current output of
            this process's failure detector.
    """

    pid: int
    n: int
    suspects: Callable[[], frozenset[int]]

    @property
    def majority(self) -> int:
        """Smallest majority of the group: ⌊n/2⌋ + 1."""
        return self.n // 2 + 1

    @property
    def others(self) -> tuple[int, ...]:
        """All process ids except this process."""
        return tuple(p for p in range(self.n) if p != self.pid)

    def is_suspected(self, process: int) -> bool:
        """Whether this process's FD currently suspects *process*."""
        return process in self.suspects()


class Microprotocol:
    """Base class of all protocol modules.

    Subclasses set :attr:`name` (used to route network messages to the
    peer module of the same name) and override the ``handle_*`` hooks
    they need. Default implementations reject unexpected stimuli loudly:
    a module receiving an event it does not understand is a composition
    bug, not a runtime condition.
    """

    #: Routing name; must be unique within a stack.
    name: str = "unnamed"

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx

    def on_start(self) -> list[Action]:
        """Called once when the stack starts. Default: nothing."""
        return []

    def handle_event(self, event: Event) -> list[Action]:
        """React to an event emitted by an adjacent module."""
        raise ProtocolError(
            f"module {self.name!r} on p{self.ctx.pid} cannot handle event "
            f"{type(event).__name__}"
        )

    def handle_message(self, message: NetMessage) -> list[Action]:
        """React to a network message addressed to this module."""
        raise ProtocolError(
            f"module {self.name!r} on p{self.ctx.pid} cannot handle message "
            f"kind {message.kind!r}"
        )

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        """React to one of this module's timers firing."""
        raise ProtocolError(
            f"module {self.name!r} on p{self.ctx.pid} has no timer {name!r}"
        )

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        """React to a change in the failure detector output.

        Default: ignore — most modules are failure-detector-oblivious.
        """
        return []
