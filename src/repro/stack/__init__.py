"""Microprotocol composition framework (our Cactus analogue).

Protocol modules (:class:`~repro.stack.module.Microprotocol`) are pure
state machines exchanging typed events; the per-process
:class:`~repro.stack.runtime.ProcessRuntime` composes them into a stack
and charges the CPU for every dispatch, boundary crossing and send —
the mechanical cost of modularity the paper attributes to frameworks
like Cactus.
"""

from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.stack.events import (
    PER_MESSAGE_OVERHEAD,
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    Event,
    ProposeRequest,
    RbcastRequest,
    RdeliverIndication,
    batch_wire_size,
    message_wire_size,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.stack.runtime import AdeliverListener, ProcessRuntime

__all__ = [
    "PER_MESSAGE_OVERHEAD",
    "AbcastRequest",
    "Action",
    "AdeliverIndication",
    "AdeliverListener",
    "CancelTimer",
    "DecideIndication",
    "EmitDown",
    "EmitUp",
    "Event",
    "Microprotocol",
    "ModuleContext",
    "ProcessRuntime",
    "ProposeRequest",
    "RbcastRequest",
    "RdeliverIndication",
    "Send",
    "SendToAll",
    "StartTimer",
    "batch_wire_size",
    "message_wire_size",
]
