"""Typed events exchanged between adjacent modules in a composed stack.

These are the module *interfaces* of the paper's Fig. 1: the application
talks to atomic broadcast via abcast/adeliver, atomic broadcast talks to
consensus via propose/decide, and consensus talks to reliable broadcast
via rbcast/rdeliver. A module never sees anything of its neighbours
beyond these events — that opacity is precisely the modularity whose
cost the paper measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.types import AppMessage, Batch

#: Modelled bytes of identification metadata (message id, sizes, flags)
#: serialized alongside each application message or batch entry.
PER_MESSAGE_OVERHEAD = 16


class Event:
    """Marker base class for inter-module events."""

    __slots__ = ()


@dataclass(frozen=True, slots=True)
class AbcastRequest(Event):
    """Application → atomic broadcast: order and deliver this message."""

    message: AppMessage


@dataclass(frozen=True, slots=True)
class AdeliverIndication(Event):
    """Atomic broadcast → application: next message in the total order."""

    message: AppMessage


@dataclass(frozen=True, slots=True)
class ProposeRequest(Event):
    """Atomic broadcast → consensus: run instance ``instance`` with this
    initial value (a batch of unordered messages)."""

    instance: int
    value: Batch


@dataclass(frozen=True, slots=True)
class DecideIndication(Event):
    """Consensus → atomic broadcast: instance ``instance`` decided."""

    instance: int
    value: Batch


@dataclass(frozen=True, slots=True)
class RbcastRequest(Event):
    """Consensus → reliable broadcast: reliably diffuse this payload."""

    payload: Any
    payload_size: int


@dataclass(frozen=True, slots=True)
class RdeliverIndication(Event):
    """Reliable broadcast → consensus: a reliably broadcast payload."""

    payload: Any
    payload_size: int
    origin: int


def message_wire_size(message: AppMessage) -> int:
    """Modelled serialized size of one application message."""
    return message.size + PER_MESSAGE_OVERHEAD


def batch_wire_size(batch: Batch) -> int:
    """Modelled serialized size of a batch (e.g. a consensus proposal)."""
    return batch.size_bytes + PER_MESSAGE_OVERHEAD * (len(batch) + 1)
