"""Message-sequence charts from simulation traces.

The paper explains its protocols with message-sequence diagrams (Fig. 2:
textbook consensus, Fig. 3: optimized consensus, Fig. 6: the monolithic
pipeline). This module reconstructs the same charts from *actual*
simulator traces, which is both a documentation aid and a validation
tool: the rendered flow of a good-run instance should visually match the
paper's figure for that protocol.

Usage::

    trace = TraceRecorder()
    sim = Simulation(config, seed=1, trace=trace)
    ...
    arrows = extract_arrows(trace, start=0.1, end=0.2)
    print(render_msc(arrows, n=3))
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.net.message import NetMessage
from repro.sim.tracing import TraceRecorder


@dataclass(frozen=True, slots=True)
class Arrow:
    """One message's journey: send instant, receive instant (or loss)."""

    send_time: float
    recv_time: float | None
    src: int
    dst: int
    kind: str
    module: str
    wire_size: int

    @property
    def delivered(self) -> bool:
        return self.recv_time is not None


def extract_arrows(
    trace: TraceRecorder,
    *,
    start: float = 0.0,
    end: float = math.inf,
    kinds: set[str] | None = None,
    modules: set[str] | None = None,
    limit: int | None = None,
) -> list[Arrow]:
    """Pair ``net.send``/``net.recv`` trace records into arrows.

    Args:
        trace: A recorder that was attached to the simulation.
        start, end: Time window on the *send* instant.
        kinds: Keep only these message kinds (default: all).
        modules: Keep only these sending modules (default: all).
        limit: Keep at most this many arrows (earliest first).
    """
    receptions: dict[int, float] = {}
    for record in trace.select("net.recv"):
        message = record.detail
        if isinstance(message, NetMessage):
            receptions[message.uid] = record.time
    arrows: list[Arrow] = []
    for record in trace.select("net.send"):
        message = record.detail
        if not isinstance(message, NetMessage):
            continue
        if not start <= record.time <= end:
            continue
        if kinds is not None and message.kind not in kinds:
            continue
        if modules is not None and message.module not in modules:
            continue
        arrows.append(
            Arrow(
                send_time=record.time,
                recv_time=receptions.get(message.uid),
                src=message.src,
                dst=message.dst,
                kind=message.kind,
                module=message.module,
                wire_size=message.wire_size,
            )
        )
    arrows.sort(key=lambda a: (a.send_time, a.src, a.dst))
    if limit is not None:
        arrows = arrows[:limit]
    return arrows


def _format_size(size: int) -> str:
    if size >= 10240:
        return f"{size / 1024:.0f}KiB"
    return f"{size}B"


def render_msc(arrows: list[Arrow], n: int, *, origin: float | None = None) -> str:
    """Render arrows as a chronological text chart.

    One line per message, with times relative to *origin* (default: the
    first arrow's send time)::

        +0.000ms  p0 ─COMBINED(66KiB)→ p1        (arrives +0.812ms)
    """
    if not arrows:
        return "(no messages in window)"
    base = origin if origin is not None else arrows[0].send_time
    lines = []
    for arrow in arrows:
        label = f"{arrow.kind}({_format_size(arrow.wire_size)})"
        left = f"+{(arrow.send_time - base) * 1e3:8.3f}ms  p{arrow.src} ─{label}→ p{arrow.dst}"
        if arrow.delivered:
            right = f"(arrives +{(arrow.recv_time - base) * 1e3:.3f}ms)"
        else:
            right = "(lost)"
        lines.append(f"{left:<58} {right}")
    return "\n".join(lines)


def summarize_kinds(arrows: list[Arrow]) -> dict[str, int]:
    """Message-kind histogram of a window (for quick flow assertions)."""
    histogram: dict[str, int] = {}
    for arrow in arrows:
        histogram[arrow.kind] = histogram.get(arrow.kind, 0) + 1
    return histogram
