"""Reproduction of the paper's analytical evaluation (§5.2) as tables,
with validation of the closed forms against the simulator's counters.

Two artifacts:

* :func:`analytical_table` — the §5.2 formulas evaluated for the paper's
  configurations (message counts, data volumes, the (n-1)/(n+1)
  overhead).
* :func:`validation_table` — steady-state good runs of both stacks whose
  *measured* per-consensus message counts and payload volumes are put
  next to the formulas' predictions, using the measured M. This is the
  experiment showing the simulator actually sends what the paper counts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.model import (
    compare,
    modular_data_per_consensus,
    modular_messages_per_consensus,
    monolithic_data_per_consensus,
    monolithic_messages_per_consensus,
)
from repro.config import RunConfig, StackKind, WorkloadConfig, modular_stack, monolithic_stack
from repro.experiments.report import format_table
from repro.experiments.runner import RunResult, run_simulation


def analytical_table(
    group_sizes: tuple[int, ...] = (3, 7),
    messages_per_consensus: float = 4,
    message_size: int = 16384,
) -> str:
    """The paper's §5.2 numbers for the given configurations."""
    headers = [
        "n",
        "M",
        "msgs modular",
        "msgs monolithic",
        "data modular (B)",
        "data monolithic (B)",
        "overhead",
    ]
    rows = []
    for n in group_sizes:
        c = compare(n, messages_per_consensus, message_size)
        rows.append(
            [
                str(n),
                f"{messages_per_consensus:g}",
                f"{c.modular_messages:.0f}",
                f"{c.monolithic_messages:.0f}",
                f"{c.modular_data:.0f}",
                f"{c.monolithic_data:.0f}",
                f"{100 * c.data_overhead:.0f}%",
            ]
        )
    return format_table(headers, rows)


@dataclass(frozen=True, slots=True)
class ValidationRow:
    """Measured vs predicted per-consensus costs for one stack."""

    n: int
    stack: StackKind
    measured_m: float
    measured_messages: float
    predicted_messages: float
    measured_payload_bytes: float
    predicted_payload_bytes: float
    run: RunResult

    @property
    def message_error(self) -> float:
        """Relative error of the §5.2.1 message-count prediction."""
        return abs(self.measured_messages - self.predicted_messages) / max(
            self.predicted_messages, 1e-9
        )

    @property
    def payload_error(self) -> float:
        """Relative error of the §5.2.2 data-volume prediction."""
        return abs(self.measured_payload_bytes - self.predicted_payload_bytes) / max(
            self.predicted_payload_bytes, 1e-9
        )


def validate_stack(
    n: int,
    stack: StackKind,
    *,
    message_size: int = 16384,
    offered_load: float = 4000.0,
    seed: int = 1,
    duration: float = 1.0,
) -> ValidationRow:
    """Run one stack at saturation and compare counters with §5.2.

    The predictions take the *measured* M as input (the formulas are
    per-consensus-of-M-messages); the §5.2.2 data formulas count only
    abcast payload bytes, which is what the network's payload counter
    tracks net of the per-message metadata overhead.
    """
    stack_config = (
        modular_stack() if stack is StackKind.MODULAR else monolithic_stack()
    )
    config = RunConfig(
        n=n,
        stack=stack_config,
        workload=WorkloadConfig(offered_load=offered_load, message_size=message_size),
        duration=duration,
        warmup=0.4,
    )
    run = run_simulation(config, seed=seed)
    measured_m = run.delivered_per_consensus or 0.0
    if stack is StackKind.MODULAR:
        predicted_messages = modular_messages_per_consensus(n, measured_m)
        predicted_payload = modular_data_per_consensus(n, measured_m, message_size)
    else:
        predicted_messages = monolithic_messages_per_consensus(n)
        predicted_payload = monolithic_data_per_consensus(n, measured_m, message_size)
    return ValidationRow(
        n=n,
        stack=stack,
        measured_m=measured_m,
        measured_messages=run.messages_per_consensus or 0.0,
        predicted_messages=predicted_messages,
        measured_payload_bytes=run.payload_bytes_per_consensus or 0.0,
        predicted_payload_bytes=predicted_payload,
        run=run,
    )


def validation_table(
    group_sizes: tuple[int, ...] = (3, 7), message_size: int = 16384
) -> str:
    """Measured-vs-predicted table for both stacks and group sizes."""
    headers = [
        "n",
        "stack",
        "M",
        "msgs/consensus (sim)",
        "msgs/consensus (§5.2.1)",
        "payload B/consensus (sim)",
        "payload B/consensus (§5.2.2)",
    ]
    rows = []
    for n in group_sizes:
        for stack in (StackKind.MODULAR, StackKind.MONOLITHIC):
            v = validate_stack(n, stack, message_size=message_size)
            rows.append(
                [
                    str(n),
                    stack.value,
                    f"{v.measured_m:.2f}",
                    f"{v.measured_messages:.2f}",
                    f"{v.predicted_messages:.2f}",
                    f"{v.measured_payload_bytes:.0f}",
                    f"{v.predicted_payload_bytes:.0f}",
                ]
            )
    return format_table(headers, rows)
