"""Parameter sweeps with seed ensembles and confidence intervals.

The paper's evaluation varies two parameters — offered load (Figs. 8
and 10) and message size (Figs. 9 and 11) — for each group size and
stack, reporting means with 95 % confidence intervals. A sweep here runs
every (n, stack, x) point with several seeds and reduces each to a
:class:`PointSummary`; the figure emitters in
:mod:`repro.experiments.figures` then select the latency or throughput
column.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.errors import ConfigurationError
from repro.experiments.parallel import run_simulations
from repro.experiments.runner import RunResult, run_simulation
from repro.metrics.stats import (
    ConfidenceInterval,
    LatencyHistogram,
    mean_confidence_interval,
)

#: Offered loads of the paper's load sweeps (msgs/s), Figs. 8 and 10.
PAPER_LOADS = (250, 500, 1000, 2000, 3000, 4000, 5000, 6000, 7000)
#: Message sizes of the paper's size sweeps (bytes), Figs. 9 and 11.
PAPER_SIZES = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768)
#: Group sizes the paper evaluates.
PAPER_GROUP_SIZES = (3, 7)
#: Fixed message size of the load sweeps.
PAPER_LOAD_SWEEP_SIZE = 16384
#: Fixed offered load of the size sweeps.
PAPER_SIZE_SWEEP_LOAD = 2000.0
#: Default seed ensemble (the paper averages several executions).
DEFAULT_SEEDS = (1, 2, 3)


@dataclass(frozen=True, slots=True)
class PointSummary:
    """Seed-ensemble summary of one sweep point."""

    n: int
    stack: StackKind
    #: The swept parameter's value (offered load or message size).
    x: float
    latency: ConfidenceInterval
    #: Percentile latencies (ensemble CI over per-run percentiles).
    latency_p50: ConfidenceInterval
    latency_p99: ConfidenceInterval
    throughput: ConfidenceInterval
    #: Measured messages ordered per consensus (paper's M), ensemble mean.
    delivered_per_consensus: float | None
    #: Whether every seed's run passed the stationarity check.
    stationary: bool
    runs: tuple[RunResult, ...]
    #: Tail latency p999 (ensemble CI over per-run histogram p999s).
    latency_p999: ConfidenceInterval | None = None
    #: The seed ensemble's merged latency histogram as sorted
    #: ``(bucket, count)`` pairs — the full distribution behind p999.
    histogram: tuple[tuple[int, int], ...] = ()
    #: The measured cost of modularity: ensemble-mean fraction of
    #: attributed CPU time spent crossing module boundaries (see
    #: :mod:`repro.obs.attribution`). ``None`` when no run attributed.
    modularity_overhead: float | None = None
    #: Ensemble-total boundary crossings over the measurement windows.
    boundary_crossings: int = 0
    #: Network messages by protocol kind, summed across the ensemble's
    #: measurement windows, as sorted ``(kind, count)`` pairs.
    messages_by_kind: tuple[tuple[str, int], ...] = ()

    def merged_histogram(self) -> LatencyHistogram:
        """The ensemble's latency distribution as a live histogram."""
        return LatencyHistogram.from_counts(self.histogram)


@dataclass(frozen=True, slots=True)
class SweepResult:
    """All points of one sweep, indexed by (n, stack, x)."""

    parameter: str
    points: tuple[PointSummary, ...]

    def series(self, n: int, stack: StackKind) -> tuple[PointSummary, ...]:
        """The curve for one (group size, stack) pair, ordered by x."""
        selected = [p for p in self.points if p.n == n and p.stack == stack]
        return tuple(sorted(selected, key=lambda p: p.x))

    def point(self, n: int, stack: StackKind, x: float) -> PointSummary:
        """A single point; raises ``KeyError`` if absent."""
        for p in self.points:
            if p.n == n and p.stack == stack and p.x == x:
                return p
        raise KeyError(f"no sweep point (n={n}, stack={stack}, x={x})")


def summarize_point(
    n: int, stack: StackKind, x: float, runs: list[RunResult]
) -> PointSummary:
    """Reduce the seed ensemble of one point."""
    latencies = [
        r.metrics.latency_mean for r in runs if r.metrics.latency_mean is not None
    ]
    p50s = [
        r.metrics.latency_p50 for r in runs if r.metrics.latency_p50 is not None
    ]
    p99s = [
        r.metrics.latency_p99 for r in runs if r.metrics.latency_p99 is not None
    ]
    p999s = [
        r.metrics.latency_p999 for r in runs if r.metrics.latency_p999 is not None
    ]
    merged = LatencyHistogram()
    for r in runs:
        merged = merged.merge(r.metrics.histogram())
    throughputs = [r.metrics.throughput for r in runs]
    batch_sizes = [
        r.delivered_per_consensus
        for r in runs
        if r.delivered_per_consensus is not None
    ]
    overheads = [
        r.metrics.modularity_overhead
        for r in runs
        if r.metrics.modularity_overhead is not None
    ]
    by_kind: dict[str, int] = {}
    for r in runs:
        for kind, count in r.network.get("messages_by_kind", {}).items():
            by_kind[kind] = by_kind.get(kind, 0) + count
    return PointSummary(
        n=n,
        stack=stack,
        x=x,
        latency=mean_confidence_interval(latencies or [float("nan")]),
        latency_p50=mean_confidence_interval(p50s or [float("nan")]),
        latency_p99=mean_confidence_interval(p99s or [float("nan")]),
        throughput=mean_confidence_interval(throughputs),
        delivered_per_consensus=(
            sum(batch_sizes) / len(batch_sizes) if batch_sizes else None
        ),
        stationary=all(r.metrics.stationary for r in runs),
        runs=tuple(runs),
        latency_p999=mean_confidence_interval(p999s or [float("nan")]),
        histogram=merged.counts(),
        modularity_overhead=(
            sum(overheads) / len(overheads) if overheads else None
        ),
        boundary_crossings=sum(r.metrics.boundary_crossings for r in runs),
        messages_by_kind=tuple(sorted(by_kind.items())),
    )


def _run_point(
    base: RunConfig,
    n: int,
    stack: StackKind,
    workload: WorkloadConfig,
    x: float,
    seeds: tuple[int, ...],
) -> PointSummary:
    config = base.with_changes(
        n=n, stack=replace(base.stack, kind=stack), workload=workload
    )
    runs = [run_simulation(config, seed=seed) for seed in seeds]
    return summarize_point(n, stack, x, runs)


def _run_grid(
    specs: list[tuple[int, StackKind, float, RunConfig]],
    seeds: tuple[int, ...],
    jobs: int,
) -> tuple[PointSummary, ...]:
    """Run the whole (point × seed) grid, then regroup per point.

    The grid is flattened so that parallel workers balance across the
    entire sweep rather than one point's seeds; results come back in
    submission order (see :mod:`repro.experiments.parallel`), so the
    regrouping — and hence every summary — is identical for any *jobs*.
    """
    tasks = [(config, seed) for _, _, _, config in specs for seed in seeds]
    results = run_simulations(tasks, jobs=jobs)
    width = len(seeds)
    return tuple(
        summarize_point(n, stack, x, list(results[i * width : (i + 1) * width]))
        for i, (n, stack, x, _) in enumerate(specs)
    )


def run_load_sweep(
    *,
    loads: tuple[float, ...] = PAPER_LOADS,
    message_size: int = PAPER_LOAD_SWEEP_SIZE,
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    stacks: tuple[StackKind, ...] = (StackKind.MODULAR, StackKind.MONOLITHIC),
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    base: RunConfig | None = None,
    jobs: int = 1,
) -> SweepResult:
    """The sweep behind Figs. 8 and 10: vary offered load at fixed size."""
    base = base or RunConfig()
    specs = []
    for n in group_sizes:
        for stack in stacks:
            for load in loads:
                # replace() on the base workload keeps its other
                # dimensions — arrival law, client population — so a
                # populated base sweeps the population across loads.
                workload = replace(
                    base.workload,
                    offered_load=float(load),
                    message_size=message_size,
                )
                config = base.with_changes(
                    n=n, stack=replace(base.stack, kind=stack), workload=workload
                )
                specs.append((n, stack, float(load), config))
    return SweepResult(
        parameter="offered_load", points=_run_grid(specs, seeds, jobs)
    )


#: Zipf exponents of the client-population skew sweep: uniform through
#: heavily skewed (s > 1 concentrates most traffic on a few clients).
PAPER_ZIPF_SKEWS = (0.0, 0.5, 0.8, 1.1, 1.5)


def run_zipf_sweep(
    *,
    skews: tuple[float, ...] = PAPER_ZIPF_SKEWS,
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    stacks: tuple[StackKind, ...] = (StackKind.MODULAR, StackKind.MONOLITHIC),
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    base: RunConfig | None = None,
    jobs: int = 1,
) -> SweepResult:
    """Vary the client population's Zipf activity skew at fixed load.

    The base config must carry a ``workload.population``; each point
    replaces only its ``zipf_s``. Offered load is held constant, so the
    curve isolates how concentrating the same traffic onto ever fewer
    clients moves the latency distribution (p50 vs p999).
    """
    base = base or RunConfig()
    population = base.workload.population
    if population is None:
        raise ConfigurationError(
            "zipf sweep needs a client population on the base config "
            "(set workload.population)"
        )
    specs = []
    for n in group_sizes:
        for stack in stacks:
            for skew in skews:
                workload = replace(
                    base.workload,
                    population=replace(population, zipf_s=float(skew)),
                )
                config = base.with_changes(
                    n=n, stack=replace(base.stack, kind=stack), workload=workload
                )
                specs.append((n, stack, float(skew), config))
    return SweepResult(parameter="zipf_s", points=_run_grid(specs, seeds, jobs))


def run_size_sweep(
    *,
    sizes: tuple[int, ...] = PAPER_SIZES,
    offered_load: float = PAPER_SIZE_SWEEP_LOAD,
    group_sizes: tuple[int, ...] = PAPER_GROUP_SIZES,
    stacks: tuple[StackKind, ...] = (StackKind.MODULAR, StackKind.MONOLITHIC),
    seeds: tuple[int, ...] = DEFAULT_SEEDS,
    base: RunConfig | None = None,
    jobs: int = 1,
) -> SweepResult:
    """The sweep behind Figs. 9 and 11: vary message size at fixed load."""
    base = base or RunConfig()
    specs = []
    for n in group_sizes:
        for stack in stacks:
            for size in sizes:
                workload = replace(
                    base.workload, offered_load=offered_load, message_size=size
                )
                config = base.with_changes(
                    n=n, stack=replace(base.stack, kind=stack), workload=workload
                )
                specs.append((n, stack, float(size), config))
    return SweepResult(
        parameter="message_size", points=_run_grid(specs, seeds, jobs)
    )
