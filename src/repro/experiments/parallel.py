"""Parallel execution of sweep grids across worker processes.

A sweep is an embarrassingly parallel bag of independent simulations:
every (config point, seed) pair is a pure function of its arguments, so
the grid can fan out over a :class:`~concurrent.futures.ProcessPoolExecutor`
without changing a single result. Two properties make the fan-out safe:

* **Determinism of each task.** A simulation run depends only on
  ``(config, seed)`` — never on process-global state — so it computes
  the same :class:`~repro.experiments.runner.RunResult` in any worker.
* **Determinism of the merge.** Results are collected in *submission
  order* (``ProcessPoolExecutor.map`` preserves input order), so the
  reduced sweep — and any JSON rendered from it — is byte-identical for
  every ``jobs`` value, including the serial ``jobs=1`` path.

Workers capture :class:`~repro.errors.StationarityWarning` instead of
printing it from the child; the parent re-emits the captured warnings in
submission order, again so serial and parallel runs behave alike.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

from repro.config import RunConfig
from repro.errors import StationarityWarning
from repro.experiments.runner import RunResult, run_simulation

_T = TypeVar("_T")
_R = TypeVar("_R")

#: A single simulation task: the fully resolved config plus its seed.
SimTask = tuple[RunConfig, int]


def default_jobs() -> int:
    """A sensible ``--jobs`` value for this machine (its CPU count)."""
    return os.cpu_count() or 1


def run_tasks(
    fn: Callable[[_T], _R], tasks: Iterable[_T], *, jobs: int = 1
) -> list[_R]:
    """Apply *fn* to every task, fanning out over worker processes.

    Args:
        fn: A picklable module-level function (workers import it by
            qualified name under the ``spawn`` start method).
        tasks: Picklable task descriptions.
        jobs: Maximum worker processes. ``jobs <= 1`` runs everything
            serially in-process — no pool, no pickling, same results.

    Returns:
        One result per task, in task order regardless of *jobs* — the
        merge is keyed by submission index, not completion time.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    workers = min(jobs, len(tasks))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(fn, tasks, chunksize=1))


def simulate_task(task: SimTask) -> tuple[RunResult, tuple[str, ...]]:
    """Run one simulation; return its result plus captured warnings.

    Stationarity warnings are returned as strings rather than emitted,
    so a worker process never writes to the parent's stderr; the parent
    re-emits them in deterministic (submission) order.
    """
    config, seed = task
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always", StationarityWarning)
        result = run_simulation(config, seed=seed)
    messages = tuple(
        str(w.message) for w in caught if issubclass(w.category, StationarityWarning)
    )
    return result, messages


def run_simulations(tasks: Sequence[SimTask], *, jobs: int = 1) -> list[RunResult]:
    """Run a batch of simulations, possibly in parallel, in task order."""
    outcomes = run_tasks(simulate_task, tasks, jobs=jobs)
    results = []
    for result, messages in outcomes:
        for message in messages:
            warnings.warn(message, StationarityWarning, stacklevel=2)
        results.append(result)
    return results
