"""Knee and gap analysis of sweep curves.

The paper's prose claims live in curve *features*: "the latency of both
implementations remains relatively constant above a certain offered
load" (the flow-control knee, Fig. 8), "the throughput remains constant
up to messages of size 4096 for n = 7 and 16384 for n = 3" (the size
knee, Fig. 11), "the difference in latency is up to 50 %" (the peak
gap). This module extracts those features from sweep results so the
claims become assertions instead of eyeballing:

* :func:`saturation_knee` — first x beyond which a curve stays within a
  tolerance band of its final plateau;
* :func:`gap_series` — the modular-vs-monolithic gap at every x;
* :func:`peak_gap` — the paper's headline "up to X %" number.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import StackKind
from repro.errors import MetricsError
from repro.experiments.sweeps import PointSummary, SweepResult


def _series_values(
    sweep: SweepResult, n: int, stack: StackKind, metric: str
) -> list[tuple[float, float]]:
    series = sweep.series(n, stack)
    if not series:
        raise MetricsError(f"sweep has no series for n={n}, {stack.value}")

    def value(point: PointSummary) -> float:
        if metric == "latency":
            return point.latency.mean
        if metric == "throughput":
            return point.throughput.mean
        raise MetricsError(f"unknown metric {metric!r}")

    return [(point.x, value(point)) for point in series]


def saturation_knee(
    sweep: SweepResult,
    n: int,
    stack: StackKind,
    metric: str,
    *,
    tolerance: float = 0.15,
) -> float:
    """Smallest x from which the curve stays within *tolerance* of its
    final value — the plateau onset (Fig. 8/10) or, read from the other
    side, the last x before size-degradation (Fig. 9/11).

    Returns the first x of the longest stable suffix; if the curve never
    stabilizes, returns the final x.
    """
    points = _series_values(sweep, n, stack, metric)
    final = points[-1][1]
    if final == 0:
        raise MetricsError("cannot locate a knee on an all-zero curve")
    knee = points[-1][0]
    for x, value in reversed(points):
        if abs(value - final) / abs(final) <= tolerance:
            knee = x
        else:
            break
    return knee


@dataclass(frozen=True, slots=True)
class GapPoint:
    """Relative contender advantage at one sweep position."""

    x: float
    #: For latency: fraction by which the contender is *lower*.
    #: For throughput: fraction by which the contender is *higher*.
    gap: float


def gap_series(
    sweep: SweepResult,
    n: int,
    metric: str,
    *,
    baseline: StackKind = StackKind.MODULAR,
    contender: StackKind = StackKind.MONOLITHIC,
) -> list[GapPoint]:
    """Contender-vs-baseline gap at every x of a sweep.

    The defaults reproduce the paper's modular-vs-monolithic analysis;
    the extension stacks reuse the same machinery (e.g.
    ``baseline=SEQUENCER, contender=BATCHED_SEQUENCER`` quantifies what
    distillation buys over the raw sequencer along a load sweep).
    """
    base = dict(_series_values(sweep, n, baseline, metric))
    cont = dict(_series_values(sweep, n, contender, metric))
    shared = sorted(set(base) & set(cont))
    if not shared:
        raise MetricsError("sweeps for the two stacks share no x values")
    gaps = []
    for x in shared:
        if metric == "latency":
            gaps.append(GapPoint(x, 1.0 - cont[x] / base[x]))
        else:
            gaps.append(GapPoint(x, cont[x] / base[x] - 1.0))
    return gaps


def peak_gap(
    sweep: SweepResult,
    n: int,
    metric: str,
    *,
    baseline: StackKind = StackKind.MODULAR,
    contender: StackKind = StackKind.MONOLITHIC,
) -> GapPoint:
    """The paper's headline number: the largest gap along a sweep."""
    return max(
        gap_series(sweep, n, metric, baseline=baseline, contender=contender),
        key=lambda p: p.gap,
    )
