"""Plain-text table rendering for figures and sweeps.

The paper presents its evaluation as four line plots; we regenerate the
same series as aligned text tables (one row per x value, one column per
(group size, stack) curve), with 95 % confidence half-widths, suitable
for terminals and for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.config import StackKind
from repro.experiments.sweeps import PointSummary, SweepResult
from repro.metrics.stats import ConfidenceInterval, LatencyHistogram


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render an aligned plain-text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rows:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _format_ci(ci: ConfidenceInterval, scale: float, unit_digits: int) -> str:
    if ci.mean != ci.mean:  # NaN: no latency samples at this point
        return "n/a"
    if ci.count == 1:
        # Single-seed ensembles have no interval; "12.34±0.00" would
        # misrepresent the (absent) variance, so print the mean alone.
        return f"{ci.mean * scale:.{unit_digits}f}"
    return f"{ci.mean * scale:.{unit_digits}f}±{ci.half_width * scale:.{unit_digits}f}"


#: Column order of sweep tables: the paper's two stacks first (so the
#: regenerated Figs. 8–11 keep their historical layout), then the
#: extension stacks. Only stacks actually present in a sweep appear.
TABLE_STACK_ORDER = (
    StackKind.MONOLITHIC,
    StackKind.MODULAR,
    StackKind.SEQUENCER,
    StackKind.RINGPAXOS,
    StackKind.BATCHED_SEQUENCER,
)


def sweep_table(
    sweep: SweepResult,
    metric: str,
    *,
    x_label: str,
    group_sizes: tuple[int, ...] = (3, 7),
) -> str:
    """One figure as a text table.

    Args:
        sweep: A load or size sweep result.
        metric: ``"latency"``, ``"latency_p50"``, ``"latency_p99"`` or
            ``"latency_p999"`` (reported in ms) or ``"throughput"``
            (reported in msgs/s).
        x_label: Header of the swept-parameter column.
        group_sizes: Which n curves to include.
    """
    if metric == "latency":
        extract: Callable[[PointSummary], str] = lambda p: _format_ci(
            p.latency, 1e3, 2
        )
    elif metric == "latency_p50":
        extract = lambda p: _format_ci(p.latency_p50, 1e3, 2)
    elif metric == "latency_p99":
        extract = lambda p: _format_ci(p.latency_p99, 1e3, 2)
    elif metric == "latency_p999":
        extract = lambda p: (
            _format_ci(p.latency_p999, 1e3, 2) if p.latency_p999 else "n/a"
        )
    elif metric == "throughput":
        extract = lambda p: _format_ci(p.throughput, 1.0, 0)
    else:
        raise ValueError(f"unknown metric {metric!r}")

    present = {p.stack for p in sweep.points}
    ordered = [s for s in TABLE_STACK_ORDER if s in present]
    ordered += sorted(present - set(TABLE_STACK_ORDER), key=lambda s: s.value)

    headers = [x_label]
    curves = []
    for n in group_sizes:
        for stack in ordered:
            series = sweep.series(n, stack)
            if series:
                headers.append(f"n={n} {stack.value}")
                curves.append({p.x: p for p in series})
    xs = sorted({p.x for p in sweep.points})
    rows = []
    for x in xs:
        row = [f"{x:g}"]
        for curve in curves:
            point = curve.get(x)
            row.append(extract(point) if point is not None else "-")
        rows.append(row)
    return format_table(headers, rows)


def histogram_table(
    histogram: "LatencyHistogram", *, width: int = 40
) -> str:
    """Render one latency distribution as an aligned text histogram.

    One row per occupied log-bucket: the bucket's latency range in ms,
    the sample count, and a bar scaled so the fullest bucket spans
    *width* characters. Percentile markers (p50/p99/p999) are appended
    under the table.
    """
    pairs = histogram.counts()
    if not pairs:
        return "(no latency samples)"
    peak = max(count for _, count in pairs)
    rows = []
    for index, count in pairs:
        low, high = LatencyHistogram.bucket_bounds(index)
        bar = "#" * max(1, round(width * count / peak))
        rows.append([f"{low * 1e3:.3f}-{high * 1e3:.3f}", str(count), bar])
    table = format_table(["latency (ms)", "count", "distribution"], rows)
    marks = "  ".join(
        f"{name}={histogram.percentile(q) * 1e3:.2f}ms"
        for name, q in (("p50", 0.50), ("p99", 0.99), ("p999", 0.999))
    )
    return f"{table}\n{marks}"


def gap_summary(sweep: SweepResult, metric: str, x: float, n: int) -> str:
    """One-line modular-vs-monolithic gap at a given point."""
    modular = sweep.point(n, StackKind.MODULAR, x)
    mono = sweep.point(n, StackKind.MONOLITHIC, x)
    if metric == "latency":
        gap = 100.0 * (1.0 - mono.latency.mean / modular.latency.mean)
        return f"n={n}, x={x:g}: monolithic latency {gap:.0f}% lower than modular"
    gap = 100.0 * (mono.throughput.mean / modular.throughput.mean - 1.0)
    return f"n={n}, x={x:g}: monolithic throughput {gap:+.0f}% vs modular"
