"""Reproduction drivers for the paper's four evaluation figures.

Each ``figure*`` function runs the relevant sweep (or reuses one passed
in — Figs. 8/10 share the load sweep and Figs. 9/11 share the size
sweep, exactly as in the paper) and returns the figure as a text table
plus headline gap lines.

* **Figure 8** — early latency vs offered load, message size 16384 B.
* **Figure 9** — early latency vs message size, offered load 2000 msg/s.
* **Figure 10** — throughput vs offered load, message size 16384 B.
* **Figure 11** — throughput vs message size, offered load 2000 msg/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import StackKind
from repro.experiments.report import gap_summary, histogram_table, sweep_table
from repro.experiments.sweeps import (
    DEFAULT_SEEDS,
    PAPER_LOADS,
    PAPER_SIZES,
    SweepResult,
    run_load_sweep,
    run_size_sweep,
)

#: Reduced parameters for quick regeneration (CLI ``--fast`` and benches).
FAST_LOADS = (500, 1000, 2000, 4000, 7000)
FAST_SIZES = (64, 1024, 4096, 16384, 32768)
FAST_SEEDS = (1,)


def _group_sizes(sweep: SweepResult) -> tuple[int, ...]:
    """Group sizes actually present in a sweep (headline gaps adapt)."""
    return tuple(sorted({p.n for p in sweep.points}))


def _gap_headlines(sweep: SweepResult, metric: str, xs) -> tuple[str, ...]:
    """The paper's modular-vs-monolithic headline gaps — skipped when a
    custom stack selection omits either of the two paper stacks."""
    present = {p.stack for p in sweep.points}
    if not {StackKind.MODULAR, StackKind.MONOLITHIC} <= present:
        return ()
    return tuple(
        gap_summary(sweep, metric, x, n)
        for n in _group_sizes(sweep)
        for x in xs
    )


@dataclass(frozen=True, slots=True)
class FigureReport:
    """A regenerated figure: its data, rendering and headline gaps."""

    figure: str
    title: str
    sweep: SweepResult
    table: str
    headlines: tuple[str, ...]

    def __str__(self) -> str:
        lines = [f"{self.figure}: {self.title}", "", self.table, ""]
        lines.extend(self.headlines)
        return "\n".join(lines)


def _load_sweep(
    fast: bool,
    seeds: tuple[int, ...] | None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> SweepResult:
    kwargs = {} if stacks is None else {"stacks": stacks}
    return run_load_sweep(
        loads=FAST_LOADS if fast else PAPER_LOADS,
        seeds=seeds or (FAST_SEEDS if fast else DEFAULT_SEEDS),
        jobs=jobs,
        **kwargs,
    )


def _size_sweep(
    fast: bool,
    seeds: tuple[int, ...] | None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> SweepResult:
    kwargs = {} if stacks is None else {"stacks": stacks}
    return run_size_sweep(
        sizes=FAST_SIZES if fast else PAPER_SIZES,
        seeds=seeds or (FAST_SEEDS if fast else DEFAULT_SEEDS),
        jobs=jobs,
        **kwargs,
    )


def figure8(
    sweep: SweepResult | None = None,
    *,
    fast: bool = False,
    seeds: tuple[int, ...] | None = None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> FigureReport:
    """Early latency vs offered load (abcast messages of 16384 bytes)."""
    sweep = sweep or _load_sweep(fast, seeds, jobs, stacks)
    high_load = max(p.x for p in sweep.points)
    return FigureReport(
        figure="Figure 8",
        title="early latency (ms) vs offered load (msgs/s), size=16384",
        sweep=sweep,
        table=sweep_table(sweep, "latency", x_label="load"),
        headlines=_gap_headlines(sweep, "latency", (high_load,)),
    )


def figure9(
    sweep: SweepResult | None = None,
    *,
    fast: bool = False,
    seeds: tuple[int, ...] | None = None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> FigureReport:
    """Early latency vs message size (offered load 2000 msgs/s)."""
    sweep = sweep or _size_sweep(fast, seeds, jobs, stacks)
    small = min(p.x for p in sweep.points)
    large = max(p.x for p in sweep.points)
    return FigureReport(
        figure="Figure 9",
        title="early latency (ms) vs message size (bytes), load=2000 msgs/s",
        sweep=sweep,
        table=sweep_table(sweep, "latency", x_label="size"),
        headlines=_gap_headlines(sweep, "latency", (small, large)),
    )


def figure10(
    sweep: SweepResult | None = None,
    *,
    fast: bool = False,
    seeds: tuple[int, ...] | None = None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> FigureReport:
    """Throughput vs offered load (abcast messages of 16384 bytes)."""
    sweep = sweep or _load_sweep(fast, seeds, jobs, stacks)
    high_load = max(p.x for p in sweep.points)
    return FigureReport(
        figure="Figure 10",
        title="throughput (msgs/s) vs offered load (msgs/s), size=16384",
        sweep=sweep,
        table=sweep_table(sweep, "throughput", x_label="load"),
        headlines=_gap_headlines(sweep, "throughput", (high_load,)),
    )


def figure11(
    sweep: SweepResult | None = None,
    *,
    fast: bool = False,
    seeds: tuple[int, ...] | None = None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> FigureReport:
    """Throughput vs message size (offered load 2000 msgs/s)."""
    sweep = sweep or _size_sweep(fast, seeds, jobs, stacks)
    small = min(p.x for p in sweep.points)
    large = max(p.x for p in sweep.points)
    return FigureReport(
        figure="Figure 11",
        title="throughput (msgs/s) vs message size (bytes), load=2000 msgs/s",
        sweep=sweep,
        table=sweep_table(sweep, "throughput", x_label="size"),
        headlines=_gap_headlines(sweep, "throughput", (small, large)),
    )


def latency_distribution(
    sweep: SweepResult,
    *,
    n: int | None = None,
    stack: StackKind | None = None,
    x: float | None = None,
) -> FigureReport:
    """Latency-distribution figure: the full per-point histogram.

    Unlike Figs. 8–11 (one scalar per point), this renders the merged
    log-bucketed latency histogram of one sweep point — the shape a
    million-client population actually experiences, p999 included. The
    point defaults to the highest-x point of the first (n, stack) curve
    present; pass *n*, *stack* and *x* to select another.
    """
    if not sweep.points:
        raise ValueError("latency distribution of an empty sweep")
    candidates = [
        p
        for p in sweep.points
        if (n is None or p.n == n)
        and (stack is None or p.stack == stack)
        and (x is None or p.x == x)
    ]
    if not candidates:
        raise KeyError(
            f"no sweep point matches (n={n}, stack={stack}, x={x})"
        )
    point = max(candidates, key=lambda p: (p.x, p.n, p.stack.value))
    return FigureReport(
        figure="Latency distribution",
        title=(
            f"early-latency histogram, n={point.n} {point.stack.value} "
            f"{sweep.parameter}={point.x:g}"
        ),
        sweep=sweep,
        table=histogram_table(point.merged_histogram()),
        headlines=(),
    )


def all_figures(
    *,
    fast: bool = False,
    seeds: tuple[int, ...] | None = None,
    jobs: int = 1,
    stacks: tuple[StackKind, ...] | None = None,
) -> list[FigureReport]:
    """Regenerate all four figures, sharing sweeps as the paper does."""
    load_sweep = _load_sweep(fast, seeds, jobs, stacks)
    size_sweep = _size_sweep(fast, seeds, jobs, stacks)
    return [
        figure8(load_sweep),
        figure9(size_sweep),
        figure10(load_sweep),
        figure11(size_sweep),
    ]
