"""Cost-model calibration against measured targets.

The simulator's fidelity hangs on the :class:`~repro.config.CpuCosts`
values. This module turns calibration from hand-tuning into a
procedure: declare the operating points you know (e.g. the paper's
"modular stack at n=3, 7000 msg/s, 16 KiB does ~730 msg/s"), and
:func:`calibrate` fits the chosen cost parameters by log-space
coordinate descent, each evaluation being a short deterministic
simulation.

This is how the defaults in ``repro.config`` were refined, and how a
user with their *own* testbed measurements would retarget the simulator
to a different era of hardware.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.config import CpuCosts, RunConfig, StackConfig, StackKind, WorkloadConfig
from repro.errors import ConfigurationError
from repro.experiments.runner import run_simulation

#: CpuCosts fields the optimizer may adjust.
TUNABLE_PARAMETERS = (
    "dispatch",
    "boundary_crossing",
    "send_fixed",
    "recv_fixed",
    "serialize_per_byte",
    "send_per_byte",
    "recv_per_byte",
    "adeliver",
)


@dataclass(frozen=True, slots=True)
class CalibrationTarget:
    """One known operating point the model should reproduce."""

    n: int
    stack: StackKind
    offered_load: float
    message_size: int
    #: ``"throughput"`` (msgs/s) or ``"latency"`` (seconds).
    metric: str
    value: float

    def __post_init__(self) -> None:
        if self.metric not in ("throughput", "latency"):
            raise ConfigurationError(f"unknown target metric {self.metric!r}")
        if self.value <= 0:
            raise ConfigurationError(f"target value must be positive: {self.value}")


@dataclass(frozen=True, slots=True)
class CalibrationResult:
    """Outcome of a calibration run."""

    costs: CpuCosts
    error: float
    initial_error: float
    #: (parameter, factor, error) per accepted move, in order.
    history: tuple[tuple[str, float, float], ...]

    @property
    def improved(self) -> bool:
        return self.error < self.initial_error


def measure_target(
    target: CalibrationTarget,
    costs: CpuCosts,
    *,
    base: RunConfig | None = None,
    seed: int = 1,
) -> float:
    """Simulate one target's operating point under *costs*."""
    base = base or RunConfig(duration=0.5, warmup=0.25)
    config = base.with_changes(
        n=target.n,
        stack=StackConfig(kind=target.stack),
        workload=WorkloadConfig(
            offered_load=target.offered_load, message_size=target.message_size
        ),
        cpu_costs=costs,
    )
    result = run_simulation(config, seed=seed)
    if target.metric == "throughput":
        return result.metrics.throughput
    latency = result.metrics.latency_mean
    if latency is None:
        raise ConfigurationError(
            f"target {target} produced no latency samples; lengthen the run"
        )
    return latency


def configuration_error(
    costs: CpuCosts,
    targets: list[CalibrationTarget],
    *,
    base: RunConfig | None = None,
    seed: int = 1,
) -> float:
    """Mean absolute log-ratio between measured and target values.

    Log-space errors weight "2x too fast" and "2x too slow" equally and
    make metrics of different magnitudes commensurable.
    """
    if not targets:
        raise ConfigurationError("calibration needs at least one target")
    total = 0.0
    for target in targets:
        measured = measure_target(target, costs, base=base, seed=seed)
        total += abs(math.log(max(measured, 1e-12) / target.value))
    return total / len(targets)


def calibrate(
    targets: list[CalibrationTarget],
    *,
    initial: CpuCosts | None = None,
    parameters: tuple[str, ...] = ("send_fixed", "recv_fixed"),
    iterations: int = 3,
    step: float = 1.5,
    base: RunConfig | None = None,
    seed: int = 1,
) -> CalibrationResult:
    """Fit *parameters* of the cost model to *targets*.

    Multiplicative coordinate descent: each pass tries scaling every
    chosen parameter by ``step`` and ``1/step``, keeping the best move;
    the step shrinks geometrically between passes.

    Args:
        targets: Operating points to match.
        initial: Starting cost model (default: library defaults).
        parameters: Which :data:`TUNABLE_PARAMETERS` to adjust.
        iterations: Coordinate-descent passes.
        step: Initial multiplicative step (> 1).
    """
    for name in parameters:
        if name not in TUNABLE_PARAMETERS:
            raise ConfigurationError(f"{name!r} is not a tunable cost parameter")
    if step <= 1.0:
        raise ConfigurationError(f"step must exceed 1.0, got {step}")

    costs = initial or CpuCosts()
    error = configuration_error(costs, targets, base=base, seed=seed)
    initial_error = error
    history: list[tuple[str, float, float]] = []
    current_step = step
    for __ in range(iterations):
        for name in parameters:
            best_factor = 1.0
            best_error = error
            best_costs = costs
            for factor in (current_step, 1.0 / current_step):
                candidate = replace(costs, **{name: getattr(costs, name) * factor})
                candidate_error = configuration_error(
                    candidate, targets, base=base, seed=seed
                )
                if candidate_error < best_error:
                    best_factor = factor
                    best_error = candidate_error
                    best_costs = candidate
            if best_factor != 1.0:
                costs, error = best_costs, best_error
                history.append((name, best_factor, error))
        current_step = 1.0 + (current_step - 1.0) / 2.0
    return CalibrationResult(
        costs=costs,
        error=error,
        initial_error=initial_error,
        history=tuple(history),
    )
