"""CSV and JSON export of sweep results.

For users who want to re-plot the figures with their own tooling: every
sweep (and therefore every figure) can be dumped as a tidy CSV with one
row per (group size, stack, x) point, carrying means and 95 % CI
half-widths for both metrics. ``python -m repro figures --csv DIR``
writes one file per figure.

The JSON export is *canonical*: keys sorted, fixed separators, NaNs
mapped to ``null``, one trailing newline. Two runs of the same sweep
produce byte-identical files — the determinism tests compare the
``--jobs 1`` and ``--jobs 4`` exports with ``==`` on the raw bytes.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import IO, Any

from repro.experiments.runner import RunResult
from repro.experiments.sweeps import PointSummary, SweepResult
from repro.metrics.stats import ConfidenceInterval

#: Column order of the exported CSV.
CSV_FIELDS = (
    "parameter",
    "x",
    "n",
    "stack",
    "latency_mean_s",
    "latency_ci95_s",
    "latency_p50_s",
    "latency_p99_s",
    "latency_p999_s",
    "throughput_mean",
    "throughput_ci95",
    "messages_per_consensus",
    "stationary",
    "seeds",
    #: The ensemble's merged latency histogram, as space-separated
    #: ``bucket:count`` pairs (see LatencyHistogram.bucket_bounds for
    #: the bucket → seconds mapping).
    "histogram",
    #: Fraction of attributed CPU time spent crossing module
    #: boundaries (see :mod:`repro.obs.attribution`); empty when no
    #: run attributed.
    "modularity_overhead",
    #: Boundary crossings over the ensemble's measurement windows.
    "boundary_crossings",
    #: Network messages per protocol kind over the ensemble's
    #: measurement windows, as space-separated ``kind:count`` pairs.
    "messages_by_kind",
)


def write_sweep_csv(sweep: SweepResult, destination: IO[str] | str | Path) -> int:
    """Write *sweep* as CSV; returns the number of data rows written.

    Args:
        sweep: A load or size sweep result.
        destination: An open text file or a path to (over)write.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return write_sweep_csv(sweep, handle)
    writer = csv.writer(destination)
    writer.writerow(CSV_FIELDS)
    rows = 0
    def fmt(value: float) -> str:
        return "" if value != value else f"{value:.9f}"

    for point in sorted(sweep.points, key=lambda p: (p.n, p.stack.value, p.x)):
        writer.writerow(
            [
                sweep.parameter,
                point.x,
                point.n,
                point.stack.value,
                fmt(point.latency.mean),
                f"{point.latency.half_width:.9f}",
                fmt(point.latency_p50.mean),
                fmt(point.latency_p99.mean),
                fmt(point.latency_p999.mean)
                if point.latency_p999 is not None
                else "",
                f"{point.throughput.mean:.3f}",
                f"{point.throughput.half_width:.3f}",
                ""
                if point.delivered_per_consensus is None
                else f"{point.delivered_per_consensus:.3f}",
                int(point.stationary),
                point.latency.count,
                " ".join(f"{b}:{c}" for b, c in point.histogram),
                ""
                if point.modularity_overhead is None
                else f"{point.modularity_overhead:.6f}",
                point.boundary_crossings,
                " ".join(f"{k}:{c}" for k, c in point.messages_by_kind),
            ]
        )
        rows += 1
    return rows


# -- canonical JSON ---------------------------------------------------------


def _finite(value: float | None) -> float | None:
    """NaN/None → None (canonical JSON must not contain bare ``NaN``)."""
    if value is None or value != value:
        return None
    return value


def _ci_to_dict(ci: ConfidenceInterval) -> dict[str, Any]:
    return {
        "mean": _finite(ci.mean),
        "half_width": _finite(ci.half_width),
        "confidence": ci.confidence,
        "count": ci.count,
    }


def run_to_dict(run: RunResult) -> dict[str, Any]:
    """Plain-dict form of one run (full per-seed fidelity)."""
    metrics = run.metrics
    return {
        "seed": run.seed,
        "metrics": {
            "latency_mean": _finite(metrics.latency_mean),
            "latency_p50": _finite(metrics.latency_p50),
            "latency_p95": _finite(metrics.latency_p95),
            "latency_p99": _finite(metrics.latency_p99),
            "latency_p999": _finite(metrics.latency_p999),
            "latency_count": metrics.latency_count,
            "latency_histogram": [list(pair) for pair in metrics.latency_histogram],
            "throughput": metrics.throughput,
            "offered_rate": metrics.offered_rate,
            "blocked_attempts": metrics.blocked_attempts,
            "stationary": metrics.stationary,
            "active_clients": metrics.active_clients,
            "layer_busy": [[name, seconds] for name, seconds in metrics.layer_busy],
            "boundary_time": metrics.boundary_time,
            "boundary_crossings": metrics.boundary_crossings,
            "modularity_overhead": _finite(metrics.modularity_overhead),
        },
        "network": {key: run.network[key] for key in sorted(run.network)},
        "cpu_utilization": list(run.cpu_utilization),
        "instances_decided": run.instances_decided,
        "events_executed": run.events_executed,
    }


def point_to_dict(point: PointSummary) -> dict[str, Any]:
    """Plain-dict form of one sweep point, including its raw runs."""
    return {
        "n": point.n,
        "stack": point.stack.value,
        "x": point.x,
        "latency": _ci_to_dict(point.latency),
        "latency_p50": _ci_to_dict(point.latency_p50),
        "latency_p99": _ci_to_dict(point.latency_p99),
        "latency_p999": _ci_to_dict(point.latency_p999)
        if point.latency_p999 is not None
        else None,
        "histogram": [list(pair) for pair in point.histogram],
        "throughput": _ci_to_dict(point.throughput),
        "delivered_per_consensus": _finite(point.delivered_per_consensus),
        "stationary": point.stationary,
        "modularity_overhead": _finite(point.modularity_overhead),
        "boundary_crossings": point.boundary_crossings,
        "messages_by_kind": [[kind, count] for kind, count in point.messages_by_kind],
        "runs": [run_to_dict(run) for run in point.runs],
    }


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    """Plain-dict form of a whole sweep (points in canonical order)."""
    ordered = sorted(sweep.points, key=lambda p: (p.n, p.stack.value, p.x))
    return {
        "parameter": sweep.parameter,
        "points": [point_to_dict(point) for point in ordered],
    }


def dumps_canonical(payload: Any) -> str:
    """Serialize *payload* as canonical JSON (byte-stable across runs)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)
        + "\n"
    )


def write_sweeps_json(
    sweeps: dict[str, SweepResult], destination: str | Path
) -> None:
    """Write named sweeps as one canonical JSON document."""
    payload = {name: sweep_to_dict(sweep) for name, sweep in sweeps.items()}
    Path(destination).write_text(dumps_canonical(payload), encoding="utf-8")
