"""CSV export of sweep results.

For users who want to re-plot the figures with their own tooling: every
sweep (and therefore every figure) can be dumped as a tidy CSV with one
row per (group size, stack, x) point, carrying means and 95 % CI
half-widths for both metrics. ``python -m repro figures --csv DIR``
writes one file per figure.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import IO

from repro.experiments.sweeps import SweepResult

#: Column order of the exported CSV.
CSV_FIELDS = (
    "parameter",
    "x",
    "n",
    "stack",
    "latency_mean_s",
    "latency_ci95_s",
    "throughput_mean",
    "throughput_ci95",
    "messages_per_consensus",
    "stationary",
    "seeds",
)


def write_sweep_csv(sweep: SweepResult, destination: IO[str] | str | Path) -> int:
    """Write *sweep* as CSV; returns the number of data rows written.

    Args:
        sweep: A load or size sweep result.
        destination: An open text file or a path to (over)write.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", newline="") as handle:
            return write_sweep_csv(sweep, handle)
    writer = csv.writer(destination)
    writer.writerow(CSV_FIELDS)
    rows = 0
    for point in sorted(sweep.points, key=lambda p: (p.n, p.stack.value, p.x)):
        latency_mean = point.latency.mean
        writer.writerow(
            [
                sweep.parameter,
                point.x,
                point.n,
                point.stack.value,
                "" if latency_mean != latency_mean else f"{latency_mean:.9f}",
                f"{point.latency.half_width:.9f}",
                f"{point.throughput.mean:.3f}",
                f"{point.throughput.half_width:.3f}",
                ""
                if point.delivered_per_consensus is None
                else f"{point.delivered_per_consensus:.3f}",
                int(point.stationary),
                point.latency.count,
            ]
        )
        rows += 1
    return rows
