"""Assembles and runs one simulated execution of either stack.

:class:`Simulation` wires together the whole system for a
:class:`~repro.config.RunConfig`: kernel, network, one protocol stack +
failure detector + flow-controlled sender per process, the metrics
collector and the faultload. :func:`run_simulation` is the one-call
convenience used by the benchmarks; examples and tests instantiate
:class:`Simulation` directly when they need to inject their own traffic
or faults.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable

from repro.abcast.factory import build_process, build_stack
from repro.config import FailureDetectorKind, RunConfig
from repro.errors import ConfigurationError, StationarityWarning
from repro.fd.base import FailureDetector
from repro.fd.heartbeat import HeartbeatFailureDetector
from repro.fd.oracle import OracleFailureDetector
from repro.fd.scripted import ScriptedFailureDetector
from repro.flowcontrol.window import BacklogWindow
from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.nemesis.partitions import install_link_faults
from repro.nemesis.suspicion import install_wrong_suspicions
from repro.net.faults import FaultInjector
from repro.net.network import Network
from repro.net.stats import NetworkStats
from repro.obs.attribution import LayerAttribution, delta_layers
from repro.sim.kernel import Kernel
from repro.sim.tracing import TraceRecorder
from repro.stack.runtime import AdeliverListener, ProcessRuntime
from repro.types import AppMessage, SimTime
from repro.workload.generator import ArrivalSchedule, FlowControlledSender
from repro.workload.population import ClientPopulation

#: Simulated seconds the kernel keeps running after the measurement
#: window closes, so in-flight messages finish delivering.
DEFAULT_DRAIN = 0.3


@dataclass(frozen=True, slots=True)
class RunResult:
    """Everything measured in one simulation run."""

    config: RunConfig
    seed: int
    metrics: RunMetrics
    #: Network counters accumulated during the measurement window.
    network: dict
    #: Per-process CPU utilization over the measurement window.
    cpu_utilization: tuple[float, ...]
    #: Consensus instances decided during the measurement window.
    instances_decided: int
    #: Kernel events executed over the whole run (diagnostics).
    events_executed: int

    @property
    def latency_p50(self) -> float:
        """Median delivery latency over the measurement window."""
        return self.metrics.latency_p50

    @property
    def latency_p99(self) -> float:
        """99th-percentile delivery latency over the measurement window
        (the tail a batching layer trades against throughput)."""
        return self.metrics.latency_p99

    @property
    def messages_per_consensus(self) -> float | None:
        """Mean network messages per consensus in the window (§5.2.1)."""
        if self.instances_decided == 0:
            return None
        return self.network["messages_sent"] / self.instances_decided

    @property
    def payload_bytes_per_consensus(self) -> float | None:
        """Mean payload bytes per consensus in the window (§5.2.2)."""
        if self.instances_decided == 0:
            return None
        return self.network["payload_bytes_sent"] / self.instances_decided

    @property
    def delivered_per_consensus(self) -> float | None:
        """Measured M: messages adelivered per consensus execution."""
        if self.instances_decided == 0:
            return None
        window = self.config.duration
        return self.metrics.throughput * window / self.instances_decided


class Simulation:
    """One fully wired simulated group, ready to run."""

    def __init__(
        self,
        config: RunConfig,
        seed: int = 1,
        *,
        trace: TraceRecorder | None = None,
        with_workload: bool = True,
        stack_factory: Callable | None = None,
    ) -> None:
        self.config = config
        self.seed = seed
        self.kernel = Kernel(seed=seed)
        self.trace = trace
        self.stats = NetworkStats()
        self.faults = FaultInjector()
        #: Optional override of :func:`~repro.abcast.factory.build_stack`
        #: with the same signature; the nemesis swarm uses it to inject
        #: deliberately-broken stacks as test fixtures.
        self._stack_factory = stack_factory if stack_factory is not None else build_stack
        # Link-level faults (partitions, loss, delay) filter messages
        # from the first transmit on, so they are compiled before any
        # process is built.
        install_link_faults(self.faults, config.faultload, self.kernel)
        self.network = Network(
            self.kernel,
            config.n,
            config.network,
            stats=self.stats,
            faults=self.faults,
            trace=trace,
        )
        self.metrics = MetricsCollector(
            config.n,
            window_start=config.warmup,
            window_end=config.total_time,
        )
        self._extra_listeners: list[AdeliverListener] = []
        self._accept_listeners: list[Callable[[AppMessage], None]] = []

        self.runtimes: list[ProcessRuntime] = []
        self.detectors: list[FailureDetector] = []
        for pid in range(config.n):
            runtime = self._build_process(pid)
            self.runtimes.append(runtime)

        #: Lazy client-population model, when one is configured.
        self.population: ClientPopulation | None = None
        if with_workload and config.workload.population is not None:
            self.population = ClientPopulation(
                config.workload.population, config.n, self.kernel.rng.stream
            )

        self.senders: list[FlowControlledSender] = []
        self.schedules: list[ArrivalSchedule] = []
        for pid in range(config.n):
            sender = FlowControlledSender(
                self.runtimes[pid],
                BacklogWindow(config.flow_control.window),
                config.workload.message_size,
                on_accept=self._on_accept,
                on_offer=self.metrics.on_offered,
            )
            self.senders.append(sender)
            if with_workload:
                self.schedules.append(
                    ArrivalSchedule(
                        self.kernel,
                        sender,
                        config.workload,
                        config.n,
                        stop_at=config.total_time,
                        rng_name=f"workload.p{pid}",
                        on_arrival=self.population.arrival_hook(pid)
                        if self.population is not None
                        else None,
                    )
                )

        #: Captured at the warm-up boundary / window end by callbacks.
        self._instances_at_warmup = 0
        self._instances_at_end = 0
        self._cpu_busy_at_warmup = [0.0] * config.n
        self._window_network: dict = {}
        self._cpu_utilization: tuple[float, ...] = ()
        self._layers_at_warmup: list[dict[str, float]] = [
            {} for __ in range(config.n)
        ]
        self._boundary_at_warmup: list[tuple[float, int]] = [
            (0.0, 0)
        ] * config.n
        self._attribution: LayerAttribution | None = None
        self._started = False

    # -- wiring -----------------------------------------------------------

    def _build_process(self, pid: int) -> ProcessRuntime:
        config = self.config

        def make_runtime(modules: list) -> ProcessRuntime:
            return ProcessRuntime(
                pid,
                modules,
                kernel=self.kernel,
                network=self.network,
                costs=config.cpu_costs,
                net_config=config.network,
                trace=self.trace,
            )

        runtime = build_process(
            config.stack,
            pid,
            config.n,
            make_runtime,
            max_batch=config.flow_control.max_batch,
            stack_factory=self._stack_factory,
        )
        assert isinstance(runtime, ProcessRuntime)
        runtime.attach_failure_detector(self._build_detector())
        runtime.set_adeliver_listener(self._on_adeliver)
        return runtime

    def _build_detector(self) -> FailureDetector:
        fd_config = self.config.failure_detector
        if fd_config.kind is FailureDetectorKind.ORACLE:
            detector: FailureDetector = OracleFailureDetector(
                fd_config.detection_delay
            )
        elif fd_config.kind is FailureDetectorKind.HEARTBEAT:
            detector = HeartbeatFailureDetector(
                fd_config.heartbeat_interval, fd_config.timeout
            )
        elif fd_config.kind is FailureDetectorKind.SCRIPTED:
            detector = ScriptedFailureDetector()
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown FD kind {fd_config.kind!r}")
        self.detectors.append(detector)
        return detector

    # -- listeners ----------------------------------------------------------

    def add_adeliver_listener(self, listener: AdeliverListener) -> None:
        """Observe every adelivery (e.g. an :class:`OrderingChecker`)."""
        self._extra_listeners.append(listener)

    def add_accept_listener(self, listener: Callable[[AppMessage], None]) -> None:
        """Observe every message accepted into a stack."""
        self._accept_listeners.append(listener)

    def _on_accept(self, message: AppMessage) -> None:
        self.metrics.on_accept(message)
        for listener in self._accept_listeners:
            listener(message)

    def _on_adeliver(self, pid: int, message: AppMessage, time: SimTime) -> None:
        self.metrics.on_adeliver(pid, message, time)
        if message.msg_id.sender == pid:
            # Release the flow-control slot at the modelled delivery
            # completion time, not when the handler chain runs: a stack
            # that adelivers its own message within the abcast chain
            # (e.g. the sequencer at the sequencer process) must still
            # wait out its CPU backlog before reusing the slot.
            sender = self.senders[pid]
            self.kernel.schedule_at(
                max(self.kernel.now, time),
                lambda: sender.on_own_delivery(message),
            )
        for listener in self._extra_listeners:
            listener(pid, message, time)

    # -- fault injection ------------------------------------------------------

    def crash(self, pid: int) -> None:
        """Crash process *pid* now and inform the oracle detectors."""
        self.runtimes[pid].crash()
        for runtime, detector in zip(self.runtimes, self.detectors):
            if runtime.alive and isinstance(detector, OracleFailureDetector):
                detector.observe_crash(pid)

    def _schedule_faultload(self) -> None:
        for crash in self.config.faultload.crashes:
            self.kernel.schedule_at(
                crash.time, lambda pid=crash.process: self.crash(pid)
            )
        install_wrong_suspicions(self)

    # -- measurement boundaries ------------------------------------------------

    def _decided_instances(self) -> int:
        return max(runtime.modules[0].next_instance for runtime in self.runtimes)

    def _at_warmup_end(self) -> None:
        self.stats.reset()
        self._instances_at_warmup = self._decided_instances()
        self._cpu_busy_at_warmup = [rt.cpu.busy_time for rt in self.runtimes]
        self._layers_at_warmup = [dict(rt.layer_busy) for rt in self.runtimes]
        self._boundary_at_warmup = [
            (rt.boundary_busy, rt.boundary_crossings) for rt in self.runtimes
        ]

    def _at_window_end(self) -> None:
        self._window_network = self.stats.snapshot()
        self._instances_at_end = self._decided_instances()
        duration = self.config.duration
        self._cpu_utilization = tuple(
            min(1.0, (rt.cpu.busy_time - busy0) / duration)
            for rt, busy0 in zip(self.runtimes, self._cpu_busy_at_warmup)
        )
        layers: dict[str, float] = {}
        boundary_time = 0.0
        crossings = 0
        for runtime, layers0, (busy0, crossings0) in zip(
            self.runtimes, self._layers_at_warmup, self._boundary_at_warmup
        ):
            for name, seconds in delta_layers(
                runtime.layer_busy, layers0
            ).items():
                layers[name] = layers.get(name, 0.0) + seconds
            boundary_time += runtime.boundary_busy - busy0
            crossings += runtime.boundary_crossings - crossings0
        self._attribution = LayerAttribution.from_totals(
            layers, boundary_time, crossings
        )

    # -- execution ----------------------------------------------------------------

    def start(self) -> None:
        """Start all stacks, workload schedules and the faultload."""
        if self._started:
            return
        self._started = True
        for runtime in self.runtimes:
            runtime.start()
        for schedule in self.schedules:
            schedule.start()
        self._schedule_faultload()
        self.kernel.schedule_at(self.config.warmup, self._at_warmup_end)
        self.kernel.schedule_at(self.config.total_time, self._at_window_end)

    def run(self, drain: SimTime = DEFAULT_DRAIN) -> RunResult:
        """Run to completion and reduce the measurements.

        Emits a :class:`~repro.errors.StationarityWarning` when the
        latency series drifts across the measurement window (the paper
        verifies "that the latencies of all processes stabilize over
        time"; a drifting run usually needs a longer warm-up).
        """
        self.start()
        self.kernel.run(until=self.config.total_time + drain)
        for schedule in self.schedules:
            schedule.finalize()
        blocked = sum(sender.window.total_blocked for sender in self.senders)
        metrics = self.metrics.finalize(
            blocked_attempts=blocked,
            active_clients=self.population.active_clients
            if self.population is not None
            else 0,
            attribution=self._attribution,
        )
        if not metrics.stationary:
            warnings.warn(
                f"run (n={self.config.n}, {self.config.stack.kind.value}, "
                f"load={self.config.workload.offered_load:g}) did not reach a "
                "stationary state; consider a longer warmup",
                StationarityWarning,
                stacklevel=2,
            )
        return RunResult(
            config=self.config,
            seed=self.seed,
            metrics=metrics,
            network=self._window_network,
            cpu_utilization=self._cpu_utilization,
            instances_decided=self._instances_at_end - self._instances_at_warmup,
            events_executed=self.kernel.events_executed,
        )


def run_simulation(
    config: RunConfig,
    seed: int = 1,
    *,
    trace: TraceRecorder | None = None,
    drain: SimTime = DEFAULT_DRAIN,
) -> RunResult:
    """Build, run and reduce one simulation in a single call."""
    return Simulation(config, seed, trace=trace).run(drain=drain)
