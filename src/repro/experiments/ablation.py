"""Ablation study of the three monolithic optimizations (§4.1–§4.3).

Goes beyond the paper: the paper reports only the full monolithic stack
against the full modular stack; this experiment toggles each §4
optimization individually (and all together) to attribute the gain, with
the modular stack as the reference point. DESIGN.md lists this as the
design-choice ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (
    MonolithicOptimizations,
    RunConfig,
    StackKind,
    WorkloadConfig,
    modular_stack,
    monolithic_stack,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_simulation
from repro.metrics.stats import mean

#: The ablation variants, in presentation order.
VARIANTS: tuple[tuple[str, MonolithicOptimizations | None], ...] = (
    ("modular (reference)", None),
    ("mono, no optimizations", MonolithicOptimizations(False, False, False)),
    ("mono, only §4.1 combine", MonolithicOptimizations(True, False, False)),
    ("mono, only §4.2 piggyback", MonolithicOptimizations(False, True, False)),
    ("mono, only §4.3 cheap-rb", MonolithicOptimizations(False, False, True)),
    ("mono, all (paper)", MonolithicOptimizations(True, True, True)),
)


@dataclass(frozen=True, slots=True)
class AblationRow:
    """Measured performance of one ablation variant."""

    label: str
    latency_ms: float
    throughput: float
    messages_per_consensus: float


def run_ablation(
    *,
    n: int = 3,
    offered_load: float = 4000.0,
    message_size: int = 16384,
    seeds: tuple[int, ...] = (1, 2),
    duration: float = 1.0,
) -> list[AblationRow]:
    """Run every variant at one (loaded) operating point of Fig. 8."""
    rows = []
    for label, opts in VARIANTS:
        if opts is None:
            stack = modular_stack()
        else:
            stack = monolithic_stack(opts)
        config = RunConfig(
            n=n,
            stack=stack,
            workload=WorkloadConfig(
                offered_load=offered_load, message_size=message_size
            ),
            duration=duration,
            warmup=0.4,
        )
        runs = [run_simulation(config, seed=seed) for seed in seeds]
        rows.append(
            AblationRow(
                label=label,
                latency_ms=mean(
                    [r.metrics.latency_mean * 1e3 for r in runs if r.metrics.latency_mean]
                ),
                throughput=mean([r.metrics.throughput for r in runs]),
                messages_per_consensus=mean(
                    [r.messages_per_consensus or 0.0 for r in runs]
                ),
            )
        )
    return rows


def ablation_table(rows: list[AblationRow]) -> str:
    """Render ablation rows as an aligned text table."""
    headers = ["variant", "latency (ms)", "throughput (msgs/s)", "msgs/consensus"]
    body = [
        [
            row.label,
            f"{row.latency_ms:.2f}",
            f"{row.throughput:.0f}",
            f"{row.messages_per_consensus:.1f}",
        ]
        for row in rows
    ]
    return format_table(headers, body)
