"""Experiment harness: runners, sweeps and figure/table reproduction.

Submodules:

* :mod:`~repro.experiments.runner` — assemble and run one simulation;
* :mod:`~repro.experiments.sweeps` — multi-seed parameter sweeps;
* :mod:`~repro.experiments.figures` — regenerate the paper's Figs. 8-11;
* :mod:`~repro.experiments.tables` — the §5.2 analytical tables plus
  simulator validation;
* :mod:`~repro.experiments.ablation` — per-optimization ablation (§4);
* :mod:`~repro.experiments.report` — text-table rendering;
* :mod:`~repro.experiments.export` — CSV export;
* :mod:`~repro.experiments.msc` — message-sequence charts from traces;
* :mod:`~repro.experiments.calibration` — fit the cost model to
  measured operating points.
"""

from repro.experiments.calibration import (
    CalibrationResult,
    CalibrationTarget,
    calibrate,
)
from repro.experiments.crossover import (
    GapPoint,
    gap_series,
    peak_gap,
    saturation_knee,
)
from repro.experiments.export import write_sweep_csv
from repro.experiments.figures import (
    FigureReport,
    all_figures,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.msc import Arrow, extract_arrows, render_msc
from repro.experiments.runner import (
    DEFAULT_DRAIN,
    RunResult,
    Simulation,
    run_simulation,
)
from repro.experiments.sweeps import (
    PointSummary,
    SweepResult,
    run_load_sweep,
    run_size_sweep,
)

__all__ = [
    "DEFAULT_DRAIN",
    "Arrow",
    "CalibrationResult",
    "CalibrationTarget",
    "FigureReport",
    "GapPoint",
    "PointSummary",
    "RunResult",
    "Simulation",
    "SweepResult",
    "all_figures",
    "calibrate",
    "extract_arrows",
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "gap_series",
    "peak_gap",
    "render_msc",
    "run_load_sweep",
    "run_simulation",
    "saturation_knee",
    "run_size_sweep",
    "write_sweep_csv",
]
