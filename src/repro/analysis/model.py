"""Closed-form analytical evaluation (paper §5.2).

The paper analyzes, per consensus execution (= per M adelivered
messages, under load high enough that instance k+1 starts directly
after k):

* the number of messages sent on the network (§5.2.1), and
* the total amount of data sent (§5.2.2), assuming control messages are
  negligible and every abcast message has size l.

These functions are the exact formulas of the paper; the test suite
additionally validates them against the simulator's network counters in
steady-state good runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


def _validate(n: int, messages_per_consensus: float | None = None) -> None:
    if n < 2:
        raise ConfigurationError(f"group size must be >= 2, got {n}")
    if messages_per_consensus is not None and messages_per_consensus <= 0:
        raise ConfigurationError(
            f"messages per consensus must be positive, got {messages_per_consensus}"
        )


def modular_messages_per_consensus(n: int, messages_per_consensus: float) -> float:
    """§5.2.1, modular stack: ``(n-1)(M + 2 + ⌊(n+1)/2⌋)`` messages.

    M diffusions to n-1 processes each, one proposal and one ack per
    non-coordinator, plus the reliable broadcast of the decision.
    """
    _validate(n, messages_per_consensus)
    return (n - 1) * (messages_per_consensus + 2 + (n + 1) // 2)


def monolithic_messages_per_consensus(n: int) -> float:
    """§5.2.1, monolithic stack: ``2(n-1)`` messages.

    One combined proposal+decision to each non-coordinator and one
    ack+diffusion back, independent of M.
    """
    _validate(n)
    return 2.0 * (n - 1)


def modular_data_per_consensus(
    n: int, messages_per_consensus: float, message_size: int
) -> float:
    """§5.2.2, modular stack: ``2(n-1)·M·l`` bytes.

    Each of the M abcast messages is diffused to n-1 processes, then the
    proposal (of size M·l) is sent to the n-1 non-coordinators.
    """
    _validate(n, messages_per_consensus)
    return 2.0 * (n - 1) * messages_per_consensus * message_size


def monolithic_data_per_consensus(
    n: int, messages_per_consensus: float, message_size: int
) -> float:
    """§5.2.2, monolithic stack: ``(n-1)(1 + 1/n)·M·l`` bytes.

    Each non-coordinator piggybacks M/n messages on its ack; the
    coordinator then ships the M-message proposal to n-1 processes.
    """
    _validate(n, messages_per_consensus)
    return (n - 1) * (1.0 + 1.0 / n) * messages_per_consensus * message_size


def modularity_data_overhead(n: int) -> float:
    """§5.2.2: data overhead of modular over monolithic = ``(n-1)/(n+1)``.

    50 % for n = 3 and 75 % for n = 7, the paper's headline analytical
    numbers.
    """
    _validate(n)
    return (n - 1) / (n + 1)


@dataclass(frozen=True, slots=True)
class AnalyticalComparison:
    """One row of the paper's analytical evaluation for a given (n, M, l)."""

    n: int
    messages_per_consensus: float
    message_size: int
    modular_messages: float
    monolithic_messages: float
    modular_data: float
    monolithic_data: float
    data_overhead: float

    @property
    def message_ratio(self) -> float:
        """How many times more messages the modular stack sends."""
        return self.modular_messages / self.monolithic_messages


def compare(n: int, messages_per_consensus: float, message_size: int) -> AnalyticalComparison:
    """Evaluate every §5.2 formula for one configuration."""
    return AnalyticalComparison(
        n=n,
        messages_per_consensus=messages_per_consensus,
        message_size=message_size,
        modular_messages=modular_messages_per_consensus(n, messages_per_consensus),
        monolithic_messages=monolithic_messages_per_consensus(n),
        modular_data=modular_data_per_consensus(n, messages_per_consensus, message_size),
        monolithic_data=monolithic_data_per_consensus(
            n, messages_per_consensus, message_size
        ),
        data_overhead=modularity_data_overhead(n),
    )
