"""Analytical models: the paper's §5.2 closed forms plus a design-time
performance predictor pricing full consensus executions against the
cost model."""

from repro.analysis.performance_model import (
    ModularityPrediction,
    StackPrediction,
    predict_gap,
    predict_modular,
    predict_monolithic,
)
from repro.analysis.model import (
    AnalyticalComparison,
    compare,
    modular_data_per_consensus,
    modular_messages_per_consensus,
    modularity_data_overhead,
    monolithic_data_per_consensus,
    monolithic_messages_per_consensus,
)

__all__ = [
    "AnalyticalComparison",
    "ModularityPrediction",
    "StackPrediction",
    "predict_gap",
    "predict_modular",
    "predict_monolithic",
    "compare",
    "modular_data_per_consensus",
    "modular_messages_per_consensus",
    "modularity_data_overhead",
    "monolithic_data_per_consensus",
    "monolithic_messages_per_consensus",
]
