"""Design-time performance prediction for both stacks.

The paper's introduction argues the modular-vs-monolithic decision "has
to be made at the early stages of the software engineering process,
whereas evidence of the performance cost can only be obtained later" —
and that the hit can be foreseen analytically. The §5.2 model counts
messages and bytes; this module goes one step further and prices a full
good-run consensus execution against a :class:`~repro.config.CpuCosts` /
:class:`~repro.config.NetworkConfig` pair, producing:

* the per-consensus CPU busy time of the coordinator and of the
  busiest non-coordinator,
* the per-consensus NIC occupancy of the coordinator, and
* a predicted saturation throughput ``M / (bottleneck per-consensus
  time)`` — the plateau of the paper's Fig. 10.

The prediction is validated against the simulator in
``tests/integration/test_performance_model.py``: it lands within ~20 %
of the measured plateau across stacks, group sizes and message sizes,
which is the accuracy a designer needs for the paper's design-time
dilemma.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.broadcast.reliable import RB_CONTROL_OVERHEAD
from repro.config import CpuCosts, NetworkConfig, StackKind
from repro.consensus.messages import CONTROL_OVERHEAD
from repro.errors import ConfigurationError
from repro.stack.events import PER_MESSAGE_OVERHEAD

#: Stack heights (modules above the network) in the modular composition.
_ABCAST_HEIGHT = 2
_CONSENSUS_HEIGHT = 1
_RBCAST_HEIGHT = 0


@dataclass(frozen=True, slots=True)
class StackPrediction:
    """Predicted per-consensus costs of one stack configuration."""

    stack: StackKind
    n: int
    messages_per_consensus: float
    message_size: int
    #: CPU seconds per consensus at the (round-1) coordinator.
    coordinator_busy: float
    #: CPU seconds per consensus at the busiest non-coordinator.
    noncoordinator_busy: float
    #: Seconds the coordinator's NIC is occupied per consensus.
    coordinator_nic: float

    @property
    def bottleneck(self) -> float:
        """Per-consensus time of the binding resource."""
        return max(
            self.coordinator_busy, self.noncoordinator_busy, self.coordinator_nic
        )

    @property
    def saturation_throughput(self) -> float:
        """Predicted Fig.-10 plateau in messages/second."""
        return self.messages_per_consensus / self.bottleneck


@dataclass(frozen=True, slots=True)
class ModularityPrediction:
    """Side-by-side prediction, the design-time answer."""

    modular: StackPrediction
    monolithic: StackPrediction

    @property
    def throughput_gain(self) -> float:
        """Predicted relative throughput advantage of the monolith."""
        return (
            self.monolithic.saturation_throughput
            / self.modular.saturation_throughput
            - 1.0
        )


def _validate(n: int, messages_per_consensus: float) -> None:
    if n < 2:
        raise ConfigurationError(f"group size must be >= 2, got {n}")
    if messages_per_consensus <= 0:
        raise ConfigurationError(
            f"messages per consensus must be positive: {messages_per_consensus}"
        )


def _header(net: NetworkConfig, height: int) -> int:
    return net.base_header + net.per_module_header * (height + 1)


def predict_modular(
    n: int,
    messages_per_consensus: float,
    message_size: int,
    costs: CpuCosts | None = None,
    net: NetworkConfig | None = None,
) -> StackPrediction:
    """Price one good-run consensus of the modular stack (Fig. 4 flow)."""
    _validate(n, messages_per_consensus)
    costs = costs or CpuCosts()
    net = net or NetworkConfig()
    m, l = messages_per_consensus, message_size

    diffuse_wire = l + PER_MESSAGE_OVERHEAD + _header(net, _ABCAST_HEIGHT)
    batch_payload = m * l + PER_MESSAGE_OVERHEAD * (m + 1) + CONTROL_OVERHEAD
    proposal_wire = batch_payload + _header(net, _CONSENSUS_HEIGHT)
    ack_wire = CONTROL_OVERHEAD + _header(net, _CONSENSUS_HEIGHT)
    tag_wire = CONTROL_OVERHEAD + RB_CONTROL_OVERHEAD + _header(net, _RBCAST_HEIGHT)
    relays = (n - 1) // 2
    own_rate = m / n  # abcast messages originated by each process
    other_diffusions = m * (n - 1) / n  # diffusions each process receives

    def recv(wire: int, height: int) -> float:
        return (
            costs.recv_cost(wire)
            + height * costs.boundary_crossing
            + costs.dispatch
        )

    def broadcast_sends(wire: int, destinations: int, height: int) -> float:
        first = costs.send_cost(wire, first_copy=True)
        rest = costs.send_cost(wire, first_copy=False)
        return (
            first
            + (destinations - 1) * rest
            + destinations * height * costs.boundary_crossing
        )

    # Shared by every process: originate own diffusions, receive others'.
    common = (
        own_rate * (costs.dispatch + broadcast_sends(diffuse_wire, n - 1, _ABCAST_HEIGHT))
        + other_diffusions * recv(diffuse_wire, _ABCAST_HEIGHT)
        # propose (EmitDown) once, adeliver M messages, decide bookkeeping.
        + 2 * (costs.boundary_crossing + costs.dispatch)
        + m * costs.adeliver
    )

    coordinator = (
        common
        + broadcast_sends(proposal_wire, n - 1, _CONSENSUS_HEIGHT)
        + (n - 1) * recv(ack_wire, _CONSENSUS_HEIGHT)
        # rbcast the decision tag; receive the relay echoes; local
        # rdeliver climbing rbcast -> consensus -> abcast.
        + broadcast_sends(tag_wire, n - 1, _RBCAST_HEIGHT)
        + relays * recv(tag_wire, _RBCAST_HEIGHT)
        + 2 * (costs.boundary_crossing + costs.dispatch)
    )

    # The busiest non-coordinator is a relay-set member: it receives the
    # proposal, acks, receives tags (origin + other relays) and re-sends
    # the tag to everyone.
    noncoordinator = (
        common
        + recv(proposal_wire, _CONSENSUS_HEIGHT)
        + costs.send_cost(ack_wire) + _CONSENSUS_HEIGHT * costs.boundary_crossing
        + relays * recv(tag_wire, _RBCAST_HEIGHT)
        + broadcast_sends(tag_wire, n - 1, _RBCAST_HEIGHT)
        + 2 * (costs.boundary_crossing + costs.dispatch)
    )

    nic = (
        own_rate * (n - 1) * diffuse_wire
        + (n - 1) * proposal_wire
        + (n - 1) * tag_wire
    ) / net.bandwidth

    return StackPrediction(
        stack=StackKind.MODULAR,
        n=n,
        messages_per_consensus=m,
        message_size=l,
        coordinator_busy=coordinator,
        noncoordinator_busy=noncoordinator,
        coordinator_nic=nic,
    )


def predict_monolithic(
    n: int,
    messages_per_consensus: float,
    message_size: int,
    costs: CpuCosts | None = None,
    net: NetworkConfig | None = None,
) -> StackPrediction:
    """Price one good-run consensus of the monolithic stack (Fig. 6)."""
    _validate(n, messages_per_consensus)
    costs = costs or CpuCosts()
    net = net or NetworkConfig()
    m, l = messages_per_consensus, message_size
    header = _header(net, 0)
    own_rate = m / n

    combined_wire = (
        m * l + PER_MESSAGE_OVERHEAD * (m + 1) + CONTROL_OVERHEAD + 16 + header
    )
    ack_payload = CONTROL_OVERHEAD + own_rate * (l + PER_MESSAGE_OVERHEAD)
    ack_wire = ack_payload + header

    coordinator = (
        own_rate * costs.dispatch  # own abcast injections
        + costs.send_cost(combined_wire, first_copy=True)
        + (n - 2) * costs.send_cost(combined_wire, first_copy=False)
        + (n - 1) * (costs.recv_cost(int(ack_wire)) + costs.dispatch)
        + m * costs.adeliver
        + 2 * costs.dispatch  # decide/start-next bookkeeping
    )

    noncoordinator = (
        own_rate * costs.dispatch
        + costs.recv_cost(int(combined_wire)) + costs.dispatch
        + costs.send_cost(int(ack_wire), first_copy=True)
        + m * costs.adeliver
        + costs.dispatch
    )

    nic = (n - 1) * combined_wire / net.bandwidth

    return StackPrediction(
        stack=StackKind.MONOLITHIC,
        n=n,
        messages_per_consensus=m,
        message_size=l,
        coordinator_busy=coordinator,
        noncoordinator_busy=noncoordinator,
        coordinator_nic=nic,
    )


def predict_gap(
    n: int,
    messages_per_consensus: float,
    message_size: int,
    costs: CpuCosts | None = None,
    net: NetworkConfig | None = None,
) -> ModularityPrediction:
    """The design-time answer: both stacks priced side by side."""
    return ModularityPrediction(
        modular=predict_modular(n, messages_per_consensus, message_size, costs, net),
        monolithic=predict_monolithic(
            n, messages_per_consensus, message_size, costs, net
        ),
    )
