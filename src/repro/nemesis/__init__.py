"""Adversarial testing for the atomic broadcast stacks.

The nemesis subsystem has three layers:

1. **Faultload schedules** (:mod:`~repro.nemesis.schedule`) — named
   scenarios, seeded random generation and a JSON round-trip for the
   declarative :class:`~repro.config.FaultloadConfig` DSL. Compilation
   onto the simulator's hooks lives in
   :mod:`~repro.nemesis.partitions` (link faults) and
   :mod:`~repro.nemesis.suspicion` (failure-detector faults).
2. **Online invariants** (:mod:`~repro.nemesis.invariants`) — the four
   atomic-broadcast properties checked as every delivery happens, plus
   a liveness watchdog.
3. **The swarm** (:mod:`~repro.nemesis.swarm`,
   :mod:`~repro.nemesis.shrink`) — sweeps randomized schedules across
   stacks and shrinks any failure to a minimal, replayable
   counterexample.

This ``__init__`` exports only the data/compile layers. The swarm
imports :mod:`repro.experiments.runner`, which itself imports the
compile layer — import :mod:`repro.nemesis.swarm` explicitly to keep
that edge one-directional.
"""

from repro.nemesis.invariants import InvariantMonitor, Violation
from repro.nemesis.partitions import install_link_faults
from repro.nemesis.schedule import (
    SCENARIOS,
    dump_faultload,
    faultload_from_dict,
    faultload_to_dict,
    generate_faultload,
    load_faultload,
    named_scenario,
    resolve_faultload,
)
from repro.nemesis.suspicion import install_wrong_suspicions

__all__ = [
    "SCENARIOS",
    "InvariantMonitor",
    "Violation",
    "dump_faultload",
    "faultload_from_dict",
    "faultload_to_dict",
    "generate_faultload",
    "install_link_faults",
    "install_wrong_suspicions",
    "load_faultload",
    "named_scenario",
    "resolve_faultload",
]
