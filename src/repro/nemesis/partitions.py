"""Compile link-level faults (partitions, loss, delay) onto the injector.

The simulator's :class:`~repro.net.faults.FaultInjector` judges every
message at transmit time with a chain of filters. This module turns the
declarative :class:`~repro.config.FaultloadConfig` link events into such
filters, closed over the simulation kernel for the clock and a named RNG
stream for loss/jitter draws — so any schedule replays bit-for-bit from
the run seed.

Semantics (see :class:`~repro.config.LinkFaultMode`):

* ``HOLD`` partitions delay severed messages until the heal time (plus a
  small jitter so the heal is not a synchronized burst) — the TCP
  picture, where retransmission carries traffic across a transient
  outage. Per-pair FIFO is preserved by the network's arrival clamp.
* ``HOLD`` loss bursts charge a matched message one retransmission
  delay. ``DROP`` variants destroy the message outright; they model
  broken channels, under which safety must still hold but liveness may
  legitimately stall.

Messages are judged when the sender's CPU hands them to the NIC, so a
message sent just *before* a partition starts slips through even if its
propagation overlaps the outage — a deliberate simplification (real
switches drain in-flight frames too).
"""

from __future__ import annotations

import random

from repro.config import DelaySpike, FaultloadConfig, LinkFaultMode, LossBurst, PartitionEvent
from repro.net.faults import FaultInjector, FilterDecision
from repro.net.message import NetMessage
from repro.sim.kernel import Kernel

#: Maximum random spread (seconds) of arrivals released by a heal, so
#: held messages do not land in one synchronized burst.
HEAL_JITTER = 0.005

#: Name of the RNG stream all link-fault draws come from.
RNG_STREAM = "nemesis.links"


def install_link_faults(
    injector: FaultInjector, faultload: FaultloadConfig, kernel: Kernel
) -> None:
    """Register filters for every link fault of *faultload*.

    Filters are only installed for fault kinds actually present, so a
    plain crash faultload (or a good run) pays nothing.
    """
    if not (faultload.partitions or faultload.loss_bursts or faultload.delay_spikes):
        return
    rng = kernel.rng.stream(RNG_STREAM)
    for partition in faultload.partitions:
        injector.add_filter(_partition_filter(partition, kernel, rng))
    for burst in faultload.loss_bursts:
        injector.add_filter(_loss_filter(burst, kernel, rng))
    for spike in faultload.delay_spikes:
        injector.add_filter(_delay_filter(spike, kernel, rng))


def _partition_filter(
    partition: PartitionEvent, kernel: Kernel, rng: random.Random
):
    def judge(message: NetMessage) -> FilterDecision:
        now = kernel.now
        if not partition.start <= now < partition.heal:
            return FilterDecision.deliver()
        if not partition.severs(message.src, message.dst):
            return FilterDecision.deliver()
        if partition.mode is LinkFaultMode.DROP:
            return FilterDecision.drop()
        hold = (partition.heal - now) + rng.random() * HEAL_JITTER
        return FilterDecision.deliver(extra_delay=hold)

    return judge


def _loss_filter(burst: LossBurst, kernel: Kernel, rng: random.Random):
    def judge(message: NetMessage) -> FilterDecision:
        now = kernel.now
        if not burst.start <= now < burst.end:
            return FilterDecision.deliver()
        if not burst.matches(message.src, message.dst):
            return FilterDecision.deliver()
        if rng.random() >= burst.probability:
            return FilterDecision.deliver()
        if burst.mode is LinkFaultMode.DROP:
            return FilterDecision.drop()
        # One TCP-style retransmission: the message arrives, late.
        retry = burst.retry_delay * (0.5 + rng.random())
        return FilterDecision.deliver(extra_delay=retry)

    return judge


def _delay_filter(spike: DelaySpike, kernel: Kernel, rng: random.Random):
    def judge(message: NetMessage) -> FilterDecision:
        now = kernel.now
        if not spike.start <= now < spike.end:
            return FilterDecision.deliver()
        if not spike.matches(message.src, message.dst):
            return FilterDecision.deliver()
        jitter = rng.random() * spike.jitter if spike.jitter else 0.0
        return FilterDecision.deliver(extra_delay=spike.extra_delay + jitter)

    return judge
