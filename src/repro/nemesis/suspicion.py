"""Wrong-suspicion injection into failure detectors.

◇S permits detectors to be wrong for arbitrary finite periods; the
protocols' round-change machinery exists precisely to survive that.
This module schedules :class:`~repro.config.WrongSuspicion` events onto
the kernel: at ``time`` the observer's detector starts suspecting a
process that may be perfectly alive, and ``duration`` seconds later the
suspicion is retracted — unless the suspect has *actually* crashed by
then, in which case retracting would make the detector wrong in the
unsafe direction (un-suspecting a dead coordinator stalls liveness).

Injection goes through :meth:`~repro.fd.base.FailureDetector.force_suspect`,
so it works uniformly across the oracle, heartbeat and scripted
detectors. A heartbeat detector may retract earlier on its own when the
suspect is next heard from; that is correct ◇S behaviour too.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import FaultloadConfig, WrongSuspicion

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import Simulation


def install_wrong_suspicions(
    simulation: "Simulation", faultload: FaultloadConfig | None = None
) -> None:
    """Schedule every wrong-suspicion event of the run's faultload."""
    events = (
        faultload.wrong_suspicions
        if faultload is not None
        else simulation.config.faultload.wrong_suspicions
    )
    for event in events:
        _schedule(simulation, event)


def _schedule(simulation: "Simulation", event: WrongSuspicion) -> None:
    kernel = simulation.kernel
    observer = event.observer

    def inject() -> None:
        if not simulation.runtimes[observer].alive:
            return
        simulation.detectors[observer].force_suspect(event.suspect)

    def retract() -> None:
        if not simulation.runtimes[observer].alive:
            return
        if simulation.faults.is_crashed(event.suspect):
            return  # the "wrong" suspicion came true; keep it
        simulation.detectors[observer].retract_suspicion(event.suspect)

    kernel.schedule_at(event.time, inject)
    kernel.schedule_at(event.time + event.duration, retract)
