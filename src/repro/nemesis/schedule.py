"""Faultload schedules: named scenarios, random generation, JSON round-trip.

A *faultload schedule* is just a :class:`~repro.config.FaultloadConfig`
value — a declarative set of timed fault events (crashes, partitions
with heal, loss bursts, delay spikes, wrong suspicions). This module is
the vocabulary layer around it:

* :func:`named_scenario` — a handful of canonical adversarial shapes
  (``coordinator-crash``, ``rolling-partition``, ``lossy-link``, …) that
  examples, tests and the CLI share;
* :func:`generate_faultload` — seeded random schedules for the swarm
  runner (deterministic: same rng state, same schedule);
* :func:`faultload_to_dict` / :func:`faultload_from_dict` and
  :func:`load_faultload` / :func:`dump_faultload` — a JSON form so a
  shrunk counterexample can be saved and replayed with one command.

Everything here is pure data manipulation; compiling a schedule onto the
simulator's fault hooks lives in :mod:`repro.nemesis.partitions` and
:mod:`repro.nemesis.suspicion`.
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Any

from repro.config import (
    CrashEvent,
    DelaySpike,
    FaultloadConfig,
    LinkFaultMode,
    LossBurst,
    PartitionEvent,
    WrongSuspicion,
)
from repro.errors import ConfigurationError

#: Names accepted by ``--faultload`` (see :func:`named_scenario`).
SCENARIOS = (
    "good-run",
    "coordinator-crash",
    "rolling-partition",
    "lossy-link",
    "wrong-suspicion",
    "churn",
)


def named_scenario(name: str, n: int = 3) -> FaultloadConfig:
    """Build one of the canonical faultload scenarios for a group of *n*.

    All times assume the nemesis default run shape (warmup 0.2 s,
    duration ~1.2 s): faults start after warm-up and heal well before
    the run ends, so liveness is checkable.
    """
    others = tuple(range(1, n))
    if name == "good-run":
        return FaultloadConfig()
    if name == "coordinator-crash":
        # p0 coordinates round 1 of every instance; this is the paper's
        # worst single crash.
        return FaultloadConfig(crashes=(CrashEvent(0.45, 0),))
    if name == "rolling-partition":
        # Isolate the coordinator, heal, then isolate another process.
        return FaultloadConfig(
            partitions=(
                PartitionEvent(start=0.3, heal=0.55, groups=((0,), others)),
                PartitionEvent(
                    start=0.7, heal=0.95, groups=((1,), (0, *others[1:]))
                ),
            )
        )
    if name == "lossy-link":
        # The coordinator's link to its first follower retransmits
        # heavily in both directions for half the run.
        return FaultloadConfig(
            loss_bursts=(
                LossBurst(start=0.3, end=0.9, probability=0.35, src=0, dst=1),
                LossBurst(start=0.3, end=0.9, probability=0.35, src=1, dst=0),
            )
        )
    if name == "wrong-suspicion":
        # Two followers wrongly suspect the live coordinator, forcing
        # round changes while p0 keeps participating.
        suspicions = [
            WrongSuspicion(time=0.35, observer=pid, suspect=0, duration=0.25)
            for pid in others[:2]
        ]
        return FaultloadConfig(wrong_suspicions=tuple(suspicions))
    if name == "churn":
        # A crash, a partition and a delay spike overlapping — the
        # roughest minority-safe weather the model allows for small n.
        return FaultloadConfig(
            crashes=(CrashEvent(0.6, n - 1),),
            partitions=(
                PartitionEvent(start=0.3, heal=0.5, groups=((0,), others)),
            ),
            delay_spikes=(
                DelaySpike(start=0.45, end=0.8, extra_delay=0.01, jitter=0.005),
            ),
        )
    raise ConfigurationError(
        f"unknown faultload scenario {name!r}; choose from {', '.join(SCENARIOS)}"
    )


def generate_faultload(
    rng: random.Random,
    n: int,
    *,
    window: tuple[float, float] = (0.25, 1.0),
    benign_only: bool = False,
) -> FaultloadConfig:
    """Draw one random faultload schedule.

    Args:
        rng: Source of randomness (derive it from the run seed for
            reproducibility).
        n: Group size the schedule targets.
        window: ``(earliest, latest)`` bounds on fault activity; heals
            land inside the window so the liveness watchdog has quiet
            time afterwards.
        benign_only: Restrict to delay spikes (no crashes, partitions,
            loss or suspicions). Used for the sequencer stack, which is
            good-run-only by design.

    The schedule respects the system model: at most a minority of
    processes crash, and all partitions/loss bursts are HOLD mode so
    quasi-reliable channels (and hence liveness) are preserved.
    """
    lo, hi = window
    span = hi - lo

    def when(margin: float = 0.0) -> float:
        return lo + rng.random() * max(span - margin, 0.01)

    spikes = []
    for __ in range(rng.randrange(0, 3)):
        start = when(margin=0.1)
        spikes.append(
            DelaySpike(
                start=start,
                end=min(hi, start + 0.05 + rng.random() * 0.25),
                extra_delay=rng.uniform(0.001, 0.02),
                jitter=rng.uniform(0.0, 0.01),
                src=rng.choice([None, rng.randrange(n)]),
            )
        )
    if benign_only:
        return FaultloadConfig(delay_spikes=tuple(spikes))

    max_crashes = (n - 1) // 2
    crashes = []
    for victim in rng.sample(range(n), k=rng.randrange(0, max_crashes + 1)):
        crashes.append(CrashEvent(time=when(), process=victim))

    partitions = []
    if rng.random() < 0.6:
        isolated = frozenset(rng.sample(range(n), k=rng.randrange(1, n // 2 + 1)))
        start = when(margin=0.15)
        partitions.append(
            PartitionEvent(
                start=start,
                heal=min(hi, start + 0.1 + rng.random() * 0.25),
                groups=(
                    tuple(sorted(isolated)),
                    tuple(p for p in range(n) if p not in isolated),
                ),
                mode=LinkFaultMode.HOLD,
            )
        )

    bursts = []
    if rng.random() < 0.5:
        start = when(margin=0.15)
        bursts.append(
            LossBurst(
                start=start,
                end=min(hi, start + 0.1 + rng.random() * 0.3),
                probability=rng.uniform(0.05, 0.5),
                src=rng.choice([None, rng.randrange(n)]),
                dst=rng.choice([None, rng.randrange(n)]),
                mode=LinkFaultMode.HOLD,
                retry_delay=rng.uniform(0.05, 0.25),
            )
        )

    crashed = {c.process for c in crashes}
    suspicions = []
    for __ in range(rng.randrange(0, 3)):
        observer = rng.randrange(n)
        # Bias towards suspecting the round-1 coordinator: that is the
        # suspicion that actually changes protocol behaviour.
        suspect = 0 if rng.random() < 0.6 else rng.randrange(n)
        if observer == suspect or observer in crashed:
            continue
        suspicions.append(
            WrongSuspicion(
                time=when(margin=0.1),
                observer=observer,
                suspect=suspect,
                duration=rng.uniform(0.1, 0.3),
            )
        )

    return FaultloadConfig(
        crashes=tuple(crashes),
        partitions=tuple(partitions),
        loss_bursts=tuple(bursts),
        delay_spikes=tuple(spikes),
        wrong_suspicions=tuple(suspicions),
    )


# -- JSON round-trip --------------------------------------------------------


def faultload_to_dict(faultload: FaultloadConfig) -> dict[str, Any]:
    """Plain-dict form of a faultload, suitable for ``json.dump``."""
    return {
        "crashes": [{"time": c.time, "process": c.process} for c in faultload.crashes],
        "partitions": [
            {
                "start": p.start,
                "heal": p.heal,
                "groups": [list(group) for group in p.groups],
                "mode": p.mode.value,
            }
            for p in faultload.partitions
        ],
        "loss_bursts": [
            {
                "start": b.start,
                "end": b.end,
                "probability": b.probability,
                "src": b.src,
                "dst": b.dst,
                "mode": b.mode.value,
                "retry_delay": b.retry_delay,
            }
            for b in faultload.loss_bursts
        ],
        "delay_spikes": [
            {
                "start": s.start,
                "end": s.end,
                "extra_delay": s.extra_delay,
                "jitter": s.jitter,
                "src": s.src,
                "dst": s.dst,
            }
            for s in faultload.delay_spikes
        ],
        "wrong_suspicions": [
            {
                "time": w.time,
                "observer": w.observer,
                "suspect": w.suspect,
                "duration": w.duration,
            }
            for w in faultload.wrong_suspicions
        ],
    }


_MISSING = object()

_FAULTLOAD_KEYS = (
    "crashes",
    "partitions",
    "loss_bursts",
    "delay_spikes",
    "wrong_suspicions",
)


def _entries(data: dict[str, Any], key: str) -> list[tuple[str, dict[str, Any]]]:
    """The list under *key*, as ``(where, entry)`` pairs, schema-checked."""
    value = data.get(key, [])
    if not isinstance(value, list):
        raise ConfigurationError(
            f"faultload field {key!r} must be a list, "
            f"got {type(value).__name__}"
        )
    pairs = []
    for index, entry in enumerate(value):
        where = f"{key}[{index}]"
        if not isinstance(entry, dict):
            raise ConfigurationError(
                f"faultload field {where!r} must be an object, "
                f"got {type(entry).__name__}"
            )
        pairs.append((where, entry))
    return pairs


def _number(entry: dict, where: str, key: str, default: Any = _MISSING) -> Any:
    if key not in entry:
        if default is _MISSING:
            raise ConfigurationError(
                f"faultload field {where!r} is missing required key {key!r}"
            )
        return default
    value = entry[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"faultload field '{where}.{key}' must be a number, got {value!r}"
        )
    return value


def _integer(entry: dict, where: str, key: str, default: Any = _MISSING) -> Any:
    value = _number(entry, where, key, default)
    if value is not default and not isinstance(value, int):
        raise ConfigurationError(
            f"faultload field '{where}.{key}' must be an integer, got {value!r}"
        )
    return value


def _optional_process(entry: dict, where: str, key: str) -> int | None:
    value = entry.get(key)
    if value is not None and (isinstance(value, bool) or not isinstance(value, int)):
        raise ConfigurationError(
            f"faultload field '{where}.{key}' must be an integer process id "
            f"or null, got {value!r}"
        )
    return value


def _link_mode(entry: dict, where: str) -> LinkFaultMode:
    raw = entry.get("mode", "hold")
    try:
        return LinkFaultMode(raw)
    except ValueError:
        choices = ", ".join(mode.value for mode in LinkFaultMode)
        raise ConfigurationError(
            f"faultload field '{where}.mode' must be one of {choices}, "
            f"got {raw!r}"
        ) from None


def _groups(entry: dict, where: str) -> tuple[tuple[int, ...], ...]:
    raw = entry.get("groups")
    if not isinstance(raw, list) or not all(
        isinstance(group, list) for group in raw
    ):
        raise ConfigurationError(
            f"faultload field '{where}.groups' must be a list of lists of "
            f"process ids, got {raw!r}"
        )
    for g, group in enumerate(raw):
        for member in group:
            if isinstance(member, bool) or not isinstance(member, int):
                raise ConfigurationError(
                    f"faultload field '{where}.groups[{g}]' must contain "
                    f"integer process ids, got {member!r}"
                )
    return tuple(tuple(group) for group in raw)


def faultload_from_dict(data: dict[str, Any]) -> FaultloadConfig:
    """Inverse of :func:`faultload_to_dict`.

    Missing event lists and per-event optional keys default; everything
    present is schema-checked, and a violation raises
    :class:`~repro.errors.ConfigurationError` naming the offending field
    (e.g. ``crashes[0].time``) rather than a bare ``KeyError`` — these
    dicts come from user-supplied ``--faultload``/``--replay`` files.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"a faultload document must be a JSON object, "
            f"got {type(data).__name__}"
        )
    unknown = sorted(set(data) - set(_FAULTLOAD_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown faultload field(s): {', '.join(map(repr, unknown))} "
            f"(known: {', '.join(_FAULTLOAD_KEYS)})"
        )
    return FaultloadConfig(
        crashes=tuple(
            CrashEvent(
                time=_number(c, where, "time"),
                process=_integer(c, where, "process"),
            )
            for where, c in _entries(data, "crashes")
        ),
        partitions=tuple(
            PartitionEvent(
                start=_number(p, where, "start"),
                heal=_number(p, where, "heal"),
                groups=_groups(p, where),
                mode=_link_mode(p, where),
            )
            for where, p in _entries(data, "partitions")
        ),
        loss_bursts=tuple(
            LossBurst(
                start=_number(b, where, "start"),
                end=_number(b, where, "end"),
                probability=_number(b, where, "probability"),
                src=_optional_process(b, where, "src"),
                dst=_optional_process(b, where, "dst"),
                mode=_link_mode(b, where),
                retry_delay=_number(b, where, "retry_delay", 0.2),
            )
            for where, b in _entries(data, "loss_bursts")
        ),
        delay_spikes=tuple(
            DelaySpike(
                start=_number(s, where, "start"),
                end=_number(s, where, "end"),
                extra_delay=_number(s, where, "extra_delay"),
                jitter=_number(s, where, "jitter", 0.0),
                src=_optional_process(s, where, "src"),
                dst=_optional_process(s, where, "dst"),
            )
            for where, s in _entries(data, "delay_spikes")
        ),
        wrong_suspicions=tuple(
            WrongSuspicion(
                time=_number(w, where, "time"),
                observer=_integer(w, where, "observer"),
                suspect=_integer(w, where, "suspect"),
                duration=_number(w, where, "duration", 0.2),
            )
            for where, w in _entries(data, "wrong_suspicions")
        ),
    )


def load_faultload(path: str | Path) -> FaultloadConfig:
    """Read a faultload schedule from a JSON file.

    Raises:
        ConfigurationError: The file is not valid JSON or does not match
            the faultload schema; the message names the problem.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path} is not valid JSON: {exc}"
            ) from exc
    return faultload_from_dict(data)


def dump_faultload(faultload: FaultloadConfig, path: str | Path) -> None:
    """Write a faultload schedule to a JSON file."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(faultload_to_dict(faultload), handle, indent=2, sort_keys=True)
        handle.write("\n")


def resolve_faultload(spec: str, n: int = 3) -> FaultloadConfig:
    """Resolve a ``--faultload`` argument: scenario name or JSON path."""
    if spec in SCENARIOS:
        return named_scenario(spec, n)
    path = Path(spec)
    if path.suffix == ".json" or path.exists():
        return load_faultload(path)
    raise ConfigurationError(
        f"--faultload {spec!r} is neither a named scenario "
        f"({', '.join(SCENARIOS)}) nor a JSON file"
    )
