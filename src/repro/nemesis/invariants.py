"""Online invariant checking for atomic broadcast runs.

:class:`~repro.metrics.ordering.OrderingChecker` verifies the abcast
contract *after* a run. For adversarial sweeps that is too late and too
coarse: a violation surfaces as one opaque exception at the end, with no
notion of *when* the execution went wrong. The
:class:`InvariantMonitor` instead checks the four properties
(Hadzilacos & Toueg) *online*, as every adelivery happens:

* **Uniform integrity** — per process, each message at most once, and
  only messages that were abcast. Checked per delivery.
* **Total order** — every process's adelivery sequence must be a prefix
  of one global sequence (the stronger prefix form both stacks
  guarantee). Checked per delivery against the growing global order, so
  a divergence is caught at the exact delivery that forks.
* **Uniform agreement** / **validity** — "eventually" properties,
  checked at :meth:`finalize` against the processes that survived.

Plus a **liveness watchdog**: once the last fault has healed, correct
processes holding undelivered messages must keep making delivery
progress within a bound, or the run fails with a
:class:`~repro.errors.LivenessViolation` carrying the outstanding ids
and a slice of the recent event trace. The watchdog only arms for
faultloads that preserve quasi-reliable channels
(:attr:`~repro.config.FaultloadConfig.liveness_safe`); under DROP-mode
faults liveness is not guaranteed by the model and only safety is
checked.

Every violation carries a ring-buffer slice of recent events (accepts,
deliveries, faults, suspicions) — the first thing one wants when
debugging a schedule found by the swarm.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import LivenessViolation, OrderingViolation
from repro.types import AppMessage, MessageId, SimTime

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.runner import Simulation

#: Default seconds of post-heal silence the watchdog tolerates before
#: declaring a stall. Must exceed the slowest recovery path: guard
#: timeout (0.5 s) + detection delay + a round trip.
DEFAULT_LIVENESS_BOUND = 1.0

#: Default ring-buffer capacity for the diagnostic trace slice.
DEFAULT_HISTORY = 80


@dataclass(frozen=True, slots=True)
class Violation:
    """One detected invariant violation."""

    invariant: str
    time: SimTime
    description: str
    trace_slice: tuple[str, ...] = ()

    def __str__(self) -> str:
        return f"[{self.invariant} @ t={self.time:.4f}] {self.description}"


@dataclass
class LivenessState:
    """Watchdog bookkeeping between checks."""

    armed: bool = False
    last_progress_count: int = -1


class InvariantMonitor:
    """Checks the atomic broadcast contract online during a run.

    Wire it to a :class:`~repro.experiments.runner.Simulation` with
    :meth:`attach` *before* ``sim.run()``. Violations accumulate in
    :attr:`violations`; with ``raise_on_violation=True`` the first
    safety violation raises immediately (useful in tests, where the
    stack trace then points at the offending delivery).
    """

    def __init__(
        self,
        n: int,
        *,
        liveness_bound: float = DEFAULT_LIVENESS_BOUND,
        history: int = DEFAULT_HISTORY,
        raise_on_violation: bool = False,
    ) -> None:
        self.n = n
        self.liveness_bound = liveness_bound
        self.raise_on_violation = raise_on_violation
        self.violations: list[Violation] = []
        self._global_order: list[MessageId] = []
        self._positions = [0] * n
        self._delivered: list[set[MessageId]] = [set() for __ in range(n)]
        self._delivery_count = 0
        self._abcast: set[MessageId] = set()
        self._abcast_sender: dict[MessageId, int] = {}
        self._trace: deque[str] = deque(maxlen=history)
        self._liveness = LivenessState()
        self._simulation: "Simulation | None" = None
        self._finalized = False

    # -- wiring ----------------------------------------------------------

    def attach(self, simulation: "Simulation") -> "InvariantMonitor":
        """Subscribe to a simulation and arm the liveness watchdog."""
        self._simulation = simulation
        simulation.add_accept_listener(self.on_abcast)
        simulation.add_adeliver_listener(self.on_adeliver)
        faultload = simulation.config.faultload
        self._record_fault_timeline(simulation)
        if faultload.liveness_safe:
            self._liveness.armed = True
            first_check = (
                max(faultload.last_disruption_time(), simulation.config.warmup)
                + self.liveness_bound
            )
            simulation.kernel.schedule_at(first_check, self._liveness_check)
        else:
            self._note(0.0, "watchdog disarmed: faultload destroys messages")
        return self

    def _record_fault_timeline(self, simulation: "Simulation") -> None:
        """Put the declared faults on the trace as they happen."""
        kernel = simulation.kernel
        faultload = simulation.config.faultload
        entries: list[tuple[float, str]] = []
        for crash in faultload.crashes:
            entries.append((crash.time, f"fault: crash p{crash.process}"))
        for p in faultload.partitions:
            groups = "|".join(",".join(map(str, g)) for g in p.groups)
            entries.append((p.start, f"fault: partition [{groups}] up"))
            entries.append((p.heal, f"fault: partition [{groups}] healed"))
        for b in faultload.loss_bursts:
            link = f"{b.src if b.src is not None else '*'}->" \
                   f"{b.dst if b.dst is not None else '*'}"
            entries.append((b.start, f"fault: loss burst {link} p={b.probability:.2f}"))
            entries.append((b.end, f"fault: loss burst {link} over"))
        for s in faultload.delay_spikes:
            entries.append((s.start, f"fault: delay spike +{s.extra_delay * 1e3:.1f}ms"))
            entries.append((s.end, "fault: delay spike over"))
        for w in faultload.wrong_suspicions:
            entries.append(
                (w.time, f"fault: p{w.observer} wrongly suspects p{w.suspect}")
            )
            entries.append(
                (w.time + w.duration, f"fault: p{w.observer} retracts p{w.suspect}")
            )
        for time, text in entries:
            kernel.schedule_at(time, lambda t=time, x=text: self._note(t, x))

    # -- event listeners ----------------------------------------------------

    def on_abcast(self, message: AppMessage) -> None:
        """Accept listener: record that *message* entered some stack."""
        self._abcast.add(message.msg_id)
        self._abcast_sender[message.msg_id] = message.msg_id.sender

    def on_adeliver(self, pid: int, message: AppMessage, time: SimTime) -> None:
        """Adeliver listener: run the online safety checks."""
        mid = message.msg_id
        self._note(time, f"p{pid} adeliver {mid}")
        if mid in self._delivered[pid]:
            self._flag(
                "uniform-integrity",
                time,
                f"p{pid} adelivered {mid} twice",
            )
            return
        if mid not in self._abcast:
            self._flag(
                "uniform-integrity",
                time,
                f"p{pid} adelivered never-abcast message {mid}",
            )
            return
        position = self._positions[pid]
        if position < len(self._global_order):
            expected = self._global_order[position]
            if expected != mid:
                self._flag(
                    "total-order",
                    time,
                    f"p{pid} diverges at position {position}: delivered {mid}, "
                    f"group order has {expected}",
                )
                return
        else:
            self._global_order.append(mid)
        self._positions[pid] = position + 1
        self._delivered[pid].add(mid)
        self._delivery_count += 1

    # -- liveness watchdog ---------------------------------------------------

    def _correct_now(self) -> set[int]:
        assert self._simulation is not None
        return set(range(self.n)) - set(self._simulation.faults.crashed)

    def _liveness_check(self) -> None:
        assert self._simulation is not None
        kernel = self._simulation.kernel
        correct = self._correct_now()
        owed: set[MessageId] = set()
        for delivered in self._delivered:
            owed.update(delivered)
        owed.update(
            mid for mid in self._abcast if self._abcast_sender[mid] in correct
        )
        outstanding = {
            mid
            for mid in owed
            if any(mid not in self._delivered[pid] for pid in correct)
        }
        if outstanding and self._delivery_count == self._liveness.last_progress_count:
            sample = sorted(outstanding)[:5]
            self._flag(
                "liveness",
                kernel.now,
                f"no delivery progress for {self.liveness_bound:.2f}s after the "
                f"last fault healed; {len(outstanding)} message(s) outstanding, "
                f"e.g. {sample}",
                error=LivenessViolation,
            )
            return  # a stalled run stays stalled; one report is enough
        self._liveness.last_progress_count = self._delivery_count
        kernel.schedule_at(kernel.now + self.liveness_bound, self._liveness_check)

    # -- end of run -----------------------------------------------------------

    def finalize(
        self,
        *,
        expect_all_delivered: bool = True,
        now: float | None = None,
        crashed: set[int] | None = None,
    ) -> list[Violation]:
        """Run the end-of-run checks and return all violations.

        Args:
            expect_all_delivered: Check uniform agreement and validity
                to completion. Only meaningful when the run had enough
                drain for deliveries to finish and the faultload kept
                channels quasi-reliable; automatically skipped otherwise.
            now: End-of-run timestamp for the violation records. Taken
                from the attached simulation when omitted; offline users
                (the live merged-log check) pass it explicitly.
            crashed: Processes that were down at the end of the run.
                Taken from the attached simulation when omitted. A
                killed-and-recovered live worker is *not* crashed: it
                owes every delivery like anyone else.
        """
        if self._finalized:
            return self.violations
        self._finalized = True
        simulation = self._simulation
        if now is None:
            now = simulation.kernel.now if simulation is not None else 0.0
        if crashed is None:
            crashed = set(simulation.faults.crashed) if simulation is not None else set()
        if simulation is not None and not simulation.config.faultload.liveness_safe:
            expect_all_delivered = False
        correct = set(range(self.n)) - crashed
        if expect_all_delivered:
            delivered_anywhere: set[MessageId] = set()
            for delivered in self._delivered:
                delivered_anywhere.update(delivered)
            for pid in sorted(correct):
                missing = delivered_anywhere - self._delivered[pid]
                if missing:
                    self._flag(
                        "uniform-agreement",
                        now,
                        f"p{pid} never adelivered {len(missing)} message(s) "
                        f"delivered elsewhere, e.g. {sorted(missing)[:5]}",
                    )
            from_correct = {
                mid for mid in self._abcast if self._abcast_sender[mid] in correct
            }
            for pid in sorted(correct):
                missing = from_correct - self._delivered[pid]
                if missing:
                    self._flag(
                        "validity",
                        now,
                        f"p{pid} never adelivered {len(missing)} message(s) "
                        f"abcast by correct processes, e.g. {sorted(missing)[:5]}",
                    )
        return self.violations

    @property
    def passed(self) -> bool:
        """Whether no invariant has been violated so far."""
        return not self.violations

    @property
    def delivery_count(self) -> int:
        """Total adeliveries that passed the online checks."""
        return self._delivery_count

    def sequence(self, pid: int) -> tuple[MessageId, ...]:
        """The (checked prefix of the) adelivery sequence of *pid*."""
        return tuple(self._global_order[: self._positions[pid]])

    @property
    def trace_slice(self) -> tuple[str, ...]:
        """Recent events (ring buffer), oldest first."""
        return tuple(self._trace)

    # -- internals -------------------------------------------------------------

    def _note(self, time: SimTime, text: str) -> None:
        self._trace.append(f"t={time:.4f} {text}")

    def _flag(
        self,
        invariant: str,
        time: SimTime,
        description: str,
        *,
        error: type[Exception] = OrderingViolation,
    ) -> None:
        violation = Violation(
            invariant=invariant,
            time=time,
            description=description,
            trace_slice=self.trace_slice,
        )
        self.violations.append(violation)
        self._note(time, f"VIOLATION {invariant}: {description}")
        if self.raise_on_violation:
            raise error(str(violation))
