"""The nemesis swarm: randomized fault schedules swept across stacks.

One *case* is (stack, seed, n, failure detector, faultload schedule).
The swarm generates the schedule and the detector choice from the seed
via named RNG streams, runs the case under the online
:class:`~repro.nemesis.invariants.InvariantMonitor`, and — when a case
fails — shrinks its schedule to a 1-minimal counterexample
(:mod:`~repro.nemesis.shrink`) and packages it as a JSON file plus the
one command that replays it.

Because the whole simulator is deterministic in (config, seed), a case
is its own repro: re-running the same case dict reproduces the same
execution bit for bit, held messages, suspicions and all.

Import this module explicitly (``repro.nemesis.swarm``); the package
``__init__`` stays clear of it to keep the import edge
``experiments.runner -> nemesis.partitions`` one-directional.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.config import (
    STACK_REGISTRY,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
)
from repro.errors import ConfigurationError, ReproError, StationarityWarning
from repro.experiments.parallel import run_tasks
from repro.experiments.runner import Simulation
from repro.nemesis.broken import broken_stack_factory
from repro.nemesis.invariants import (
    DEFAULT_LIVENESS_BOUND,
    InvariantMonitor,
    Violation,
)
from repro.nemesis.schedule import (
    faultload_from_dict,
    faultload_to_dict,
    generate_faultload,
)
from repro.nemesis.shrink import shrink_faultload
from repro.sim.rng import RngRegistry

#: Run shape of every nemesis case. Short on purpose: a sweep runs
#: hundreds of cases, and the generator window (0.25 s – 1.0 s) is when
#: faults land, so little happens after ~1.2 s but recovery.
NEMESIS_WARMUP = 0.2
NEMESIS_DURATION = 1.0

#: Light workload so fault handling, not queueing, dominates the run.
NEMESIS_LOAD = 120.0
NEMESIS_MESSAGE_SIZE = 128

#: Fraction of cases that use the heartbeat detector instead of the
#: oracle — real FD traffic reacts to partitions and delay spikes, which
#: the omniscient oracle never does.
HEARTBEAT_FRACTION = 0.35


@dataclass(frozen=True, slots=True)
class StackSpec:
    """One sweepable stack: its config plus nemesis-specific caveats."""

    label: str
    config: StackConfig
    #: Restrict generated schedules to delay spikes only (the sequencer
    #: is good-run-only by design: no tolerance for crashes/suspicions).
    benign_only: bool = False
    #: Optional :func:`~repro.abcast.factory.build_stack` replacement;
    #: the ``broken`` fixture injects its bug through this.
    factory: Callable | None = None


#: Stacks whose generated schedules are restricted to delay spikes: the
#: sequencer family is good-run-only by design (no tolerance for
#: crashes or suspicions), with or without a batching layer on top.
BENIGN_ONLY_LABELS = frozenset({"sequencer", "batched-sequencer"})

#: Every stack the swarm knows how to drive — one row per registered
#: stack label (see :data:`repro.config.STACK_REGISTRY`, so a newly
#: registered stack joins the swarm automatically), plus the ``broken``
#: test fixture with a seeded total-order bug; the fixture is never part
#: of the default sweep (see repro.nemesis.broken).
STACKS: dict[str, StackSpec] = {
    label: StackSpec(label, config, benign_only=label in BENIGN_ONLY_LABELS)
    for label, config in STACK_REGISTRY.items()
}
STACKS["broken"] = StackSpec(
    "broken", StackConfig(kind=StackKind.MONOLITHIC), factory=broken_stack_factory
)

#: The fault-tolerant stacks every sweep covers by default (everything
#: registered except the benign-only sequencer family and the fixture).
DEFAULT_STACKS = tuple(
    label
    for label, spec in STACKS.items()
    if not spec.benign_only and spec.factory is None
)


@dataclass(frozen=True, slots=True)
class NemesisCase:
    """One fully determined adversarial run (its own repro recipe)."""

    stack: str
    seed: int
    n: int
    fd: str  # "oracle" | "heartbeat"
    faultload: FaultloadConfig

    def describe(self) -> str:
        events = self.faultload.events()
        return (
            f"{self.stack} seed={self.seed} n={self.n} fd={self.fd} "
            f"({len(events)} fault event(s))"
        )


@dataclass(frozen=True, slots=True)
class CaseResult:
    """Outcome of one nemesis case."""

    case: NemesisCase
    violations: tuple[Violation, ...]
    deliveries: int
    events_executed: int

    @property
    def passed(self) -> bool:
        return not self.violations


@dataclass(frozen=True, slots=True)
class Counterexample:
    """A failing case together with its shrunk, replayable core."""

    original: CaseResult
    minimal: CaseResult

    @property
    def dropped_events(self) -> int:
        return len(self.original.case.faultload.events()) - len(
            self.minimal.case.faultload.events()
        )


@dataclass(slots=True)
class SwarmReport:
    """Everything a sweep produced."""

    results: list[CaseResult] = field(default_factory=list)
    counterexamples: list[Counterexample] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def cases_run(self) -> int:
        return len(self.results)

    @property
    def failures(self) -> list[CaseResult]:
        return [result for result in self.results if not result.passed]

    def summary(self) -> str:
        deliveries = sum(result.deliveries for result in self.results)
        lines = [
            f"nemesis: {self.cases_run} case(s), "
            f"{len(self.failures)} failing, {deliveries} deliveries checked"
        ]
        for ce in self.counterexamples:
            case = ce.minimal.case
            worst = ce.minimal.violations[0]
            lines.append(
                f"  FAIL {case.describe()} -> {worst} "
                f"[shrunk away {ce.dropped_events} event(s)]"
            )
        return "\n".join(lines)


# -- case construction ------------------------------------------------------


def generate_case(stack: str, seed: int, n: int = 3) -> NemesisCase:
    """Derive the case for (stack, seed, n) — pure function of its args.

    The schedule and the detector choice come from a named RNG stream
    keyed by the stack label, so different stacks see *different*
    schedules for the same seed (more coverage per sweep) while any
    (stack, seed) pair regenerates identically forever.
    """
    spec = _spec(stack)
    rng = RngRegistry(seed).stream(f"nemesis.schedule.{stack}")
    faultload = generate_faultload(rng, n, benign_only=spec.benign_only)
    fd = "heartbeat" if rng.random() < HEARTBEAT_FRACTION else "oracle"
    return NemesisCase(stack=stack, seed=seed, n=n, fd=fd, faultload=faultload)


def build_config(case: NemesisCase) -> RunConfig:
    """The :class:`~repro.config.RunConfig` a case runs under."""
    _spec(case.stack)  # validate the label early
    if case.fd == "oracle":
        fd_config = FailureDetectorConfig(kind=FailureDetectorKind.ORACLE)
    elif case.fd == "heartbeat":
        fd_config = FailureDetectorConfig(kind=FailureDetectorKind.HEARTBEAT)
    else:
        raise ConfigurationError(f"unknown nemesis fd {case.fd!r}")
    return RunConfig(
        n=case.n,
        stack=STACKS[case.stack].config,
        workload=WorkloadConfig(
            offered_load=NEMESIS_LOAD, message_size=NEMESIS_MESSAGE_SIZE
        ),
        failure_detector=fd_config,
        faultload=case.faultload,
        warmup=NEMESIS_WARMUP,
        duration=NEMESIS_DURATION,
    )


def _spec(stack: str) -> StackSpec:
    try:
        return STACKS[stack]
    except KeyError:
        raise ConfigurationError(
            f"unknown nemesis stack {stack!r}; choose from {', '.join(STACKS)}"
        ) from None


def _drain_for(config: RunConfig, liveness_bound: float) -> float:
    """Simulated drain long enough for two post-heal watchdog checks."""
    quiet = max(config.faultload.last_disruption_time(), config.warmup)
    horizon = quiet + 2.0 * liveness_bound + 0.2
    return max(0.5, horizon - config.total_time)


# -- execution --------------------------------------------------------------


def run_case(
    case: NemesisCase, *, liveness_bound: float = DEFAULT_LIVENESS_BOUND
) -> CaseResult:
    """Run one case to completion under the invariant monitor.

    A :class:`~repro.errors.ReproError` escaping the simulation (e.g. a
    ``ProtocolError`` from a confused stack) is converted into an
    ``exception`` violation rather than propagated: to the swarm, a
    crash of the system under test is just another way to fail.
    """
    spec = _spec(case.stack)
    config = build_config(case)
    simulation = Simulation(config, seed=case.seed, stack_factory=spec.factory)
    monitor = InvariantMonitor(case.n, liveness_bound=liveness_bound)
    monitor.attach(simulation)
    with warnings.catch_warnings():
        # Faulty runs are rarely stationary; that is not a finding.
        warnings.simplefilter("ignore", StationarityWarning)
        try:
            simulation.run(drain=_drain_for(config, liveness_bound))
        except ReproError as exc:
            monitor.violations.append(
                Violation(
                    invariant="exception",
                    time=simulation.kernel.now,
                    description=f"{type(exc).__name__}: {exc}",
                    trace_slice=monitor.trace_slice,
                )
            )
    violations = monitor.finalize()
    return CaseResult(
        case=case,
        violations=tuple(violations),
        deliveries=monitor.delivery_count,
        events_executed=simulation.kernel.events_executed,
    )


def _case_task(task: tuple[NemesisCase, float]) -> CaseResult:
    """Picklable per-case worker for :func:`run_cases`."""
    case, liveness_bound = task
    return run_case(case, liveness_bound=liveness_bound)


def run_cases(
    cases: Sequence[NemesisCase],
    *,
    liveness_bound: float = DEFAULT_LIVENESS_BOUND,
    jobs: int = 1,
    progress: Callable[[CaseResult], None] | None = None,
) -> list[CaseResult]:
    """Run a batch of cases, fanning out over *jobs* worker processes.

    Results come back in case order regardless of *jobs* (cases are pure
    functions of their fields, and the parallel map merges by submission
    index), so a sweep report is identical for any job count.
    """
    tasks = [(case, liveness_bound) for case in cases]
    results = run_tasks(_case_task, tasks, jobs=jobs)
    if progress is not None:
        for result in results:
            progress(result)
    return results


def shrink_case(
    failing: NemesisCase, *, liveness_bound: float = DEFAULT_LIVENESS_BOUND
) -> CaseResult:
    """Shrink a failing case's schedule and return the minimal failure.

    If shrinking removes every removable event the original case is
    returned re-run; the result is always a *failing* CaseResult.
    """

    def still_fails(faultload: FaultloadConfig) -> bool:
        candidate = replace(failing, faultload=faultload)
        return not run_case(candidate, liveness_bound=liveness_bound).passed

    minimal_faultload = shrink_faultload(failing.faultload, still_fails)
    minimal = replace(failing, faultload=minimal_faultload)
    return run_case(minimal, liveness_bound=liveness_bound)


def sweep(
    seeds: Iterable[int],
    stacks: Sequence[str] = DEFAULT_STACKS,
    n: int = 3,
    *,
    shrink: bool = True,
    liveness_bound: float = DEFAULT_LIVENESS_BOUND,
    jobs: int = 1,
    progress: Callable[[CaseResult], None] | None = None,
) -> SwarmReport:
    """Sweep every (seed, stack) pair; shrink any failures afterwards.

    Cases fan out over *jobs* worker processes; shrinking stays serial
    (it is a sequential search, and failures are the rare case).
    """
    report = SwarmReport()
    cases = [
        generate_case(stack, seed, n) for seed in seeds for stack in stacks
    ]
    results = run_cases(
        cases, liveness_bound=liveness_bound, jobs=jobs, progress=progress
    )
    report.results.extend(results)
    for result in results:
        if not result.passed:
            minimal = (
                shrink_case(result.case, liveness_bound=liveness_bound)
                if shrink
                else result
            )
            report.counterexamples.append(
                Counterexample(original=result, minimal=minimal)
            )
    return report


# -- replay / persistence ---------------------------------------------------


def case_to_dict(case: NemesisCase) -> dict[str, Any]:
    """Plain-dict form of a case, suitable for ``json.dump``."""
    return {
        "stack": case.stack,
        "seed": case.seed,
        "n": case.n,
        "fd": case.fd,
        "faultload": faultload_to_dict(case.faultload),
    }


def case_from_dict(data: dict[str, Any]) -> NemesisCase:
    """Inverse of :func:`case_to_dict`.

    Schema violations raise :class:`~repro.errors.ConfigurationError`
    naming the offending field — these dicts come from user-supplied
    ``--replay`` files.
    """
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"a replay case must be a JSON object, got {type(data).__name__}"
        )
    for key in ("stack", "seed", "n"):
        if key not in data:
            raise ConfigurationError(
                f"replay case is missing required field {key!r}"
            )
    stack = data["stack"]
    if not isinstance(stack, str):
        raise ConfigurationError(
            f"replay case field 'stack' must be a string, got {stack!r}"
        )
    for key in ("seed", "n"):
        value = data[key]
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(
                f"replay case field {key!r} must be an integer, got {value!r}"
            )
    fd = data.get("fd", "oracle")
    if fd not in ("oracle", "heartbeat"):
        raise ConfigurationError(
            f"replay case field 'fd' must be 'oracle' or 'heartbeat', "
            f"got {fd!r}"
        )
    faultload = data.get("faultload", {})
    return NemesisCase(
        stack=stack,
        seed=data["seed"],
        n=data["n"],
        fd=fd,
        faultload=faultload_from_dict(faultload),
    )


def save_case(case: NemesisCase, path: str | Path) -> None:
    """Write a case to a JSON file a ``--replay`` can consume."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case_to_dict(case), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_case(path: str | Path) -> NemesisCase:
    """Read a case back from :func:`save_case` output.

    Raises:
        ConfigurationError: The file is not valid JSON or does not match
            the case schema; the message names the problem.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path} is not valid JSON: {exc}"
            ) from exc
    return case_from_dict(data)


def repro_command(path: str | Path) -> str:
    """The one command that replays a saved counterexample."""
    return f"python -m repro nemesis --replay {path}"
