"""Shrink a failing faultload schedule to a minimal counterexample.

A schedule found by the swarm typically mixes several faults, most of
which are irrelevant to the failure it triggered. Because every run is
deterministic in (config, seed), shrinking is just delta debugging:
drop one atomic fault event, re-run, and keep the smaller schedule
whenever it still fails. :func:`shrink_faultload` does this greedily to
a fixpoint — the result is *1-minimal* (no single event can be removed
without losing the failure), which in practice collapses a five-fault
schedule to the one crash or wrong suspicion that matters.

The oracle is passed in as a callable so this module stays independent
of the swarm runner (which imports the simulation assembly and hence,
indirectly, this package).
"""

from __future__ import annotations

from typing import Callable

from repro.config import FaultloadConfig

#: Hard cap on oracle invocations, so a pathological oracle (e.g. flaky
#: under a non-deterministic stack bug) cannot shrink forever.
MAX_RUNS = 200


def shrink_faultload(
    faultload: FaultloadConfig,
    still_fails: Callable[[FaultloadConfig], bool],
    *,
    max_runs: int = MAX_RUNS,
) -> FaultloadConfig:
    """Greedily remove fault events while *still_fails* keeps returning True.

    Args:
        faultload: A schedule known to fail (the caller should have
            observed the failure already; this function never re-checks
            the starting point).
        still_fails: Deterministic oracle — re-runs the case with the
            candidate schedule and reports whether it still fails.
        max_runs: Upper bound on oracle calls.

    Returns:
        A 1-minimal failing schedule (possibly the input itself).
    """
    current = faultload
    runs = 0
    changed = True
    while changed and runs < max_runs:
        changed = False
        for event in current.events():
            candidate = current.without(event)
            runs += 1
            if still_fails(candidate):
                current = candidate
                changed = True
                break  # restart over the smaller schedule
            if runs >= max_runs:
                break
    return current
