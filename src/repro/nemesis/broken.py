"""A deliberately broken stack — the nemesis test fixture.

:class:`BrokenAtomicBroadcast` is the monolithic stack with one seeded
bug: while a non-coordinator process suspects anyone, it "helpfully"
adelivers its pooled messages to the application right away instead of
waiting for consensus — without recording the delivery, so the same
messages are adelivered *again* when the decided batch arrives. That is
the classic premature-delivery mistake; it surfaces as a
uniform-integrity violation (duplicate delivery) and, when the pool
order disagrees with the decided order, as a total-order violation too.

It exists to prove the nemesis pipeline end to end: the swarm must find
a failing schedule against it, the invariant monitor must localize the
violation, and the shrinker must reduce the schedule to (typically) a
single crash or wrong-suspicion event. It is deliberately *not* part of
the default sweep and never a valid experiment subject.
"""

from __future__ import annotations

from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.stack.actions import Action, EmitUp
from repro.stack.events import AdeliverIndication
from repro.types import AppMessage


class BrokenAtomicBroadcast(MonolithicAtomicBroadcast):
    """Monolithic stack with a seeded premature-delivery bug."""

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        actions = super().handle_suspicion(suspects)
        if suspects and not self.is_initial_coordinator:
            actions = self._premature_flush() + actions
        return actions

    def _on_abcast(self, message: AppMessage) -> list[Action]:
        actions = super()._on_abcast(message)
        if not self.is_initial_coordinator and self.ctx.suspects():
            actions = self._premature_flush() + actions
        return actions

    def _premature_flush(self) -> list[Action]:
        # BUG (deliberate): hand the pool to the application in local
        # order, bypassing consensus — and without marking anything as
        # adelivered, so the legitimate delivery later duplicates it.
        return [
            EmitUp(AdeliverIndication(message))
            for message in self._pool.values()
        ]


def broken_stack_factory(stack_config, ctx, *, max_batch=None):
    """Drop-in for :func:`~repro.abcast.factory.build_stack` (fixture)."""
    return [
        BrokenAtomicBroadcast(ctx, stack_config.optimizations, max_batch=max_batch)
    ]
