"""Configuration dataclasses for stacks, workloads and runs.

All knobs of a simulation live here, in frozen dataclasses, so that a run
is fully described by one :class:`RunConfig` value plus a seed. The
defaults are calibrated against the paper's testbed (Pentium 4 @ 3.2 GHz,
Sun JVM 1.5, Gigabit Ethernet, TCP transport) — see EXPERIMENTS.md for
the calibration rationale and the resulting paper-vs-measured tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError


class StackKind(enum.Enum):
    """Which atomic broadcast implementation a run uses."""

    #: The paper's modular composition (Fig. 1 left).
    MODULAR = "modular"
    #: The paper's merged module with the §4 optimizations (Fig. 1 right).
    MONOLITHIC = "monolithic"
    #: Extension baseline: fixed-sequencer ordering without consensus
    #: (good runs only; see :mod:`repro.abcast.sequencer`).
    SEQUENCER = "sequencer"
    #: Extension: Ring Paxos dissemination (Marandi et al., DSN 2010) —
    #: acceptor-to-acceptor forwarding along a static ring with decisions
    #: piggybacked on the ring traffic. See :mod:`repro.abcast.ringpaxos`.
    RINGPAXOS = "ringpaxos"
    #: Extension: the fixed sequencer composed under a Chop Chop-style
    #: distillation layer (Camaioni et al., 2024) that aggregates client
    #: submissions into one abcast payload. See :mod:`repro.abcast.batching`.
    BATCHED_SEQUENCER = "batched-sequencer"


class ConsensusVariant(enum.Enum):
    """Consensus algorithm variant used inside the modular stack."""

    #: Good-run-optimized Chandra–Toueg (paper §3.2): round 1 skips the
    #: estimate phase, later rounds start only on suspicion, decisions are
    #: rbcast as a small DECISION tag.
    OPTIMIZED = "optimized"
    #: Textbook Chandra–Toueg with all four phases in every round; kept as
    #: an ablation baseline (the paper's modular stack is the optimized one).
    TEXTBOOK = "textbook"
    #: Extension: indirect consensus (the paper's related-work [12],
    #: Ekwall & Schiper DSN 2006) — consensus orders message *ids*; the
    #: payloads travel only in the diffusion step, halving the modular
    #: stack's data volume. See :mod:`repro.abcast.indirect`.
    INDIRECT = "indirect"


class ReliableBroadcastVariant(enum.Enum):
    """Reliable broadcast variant used to diffuse consensus decisions."""

    #: Majority-relay optimization (paper §3.1): (n-1)(⌊(n-1)/2⌋+1) msgs.
    MAJORITY = "majority"
    #: Classical echo broadcast: every first reception is re-sent to all.
    CLASSICAL = "classical"


class ArrivalProcess(enum.Enum):
    """Inter-arrival law of the symmetric workload generators."""

    #: Constant spacing with a random initial phase per process (the
    #: paper's "constant rate r" workload).
    UNIFORM = "uniform"
    #: Poisson arrivals at the same mean rate, for sensitivity studies.
    POISSON = "poisson"


class ClientArrival(enum.Enum):
    """Aggregate arrival law of a client population (per process).

    The population model never schedules per-client events; it samples
    the *aggregate* arrival process of all clients fronted by one
    process and attributes each arrival to a logical client afterwards
    (see :mod:`repro.workload.population`).
    """

    #: Superposition of independent client Poisson streams — itself a
    #: Poisson process at the aggregate rate.
    POISSON = "poisson"
    #: Markov-modulated on/off mix (interrupted Poisson process): the
    #: aggregate alternates between a silent OFF state and an ON state
    #: whose rate is scaled up so the configured mean load is preserved.
    #: Self-similar-ish bursts; index of dispersion > 1.
    BURSTY = "bursty"
    #: Diurnal rate ramp: a raised-cosine day/night cycle around the
    #: configured mean load (non-homogeneous Poisson via thinning).
    DIURNAL = "diurnal"


@dataclass(frozen=True, slots=True)
class ClientPopulationConfig:
    """A population of logical clients multiplexed onto the n processes.

    ``clients`` may be 10⁶ and beyond: the model is lazy, costing one
    kernel event per *arrival*, never per client. Each process fronts
    ``clients / n`` of the population; per-client activity within a
    process's pool is Zipf-skewed with exponent :attr:`zipf_s` (0 makes
    every client equally active). The aggregate offered load stays
    ``WorkloadConfig.offered_load`` for every arrival law — burstiness
    and diurnal cycles reshape *when* arrivals happen, not how many.
    """

    #: Number of logical clients across the whole group.
    clients: int = 100_000
    #: Zipf activity-skew exponent s; P(rank r) ∝ r^-s. 0 = uniform.
    zipf_s: float = 1.1
    arrival: ClientArrival = ClientArrival.POISSON
    #: BURSTY: mean seconds of one aggregate ON (sending) period.
    burst_on: float = 0.05
    #: BURSTY: mean seconds of one aggregate OFF (silent) period.
    burst_off: float = 0.15
    #: DIURNAL: seconds of one simulated day/night cycle.
    diurnal_period: float = 4.0
    #: DIURNAL: trough rate as a fraction of the peak rate.
    diurnal_trough: float = 0.2

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigurationError(
                f"client population must be >= 1: {self.clients}"
            )
        if self.zipf_s < 0:
            raise ConfigurationError(
                f"zipf exponent must be >= 0: {self.zipf_s}"
            )
        if self.burst_on <= 0 or self.burst_off < 0:
            raise ConfigurationError(
                "burst_on must be positive and burst_off non-negative: "
                f"{self.burst_on}, {self.burst_off}"
            )
        if self.diurnal_period <= 0:
            raise ConfigurationError(
                f"diurnal period must be positive: {self.diurnal_period}"
            )
        if not 0 < self.diurnal_trough <= 1:
            raise ConfigurationError(
                f"diurnal trough must be in (0, 1]: {self.diurnal_trough}"
            )

    @property
    def duty_cycle(self) -> float:
        """BURSTY: fraction of time the aggregate spends ON."""
        return self.burst_on / (self.burst_on + self.burst_off)

    def clients_of(self, pid: int, n: int) -> int:
        """How many logical clients process *pid* fronts in a group of n."""
        base, extra = divmod(self.clients, n)
        return base + (1 if pid < extra else 0)


class FailureDetectorKind(enum.Enum):
    """Failure detector implementation."""

    #: Omniscient detector: suspects a process a fixed delay after its
    #: actual crash, never wrongly. Used for the performance experiments
    #: so FD traffic does not perturb good-run measurements.
    ORACLE = "oracle"
    #: Heartbeat-based eventually-strong detector exchanging real network
    #: messages; used by the fault-tolerance tests and examples.
    HEARTBEAT = "heartbeat"
    #: Fully scripted suspicions, for deterministic unit tests.
    SCRIPTED = "scripted"


@dataclass(frozen=True, slots=True)
class CpuCosts:
    """Per-operation CPU service times (seconds) of a simulated process.

    Calibrated to the paper's era (Sun JVM 1.5 on a 3.2 GHz Pentium 4):
    per-message fixed costs around 150 µs (TCP syscalls plus Java object
    serialization setup), per-byte costs around 12 ns (~80 MB/s object
    (de)serialization), and a per-module-boundary dispatch cost for the
    composition framework. See EXPERIMENTS.md for the calibration
    rationale and paper-vs-measured tables.
    """

    #: Cost of invoking any protocol handler (event dispatch).
    dispatch: float = 25e-6
    #: Extra cost per module boundary a message or event crosses in the
    #: composed (modular) stack. This is the mechanical Cactus overhead.
    boundary_crossing: float = 50e-6
    #: Fixed cost of pushing one message to the transport (syscall, TCP,
    #: object serialization setup in the JVM).
    send_fixed: float = 150e-6
    #: Fixed cost of receiving one message from the transport.
    recv_fixed: float = 150e-6
    #: Marshalling cost per payload byte, paid ONCE per distinct payload
    #: (~50 MB/s, JVM-era object serialization). A broadcast of the same
    #: payload to n-1 destinations serializes once.
    serialize_per_byte: float = 12e-9
    #: Copy cost per byte per destination (kernel/TCP buffer copies).
    send_per_byte: float = 2e-9
    #: Unmarshalling cost per payload byte received (every receiver
    #: deserializes independently).
    recv_per_byte: float = 12e-9
    #: Cost of handing one adelivered message to the application.
    adeliver: float = 10e-6

    def send_cost(self, wire_size: int, *, first_copy: bool = True) -> float:
        """CPU seconds to send a message of *wire_size* bytes.

        Args:
            wire_size: Bytes put on the wire.
            first_copy: Whether this send serializes the payload (False
                for the 2nd..nth destination of a broadcast, which reuse
                the serialized buffer).
        """
        cost = self.send_fixed + self.send_per_byte * wire_size
        if first_copy:
            cost += self.serialize_per_byte * wire_size
        return cost

    def recv_cost(self, wire_size: int) -> float:
        """CPU seconds to receive a message of *wire_size* bytes."""
        return self.recv_fixed + self.recv_per_byte * wire_size


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Link-level model of the paper's switched Gigabit Ethernet."""

    #: Effective per-NIC transmit bandwidth in bytes/second. Nominal
    #: GbE is 125 MB/s; 2007-era TCP stacks sustained ~0.8 of that.
    bandwidth: float = 100e6
    #: One-way propagation + switching delay in seconds (uniform LAN).
    propagation: float = 60e-6
    #: Optional per-pair one-way delays overriding :attr:`propagation`:
    #: ``propagation_matrix[src][dst]`` seconds. Lets experiments place
    #: processes across a WAN (see the geo-distribution example); must be
    #: an n×n structure when used with a group of size n.
    propagation_matrix: tuple[tuple[float, ...], ...] | None = None
    #: Bytes of Ethernet + IP + TCP framing per message.
    base_header: int = 66
    #: Bytes of framing added by each protocol module a message traverses
    #: (Cactus-style stacked headers).
    per_module_header: int = 16

    def delay(self, src: int, dst: int) -> float:
        """One-way propagation delay from *src* to *dst*."""
        if self.propagation_matrix is None:
            return self.propagation
        return self.propagation_matrix[src][dst]


@dataclass(frozen=True, slots=True)
class FlowControlConfig:
    """The paper's backlog-window flow control (§5.1).

    Each process may have at most :attr:`window` of its own abcast
    messages accepted but not yet locally adelivered; further abcast
    events block. With the default window the system orders M ≈ 4
    messages per consensus near saturation, the value the paper reports
    as optimal for both stacks.
    """

    window: int = 3
    #: Maximum number of messages ordered by one consensus execution
    #: (proposal batch cap). The paper's flow control "ensures that, on
    #: average, M = 4 messages are ordered per consensus execution" and
    #: reports M = 4 as optimal for both stacks; the cap is how we pin
    #: the same operating point. ``None`` removes the cap.
    max_batch: int | None = 4

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"flow-control window must be >= 1: {self.window}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1: {self.max_batch}")


@dataclass(frozen=True, slots=True)
class BatchingConfig:
    """Knobs of the distillation (batching) layer.

    The layer aggregates client submissions into one abcast payload and
    unbatches on delivery (see :mod:`repro.abcast.batching`). A batch is
    sealed by whichever trigger fires first: the size trigger (the batch
    reaches :attr:`max_messages` entries) or the time trigger (the oldest
    buffered submission has waited :attr:`flush_interval` seconds).
    """

    #: Size trigger: seal a batch at this many messages.
    max_messages: int = 32
    #: Time trigger: seal a non-empty batch after this many seconds.
    flush_interval: float = 0.002

    def __post_init__(self) -> None:
        if self.max_messages < 1:
            raise ConfigurationError(
                f"batching max_messages must be >= 1: {self.max_messages}"
            )
        if self.flush_interval <= 0:
            raise ConfigurationError(
                f"batching flush_interval must be positive: {self.flush_interval}"
            )


@dataclass(frozen=True, slots=True)
class FailureDetectorConfig:
    """Failure-detection parameters."""

    kind: FailureDetectorKind = FailureDetectorKind.ORACLE
    #: Oracle: delay between a crash and its detection by every process.
    detection_delay: float = 0.2
    #: Heartbeat: period between heartbeats.
    heartbeat_interval: float = 0.05
    #: Heartbeat: silence after which a process is suspected.
    timeout: float = 0.25


@dataclass(frozen=True, slots=True)
class MonolithicOptimizations:
    """Ablation switches for the three §4 optimizations.

    All enabled reproduces the paper's monolithic stack; disabling all
    three degrades it to (roughly) the modular message pattern while
    keeping the merged-module dispatch cost, which isolates the
    *algorithmic* gain from the *mechanical* gain in the ablation bench.
    """

    #: §4.1 — piggyback decision of consensus k on proposal of k+1.
    combine_decision_with_proposal: bool = True
    #: §4.2 — send abcast messages only to the coordinator, piggybacked
    #: on ack messages, instead of diffusing them to everyone.
    piggyback_on_ack: bool = True
    #: §4.3 — replace the majority reliable broadcast of decisions with a
    #: plain send-to-all acknowledged by consensus k+1 traffic.
    cheap_decision_broadcast: bool = True


@dataclass(frozen=True, slots=True)
class StackConfig:
    """Which stack to build and with which variants."""

    kind: StackKind = StackKind.MODULAR
    consensus: ConsensusVariant = ConsensusVariant.OPTIMIZED
    rbcast: ReliableBroadcastVariant = ReliableBroadcastVariant.MAJORITY
    #: §3.3 correctness guard: a process holding undelivered messages
    #: starts a consensus after this many seconds even if nothing new
    #: arrives (protects against senders that crash mid-diffusion).
    guard_timeout: float = 0.5
    optimizations: MonolithicOptimizations = field(
        default_factory=MonolithicOptimizations
    )
    #: Optional distillation layer composed on top of the stack (always
    #: present for :attr:`StackKind.BATCHED_SEQUENCER`, where ``None``
    #: means the default :class:`BatchingConfig`; any other kind gains a
    #: batching layer when this is set explicitly).
    batching: BatchingConfig | None = None

    def batching_or_default(self) -> BatchingConfig:
        """The effective batching knobs where a layer is implied."""
        return self.batching if self.batching is not None else BatchingConfig()


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """The paper's symmetric workload (§5.1).

    All *n* processes abcast messages of fixed size ``message_size`` at a
    constant rate; the global rate is the offered load ``T_offered``.
    """

    #: Global abcast attempt rate in messages/second across all processes.
    offered_load: float = 1000.0
    #: Payload size ``s`` of every abcast message, in bytes.
    message_size: int = 1024
    arrival: ArrivalProcess = ArrivalProcess.UNIFORM
    #: Optional client-population model. When set, arrivals come from
    #: the population's aggregate law (:class:`ClientArrival`, which
    #: overrides :attr:`arrival`) and each is attributed to a logical
    #: Zipf-skewed client; the offered load is unchanged.
    population: ClientPopulationConfig | None = None

    def __post_init__(self) -> None:
        if self.offered_load <= 0:
            raise ConfigurationError(
                f"offered load must be positive: {self.offered_load}"
            )
        if self.message_size < 0:
            raise ConfigurationError(
                f"message size must be non-negative: {self.message_size}"
            )

    def per_process_rate(self, n: int) -> float:
        """Abcast rate of each individual process."""
        return self.offered_load / n


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """Scripted crash of one process at a point in simulated time."""

    time: float
    process: int


class LinkFaultMode(enum.Enum):
    """What happens to a message caught by a partition or loss burst.

    The stacks assume quasi-reliable channels (the paper's TCP): between
    two correct processes every message eventually arrives. ``HOLD``
    preserves that assumption — affected messages are delayed until the
    fault heals, like TCP retransmission across a transient outage — so
    both safety *and* liveness invariants remain checkable. ``DROP``
    silently loses the messages (a broken channel); safety must still
    hold in such runs, but liveness may legitimately stall, so the
    nemesis liveness watchdog disarms itself for DROP schedules.
    """

    HOLD = "hold"
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class PartitionEvent:
    """Timed network partition with heal.

    Between ``start`` and ``heal``, messages crossing group boundaries
    are held (or dropped, per ``mode``). ``groups`` lists disjoint sets
    of processes; all unlisted processes form one implicit "rest" group,
    so ``groups=((0,),)`` is shorthand for isolating p0 from everyone
    else while the others keep talking among themselves.
    """

    start: float
    heal: float
    groups: tuple[tuple[int, ...], ...]
    mode: LinkFaultMode = LinkFaultMode.HOLD

    def side_of(self, process: int) -> int:
        """Index of the group containing *process* (-1 if ungrouped)."""
        for index, group in enumerate(self.groups):
            if process in group:
                return index
        return -1

    def severs(self, src: int, dst: int) -> bool:
        """Whether this partition cuts the (src, dst) link while active."""
        return self.side_of(src) != self.side_of(dst)


@dataclass(frozen=True, slots=True)
class LossBurst:
    """Per-link probabilistic message loss over a time window.

    ``src``/``dst`` of ``None`` match any endpoint, so a burst can model
    one bad link, one flaky NIC, or a globally lossy network.
    """

    start: float
    end: float
    probability: float
    src: int | None = None
    dst: int | None = None
    mode: LinkFaultMode = LinkFaultMode.HOLD
    #: HOLD mode: mean extra delay of a "retransmitted" message (seconds).
    retry_delay: float = 0.2

    def matches(self, src: int, dst: int) -> bool:
        """Whether the burst applies to the (src, dst) link."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True, slots=True)
class DelaySpike:
    """Deterministic extra latency plus random jitter over a window."""

    start: float
    end: float
    extra_delay: float
    jitter: float = 0.0
    src: int | None = None
    dst: int | None = None

    def matches(self, src: int, dst: int) -> bool:
        """Whether the spike applies to the (src, dst) link."""
        return (self.src is None or self.src == src) and (
            self.dst is None or self.dst == dst
        )


@dataclass(frozen=True, slots=True)
class WrongSuspicion:
    """Inject a wrong suspicion into one process's failure detector.

    At ``time``, *observer*'s detector starts suspecting *suspect* (who
    may be perfectly alive); the suspicion is retracted ``duration``
    seconds later unless the suspect has actually crashed by then. This
    exercises the round-change machinery that only ◇S-level wrongness
    can reach.
    """

    time: float
    observer: int
    suspect: int
    duration: float = 0.2


@dataclass(frozen=True, slots=True)
class FaultloadConfig:
    """Faults injected during a run. Empty = the paper's "good runs"."""

    crashes: tuple[CrashEvent, ...] = ()
    partitions: tuple[PartitionEvent, ...] = ()
    loss_bursts: tuple[LossBurst, ...] = ()
    delay_spikes: tuple[DelaySpike, ...] = ()
    wrong_suspicions: tuple[WrongSuspicion, ...] = ()

    def crashed_processes(self) -> frozenset[int]:
        """Set of processes that crash at some point in the run."""
        return frozenset(crash.process for crash in self.crashes)

    @property
    def is_empty(self) -> bool:
        """Whether this is a good-run faultload (no faults at all)."""
        return not (
            self.crashes
            or self.partitions
            or self.loss_bursts
            or self.delay_spikes
            or self.wrong_suspicions
        )

    @property
    def liveness_safe(self) -> bool:
        """Whether quasi-reliable channels survive this faultload.

        True when no fault permanently destroys messages between correct
        processes (all partitions/loss bursts are HOLD mode), so the
        liveness watchdog may legitimately demand post-heal progress.
        """
        return all(
            p.mode is LinkFaultMode.HOLD for p in self.partitions
        ) and all(b.mode is LinkFaultMode.HOLD for b in self.loss_bursts)

    def last_disruption_time(self) -> float:
        """Time after which the network and FDs are quiet again.

        Crashes disrupt forever in one sense, but the protocols are
        designed to make progress once the crash is *detected*; for the
        watchdog's purposes a crash's disruption ends at the crash time
        itself (detection latency is covered by the watchdog bound).
        """
        times = [0.0]
        times.extend(crash.time for crash in self.crashes)
        times.extend(p.heal for p in self.partitions)
        times.extend(b.end for b in self.loss_bursts)
        times.extend(s.end for s in self.delay_spikes)
        times.extend(s.time + s.duration for s in self.wrong_suspicions)
        return max(times)

    def events(self) -> tuple[Any, ...]:
        """All atomic fault events, in declaration order (for shrinking)."""
        return (
            *self.crashes,
            *self.partitions,
            *self.loss_bursts,
            *self.delay_spikes,
            *self.wrong_suspicions,
        )

    def without(self, event: Any) -> "FaultloadConfig":
        """A copy with one atomic fault event removed (for shrinking)."""

        def drop(events: tuple[Any, ...]) -> tuple[Any, ...]:
            removed = False
            kept = []
            for candidate in events:
                if not removed and candidate == event:
                    removed = True
                    continue
                kept.append(candidate)
            return tuple(kept)

        return FaultloadConfig(
            crashes=drop(self.crashes),
            partitions=drop(self.partitions),
            loss_bursts=drop(self.loss_bursts),
            delay_spikes=drop(self.delay_spikes),
            wrong_suspicions=drop(self.wrong_suspicions),
        )


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Complete description of one simulation run (modulo the seed)."""

    #: Group size. The paper evaluates n = 3 and n = 7.
    n: int = 3
    stack: StackConfig = field(default_factory=StackConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    flow_control: FlowControlConfig = field(default_factory=FlowControlConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    failure_detector: FailureDetectorConfig = field(
        default_factory=FailureDetectorConfig
    )
    faultload: FaultloadConfig = field(default_factory=FaultloadConfig)
    #: Simulated seconds measured after warm-up.
    duration: float = 2.0
    #: Simulated seconds discarded at the start (stack fills its pipeline
    #: and the flow-control window reaches its stationary occupancy).
    warmup: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={self.n}")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive: {self.duration}")
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be non-negative: {self.warmup}")
        for crash in self.faultload.crashes:
            if not 0 <= crash.process < self.n:
                raise ConfigurationError(
                    f"crash targets unknown process {crash.process} (n={self.n})"
                )
        population = self.workload.population
        if population is not None and population.clients < self.n:
            raise ConfigurationError(
                f"client population of {population.clients} cannot cover "
                f"n={self.n} processes (need at least one client each)"
            )
        majority_faulty = len(self.faultload.crashed_processes()) >= (self.n + 1) // 2
        if majority_faulty:
            raise ConfigurationError(
                "faultload crashes a majority of processes; consensus (and the "
                "majority reliable broadcast) require a correct majority"
            )
        self._validate_link_faults()

    def _validate_link_faults(self) -> None:
        for partition in self.faultload.partitions:
            if partition.heal <= partition.start:
                raise ConfigurationError(
                    f"partition must heal after it starts: {partition}"
                )
            seen: set[int] = set()
            for group in partition.groups:
                for process in group:
                    if not 0 <= process < self.n:
                        raise ConfigurationError(
                            f"partition names unknown process {process} (n={self.n})"
                        )
                    if process in seen:
                        raise ConfigurationError(
                            f"partition groups overlap on process {process}"
                        )
                    seen.add(process)
        for burst in self.faultload.loss_bursts:
            if burst.end <= burst.start:
                raise ConfigurationError(f"loss burst must end after start: {burst}")
            if not 0.0 <= burst.probability <= 1.0:
                raise ConfigurationError(
                    f"loss probability out of [0, 1]: {burst.probability}"
                )
            if burst.retry_delay < 0:
                raise ConfigurationError(
                    f"loss retry delay must be >= 0: {burst.retry_delay}"
                )
            for endpoint in (burst.src, burst.dst):
                if endpoint is not None and not 0 <= endpoint < self.n:
                    raise ConfigurationError(
                        f"loss burst names unknown process {endpoint} (n={self.n})"
                    )
        for spike in self.faultload.delay_spikes:
            if spike.end <= spike.start:
                raise ConfigurationError(f"delay spike must end after start: {spike}")
            if spike.extra_delay < 0 or spike.jitter < 0:
                raise ConfigurationError(f"delay spike must be non-negative: {spike}")
            for endpoint in (spike.src, spike.dst):
                if endpoint is not None and not 0 <= endpoint < self.n:
                    raise ConfigurationError(
                        f"delay spike names unknown process {endpoint} (n={self.n})"
                    )
        for suspicion in self.faultload.wrong_suspicions:
            if suspicion.observer == suspicion.suspect:
                raise ConfigurationError(
                    f"process {suspicion.observer} cannot suspect itself"
                )
            if suspicion.duration <= 0:
                raise ConfigurationError(
                    f"suspicion duration must be positive: {suspicion.duration}"
                )
            for process in (suspicion.observer, suspicion.suspect):
                if not 0 <= process < self.n:
                    raise ConfigurationError(
                        f"wrong suspicion names unknown process {process} (n={self.n})"
                    )

    @property
    def total_time(self) -> float:
        """Total simulated seconds including warm-up."""
        return self.warmup + self.duration

    def with_changes(self, **changes: Any) -> "RunConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **changes)


def modular_stack(
    consensus: ConsensusVariant = ConsensusVariant.OPTIMIZED,
    rbcast: ReliableBroadcastVariant = ReliableBroadcastVariant.MAJORITY,
) -> StackConfig:
    """Convenience constructor for the paper's modular stack."""
    return StackConfig(kind=StackKind.MODULAR, consensus=consensus, rbcast=rbcast)


def monolithic_stack(
    optimizations: MonolithicOptimizations | None = None,
) -> StackConfig:
    """Convenience constructor for the paper's monolithic stack."""
    return StackConfig(
        kind=StackKind.MONOLITHIC,
        optimizations=optimizations or MonolithicOptimizations(),
    )


#: Table of registered stacks: label → configuration. This single table
#: drives the CLI ``--stack`` choices, the live deployment, sweep stack
#: selection and the nemesis swarm's label validation, so a new stack
#: registered here shows up everywhere at once.
STACK_REGISTRY: dict[str, StackConfig] = {
    "modular": StackConfig(kind=StackKind.MODULAR),
    "monolithic": StackConfig(kind=StackKind.MONOLITHIC),
    "indirect": StackConfig(
        kind=StackKind.MODULAR, consensus=ConsensusVariant.INDIRECT
    ),
    "sequencer": StackConfig(kind=StackKind.SEQUENCER),
    "ringpaxos": StackConfig(kind=StackKind.RINGPAXOS),
    "batched-sequencer": StackConfig(kind=StackKind.BATCHED_SEQUENCER),
}

#: Stack labels accepted by the CLI and the live deployment.
STACK_LABELS = tuple(STACK_REGISTRY)


def stack_from_label(label: str) -> StackConfig:
    """Resolve a CLI-level stack label to its :class:`StackConfig`."""
    try:
        return STACK_REGISTRY[label]
    except KeyError:
        raise ConfigurationError(
            f"unknown stack {label!r} "
            f"(registered stacks: {', '.join(sorted(STACK_REGISTRY))})"
        ) from None
