"""Configuration dataclasses for stacks, workloads and runs.

All knobs of a simulation live here, in frozen dataclasses, so that a run
is fully described by one :class:`RunConfig` value plus a seed. The
defaults are calibrated against the paper's testbed (Pentium 4 @ 3.2 GHz,
Sun JVM 1.5, Gigabit Ethernet, TCP transport) — see EXPERIMENTS.md for
the calibration rationale and the resulting paper-vs-measured tables.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import ConfigurationError


class StackKind(enum.Enum):
    """Which atomic broadcast implementation a run uses."""

    #: The paper's modular composition (Fig. 1 left).
    MODULAR = "modular"
    #: The paper's merged module with the §4 optimizations (Fig. 1 right).
    MONOLITHIC = "monolithic"
    #: Extension baseline: fixed-sequencer ordering without consensus
    #: (good runs only; see :mod:`repro.abcast.sequencer`).
    SEQUENCER = "sequencer"


class ConsensusVariant(enum.Enum):
    """Consensus algorithm variant used inside the modular stack."""

    #: Good-run-optimized Chandra–Toueg (paper §3.2): round 1 skips the
    #: estimate phase, later rounds start only on suspicion, decisions are
    #: rbcast as a small DECISION tag.
    OPTIMIZED = "optimized"
    #: Textbook Chandra–Toueg with all four phases in every round; kept as
    #: an ablation baseline (the paper's modular stack is the optimized one).
    TEXTBOOK = "textbook"
    #: Extension: indirect consensus (the paper's related-work [12],
    #: Ekwall & Schiper DSN 2006) — consensus orders message *ids*; the
    #: payloads travel only in the diffusion step, halving the modular
    #: stack's data volume. See :mod:`repro.abcast.indirect`.
    INDIRECT = "indirect"


class ReliableBroadcastVariant(enum.Enum):
    """Reliable broadcast variant used to diffuse consensus decisions."""

    #: Majority-relay optimization (paper §3.1): (n-1)(⌊(n-1)/2⌋+1) msgs.
    MAJORITY = "majority"
    #: Classical echo broadcast: every first reception is re-sent to all.
    CLASSICAL = "classical"


class ArrivalProcess(enum.Enum):
    """Inter-arrival law of the symmetric workload generators."""

    #: Constant spacing with a random initial phase per process (the
    #: paper's "constant rate r" workload).
    UNIFORM = "uniform"
    #: Poisson arrivals at the same mean rate, for sensitivity studies.
    POISSON = "poisson"


class FailureDetectorKind(enum.Enum):
    """Failure detector implementation."""

    #: Omniscient detector: suspects a process a fixed delay after its
    #: actual crash, never wrongly. Used for the performance experiments
    #: so FD traffic does not perturb good-run measurements.
    ORACLE = "oracle"
    #: Heartbeat-based eventually-strong detector exchanging real network
    #: messages; used by the fault-tolerance tests and examples.
    HEARTBEAT = "heartbeat"
    #: Fully scripted suspicions, for deterministic unit tests.
    SCRIPTED = "scripted"


@dataclass(frozen=True, slots=True)
class CpuCosts:
    """Per-operation CPU service times (seconds) of a simulated process.

    Calibrated to the paper's era (Sun JVM 1.5 on a 3.2 GHz Pentium 4):
    per-message fixed costs around 150 µs (TCP syscalls plus Java object
    serialization setup), per-byte costs around 12 ns (~80 MB/s object
    (de)serialization), and a per-module-boundary dispatch cost for the
    composition framework. See EXPERIMENTS.md for the calibration
    rationale and paper-vs-measured tables.
    """

    #: Cost of invoking any protocol handler (event dispatch).
    dispatch: float = 25e-6
    #: Extra cost per module boundary a message or event crosses in the
    #: composed (modular) stack. This is the mechanical Cactus overhead.
    boundary_crossing: float = 50e-6
    #: Fixed cost of pushing one message to the transport (syscall, TCP,
    #: object serialization setup in the JVM).
    send_fixed: float = 150e-6
    #: Fixed cost of receiving one message from the transport.
    recv_fixed: float = 150e-6
    #: Marshalling cost per payload byte, paid ONCE per distinct payload
    #: (~50 MB/s, JVM-era object serialization). A broadcast of the same
    #: payload to n-1 destinations serializes once.
    serialize_per_byte: float = 12e-9
    #: Copy cost per byte per destination (kernel/TCP buffer copies).
    send_per_byte: float = 2e-9
    #: Unmarshalling cost per payload byte received (every receiver
    #: deserializes independently).
    recv_per_byte: float = 12e-9
    #: Cost of handing one adelivered message to the application.
    adeliver: float = 10e-6

    def send_cost(self, wire_size: int, *, first_copy: bool = True) -> float:
        """CPU seconds to send a message of *wire_size* bytes.

        Args:
            wire_size: Bytes put on the wire.
            first_copy: Whether this send serializes the payload (False
                for the 2nd..nth destination of a broadcast, which reuse
                the serialized buffer).
        """
        cost = self.send_fixed + self.send_per_byte * wire_size
        if first_copy:
            cost += self.serialize_per_byte * wire_size
        return cost

    def recv_cost(self, wire_size: int) -> float:
        """CPU seconds to receive a message of *wire_size* bytes."""
        return self.recv_fixed + self.recv_per_byte * wire_size


@dataclass(frozen=True, slots=True)
class NetworkConfig:
    """Link-level model of the paper's switched Gigabit Ethernet."""

    #: Effective per-NIC transmit bandwidth in bytes/second. Nominal
    #: GbE is 125 MB/s; 2007-era TCP stacks sustained ~0.8 of that.
    bandwidth: float = 100e6
    #: One-way propagation + switching delay in seconds (uniform LAN).
    propagation: float = 60e-6
    #: Optional per-pair one-way delays overriding :attr:`propagation`:
    #: ``propagation_matrix[src][dst]`` seconds. Lets experiments place
    #: processes across a WAN (see the geo-distribution example); must be
    #: an n×n structure when used with a group of size n.
    propagation_matrix: tuple[tuple[float, ...], ...] | None = None
    #: Bytes of Ethernet + IP + TCP framing per message.
    base_header: int = 66
    #: Bytes of framing added by each protocol module a message traverses
    #: (Cactus-style stacked headers).
    per_module_header: int = 16

    def delay(self, src: int, dst: int) -> float:
        """One-way propagation delay from *src* to *dst*."""
        if self.propagation_matrix is None:
            return self.propagation
        return self.propagation_matrix[src][dst]


@dataclass(frozen=True, slots=True)
class FlowControlConfig:
    """The paper's backlog-window flow control (§5.1).

    Each process may have at most :attr:`window` of its own abcast
    messages accepted but not yet locally adelivered; further abcast
    events block. With the default window the system orders M ≈ 4
    messages per consensus near saturation, the value the paper reports
    as optimal for both stacks.
    """

    window: int = 3
    #: Maximum number of messages ordered by one consensus execution
    #: (proposal batch cap). The paper's flow control "ensures that, on
    #: average, M = 4 messages are ordered per consensus execution" and
    #: reports M = 4 as optimal for both stacks; the cap is how we pin
    #: the same operating point. ``None`` removes the cap.
    max_batch: int | None = 4

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigurationError(f"flow-control window must be >= 1: {self.window}")
        if self.max_batch is not None and self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1: {self.max_batch}")


@dataclass(frozen=True, slots=True)
class FailureDetectorConfig:
    """Failure-detection parameters."""

    kind: FailureDetectorKind = FailureDetectorKind.ORACLE
    #: Oracle: delay between a crash and its detection by every process.
    detection_delay: float = 0.2
    #: Heartbeat: period between heartbeats.
    heartbeat_interval: float = 0.05
    #: Heartbeat: silence after which a process is suspected.
    timeout: float = 0.25


@dataclass(frozen=True, slots=True)
class MonolithicOptimizations:
    """Ablation switches for the three §4 optimizations.

    All enabled reproduces the paper's monolithic stack; disabling all
    three degrades it to (roughly) the modular message pattern while
    keeping the merged-module dispatch cost, which isolates the
    *algorithmic* gain from the *mechanical* gain in the ablation bench.
    """

    #: §4.1 — piggyback decision of consensus k on proposal of k+1.
    combine_decision_with_proposal: bool = True
    #: §4.2 — send abcast messages only to the coordinator, piggybacked
    #: on ack messages, instead of diffusing them to everyone.
    piggyback_on_ack: bool = True
    #: §4.3 — replace the majority reliable broadcast of decisions with a
    #: plain send-to-all acknowledged by consensus k+1 traffic.
    cheap_decision_broadcast: bool = True


@dataclass(frozen=True, slots=True)
class StackConfig:
    """Which stack to build and with which variants."""

    kind: StackKind = StackKind.MODULAR
    consensus: ConsensusVariant = ConsensusVariant.OPTIMIZED
    rbcast: ReliableBroadcastVariant = ReliableBroadcastVariant.MAJORITY
    #: §3.3 correctness guard: a process holding undelivered messages
    #: starts a consensus after this many seconds even if nothing new
    #: arrives (protects against senders that crash mid-diffusion).
    guard_timeout: float = 0.5
    optimizations: MonolithicOptimizations = field(
        default_factory=MonolithicOptimizations
    )


@dataclass(frozen=True, slots=True)
class WorkloadConfig:
    """The paper's symmetric workload (§5.1).

    All *n* processes abcast messages of fixed size ``message_size`` at a
    constant rate; the global rate is the offered load ``T_offered``.
    """

    #: Global abcast attempt rate in messages/second across all processes.
    offered_load: float = 1000.0
    #: Payload size ``s`` of every abcast message, in bytes.
    message_size: int = 1024
    arrival: ArrivalProcess = ArrivalProcess.UNIFORM

    def __post_init__(self) -> None:
        if self.offered_load <= 0:
            raise ConfigurationError(
                f"offered load must be positive: {self.offered_load}"
            )
        if self.message_size < 0:
            raise ConfigurationError(
                f"message size must be non-negative: {self.message_size}"
            )

    def per_process_rate(self, n: int) -> float:
        """Abcast rate of each individual process."""
        return self.offered_load / n


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """Scripted crash of one process at a point in simulated time."""

    time: float
    process: int


@dataclass(frozen=True, slots=True)
class FaultloadConfig:
    """Faults injected during a run. Empty = the paper's "good runs"."""

    crashes: tuple[CrashEvent, ...] = ()

    def crashed_processes(self) -> frozenset[int]:
        """Set of processes that crash at some point in the run."""
        return frozenset(crash.process for crash in self.crashes)


@dataclass(frozen=True, slots=True)
class RunConfig:
    """Complete description of one simulation run (modulo the seed)."""

    #: Group size. The paper evaluates n = 3 and n = 7.
    n: int = 3
    stack: StackConfig = field(default_factory=StackConfig)
    workload: WorkloadConfig = field(default_factory=WorkloadConfig)
    flow_control: FlowControlConfig = field(default_factory=FlowControlConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    failure_detector: FailureDetectorConfig = field(
        default_factory=FailureDetectorConfig
    )
    faultload: FaultloadConfig = field(default_factory=FaultloadConfig)
    #: Simulated seconds measured after warm-up.
    duration: float = 2.0
    #: Simulated seconds discarded at the start (stack fills its pipeline
    #: and the flow-control window reaches its stationary occupancy).
    warmup: float = 0.5

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 processes, got n={self.n}")
        if self.duration <= 0:
            raise ConfigurationError(f"duration must be positive: {self.duration}")
        if self.warmup < 0:
            raise ConfigurationError(f"warmup must be non-negative: {self.warmup}")
        for crash in self.faultload.crashes:
            if not 0 <= crash.process < self.n:
                raise ConfigurationError(
                    f"crash targets unknown process {crash.process} (n={self.n})"
                )
        majority_faulty = len(self.faultload.crashed_processes()) >= (self.n + 1) // 2
        if majority_faulty:
            raise ConfigurationError(
                "faultload crashes a majority of processes; consensus (and the "
                "majority reliable broadcast) require a correct majority"
            )

    @property
    def total_time(self) -> float:
        """Total simulated seconds including warm-up."""
        return self.warmup + self.duration

    def with_changes(self, **changes: Any) -> "RunConfig":
        """Return a copy with the given top-level fields replaced."""
        return replace(self, **changes)


def modular_stack(
    consensus: ConsensusVariant = ConsensusVariant.OPTIMIZED,
    rbcast: ReliableBroadcastVariant = ReliableBroadcastVariant.MAJORITY,
) -> StackConfig:
    """Convenience constructor for the paper's modular stack."""
    return StackConfig(kind=StackKind.MODULAR, consensus=consensus, rbcast=rbcast)


def monolithic_stack(
    optimizations: MonolithicOptimizations | None = None,
) -> StackConfig:
    """Convenience constructor for the paper's monolithic stack."""
    return StackConfig(
        kind=StackKind.MONOLITHIC,
        optimizations=optimizations or MonolithicOptimizations(),
    )
