"""Core value types shared across the library.

These are deliberately tiny: process identifiers, message identifiers and
the application-level message record used by the atomic broadcast stacks.
Keeping them in one leaf module avoids import cycles between the network,
protocol and metrics packages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple, NewType

#: Identifier of a process in the group ``{0, 1, ..., n-1}``.
ProcessId = NewType("ProcessId", int)

#: Simulated time, in seconds.
SimTime = float


class MessageId(NamedTuple):
    """Globally unique identifier of an application (abcast) message.

    The identifier orders messages deterministically: first by sender,
    then by the sender-local sequence number. Atomic broadcast uses this
    order to adeliver the messages of a decided batch deterministically.

    A NamedTuple rather than a frozen dataclass: ids are hashed, compared
    and sorted on the simulator's hottest paths (delivery bookkeeping is
    all dict/set operations keyed by id), and tuple hash/eq/lt run in C.
    """

    sender: int
    seq: int

    def __str__(self) -> str:
        return f"m({self.sender}:{self.seq})"


@dataclass(frozen=True, slots=True)
class AppMessage:
    """An application payload handed to ``abcast``.

    Attributes:
        msg_id: Unique identifier assigned by the sending stack.
        size: Payload size in bytes (the paper's message size ``s``).
        abcast_time: Simulated time at which the ``abcast(m)`` event
            completed at the sender (the paper's ``t0`` for early latency).
        payload: Optional opaque application data. Experiments leave this
            ``None`` and account for ``size`` only; examples use it to
            carry real commands (e.g. key-value store operations).
    """

    msg_id: MessageId
    size: int
    abcast_time: SimTime
    payload: Any = None

    def __str__(self) -> str:
        return f"{self.msg_id}[{self.size}B]"


@dataclass(frozen=True, slots=True)
class Batch:
    """An ordered batch of application messages decided by one consensus.

    Consensus instances agree on batches; atomic broadcast adelivers the
    batch contents in the deterministic :class:`MessageId` order.
    """

    instance: int
    messages: tuple[AppMessage, ...] = field(default=())

    @property
    def size_bytes(self) -> int:
        """Total payload bytes carried by the batch."""
        return sum(m.size for m in self.messages)

    def in_delivery_order(self) -> tuple[AppMessage, ...]:
        """Messages sorted in the canonical adelivery order."""
        return tuple(sorted(self.messages, key=lambda m: m.msg_id))

    def __len__(self) -> int:
        return len(self.messages)

    def __str__(self) -> str:
        inner = ", ".join(str(m.msg_id) for m in self.messages)
        return f"batch(k={self.instance}, [{inner}])"
