"""Small statistics helpers: means, confidence intervals, stationarity."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats

from repro.errors import MetricsError


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        if self.mean != self.mean:  # NaN: no samples behind this mean
            return "n/a"
        if self.count == 1:
            # One observation carries no variance information; showing
            # "± 0.000" would dress the point up as a measured zero-width
            # interval, so flag the ensemble size instead.
            return f"{self.mean:.3f} (n=1)"
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise MetricsError("mean() of empty sequence")
    return sum(values) / len(values)


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean (the paper reports 95%).

    A single observation yields a zero-width interval (no variance
    information), which renders without a ``±`` so it cannot be misread
    as a measured zero-variance result. The half-width is always a
    finite number — even when the mean itself is NaN (a placeholder for
    "no samples"), the width degrades to 0.0 rather than NaN.
    """
    if not values:
        raise MetricsError("confidence interval of empty sequence")
    count = len(values)
    centre = mean(values)
    if count == 1 or centre != centre:
        return ConfidenceInterval(centre, 0.0, confidence, count)
    variance = sum((v - centre) ** 2 for v in values) / (count - 1)
    std_error = math.sqrt(variance / count)
    t_value = float(scipy_stats.t.ppf((1 + confidence) / 2, df=count - 1))
    return ConfidenceInterval(centre, t_value * std_error, confidence, count)


def relative_difference(a: float, b: float) -> float:
    """|a - b| scaled by the larger magnitude; 0 when both are 0."""
    scale = max(abs(a), abs(b))
    if scale == 0:
        return 0.0
    return abs(a - b) / scale


def is_stationary(
    first_half: Sequence[float], second_half: Sequence[float], tolerance: float = 0.25
) -> bool:
    """Crude stationarity check: half-window means within *tolerance*.

    The paper verifies "that the latencies of all processes stabilize
    over time"; we approximate that by requiring the mean early latency
    of the two halves of the measurement window to agree within 25 %.
    """
    if not first_half or not second_half:
        return True  # too little data to call it non-stationary
    return relative_difference(mean(first_half), mean(second_half)) <= tolerance
