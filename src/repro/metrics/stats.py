"""Small statistics helpers: means, confidence intervals, stationarity,
and the mergeable log-bucketed latency histogram behind p999 reporting."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from scipy import stats as scipy_stats

from repro.errors import MetricsError


@dataclass(frozen=True, slots=True)
class ConfidenceInterval:
    """A mean with a symmetric confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    count: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        if self.mean != self.mean:  # NaN: no samples behind this mean
            return "n/a"
        if self.count == 1:
            # One observation carries no variance information; showing
            # "± 0.000" would dress the point up as a measured zero-width
            # interval, so flag the ensemble size instead.
            return f"{self.mean:.3f} (n=1)"
        return f"{self.mean:.3f} ± {self.half_width:.3f}"


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input."""
    if not values:
        raise MetricsError("mean() of empty sequence")
    return sum(values) / len(values)


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t confidence interval of the mean (the paper reports 95%).

    A single observation yields a zero-width interval (no variance
    information), which renders without a ``±`` so it cannot be misread
    as a measured zero-variance result. The half-width is always a
    finite number — even when the mean itself is NaN (a placeholder for
    "no samples"), the width degrades to 0.0 rather than NaN.
    """
    if not values:
        raise MetricsError("confidence interval of empty sequence")
    count = len(values)
    centre = mean(values)
    if count == 1 or centre != centre:
        return ConfidenceInterval(centre, 0.0, confidence, count)
    variance = sum((v - centre) ** 2 for v in values) / (count - 1)
    std_error = math.sqrt(variance / count)
    t_value = float(scipy_stats.t.ppf((1 + confidence) / 2, df=count - 1))
    return ConfidenceInterval(centre, t_value * std_error, confidence, count)


def relative_difference(a: float, b: float) -> float:
    """|a - b| scaled by the larger magnitude; 0 when both are 0."""
    scale = max(abs(a), abs(b))
    if scale == 0:
        return 0.0
    return abs(a - b) / scale


#: Smallest latency (seconds) the histogram resolves; everything below
#: lands in bucket 0. One microsecond is far under any modelled RTT.
HISTOGRAM_MIN = 1e-6

#: Log-spaced buckets per decade. 40 buckets/decade gives a relative
#: bucket width of 10^(1/40) - 1 ≈ 5.9 %, so a p999 read from the
#: histogram is within ~6 % of the exact sample percentile — tight
#: enough for tail reporting while a full run's histogram stays under
#: a few hundred (bucket, count) pairs.
BUCKETS_PER_DECADE = 40


class LatencyHistogram:
    """Mergeable log-bucketed histogram of latency samples.

    Buckets are geometric: bucket ``i`` covers
    ``[HISTOGRAM_MIN * g**i, HISTOGRAM_MIN * g**(i+1))`` with
    ``g = 10**(1/BUCKETS_PER_DECADE)``. The representation is a sparse
    ``bucket index -> count`` map, so merging histograms from different
    processes (or seeds) is plain counter addition — associative and
    commutative, with percentiles of the merge equal to percentiles of
    the concatenated samples up to one bucket width (the property wall
    in ``tests/unit/metrics`` pins both claims).
    """

    __slots__ = ("_counts",)

    def __init__(self, counts: dict[int, int] | None = None) -> None:
        self._counts: dict[int, int] = dict(counts) if counts else {}

    @staticmethod
    def bucket_index(value: float) -> int:
        """The bucket a latency of *value* seconds falls into."""
        if value < HISTOGRAM_MIN:
            return 0
        return int(math.floor(math.log10(value / HISTOGRAM_MIN) * BUCKETS_PER_DECADE))

    @staticmethod
    def bucket_bounds(index: int) -> tuple[float, float]:
        """The ``[low, high)`` latency range of bucket *index*, seconds."""
        low = HISTOGRAM_MIN * 10 ** (index / BUCKETS_PER_DECADE)
        high = HISTOGRAM_MIN * 10 ** ((index + 1) / BUCKETS_PER_DECADE)
        return low, high

    def record(self, value: float) -> None:
        """Add one latency sample (seconds)."""
        if value != value or value < 0:
            raise MetricsError(f"latency sample must be a finite >= 0: {value}")
        index = self.bucket_index(value)
        self._counts[index] = self._counts.get(index, 0) + 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """A new histogram holding both operands' samples."""
        merged = dict(self._counts)
        for index, count in other._counts.items():
            merged[index] = merged.get(index, 0) + count
        return LatencyHistogram(merged)

    @property
    def total(self) -> int:
        """Number of recorded samples."""
        return sum(self._counts.values())

    def percentile(self, fraction: float) -> float | None:
        """Nearest-rank percentile; the bucket's upper bound is returned.

        The true sample at that rank lies inside the same bucket, so the
        reported value overestimates it by at most one bucket width
        (≈ 5.9 % relative). ``None`` when the histogram is empty.
        """
        if not 0.0 <= fraction <= 1.0:
            raise MetricsError(f"percentile fraction out of [0, 1]: {fraction}")
        total = self.total
        if total == 0:
            return None
        rank = min(total - 1, max(0, round(fraction * (total - 1))))
        seen = 0
        for index in sorted(self._counts):
            seen += self._counts[index]
            if seen > rank:
                return self.bucket_bounds(index)[1]
        raise AssertionError("unreachable: rank < total")  # pragma: no cover

    def counts(self) -> tuple[tuple[int, int], ...]:
        """Canonical immutable form: sorted ``(bucket, count)`` pairs."""
        return tuple(sorted(self._counts.items()))

    @classmethod
    def from_counts(
        cls, counts: Iterable[Sequence[int]]
    ) -> "LatencyHistogram":
        """Rebuild from :meth:`counts` output (or its JSON form)."""
        histogram = cls()
        for index, count in counts:
            if count < 0:
                raise MetricsError(f"negative histogram count: {count}")
            if count:
                index = int(index)
                histogram._counts[index] = histogram._counts.get(index, 0) + int(count)
        return histogram

    @classmethod
    def of(cls, samples: Iterable[float]) -> "LatencyHistogram":
        """Histogram of an in-memory sample sequence."""
        histogram = cls()
        for value in samples:
            histogram.record(value)
        return histogram

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.counts() == other.counts()

    def __repr__(self) -> str:
        return f"LatencyHistogram(total={self.total}, buckets={len(self._counts)})"


def is_stationary(
    first_half: Sequence[float], second_half: Sequence[float], tolerance: float = 0.25
) -> bool:
    """Crude stationarity check: half-window means within *tolerance*.

    The paper verifies "that the latencies of all processes stabilize
    over time"; we approximate that by requiring the mean early latency
    of the two halves of the measurement window to agree within 25 %.
    """
    if not first_half or not second_half:
        return True  # too little data to call it non-stationary
    return relative_difference(mean(first_half), mean(second_half)) <= tolerance
