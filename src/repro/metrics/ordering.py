"""Safety checker for the atomic broadcast properties.

Collects every process's adelivery sequence and verifies the four
properties of atomic broadcast (Hadzilacos & Toueg):

* **Integrity** — each process adelivers each message at most once, and
  only messages that were abcast.
* **Validity** — every message abcast by a correct process is adelivered
  by every correct process (checked when the run is long enough for all
  deliveries to complete).
* **Uniform agreement** — if *any* process (even one that later crashes)
  adelivers m, every correct process adelivers m.
* **Total order** — any two processes adeliver common messages in the
  same relative order. Because both stacks adeliver batches in instance
  order with a deterministic intra-batch order, every process's sequence
  must be a prefix of a single global sequence, which is the stronger
  form we check.

Integration tests wrap every run (including faulty ones) with this
checker; a violation raises :class:`~repro.errors.OrderingViolation`.

This is the *post-hoc* checker: it sees only final sequences. The
adversarial sweeps use :class:`~repro.nemesis.invariants.InvariantMonitor`
instead, which checks the same properties online (flagging the exact
delivery that diverges, with a trace slice) and adds a liveness
watchdog. Keep the two property definitions in sync.
"""

from __future__ import annotations

from repro.errors import OrderingViolation
from repro.types import AppMessage, MessageId, SimTime


class OrderingChecker:
    """Accumulates adelivery sequences and checks the abcast properties."""

    def __init__(self, n: int) -> None:
        self.n = n
        self._sequences: list[list[MessageId]] = [[] for __ in range(n)]
        self._abcast: set[MessageId] = set()

    # -- event hooks -----------------------------------------------------

    def on_abcast(self, message: AppMessage) -> None:
        """Record that *message* entered some process's stack."""
        self._abcast.add(message.msg_id)

    def on_adeliver(self, pid: int, message: AppMessage, time: SimTime) -> None:
        """Record one adelivery (signature matches the runtime listener)."""
        self._sequences[pid].append(message.msg_id)

    def sequence(self, pid: int) -> tuple[MessageId, ...]:
        """The adelivery sequence of process *pid*."""
        return tuple(self._sequences[pid])

    # -- checks ------------------------------------------------------------

    def verify(
        self,
        correct: set[int] | None = None,
        *,
        expect_all_delivered: bool = False,
    ) -> None:
        """Check all properties; raise :class:`OrderingViolation` on failure.

        Args:
            correct: Processes that never crashed (default: all).
            expect_all_delivered: Additionally require validity and
                uniform agreement to have fully completed — only
                meaningful when the run had enough quiet time at the end
                for all deliveries to finish.
        """
        if correct is None:
            correct = set(range(self.n))
        self._check_integrity()
        self._check_total_order()
        if expect_all_delivered:
            self._check_uniform_agreement(correct)
            self._check_validity(correct)

    def _check_integrity(self) -> None:
        for pid, sequence in enumerate(self._sequences):
            if len(sequence) != len(set(sequence)):
                duplicates = [m for m in set(sequence) if sequence.count(m) > 1]
                raise OrderingViolation(
                    f"integrity: p{pid} adelivered duplicates: {duplicates[:5]}"
                )
            unknown = [m for m in sequence if m not in self._abcast]
            if unknown:
                raise OrderingViolation(
                    f"integrity: p{pid} adelivered never-abcast messages: "
                    f"{unknown[:5]}"
                )

    def _check_total_order(self) -> None:
        longest = max(self._sequences, key=len)
        for pid, sequence in enumerate(self._sequences):
            prefix = longest[: len(sequence)]
            if sequence != prefix:
                mismatch = next(
                    i for i, (a, b) in enumerate(zip(sequence, prefix)) if a != b
                )
                raise OrderingViolation(
                    f"total order: p{pid} diverges at position {mismatch}: "
                    f"{sequence[mismatch]} vs {prefix[mismatch]}"
                )

    def _check_uniform_agreement(self, correct: set[int]) -> None:
        delivered_anywhere: set[MessageId] = set()
        for sequence in self._sequences:
            delivered_anywhere.update(sequence)
        for pid in sorted(correct):
            missing = delivered_anywhere - set(self._sequences[pid])
            if missing:
                raise OrderingViolation(
                    f"uniform agreement: p{pid} missed delivered messages: "
                    f"{sorted(missing)[:5]}"
                )

    def _check_validity(self, correct: set[int]) -> None:
        from_correct = {m for m in self._abcast if m.sender in correct}
        for pid in sorted(correct):
            missing = from_correct - set(self._sequences[pid])
            if missing:
                raise OrderingViolation(
                    f"validity: p{pid} never adelivered messages abcast by "
                    f"correct processes: {sorted(missing)[:5]}"
                )
