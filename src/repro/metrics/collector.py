"""Run-time metric collection: early latency and throughput (§5.1).

Definitions, from the paper:

* **early latency** of message m — ``L = (min_i t_i) - t0`` where t0 is
  when ``abcast(m)`` completed at the sender and t_i is when process p_i
  adelivered m;
* **throughput** — ``T = (1/n) Σ_i r_i`` where r_i is the adeliver rate
  at process p_i, in messages per second.

Both are computed over a measurement window that starts after warm-up;
throughput counts deliveries inside the window, latency is attributed to
messages *abcast* inside the window (their deliveries may land in the
drain period after the window closes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.metrics.stats import LatencyHistogram, is_stationary
from repro.obs.attribution import LayerAttribution
from repro.types import AppMessage, MessageId, SimTime


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Aggregated metrics of one simulation run."""

    #: Mean early latency (seconds) over measured messages; None if none.
    latency_mean: float | None
    #: Early latency percentiles (seconds): median, 95th and 99th.
    latency_p50: float | None
    latency_p95: float | None
    latency_p99: float | None
    #: Number of messages contributing to the latency mean.
    latency_count: int
    #: Throughput T in messages/second (mean per-process adeliver rate).
    throughput: float
    #: Abcast attempts per second actually generated (sanity check
    #: against the configured offered load).
    offered_rate: float
    #: Attempts that were blocked by flow control at least momentarily.
    blocked_attempts: int
    #: Whether the latency series passed the stationarity check.
    stationary: bool
    #: Arrival ticks the live runtime's backpressure gate refused (the
    #: transport's unacked-frame credit or the ordering core's backlog
    #: cap was exhausted). Always 0 in simulation, where the paper's
    #: flow-control window is the only throttle.
    backpressure_stalls: int = 0
    #: Tail latency (seconds) read from the log-bucketed histogram —
    #: the "heavy traffic from millions of users" metric; exact sample
    #: percentiles above stop being trustworthy long before p999, so
    #: this one always comes from the merged histogram.
    latency_p999: float | None = None
    #: The full latency distribution as sorted ``(bucket, count)``
    #: pairs (see :class:`~repro.metrics.stats.LatencyHistogram`);
    #: mergeable across processes, seeds and runs.
    latency_histogram: tuple[tuple[int, int], ...] = ()
    #: Distinct logical clients that generated at least one arrival
    #: (client-population workloads; 0 for the paper's symmetric load).
    active_clients: int = 0
    #: Per-layer CPU seconds over the measurement window, summed across
    #: processes, as sorted ``(layer, seconds)`` pairs (see
    #: :mod:`repro.obs.attribution`). Empty when attribution was not
    #: collected (e.g. the live runtime, which has no modelled CPU).
    layer_busy: tuple[tuple[str, float], ...] = ()
    #: CPU seconds charged to inter-module boundary crossings over the
    #: window — exactly 0.0 for a monolithic stack, by construction.
    boundary_time: float = 0.0
    #: Number of boundary crossings charged over the window.
    boundary_crossings: int = 0
    #: The cost of modularity as a fraction: boundary time over total
    #: attributed CPU time. ``None`` when attribution was not collected
    #: or the window was idle.
    modularity_overhead: float | None = None

    def histogram(self) -> LatencyHistogram:
        """The latency distribution as a live histogram object."""
        return LatencyHistogram.from_counts(self.latency_histogram)


class MetricsCollector:
    """Collects abcast/adeliver events and reduces them to RunMetrics."""

    def __init__(self, n: int, *, window_start: SimTime, window_end: SimTime) -> None:
        self.n = n
        self.window_start = window_start
        self.window_end = window_end
        self._abcast_times: dict[MessageId, SimTime] = {}
        self._first_delivery: dict[MessageId, SimTime] = {}
        self._latency_samples: list[tuple[SimTime, float]] = []
        self._deliveries_in_window: list[int] = [0] * n
        self._offered_attempts = 0

    # -- event hooks -----------------------------------------------------

    def on_offered(self) -> None:
        """One workload arrival occurred (before flow control)."""
        self._offered_attempts += 1

    def on_accept(self, message: AppMessage) -> None:
        """A message entered the stack; starts its latency clock."""
        self._abcast_times[message.msg_id] = message.abcast_time

    def on_adeliver(self, pid: int, message: AppMessage, time: SimTime) -> None:
        """A process adelivered a message."""
        if self.window_start <= time < self.window_end:
            self._deliveries_in_window[pid] += 1
        if message.msg_id not in self._first_delivery:
            self._first_delivery[message.msg_id] = time
            t0 = self._abcast_times.get(message.msg_id)
            if t0 is not None and self.window_start <= t0 < self.window_end:
                self._latency_samples.append((t0, time - t0))

    # -- reduction ---------------------------------------------------------

    @property
    def latency_samples(self) -> list[float]:
        """Early latencies of measured messages, in abcast order."""
        return [latency for __, latency in sorted(self._latency_samples)]

    @staticmethod
    def _percentile(ordered: list[float], fraction: float) -> float:
        """Nearest-rank percentile of an already-sorted sample."""
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def finalize(
        self,
        blocked_attempts: int = 0,
        *,
        backpressure_stalls: int = 0,
        active_clients: int = 0,
        attribution: LayerAttribution | None = None,
    ) -> RunMetrics:
        """Reduce collected events to a :class:`RunMetrics`."""
        duration = self.window_end - self.window_start
        samples = self.latency_samples
        ordered = sorted(samples)
        half = len(samples) // 2
        rates = [count / duration for count in self._deliveries_in_window]
        histogram = LatencyHistogram.of(samples)
        return RunMetrics(
            latency_mean=(sum(samples) / len(samples)) if samples else None,
            latency_p50=self._percentile(ordered, 0.50) if ordered else None,
            latency_p95=self._percentile(ordered, 0.95) if ordered else None,
            latency_p99=self._percentile(ordered, 0.99) if ordered else None,
            latency_count=len(samples),
            throughput=sum(rates) / self.n,
            offered_rate=self._offered_attempts / self.window_end
            if self.window_end > 0
            else 0.0,
            blocked_attempts=blocked_attempts,
            stationary=is_stationary(samples[:half], samples[half:]),
            backpressure_stalls=backpressure_stalls,
            latency_p999=histogram.percentile(0.999),
            latency_histogram=histogram.counts(),
            active_clients=active_clients,
            layer_busy=attribution.layer_busy if attribution else (),
            boundary_time=attribution.boundary_time if attribution else 0.0,
            boundary_crossings=attribution.boundary_crossings
            if attribution
            else 0,
            modularity_overhead=attribution.overhead_fraction
            if attribution
            else None,
        )
