"""Performance metrics and safety checking."""

from repro.metrics.collector import MetricsCollector, RunMetrics
from repro.metrics.ordering import OrderingChecker
from repro.metrics.stats import (
    ConfidenceInterval,
    is_stationary,
    mean,
    mean_confidence_interval,
    relative_difference,
)

__all__ = [
    "ConfidenceInterval",
    "MetricsCollector",
    "OrderingChecker",
    "RunMetrics",
    "is_stationary",
    "mean",
    "mean_confidence_interval",
    "relative_difference",
]
