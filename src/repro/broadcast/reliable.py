"""Reliable broadcast (the paper's RBcast module, §3.1).

Two variants of the classical quasi-reliable-channel algorithm of
Chandra & Toueg:

* **classical** — on rbcast, send to everyone; on first reception,
  re-send to everyone. Order of n² messages per broadcast.
* **majority** — the paper's optimization: only a fixed *relay set* of
  ⌊(n-1)/2⌋ processes re-sends, giving exactly
  ``(n-1) · (⌊(n-1)/2⌋ + 1)`` messages per broadcast.

The paper omits the details of the majority optimization; our concrete
scheme is: the relay set of a broadcast from ``origin`` is the
⌊(n-1)/2⌋ lowest-ranked processes other than ``origin``, and the origin
transmits to relay-set members *first*. Correctness under a correct
majority: the origin plus its relay set form a majority of the group, so
at least one of them is correct; sends being ordered relay-set-first,
any delivery at a non-relay implies all relay-set transmissions already
left the origin's NIC; a correct relay re-sends to everyone on first
reception. Hence if any correct process rdelivers, all correct processes
eventually rdeliver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import ReliableBroadcastVariant
from repro.stack.actions import Action, EmitUp, Send
from repro.stack.events import (
    PER_MESSAGE_OVERHEAD,
    Event,
    RbcastRequest,
    RdeliverIndication,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.net.message import NetMessage
from repro.net.wire import wire_payload

#: Modelled bytes of rbcast framing (origin, sequence number).
RB_CONTROL_OVERHEAD = PER_MESSAGE_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class RbMessage:
    """Wire payload of one reliable-broadcast transmission."""

    origin: int
    seq: int
    inner: Any
    inner_size: int

    @property
    def key(self) -> tuple[int, int]:
        """Deduplication key of the broadcast."""
        return (self.origin, self.seq)

    @property
    def wire_payload_size(self) -> int:
        """Modelled serialized size of this rbcast payload."""
        return self.inner_size + RB_CONTROL_OVERHEAD


def relay_set(origin: int, n: int) -> tuple[int, ...]:
    """The ⌊(n-1)/2⌋ lowest-ranked processes other than *origin*."""
    count = (n - 1) // 2
    return tuple(p for p in range(n) if p != origin)[:count]


def classical_message_count(n: int) -> int:
    """Network messages per classical rbcast to *n* processes."""
    return n * (n - 1)


def majority_message_count(n: int) -> int:
    """Network messages per majority-optimized rbcast (paper §3.1/§4.3)."""
    return (n - 1) * ((n - 1) // 2 + 1)


class ReliableBroadcast(Microprotocol):
    """RBcast microprotocol; sits at the bottom of the modular stack."""

    name = "rbcast"

    def __init__(
        self,
        ctx: ModuleContext,
        variant: ReliableBroadcastVariant = ReliableBroadcastVariant.MAJORITY,
    ) -> None:
        super().__init__(ctx)
        self.variant = variant
        self._next_seq = 0
        self._delivered: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if not isinstance(event, RbcastRequest):
            return super().handle_event(event)
        rb = RbMessage(
            origin=self.ctx.pid,
            seq=self._next_seq,
            inner=event.payload,
            inner_size=event.payload_size,
        )
        self._next_seq += 1
        self._delivered.add(rb.key)
        actions = self._sends(rb, exclude=(self.ctx.pid,))
        # Local delivery: the origin rdelivers its own broadcast at once.
        actions.append(
            EmitUp(RdeliverIndication(rb.inner, rb.inner_size, origin=rb.origin))
        )
        return actions

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind != "RB":
            return super().handle_message(message)
        rb: RbMessage = message.payload
        if rb.key in self._delivered:
            return []
        self._delivered.add(rb.key)
        actions: list[Action] = [
            EmitUp(RdeliverIndication(rb.inner, rb.inner_size, origin=rb.origin))
        ]
        if self._should_relay(rb.origin):
            # Relay to everyone but ourselves — n-1 messages per relayer,
            # which is exactly the paper's (n-1)·(⌊(n-1)/2⌋+1) total.
            actions.extend(self._sends(rb, exclude=(self.ctx.pid,)))
        return actions

    # ------------------------------------------------------------------

    def _should_relay(self, origin: int) -> bool:
        if self.variant is ReliableBroadcastVariant.CLASSICAL:
            return True
        return self.ctx.pid in relay_set(origin, self.ctx.n)

    def _sends(self, rb: RbMessage, exclude: tuple[int, ...]) -> list[Action]:
        """Sends in relay-set-first order (see module docstring)."""
        relays = relay_set(rb.origin, self.ctx.n)
        rest = [p for p in range(self.ctx.n) if p not in relays and p != rb.origin]
        ordered = [*relays, rb.origin, *rest]
        return [
            Send(dst, "RB", rb, rb.wire_payload_size)
            for dst in ordered
            if dst not in exclude
        ]
