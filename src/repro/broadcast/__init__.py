"""Reliable broadcast protocols (the paper's RBcast module, §3.1)."""

from repro.broadcast.reliable import (
    RB_CONTROL_OVERHEAD,
    RbMessage,
    ReliableBroadcast,
    classical_message_count,
    majority_message_count,
    relay_set,
)

__all__ = [
    "RB_CONTROL_OVERHEAD",
    "RbMessage",
    "ReliableBroadcast",
    "classical_message_count",
    "majority_message_count",
    "relay_set",
]
