"""The causal span model shared by the simulated and live runtimes.

Every broadcast message's lifecycle is observable as a sequence of
spans: ``submit → abcast.* → consensus.* → net.* → adeliver``. Both
runtimes record the *same* schema into a
:class:`~repro.sim.tracing.TraceRecorder` — the simulator at simulated
time, the live worker at wall-clock time since the deployment epoch —
so one set of tools (this module, the Perfetto exporter, the profile
tables) works on either.

Record contract (enforced by :func:`validate_spans` and the
sim-vs-live conformance tests): a span record's category is
``span.<name>``, its ``time`` is the span's start, and its ``detail``
is a tuple ``(layer, duration, *extras)`` where the extras per name
are:

========== ==========================================
``inject``   ``()``
``recv``     ``(kind,)``
``send``     ``(kind, dst)``
``cross``    ``(from_layer, to_layer)``
``adeliver`` ``(msg_id,)``
========== ==========================================

Two instantaneous marker categories complete the causal picture:
``abcast.submit`` (detail: the :class:`~repro.types.MessageId` entering
the stack) and ``abcast.adeliver`` (detail: the id leaving it). The
span-balance invariant — every measured submit closes with exactly one
adeliver per correct process — is checked over these markers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.sim.tracing import TraceRecord, TraceRecorder
from repro.types import MessageId

#: Category prefix of span records in a trace.
SPAN_PREFIX = "span."

#: Extra detail fields per span name — the shared sim/live schema.
SPAN_ARG_KEYS: dict[str, tuple[str, ...]] = {
    "inject": (),
    "recv": ("kind",),
    "send": ("kind", "dst"),
    "cross": ("from", "to"),
    "adeliver": ("msg",),
}


@dataclass(frozen=True, slots=True)
class Span:
    """One timed operation in a message's path through a stack.

    Attributes:
        name: Operation: ``inject``, ``recv``, ``send``, ``cross`` or
            ``adeliver``.
        layer: The layer the time was spent in — a module name
            (``abcast``, ``consensus``, ``mono``, ...), ``boundary``
            for inter-module crossings, ``app`` for the final
            adeliver upcall or ``fd`` for failure-detector work.
        process: Process the span executed on.
        start: Span start (simulated seconds, or wall-clock seconds
            since the deployment epoch for live spans).
        duration: Span length in the same time base.
        args: Extra key/value detail, per :data:`SPAN_ARG_KEYS`.
    """

    name: str
    layer: str
    process: int
    start: float
    duration: float
    args: tuple[tuple[str, Any], ...] = ()


def _span_from_record(record: TraceRecord) -> Span:
    name = record.category[len(SPAN_PREFIX) :]
    detail = record.detail
    layer, duration = detail[0], detail[1]
    keys = SPAN_ARG_KEYS.get(name, ())
    args = tuple(zip(keys, detail[2:]))
    return Span(
        name=name,
        layer=layer,
        process=record.process,
        start=record.time,
        duration=duration,
        args=args,
    )


def spans_from_trace(trace: TraceRecorder) -> list[Span]:
    """Extract every span from *trace*, oldest first."""
    return [_span_from_record(r) for r in trace.select(SPAN_PREFIX)]


def spans_from_serialized(rows: Iterable[Sequence]) -> list[Span]:
    """Rebuild spans a live worker shipped as JSON rows.

    Each row is ``[time, category, process, detail]`` with tuples
    flattened to lists (see the worker's ``_serialize_trace``).
    """
    spans = []
    for time, category, process, detail in rows:
        if not category.startswith(SPAN_PREFIX):
            continue
        spans.append(
            _span_from_record(
                TraceRecord(float(time), category, int(process), tuple(detail))
            )
        )
    return spans


def validate_spans(spans: Iterable[Span]) -> list[str]:
    """Schema errors in *spans* (empty list = all conform)."""
    errors = []
    for index, span in enumerate(spans):
        where = f"span #{index} ({span.name!r} on p{span.process})"
        if span.name not in SPAN_ARG_KEYS:
            errors.append(f"{where}: unknown span name")
            continue
        if not span.layer:
            errors.append(f"{where}: empty layer")
        if span.duration < 0:
            errors.append(f"{where}: negative duration {span.duration}")
        expected = SPAN_ARG_KEYS[span.name]
        got = tuple(key for key, __ in span.args)
        if got != expected:
            errors.append(f"{where}: args {got} != schema {expected}")
    return errors


# -- causal markers ----------------------------------------------------------


def submits(trace: TraceRecorder) -> list[tuple[float, int, MessageId]]:
    """Every ``abcast.submit`` marker as (time, process, msg_id)."""
    return [
        (r.time, r.process, r.detail) for r in trace.select("abcast.submit")
    ]


def adelivers(trace: TraceRecorder) -> list[tuple[float, int, MessageId]]:
    """Every ``abcast.adeliver`` marker as (time, process, msg_id)."""
    return [
        (r.time, r.process, r.detail) for r in trace.select("abcast.adeliver")
    ]


def span_balance(
    trace: TraceRecorder,
    *,
    correct: Iterable[int] | None = None,
    before: float | None = None,
) -> list[str]:
    """Violations of the span-balance invariant (empty = balanced).

    Checks, over the trace's ``abcast.submit``/``abcast.adeliver``
    markers:

    * every adelivered message was submitted exactly once,
    * no process adelivers the same message twice,
    * every message submitted strictly before *before* (when given) is
      adelivered by every process in *correct* (when given).

    A bounded trace that dropped records cannot prove balance; one
    finding says so instead of reporting spurious misses.
    """
    if trace.dropped_records:
        return [
            f"trace dropped {trace.dropped_records} records (cap="
            f"{trace.cap}); span balance is not provable — raise --trace-cap"
        ]
    errors = []
    submit_counts: dict[MessageId, int] = {}
    submit_times: dict[MessageId, float] = {}
    for time, __, msg_id in submits(trace):
        submit_counts[msg_id] = submit_counts.get(msg_id, 0) + 1
        submit_times.setdefault(msg_id, time)
    delivered_by: dict[MessageId, set[int]] = {}
    for __, pid, msg_id in adelivers(trace):
        if msg_id not in submit_counts:
            errors.append(f"p{pid} adelivered {msg_id} without a submit")
            continue
        seen = delivered_by.setdefault(msg_id, set())
        if pid in seen:
            errors.append(f"p{pid} adelivered {msg_id} twice")
        seen.add(pid)
    for msg_id, count in submit_counts.items():
        if count > 1:
            errors.append(f"{msg_id} submitted {count} times")
    if correct is not None and before is not None:
        expected = set(correct)
        for msg_id, t0 in sorted(submit_times.items()):
            if t0 >= before:
                continue
            missing = expected - delivered_by.get(msg_id, set())
            if missing:
                errors.append(
                    f"{msg_id} (submitted t={t0:.4f}) never adelivered at "
                    f"{sorted(missing)}"
                )
    return errors


# -- per-message path --------------------------------------------------------


def _mentions(payload: Any, msg_id: MessageId) -> bool:
    """Best-effort: does *payload* carry *msg_id*? Protocol payloads are
    opaque to the tracer, so this walks the common shapes one level deep
    (a message, a batch, a tuple of either)."""
    if payload is None:
        return False
    if payload is msg_id or payload == msg_id:
        return True
    inner = getattr(payload, "msg_id", None)
    if inner is not None:
        return inner == msg_id
    messages = getattr(payload, "messages", None)
    if messages is not None:
        return any(getattr(m, "msg_id", None) == msg_id for m in messages)
    if isinstance(payload, (tuple, list)):
        return any(_mentions(item, msg_id) for item in payload)
    return False


def message_path(trace: TraceRecorder, msg_id: MessageId) -> list[TraceRecord]:
    """Every trace record causally tied to *msg_id*, oldest first.

    Includes its submit/adeliver markers and the ``net.send`` /
    ``net.recv`` records whose payload mentions the id — the observable
    critical path of one message through the stack and the network.
    """
    path = []
    for record in trace.records():
        category = record.category
        if category in ("abcast.submit", "abcast.adeliver"):
            if record.detail == msg_id:
                path.append(record)
        elif category.startswith("net."):
            message = record.detail
            if message is not None and _mentions(
                getattr(message, "payload", None), msg_id
            ):
                path.append(record)
        elif category == "span.adeliver":
            if record.detail[2] == msg_id:
                path.append(record)
    # Ring order is insertion order per process but interleaves freely
    # across processes; the timeline reads in time order.
    path.sort(key=lambda r: (r.time, r.process))
    return path
