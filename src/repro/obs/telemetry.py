"""Live-runtime telemetry: periodic counter/gauge snapshots.

Each live worker ships a small ``telemetry`` document on the control
channel at every sample flush (~4/s): gauges (ordering-core queue
depth, peak unacked transport frames, congestion flag) read at the
snapshot instant and cumulative counters (backpressure stalls,
transport reconnects, WAL fsyncs) since the worker started. The
orchestrator buffers them and reduces the whole run's stream with
:func:`summarize_telemetry`; ``python -m repro live`` surfaces the
summary under the metrics table.

Snapshot schema (one JSON object per worker per flush)::

    {"type": "telemetry", "pid": 0, "t": 1.25,
     "queue_depth": 3, "unacked": 12, "congested": false,
     "backpressure_stalls": 0, "reconnects": 0, "wal_fsyncs": 17}
"""

from __future__ import annotations

from typing import Iterable, Mapping

#: Gauge fields: summarized by their peak across snapshots.
GAUGES = ("queue_depth", "unacked")
#: Cumulative counter fields: summarized by their per-worker maximum
#: (= final value, counters never decrease), summed across workers.
COUNTERS = ("backpressure_stalls", "reconnects", "wal_fsyncs")


def summarize_telemetry(snapshots: Iterable[Mapping]) -> dict:
    """Reduce a run's telemetry stream to one summary dict.

    Returns a dict with ``snapshots`` (count), ``<gauge>_peak`` for
    each gauge, ``congested_snapshots`` and the summed final value of
    each cumulative counter. Empty input gives an all-zero summary.
    """
    count = 0
    peaks = {gauge: 0 for gauge in GAUGES}
    congested = 0
    finals: dict[str, dict[int, int]] = {counter: {} for counter in COUNTERS}
    for snapshot in snapshots:
        count += 1
        pid = int(snapshot.get("pid", -1))
        for gauge in GAUGES:
            peaks[gauge] = max(peaks[gauge], int(snapshot.get(gauge, 0)))
        if snapshot.get("congested"):
            congested += 1
        for counter in COUNTERS:
            value = int(snapshot.get(counter, 0))
            per_pid = finals[counter]
            per_pid[pid] = max(per_pid.get(pid, 0), value)
    summary: dict = {"snapshots": count, "congested_snapshots": congested}
    for gauge in GAUGES:
        summary[f"{gauge}_peak"] = peaks[gauge]
    for counter in COUNTERS:
        summary[counter] = sum(finals[counter].values())
    return summary


def telemetry_rows(summary: Mapping) -> list[list[str]]:
    """Summary → ``[metric, value]`` rows for the live report table."""
    if not summary.get("snapshots"):
        return []
    rows = [
        ["telemetry snapshots", str(summary["snapshots"])],
        ["queue depth peak", str(summary.get("queue_depth_peak", 0))],
        ["unacked frames peak", str(summary.get("unacked_peak", 0))],
        ["congested snapshots", str(summary.get("congested_snapshots", 0))],
        ["transport reconnects", str(summary.get("reconnects", 0))],
        ["WAL fsyncs", str(summary.get("wal_fsyncs", 0))],
    ]
    return rows
