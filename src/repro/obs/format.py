"""Human-readable rendering of trace slices and span paths.

The nemesis violation reports carry a ring buffer of recent events as
flat ``t=<time> <text>`` strings; :func:`format_trace_slice` parses
them back into aligned columns with layer names, so a violation's
context reads like a table instead of raw tuples. The profile CLI uses
:func:`format_message_path` for its critical-path summary.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

from repro.sim.tracing import TraceRecord

_SLICE_LINE = re.compile(r"^t=(?P<time>[0-9.+-eE]+)\s+(?P<text>.*)$")
_PROCESS_EVENT = re.compile(r"^p(?P<pid>\d+)\s+(?P<event>.*)$")

#: Leading keyword of a trace-slice event → the layer it belongs to.
_EVENT_LAYERS = (
    ("adeliver", "abcast"),
    ("abcast", "abcast"),
    ("decide", "consensus"),
    ("propose", "consensus"),
    ("rdeliver", "rbcast"),
    ("crash", "process"),
    ("restart", "process"),
)


def _classify(text: str) -> tuple[str, str, str]:
    """One raw slice line's text → (process, layer, event) columns."""
    if text.startswith("fault:"):
        return "-", "fault", text[len("fault:") :].strip()
    if text.startswith("VIOLATION"):
        return "-", "violation", text[len("VIOLATION") :].strip()
    if text.startswith("watchdog"):
        return "-", "watchdog", text
    match = _PROCESS_EVENT.match(text)
    if match:
        event = match.group("event")
        keyword = event.split(" ", 1)[0]
        for prefix, layer in _EVENT_LAYERS:
            if keyword == prefix:
                return f"p{match.group('pid')}", layer, event
        return f"p{match.group('pid')}", "-", event
    return "-", "-", text


def format_trace_slice(lines: Sequence[str]) -> str:
    """Render nemesis ``t=<time> <text>`` lines as aligned columns."""
    rows = []
    for line in lines:
        match = _SLICE_LINE.match(line)
        if match is None:
            rows.append(("", "-", "-", line))
            continue
        process, layer, event = _classify(match.group("text"))
        rows.append((match.group("time"), process, layer, event))
    headers = ("t", "proc", "layer", "event")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row[:3]):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(
            h.rjust(w) if i < 3 else h
            for i, (h, w) in enumerate(zip(headers, widths + [0]))
        )
    ]
    for row in rows:
        out.append(
            "  ".join(
                cell.rjust(widths[i]) if i < 3 else cell
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(out)


def format_message_path(records: Iterable[TraceRecord]) -> str:
    """One message's causal path as an aligned timeline.

    Rows show absolute time (ms), the delta to the previous step (µs),
    the process and what happened — the profile CLI's critical-path
    summary for a representative message.
    """
    rows = []
    previous: float | None = None
    for record in records:
        delta = "" if previous is None else f"+{(record.time - previous) * 1e6:.0f}"
        previous = record.time
        category = record.category
        if category == "abcast.submit":
            what = f"submit {record.detail}"
        elif category == "abcast.adeliver":
            what = f"adeliver {record.detail}"
        elif category.startswith("net."):
            message = record.detail
            what = (
                f"{category[4:]} {message.kind} "
                f"{message.module} p{message.src}->p{message.dst} "
                f"({message.wire_size}B)"
            )
        elif category == "span.adeliver":
            layer, duration = record.detail[0], record.detail[1]
            what = f"adeliver upcall in {layer} ({duration * 1e6:.0f}µs)"
        else:
            what = f"{category} {record.detail}"
        rows.append((f"{record.time * 1e3:.3f}", delta, f"p{record.process}", what))
    if not rows:
        return "(no records for this message)"
    headers = ("t (ms)", "+µs", "proc", "event")
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row[:3]):
            widths[i] = max(widths[i], len(cell))
    out = [
        "  ".join(
            h.rjust(w) if i < 3 else h
            for i, (h, w) in enumerate(zip(headers, widths + [0]))
        )
    ]
    for row in rows:
        out.append(
            "  ".join(
                cell.rjust(widths[i]) if i < 3 else cell
                for i, cell in enumerate(row)
            )
        )
    return "\n".join(out)
