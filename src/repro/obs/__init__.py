"""Observability: causal spans, latency attribution and telemetry.

This package turns the reproduction's headline question — *where does
the cost of modularity go?* — from an inferred end-to-end number into an
observed breakdown. It has four parts:

* :mod:`repro.obs.spans` — the causal span model shared by both
  runtimes: the simulator stamps spans at simulated time through the
  bounded :class:`~repro.sim.tracing.TraceRecorder`, the live runtime
  stamps the same schema at wall-clock time;
* :mod:`repro.obs.attribution` — per-layer CPU-time attribution and
  module-boundary-crossing counters, always on (they never feed back
  into timing, so metrics are byte-identical with tracing on or off);
* :mod:`repro.obs.perfetto` — Chrome-trace/Perfetto JSON export, so a
  single message's path through a modular stack is visually
  inspectable (``chrome://tracing`` or https://ui.perfetto.dev);
* :mod:`repro.obs.telemetry` — periodic counter/gauge snapshots the
  live workers ship on the control channel (queue depths, backpressure
  stalls, reconnects, WAL fsyncs).

:mod:`repro.obs.profile` (imported lazily by the CLI to avoid cycles)
drives traced runs for ``python -m repro profile``;
:mod:`repro.obs.format` renders trace slices and span tables.
"""

from repro.obs.attribution import LayerAttribution
from repro.obs.format import format_trace_slice
from repro.obs.perfetto import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.spans import (
    Span,
    span_balance,
    spans_from_serialized,
    spans_from_trace,
    validate_spans,
)
from repro.obs.telemetry import summarize_telemetry, telemetry_rows

__all__ = [
    "LayerAttribution",
    "Span",
    "chrome_trace",
    "format_trace_slice",
    "span_balance",
    "spans_from_serialized",
    "spans_from_trace",
    "summarize_telemetry",
    "telemetry_rows",
    "validate_chrome_trace",
    "validate_spans",
    "write_chrome_trace",
]
