"""Chrome-trace / Perfetto JSON export of span traces.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON that ``chrome://tracing`` and https://ui.perfetto.dev open
directly: one *process* track per protocol process, one *thread* track
per layer, and one complete event (``ph: "X"``) per span. Timestamps
are microseconds; simulated and wall-clock spans export identically
because both runtimes share the span schema (:mod:`repro.obs.spans`).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.spans import Span

#: Event phases the validator accepts: complete events and metadata.
_PHASES = ("X", "M")


def chrome_trace(
    spans: Iterable[Span],
    *,
    process_names: Mapping[int, str] | None = None,
    pid_offset: int = 0,
) -> dict:
    """Spans as one Chrome-trace document (a JSON-ready dict).

    Args:
        spans: The spans to export.
        process_names: Optional display names per process id (defaults
            to ``p<id>``); the profile CLI uses ``<stack>/p<id>`` when
            exporting several stacks into one file.
        pid_offset: Added to every process id, so traces of different
            runs can share a file without track collisions.
    """
    events: list[dict[str, Any]] = []
    #: Stable thread ids: one per (process, layer), in first-seen order.
    tids: dict[tuple[int, str], int] = {}
    seen_pids: list[int] = []
    for span in spans:
        pid = span.process + pid_offset
        key = (pid, span.layer)
        tid = tids.get(key)
        if tid is None:
            tid = len([1 for (p, __) in tids if p == pid])
            tids[key] = tid
        if pid not in seen_pids:
            seen_pids.append(pid)
        events.append(
            {
                "name": span.name,
                "cat": span.layer,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {key: _jsonable(value) for key, value in span.args},
            }
        )
    metadata: list[dict[str, Any]] = []
    for pid in seen_pids:
        name = (process_names or {}).get(pid, f"p{pid}")
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            }
        )
    for (pid, layer), tid in tids.items():
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": layer},
            }
        )
    return {"traceEvents": metadata + events, "displayTimeUnit": "ms"}


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def validate_chrome_trace(document: Any) -> list[str]:
    """Schema errors in a Chrome-trace document (empty = valid).

    Checks the subset of the Trace Event Format this package emits:
    a top-level ``traceEvents`` array of complete (``X``) and metadata
    (``M``) events with numeric, non-negative timestamps and integer
    track ids. Used by the CI trace-smoke job on the exported file.
    """
    errors = []
    if not isinstance(document, dict):
        return ["document is not a JSON object"]
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-array traceEvents"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: phase {phase!r} not in {_PHASES}")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            errors.append(f"{where}: missing name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                errors.append(f"{where}: {key} is not an integer")
        if phase == "X":
            for key in ("ts", "dur"):
                value = event.get(key)
                if not isinstance(value, (int, float)) or value != value:
                    errors.append(f"{where}: {key} is not a finite number")
                elif value < 0:
                    errors.append(f"{where}: {key} is negative")
            if not isinstance(event.get("cat"), str):
                errors.append(f"{where}: cat is not a string")
    return errors


def write_chrome_trace(
    path: str | Path,
    spans: Iterable[Span],
    *,
    process_names: Mapping[int, str] | None = None,
) -> Path:
    """Write *spans* as a Chrome-trace JSON file; returns the path."""
    target = Path(path)
    document = chrome_trace(spans, process_names=process_names)
    target.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return target


def merge_traces(documents: Iterable[dict]) -> dict:
    """Concatenate several Chrome-trace documents into one."""
    events: list = []
    for document in documents:
        events.extend(document.get("traceEvents", ()))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
