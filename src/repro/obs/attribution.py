"""Per-layer CPU-time attribution and boundary-crossing accounting.

The paper's cost model charges every handler dispatch, send, receive and
module boundary crossing to the process CPU; this module splits that
charged time into *where it went*: inside a protocol layer, or crossing
the boundary between layers. The split is the measured counterpart of
the paper's analytical overhead terms — a monolithic stack (one module
at height 0) accrues exactly zero boundary time, a modular stack pays
``boundary_crossing`` per level per message event.

Attribution is **always on** in the simulator: the accumulators are
plain counter additions on the runtime hot paths that never feed back
into event timing, so enabling or disabling the (optional) span trace
cannot change a single metric bit. The live runtime counts crossings
the same way; it has no modelled CPU, so its layer times stay empty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

#: Layer name under which boundary-crossing time is reported in tables.
BOUNDARY_LAYER = "boundary"


@dataclass(frozen=True, slots=True)
class LayerAttribution:
    """Where one run's CPU time went, over the measurement window.

    Attributes:
        layer_busy: CPU seconds charged inside each layer, summed over
            processes, as sorted ``(layer, seconds)`` pairs. Layers are
            module names plus ``app`` (adeliver upcalls) and ``fd``
            (failure-detector work).
        boundary_time: CPU seconds charged to inter-module boundary
            crossings (zero for a monolithic stack, by construction).
        boundary_crossings: Number of boundary crossings charged.
    """

    layer_busy: tuple[tuple[str, float], ...]
    boundary_time: float
    boundary_crossings: int

    @classmethod
    def from_totals(
        cls,
        layer_busy: Mapping[str, float],
        boundary_time: float,
        boundary_crossings: int,
    ) -> "LayerAttribution":
        """Build from accumulated totals, dropping idle layers."""
        return cls(
            layer_busy=tuple(
                (name, layer_busy[name])
                for name in sorted(layer_busy)
                if layer_busy[name] > 0.0
            ),
            boundary_time=boundary_time,
            boundary_crossings=boundary_crossings,
        )

    @property
    def layer_time(self) -> float:
        """Total CPU seconds spent inside layers."""
        return sum(seconds for __, seconds in self.layer_busy)

    @property
    def total_time(self) -> float:
        """All attributed CPU seconds (layers + boundaries)."""
        return self.layer_time + self.boundary_time

    @property
    def overhead_fraction(self) -> float | None:
        """The modularity overhead: boundary time / total attributed
        time. ``None`` when nothing was attributed (an idle window)."""
        total = self.total_time
        if total <= 0.0:
            return None
        return self.boundary_time / total

    def merge(self, other: "LayerAttribution") -> "LayerAttribution":
        """Combine two attributions (e.g. across seeds)."""
        merged = dict(self.layer_busy)
        for name, seconds in other.layer_busy:
            merged[name] = merged.get(name, 0.0) + seconds
        return LayerAttribution.from_totals(
            merged,
            self.boundary_time + other.boundary_time,
            self.boundary_crossings + other.boundary_crossings,
        )


#: The attribution of a window in which nothing ran.
EMPTY_ATTRIBUTION = LayerAttribution(
    layer_busy=(), boundary_time=0.0, boundary_crossings=0
)


def delta_layers(
    end: Mapping[str, float], start: Mapping[str, float]
) -> dict[str, float]:
    """Per-layer difference of two cumulative snapshots."""
    return {name: end[name] - start.get(name, 0.0) for name in end}
