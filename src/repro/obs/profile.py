"""The cost-of-modularity profiler behind ``python -m repro profile``.

Runs one traced simulation per requested stack at a common config point
and renders:

* a per-stack/per-layer latency-attribution table — CPU milliseconds
  per delivered message inside each layer, the boundary-crossing time,
  and the ``modularity overhead`` fraction (boundary time over total
  attributed time) that the paper's modular-vs-monolithic gap is made
  of;
* a critical-path summary: one representative measured message's
  observable path (submit, every network hop, first adeliver) with
  per-step deltas;
* optionally a combined Chrome-trace/Perfetto export of every span.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.config import RunConfig, WorkloadConfig, stack_from_label
from repro.experiments.report import format_table
from repro.experiments.runner import RunResult, run_simulation
from repro.obs.attribution import BOUNDARY_LAYER
from repro.obs.format import format_message_path
from repro.obs.perfetto import chrome_trace, merge_traces
from repro.obs.spans import adelivers, message_path, spans_from_trace, submits
from repro.sim.tracing import TraceRecorder

#: Default ring-buffer capacity of a profiling trace.
DEFAULT_TRACE_CAP = 200_000

#: pid stride between stacks in a combined Perfetto export, so each
#: stack's processes get their own track group.
_PID_STRIDE = 100


@dataclass(frozen=True, slots=True)
class ProfileRun:
    """One stack's traced run: the result plus its span trace."""

    label: str
    result: RunResult
    trace: TraceRecorder


def run_profile(
    labels: tuple[str, ...] | list[str],
    *,
    n: int = 3,
    load: float = 100.0,
    size: int = 1024,
    duration: float = 5.0,
    warmup: float = 0.5,
    seed: int = 1,
    trace_cap: int = DEFAULT_TRACE_CAP,
) -> list[ProfileRun]:
    """Run one traced simulation per stack label at a common point."""
    runs = []
    for label in labels:
        stack = stack_from_label(label)
        config = RunConfig(
            n=n,
            stack=stack,
            workload=WorkloadConfig(offered_load=load, message_size=size),
            duration=duration,
            warmup=warmup,
        )
        trace = TraceRecorder(cap=trace_cap)
        result = run_simulation(config, seed=seed, trace=trace)
        runs.append(ProfileRun(label=label, result=result, trace=trace))
    return runs


def layer_table(runs: list[ProfileRun]) -> str:
    """Per-stack/per-layer breakdown of attributed CPU time.

    One row per (stack, layer): CPU seconds charged inside the layer
    over the measurement window (summed across processes), the share of
    the stack's attributed time, and CPU microseconds per delivered
    message. The boundary row carries the crossing count.
    """
    headers = ["stack", "layer", "cpu (ms)", "share", "µs/msg", "crossings"]
    rows = []
    for run in runs:
        metrics = run.result.metrics
        window = run.result.config.duration
        delivered = max(1.0, metrics.throughput * window * run.result.config.n)
        total = sum(t for __, t in metrics.layer_busy) + metrics.boundary_time
        entries = list(metrics.layer_busy)
        entries.append((BOUNDARY_LAYER, metrics.boundary_time))
        for layer, seconds in entries:
            share = seconds / total if total > 0 else 0.0
            rows.append(
                [
                    run.label,
                    layer,
                    f"{seconds * 1e3:.2f}",
                    f"{share * 100:.1f}%",
                    f"{seconds / delivered * 1e6:.1f}",
                    str(metrics.boundary_crossings)
                    if layer == BOUNDARY_LAYER
                    else "",
                ]
            )
    return format_table(headers, rows)


def summary_table(runs: list[ProfileRun]) -> str:
    """One row per stack: the headline profile numbers."""
    headers = [
        "stack",
        "throughput",
        "latency (ms)",
        "modularity overhead",
        "crossings",
        "spans",
        "dropped",
    ]
    rows = []
    for run in runs:
        metrics = run.result.metrics
        latency = metrics.latency_mean
        overhead = metrics.modularity_overhead
        rows.append(
            [
                run.label,
                f"{metrics.throughput:.1f}",
                f"{latency * 1e3:.2f}" if latency is not None else "n/a",
                f"{overhead * 100:.2f}%" if overhead is not None else "n/a",
                str(metrics.boundary_crossings),
                str(run.trace.count("span.")),
                str(run.trace.dropped_records),
            ]
        )
    return format_table(headers, rows)


def critical_path_summary(run: ProfileRun) -> str:
    """The observable path of one representative measured message.

    Picks the first message submitted inside the measurement window
    that was adelivered everywhere the trace can see, and formats its
    submit → network hops → first adeliver timeline.
    """
    window_start = run.result.config.warmup
    delivered = {msg_id for __, __, msg_id in adelivers(run.trace)}
    candidate = None
    for t0, __, msg_id in sorted(submits(run.trace)):
        if t0 >= window_start and msg_id in delivered:
            candidate = msg_id
            break
    if candidate is None:
        return f"{run.label}: no measured message completed inside the trace"
    path = message_path(run.trace, candidate)
    first_adeliver = next(
        (i for i, r in enumerate(path) if r.category == "abcast.adeliver"),
        len(path) - 1,
    )
    timeline = format_message_path(path[: first_adeliver + 1])
    latency = path[first_adeliver].time - path[0].time
    return (
        f"{run.label}: critical path of {candidate} "
        f"(submit -> first adeliver: {latency * 1e3:.3f} ms)\n{timeline}"
    )


def export_chrome_trace(runs: list[ProfileRun], path: str | Path) -> Path:
    """Write every run's spans into one combined Perfetto JSON file."""
    import json

    documents = []
    for index, run in enumerate(runs):
        spans = spans_from_trace(run.trace)
        base = index * _PID_STRIDE
        names = {
            base + pid: f"{run.label}/p{pid}"
            for pid in range(run.result.config.n)
        }
        documents.append(
            chrome_trace(spans, process_names=names, pid_offset=base)
        )
    target = Path(path)
    target.write_text(
        json.dumps(merge_traces(documents), indent=1) + "\n", encoding="utf-8"
    )
    return target
