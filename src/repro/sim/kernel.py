"""The discrete-event simulation kernel.

The kernel owns the virtual clock and the event calendar. Everything in a
run — network transmissions, CPU task completions, protocol timers,
workload arrivals, fault injections — is a callback scheduled on one
kernel, so a whole distributed execution is a single deterministic event
loop.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.eventq import EventQueue, ScheduledEvent
from repro.sim.rng import RngRegistry
from repro.types import SimTime

#: Hard ceiling on events per run; a guard against accidental livelock in
#: protocol logic (e.g. two modules ping-ponging zero-delay events).
DEFAULT_MAX_EVENTS = 500_000_000


class Kernel:
    """Deterministic discrete-event simulation loop.

    Attributes:
        now: Current simulated time in seconds. Monotonically
            non-decreasing while :meth:`run` executes.
        rng: Registry of named random streams for this run.
    """

    def __init__(self, *, seed: int = 0, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.now: SimTime = 0.0
        self.rng = RngRegistry(seed)
        self._queue = EventQueue()
        self._max_events = max_events
        self._events_executed = 0
        self._stopped = False

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._queue)

    def schedule(
        self, delay: SimTime, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule *callback* to run ``delay`` seconds from now.

        Raises:
            SimulationError: If *delay* is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(
        self, time: SimTime, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*.

        Raises:
            SimulationError: If *time* is earlier than :attr:`now`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self.now}"
            )
        return self._queue.push(time, callback)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: SimTime | None = None) -> SimTime:
        """Execute events in time order.

        Args:
            until: If given, stop once the next event would be later than
                this time and fast-forward the clock exactly to it. If
                ``None``, run until the calendar drains or :meth:`stop`.

        Returns:
            The simulated time at which the loop exited.

        Raises:
            SimulationError: If the event budget is exceeded, which almost
                always indicates a zero-delay event loop in protocol code.
        """
        self._stopped = False
        while not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            event = self._queue.pop()
            if event is None:  # everything remaining was cancelled
                break
            if event.time < self.now:
                raise SimulationError(
                    f"event queue returned past event ({event.time} < {self.now})"
                )
            self.now = event.time
            self._events_executed += 1
            if self._events_executed > self._max_events:
                raise SimulationError(
                    f"exceeded event budget of {self._max_events} events; "
                    "likely a zero-delay event loop in protocol logic"
                )
            event.callback()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
