"""The discrete-event simulation kernel.

The kernel owns the virtual clock and the event calendar. Everything in a
run — network transmissions, CPU task completions, protocol timers,
workload arrivals, fault injections — is a callback scheduled on one
kernel, so a whole distributed execution is a single deterministic event
loop.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.eventq import EventQueue, ScheduledEvent
from repro.sim.rng import RngRegistry
from repro.types import SimTime

#: Hard ceiling on events per run; a guard against accidental livelock in
#: protocol logic (e.g. two modules ping-ponging zero-delay events).
DEFAULT_MAX_EVENTS = 500_000_000


class Kernel:
    """Deterministic discrete-event simulation loop.

    Attributes:
        now: Current simulated time in seconds. Monotonically
            non-decreasing while :meth:`run` executes.
        rng: Registry of named random streams for this run.
        post: Bound fast path equal to ``EventQueue.post``: schedule a
            callback at an *absolute* time with no past-check, no
            cancellation handle and no per-event allocation. Hot internal
            callers (CPU completions, network arrivals, workload ticks)
            use it when the target time is ≥ :attr:`now` by construction;
            everything else should go through :meth:`schedule` /
            :meth:`schedule_at`, which validate and return a handle.
    """

    __slots__ = (
        "now",
        "rng",
        "post",
        "_queue",
        "_max_events",
        "_events_executed",
        "_stopped",
    )

    def __init__(self, *, seed: int = 0, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        self.now: SimTime = 0.0
        self.rng = RngRegistry(seed)
        self._queue = EventQueue()
        self.post = self._queue.post
        self._max_events = max_events
        self._events_executed = 0
        self._stopped = False

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still in the calendar (including cancelled)."""
        return len(self._queue)

    def schedule(
        self, delay: SimTime, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule *callback* to run ``delay`` seconds from now.

        Raises:
            SimulationError: If *delay* is negative.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self._queue.push(self.now + delay, callback)

    def schedule_at(
        self, time: SimTime, callback: Callable[[], Any]
    ) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated *time*.

        Raises:
            SimulationError: If *time* is earlier than :attr:`now`.
        """
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} which is before now={self.now}"
            )
        return self._queue.push(time, callback)

    def stop(self) -> None:
        """Request the run loop to exit after the current event."""
        self._stopped = True

    def run(self, until: SimTime | None = None) -> SimTime:
        """Execute events in time order.

        Args:
            until: If given, stop once the next event would be later than
                this time and fast-forward the clock exactly to it. If
                ``None``, run until the calendar drains or :meth:`stop`.

        Returns:
            The simulated time at which the loop exited.

        Raises:
            SimulationError: If the event budget is exceeded, which almost
                always indicates a zero-delay event loop in protocol code.
        """
        self._stopped = False
        # The loop below is the single hottest function of the whole
        # simulator: peek/pop are fused and operate on the heap directly
        # (no per-event method-call round trips through EventQueue).
        heap = self._queue._heap
        heappop = heapq.heappop
        max_events = self._max_events
        executed = self._events_executed
        scheduled_event = ScheduledEvent
        while heap and not self._stopped:
            entry = heap[0]
            item = entry[2]
            if item.__class__ is scheduled_event:
                if item.cancelled:
                    heappop(heap)
                    continue
                item = item.callback
            time = entry[0]
            if until is not None and time > until:
                break
            heappop(heap)
            if time < self.now:
                raise SimulationError(
                    f"event queue returned past event ({time} < {self.now})"
                )
            self.now = time
            executed += 1
            self._events_executed = executed
            if executed > max_events:
                raise SimulationError(
                    f"exceeded event budget of {max_events} events; "
                    "likely a zero-delay event loop in protocol logic"
                )
            item()
        if until is not None and self.now < until and not self._stopped:
            self.now = until
        return self.now
