"""Single-server CPU model for a simulated process.

The paper's experimental results are dominated by per-message processing
cost ("99% of CPU resources were used with an offered load bigger than
500 msgs/s"), so modelling the CPU as a non-preemptive FIFO server is the
single most important fidelity decision of this reproduction. Each
protocol handler invocation, send operation and module boundary crossing
charges time to its process CPU; work queues up when the CPU is busy,
which produces the latency growth and throughput saturation the paper
measures.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError
from repro.sim.kernel import Kernel
from repro.types import SimTime


class Cpu:
    """A non-preemptive, work-conserving single-server CPU.

    Work is expressed in seconds of service time. The CPU keeps a
    ``busy_until`` horizon: new work starts at ``max(now, busy_until)``
    and extends the horizon by its cost. Callbacks fire at their
    completion instant on the owning kernel.
    """

    __slots__ = ("_kernel", "_speed", "_busy_until", "_busy_time", "_halted")

    def __init__(self, kernel: Kernel, *, speed: float = 1.0) -> None:
        if speed <= 0:
            raise SimulationError(f"CPU speed must be positive, got {speed}")
        self._kernel = kernel
        self._speed = speed
        self._busy_until: SimTime = 0.0
        self._busy_time: float = 0.0
        self._halted = False

    @property
    def busy_until(self) -> SimTime:
        """Completion time of the last queued piece of work."""
        return self._busy_until

    @property
    def busy_time(self) -> float:
        """Total service seconds executed (for utilization accounting)."""
        return self._busy_time

    def utilization(self, elapsed: SimTime) -> float:
        """Fraction of *elapsed* seconds spent busy, clamped to [0, 1]."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self._busy_time / elapsed)

    def halt(self) -> None:
        """Stop accepting work (the owning process crashed).

        Work already queued will still fire its completion callbacks; the
        process runtime is responsible for ignoring them after a crash
        (a real crashed host does not finish its queued work, and the
        runtime models that by checking liveness at completion time).
        """
        self._halted = True

    def execute(
        self, cost: float, callback: Callable[[], Any] | None = None
    ) -> SimTime:
        """Queue *cost* seconds of work; run *callback* at completion.

        Returns:
            The simulated completion time of the work.

        Raises:
            SimulationError: If *cost* is negative or the CPU is halted.
        """
        if cost < 0:
            raise SimulationError(f"CPU cost must be non-negative, got {cost}")
        if self._halted:
            raise SimulationError("cannot queue work on a halted CPU")
        kernel = self._kernel
        service = cost / self._speed
        start = self._busy_until
        now = kernel.now
        if now > start:
            start = now
        done = start + service
        self._busy_until = done
        self._busy_time += service
        if callback is not None:
            # done >= now by construction, so the unchecked fast path is safe.
            kernel.post(done, callback)
        return done
