"""Calendar queue for the discrete-event simulation kernel.

A thin wrapper around :mod:`heapq` providing cancellable, deterministically
ordered scheduled events. Ties in time are broken by insertion sequence so
that two kernels fed the same schedule produce identical executions.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.types import SimTime


@dataclass(slots=True)
class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    Instances are returned by :meth:`EventQueue.push` and can be cancelled
    via :meth:`cancel`. Cancelled events stay in the heap but are skipped
    when popped (lazy deletion), which keeps cancellation O(1).
    """

    time: SimTime
    seq: int
    callback: Callable[[], Any]
    cancelled: bool = field(default=False)

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True


class EventQueue:
    """Min-heap of :class:`ScheduledEvent`, ordered by (time, seq)."""

    def __init__(self) -> None:
        self._heap: list[tuple[SimTime, int, ScheduledEvent]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: SimTime, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule *callback* at *time* and return a cancellable handle."""
        event = ScheduledEvent(time=time, seq=next(self._seq), callback=callback)
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty.

        Cancelled events are discarded transparently.
        """
        while self._heap:
            __, __, event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> SimTime | None:
        """Time of the next live event without removing it."""
        while self._heap:
            time, __, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None
