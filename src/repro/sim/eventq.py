"""Calendar queue for the discrete-event simulation kernel.

A thin wrapper around :mod:`heapq` providing cancellable, deterministically
ordered scheduled events. Ties in time are broken by insertion sequence so
that two kernels fed the same schedule produce identical executions.

Hot-path notes: the heap stores ``(time, seq, item)`` tuples so that all
sift comparisons run as C tuple comparisons — ``seq`` is unique, so the
comparison never reaches the third element. Heaping the event objects
directly (with a Python-level ``__lt__``) was measured to be slower
overall: a run performs several comparisons per push/pop, and Python
method calls cost far more than one small tuple allocation.

Two entry kinds share the heap:

* :meth:`EventQueue.push` wraps the callback in a :class:`ScheduledEvent`
  handle so the caller can cancel it later (lazy deletion).
* :meth:`EventQueue.post` stores the bare callback — no handle, no
  per-event allocation beyond the tuple. This is the fast path for the
  bulk of traffic (CPU completions, network arrivals, workload ticks),
  none of which is ever cancelled.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.types import SimTime


class ScheduledEvent:
    """A callback scheduled at a point in simulated time.

    Instances are returned by :meth:`EventQueue.push` and can be cancelled
    via :meth:`cancel`. Cancelled events stay in the heap but are skipped
    when popped (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: SimTime, seq: int, callback: Callable[[], Any]) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent this event from firing. Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"ScheduledEvent(time={self.time!r}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of ``(time, seq, item)`` entries ordered by (time, seq).

    ``item`` is either a :class:`ScheduledEvent` (cancellable, from
    :meth:`push`) or a bare callback (from :meth:`post`).
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[SimTime, int, Any]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: SimTime, callback: Callable[[], Any]) -> ScheduledEvent:
        """Schedule *callback* at *time* and return a cancellable handle."""
        seq = self._seq
        self._seq = seq + 1
        event = ScheduledEvent(time, seq, callback)
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def post(self, time: SimTime, callback: Callable[[], Any]) -> None:
        """Schedule *callback* at *time* with no cancellation handle.

        Hot-path variant of :meth:`push` for events that are never
        cancelled; skips the :class:`ScheduledEvent` allocation.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._heap, (time, seq, callback))

    def pop(self) -> ScheduledEvent | None:
        """Remove and return the next live event, or ``None`` if empty.

        Cancelled events are discarded transparently. Bare-callback
        entries (from :meth:`post`) are wrapped in a fresh handle for a
        uniform return type.
        """
        heap = self._heap
        while heap:
            time, seq, item = heapq.heappop(heap)
            if item.__class__ is ScheduledEvent:
                if item.cancelled:
                    continue
                return item
            return ScheduledEvent(time, seq, item)
        return None

    def peek_time(self) -> SimTime | None:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap:
            entry = heap[0]
            item = entry[2]
            if item.__class__ is ScheduledEvent and item.cancelled:
                heapq.heappop(heap)
                continue
            return entry[0]
        return None
