"""Discrete-event simulation substrate.

This package replaces the paper's physical cluster: a deterministic event
loop (:class:`~repro.sim.kernel.Kernel`), per-process CPU models
(:class:`~repro.sim.cpu.Cpu`), reproducible named RNG streams
(:class:`~repro.sim.rng.RngRegistry`) and optional structured tracing
(:class:`~repro.sim.tracing.TraceRecorder`).
"""

from repro.sim.cpu import Cpu
from repro.sim.eventq import EventQueue, ScheduledEvent
from repro.sim.kernel import Kernel
from repro.sim.rng import RngRegistry
from repro.sim.tracing import NullTraceRecorder, TraceRecord, TraceRecorder

__all__ = [
    "Cpu",
    "EventQueue",
    "Kernel",
    "NullTraceRecorder",
    "RngRegistry",
    "ScheduledEvent",
    "TraceRecord",
    "TraceRecorder",
]
