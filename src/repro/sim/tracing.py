"""Event tracing for simulations.

A :class:`TraceRecorder` collects structured trace records emitted by the
network, stacks and workload. Tracing is optional and off by default in
benchmarks (recording every network message at high offered loads costs
memory); tests and the examples turn it on to assert on protocol message
flows, which is how we validate the paper's analytical message counts
against the actual simulator behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.types import SimTime


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulated time of the occurrence.
        category: Dot-separated namespace, e.g. ``"net.send"``,
            ``"abcast.adeliver"``, ``"consensus.decide"``.
        process: Process on which it occurred, or ``-1`` for global events.
        detail: Category-specific payload (kept small and hashable-free).
    """

    time: SimTime
    category: str
    process: int
    detail: Any = None


class TraceRecorder:
    """Append-only in-memory trace with category filtering."""

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = enabled
        self._records: list[TraceRecord] = []

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self, time: SimTime, category: str, process: int, detail: Any = None
    ) -> None:
        """Append a record if tracing is enabled."""
        if self.enabled:
            self._records.append(TraceRecord(time, category, process, detail))

    def select(self, category_prefix: str) -> Iterator[TraceRecord]:
        """Iterate records whose category starts with *category_prefix*."""
        return (
            record
            for record in self._records
            if record.category.startswith(category_prefix)
        )

    def count(self, category_prefix: str) -> int:
        """Number of records under *category_prefix*."""
        return sum(1 for _ in self.select(category_prefix))

    def clear(self) -> None:
        """Discard all records (e.g. at the end of warm-up)."""
        self._records.clear()


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything; used when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(
        self, time: SimTime, category: str, process: int, detail: Any = None
    ) -> None:  # noqa: D102 - inherited
        return None
