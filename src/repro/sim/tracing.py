"""Event tracing for simulations.

A :class:`TraceRecorder` collects structured trace records emitted by the
network, stacks and workload. Tracing is optional and off by default in
benchmarks (recording every network message at high offered loads costs
memory); tests and the examples turn it on to assert on protocol message
flows, which is how we validate the paper's analytical message counts
against the actual simulator behaviour.

The recorder is bounded: with ``cap=N`` it keeps the *most recent* N
records in a ring buffer and counts everything it had to evict in
``dropped_records``, so long soak runs (and the live workers, which
reuse this recorder with wall-clock timestamps) can trace safely with a
fixed memory budget. ``cap=None`` keeps the historical append-only
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.types import SimTime


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulated time of the occurrence (wall-clock seconds since
            the deployment epoch when a live runtime records).
        category: Dot-separated namespace, e.g. ``"net.send"``,
            ``"abcast.adeliver"``, ``"span.cross"``.
        process: Process on which it occurred, or ``-1`` for global events.
        detail: Category-specific payload (kept small and hashable-free).
    """

    time: SimTime
    category: str
    process: int
    detail: Any = None


class TraceRecorder:
    """In-memory trace with category filtering and an optional ring cap.

    Attributes:
        enabled: Whether :meth:`record` stores anything. Hot paths check
            this flag before building record details.
        cap: Maximum records retained (``None`` = unbounded).
        dropped_records: Records evicted because the ring was full.
    """

    def __init__(self, *, enabled: bool = True, cap: int | None = None) -> None:
        if cap is not None and cap < 1:
            raise ConfigurationError(f"trace cap must be >= 1, got {cap}")
        self.enabled = enabled
        self.cap = cap
        self.dropped_records = 0
        self._records: list[TraceRecord] = []
        #: Next overwrite position once the ring is full.
        self._next = 0

    def __len__(self) -> int:
        return len(self._records)

    def record(
        self, time: SimTime, category: str, process: int, detail: Any = None
    ) -> None:
        """Append a record if tracing is enabled (evicting the oldest
        record once the ring is at capacity)."""
        if not self.enabled:
            return
        if self.cap is not None and len(self._records) >= self.cap:
            self._records[self._next] = TraceRecord(time, category, process, detail)
            self._next += 1
            if self._next == self.cap:
                self._next = 0
            self.dropped_records += 1
        else:
            self._records.append(TraceRecord(time, category, process, detail))

    def records(self) -> list[TraceRecord]:
        """All retained records, oldest first (unwinds the ring)."""
        if self.cap is not None and self.dropped_records and self._next:
            return self._records[self._next :] + self._records[: self._next]
        return list(self._records)

    def select(self, category_prefix: str) -> Iterator[TraceRecord]:
        """Iterate records whose category starts with *category_prefix*."""
        return (
            record
            for record in self.records()
            if record.category.startswith(category_prefix)
        )

    def count(self, category_prefix: str) -> int:
        """Number of retained records under *category_prefix*."""
        return sum(1 for _ in self.select(category_prefix))

    def clear(self) -> None:
        """Discard all records and the drop counter (e.g. at the end of
        warm-up, so reports describe the measurement window only)."""
        self._records.clear()
        self._next = 0
        self.dropped_records = 0


class NullTraceRecorder(TraceRecorder):
    """A recorder that drops everything; used when tracing is disabled."""

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def record(
        self, time: SimTime, category: str, process: int, detail: Any = None
    ) -> None:  # noqa: D102 - inherited
        return None
