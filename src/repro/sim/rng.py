"""Named, reproducible random-number streams.

Every source of randomness in a simulation draws from a named stream so
that (a) runs are reproducible bit-for-bit from a single root seed, and
(b) adding a new random consumer does not perturb the draws seen by
existing consumers (streams are independent by construction).
"""

from __future__ import annotations

import hashlib
import random


class RngRegistry:
    """Factory of independent ``random.Random`` streams under one seed.

    Example:
        >>> reg = RngRegistry(seed=42)
        >>> workload = reg.stream("workload.p0")
        >>> net = reg.stream("net.jitter")
        >>> reg.stream("workload.p0") is workload
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._streams: dict[str, random.Random] = {}

    @property
    def seed(self) -> int:
        """The root seed this registry derives all streams from."""
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically.

        The stream seed is derived by hashing ``(root seed, name)`` with
        SHA-256, so distinct names yield statistically independent streams
        and the mapping is stable across Python versions and platforms.
        """
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        material = f"{self._seed}:{name}".encode()
        digest = hashlib.sha256(material).digest()
        derived_seed = int.from_bytes(digest[:8], "big")
        stream = random.Random(derived_seed)
        self._streams[name] = stream
        return stream
