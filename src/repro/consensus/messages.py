"""Wire payloads of the consensus protocol (§3.2).

Every payload carries the instance number ``k`` (the reduction runs a
sequence of consensus instances) and, where relevant, the round ``r``.
Decisions travel through the reliable broadcast module below consensus:
as a small :class:`DecisionTag` in the optimized variant (the paper's
"tag DECISION" optimization) or as the full :class:`DecisionValue` in
the textbook variant.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.wire import wire_payload
from repro.stack.events import batch_wire_size
from repro.types import Batch

#: Modelled bytes of consensus control information (instance, round, type).
CONTROL_OVERHEAD = 24


@wire_payload
@dataclass(frozen=True, slots=True)
class JoinRound:
    """Bad-run hint, broadcast when a process advances its round: a
    round change is underway, so every correct process must catch up and
    contribute an estimate to the new coordinator — even processes that
    do not themselves suspect anyone. Without it, a single wrong
    suspicion can strand the group across two rounds with a majority in
    neither (the suspecter waits for estimates that never come while
    everyone else waits for a round the suspecter already left)."""

    instance: int
    round: int

    @property
    def wire_size(self) -> int:
        return 16


@wire_payload
@dataclass(frozen=True, slots=True)
class Estimate:
    """Phase-1 message: a process's current estimate, sent to the round
    coordinator (only in rounds ≥ 2 for the optimized variant)."""

    instance: int
    round: int
    value: Batch
    ts: int

    @property
    def wire_size(self) -> int:
        return batch_wire_size(self.value) + CONTROL_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class Proposal:
    """Phase-2 message: the coordinator's proposed value for a round."""

    instance: int
    round: int
    value: Batch

    @property
    def wire_size(self) -> int:
        return batch_wire_size(self.value) + CONTROL_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class Ack:
    """Phase-3 message: acknowledgment of a round's proposal."""

    instance: int
    round: int

    @property
    def wire_size(self) -> int:
        return CONTROL_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class DecisionTag:
    """Optimized decision: names the deciding round instead of carrying
    the value (receivers look the value up in the round's proposal)."""

    instance: int
    round: int

    @property
    def wire_size(self) -> int:
        return CONTROL_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class DecisionValue:
    """Full decision value; used by the textbook variant and by the
    recovery path of the tag optimization."""

    instance: int
    value: Batch

    @property
    def wire_size(self) -> int:
        return batch_wire_size(self.value) + CONTROL_OVERHEAD


@wire_payload
@dataclass(frozen=True, slots=True)
class RecoveryRequest:
    """Sent by a process that rdelivered a :class:`DecisionTag` without
    holding the corresponding round's proposal (possible only if the
    coordinator crashed; see §3.2 — "additional communication steps may
    be required if the coordinator crashes")."""

    instance: int
    round: int

    @property
    def wire_size(self) -> int:
        return CONTROL_OVERHEAD
