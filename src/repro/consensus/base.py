"""Shared machinery of the rotating-coordinator consensus module.

Both variants (textbook and good-run-optimized Chandra–Toueg) share:

* instance multiplexing — one module runs the whole sequence of
  instances the atomic broadcast reduction needs, creating per-instance
  state lazily when the first local propose or remote message arrives;
* rounds ≥ 2 — estimate gathering, max-timestamp selection, proposal,
  acks (these only run after a suspicion, so they are identical in both
  variants);
* suspicion-driven round advancement (lazy rounds, §3.2);
* decision dissemination through the reliable broadcast module below,
  plus the recovery path for tag-only decisions.

The variants differ only in how round 1 starts (with or without an
estimate phase) and in what a decision broadcast carries (tag vs. full
value); subclasses provide those two hooks.

Safety sketch (standard CT argument): at most one proposal exists per
round; a decision in round r implies a majority acked r, and every
acker adopted (value v, ts = r). Any later round's coordinator picks the
max-ts estimate out of a majority, which intersects the ack majority, so
by induction every proposal after round r carries v.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.consensus.messages import (
    Ack,
    DecisionTag,
    DecisionValue,
    Estimate,
    JoinRound,
    Proposal,
    RecoveryRequest,
)
from repro.net.message import NetMessage
from repro.stack.actions import Action, CancelTimer, EmitDown, EmitUp, Send, StartTimer
from repro.stack.events import (
    DecideIndication,
    Event,
    ProposeRequest,
    RbcastRequest,
    RdeliverIndication,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import Batch

#: Delay between retries of a decision-recovery request.
RECOVERY_RETRY_DELAY = 0.2


class BaseConsensus(Microprotocol):
    """Common consensus behaviour; see variant subclasses."""

    name = "consensus"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._instances: dict[int, InstanceState] = {}

    # -- hooks implemented by variants ---------------------------------

    def _on_local_propose(self, state: InstanceState) -> list[Action]:
        """Start the instance after a local ``propose`` (round-1 logic)."""
        raise NotImplementedError

    def _decision_broadcast(self, state: InstanceState, round_number: int) -> RbcastRequest:
        """Build the rbcast request announcing the decision."""
        raise NotImplementedError

    # -- instance bookkeeping -------------------------------------------

    def instance(self, k: int) -> InstanceState:
        """State of instance *k*, created lazily."""
        state = self._instances.get(k)
        if state is None:
            state = InstanceState(instance=k, n=self.ctx.n)
            self._instances[k] = state
        return state

    def has_instance(self, k: int) -> bool:
        """Whether instance *k* has any local state yet."""
        return k in self._instances

    # -- stimuli ----------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, ProposeRequest):
            return self._local_propose(event.instance, event.value)
        if isinstance(event, RdeliverIndication):
            return self._on_rdeliver(event.payload)
        return super().handle_event(event)

    def handle_message(self, message: NetMessage) -> list[Action]:
        payload = message.payload
        if message.kind == "ESTIMATE":
            return self._on_estimate(message.src, payload)
        if message.kind == "PROPOSAL":
            return self._on_proposal(message.src, payload)
        if message.kind == "ACK":
            return self._on_ack(message.src, payload)
        if message.kind == "JOIN":
            return self._on_join(message.src, payload)
        if message.kind == "RECOVER_REQ":
            return self._on_recovery_request(message.src, payload)
        if message.kind == "RECOVER_RESP":
            return self._on_recovery_response(payload)
        return super().handle_message(message)

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        actions: list[Action] = []
        for state in list(self._instances.values()):
            if state.decided is None and state.estimate is not None:
                actions.extend(self._advance_past_suspects(state, suspects))
        return actions

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name.startswith("recover-"):
            return self._retry_recovery(payload)
        return super().handle_timer(name, payload)

    # -- local propose ----------------------------------------------------

    def _local_propose(self, k: int, value: Batch) -> list[Action]:
        state = self.instance(k)
        if state.decided is not None:
            # The decision raced ahead of the local propose; the abcast
            # module already received (or buffered) the DecideIndication.
            return []
        if state.estimate is None:
            state.estimate = value
        actions = self._on_local_propose(state)
        actions.extend(self._advance_past_suspects(state, self.ctx.suspects()))
        return actions

    # -- rounds ≥ 2: estimates, proposals, acks ---------------------------

    def _on_estimate(self, sender: int, estimate: Estimate) -> list[Action]:
        state = self.instance(estimate.instance)
        if state.decided is not None:
            return self._help_decided(sender, state)
        state.record_estimate(estimate.round, sender, estimate.ts, estimate.value)
        return self._maybe_propose_round(state, estimate.round)

    def _maybe_propose_round(self, state: InstanceState, round_number: int) -> list[Action]:
        """As coordinator of *round_number*, propose once a majority of
        estimates is in (used by rounds ≥ 2 in both variants, and by
        round 1 of the textbook variant)."""
        if coordinator_of_round(round_number, self.ctx.n) != self.ctx.pid:
            return []
        if state.decided is not None or round_number in state.proposal_sent_rounds:
            return []
        if round_number < state.round:
            return []
        received = state.estimates.get(round_number, {})
        if self.ctx.pid not in received and state.estimate is not None:
            state.record_estimate(
                round_number, self.ctx.pid, state.ts, state.estimate
            )
            received = state.estimates[round_number]
        if len(received) < self.ctx.majority:
            return []
        value = state.best_estimate(round_number)
        state.round = round_number
        state.estimate = value
        state.ts = round_number
        state.proposals[round_number] = value
        state.proposal_sent_rounds.add(round_number)
        state.acks.setdefault(round_number, set()).add(self.ctx.pid)
        proposal = Proposal(state.instance, round_number, value)
        actions: list[Action] = [
            Send(dst, "PROPOSAL", proposal, proposal.wire_size)
            for dst in self.ctx.others
        ]
        actions.extend(self._maybe_decide(state, round_number))
        return actions

    def _on_proposal(self, sender: int, proposal: Proposal) -> list[Action]:
        state = self.instance(proposal.instance)
        state.proposals[proposal.round] = proposal.value
        if state.decided is not None:
            return self._maybe_complete_recovery(state)
        if proposal.round < state.round:
            return []  # stale round; we already moved on
        state.round = proposal.round
        state.estimate = proposal.value
        state.ts = proposal.round
        ack = Ack(proposal.instance, proposal.round)
        actions: list[Action] = [Send(sender, "ACK", ack, ack.wire_size)]
        actions.extend(self._maybe_complete_recovery(state))
        actions.extend(self._advance_past_suspects(state, self.ctx.suspects()))
        return actions

    def _on_ack(self, sender: int, ack: Ack) -> list[Action]:
        state = self.instance(ack.instance)
        if state.decided is not None and state.decision_sent:
            return []
        state.acks.setdefault(ack.round, set()).add(sender)
        return self._maybe_decide(state, ack.round)

    def _maybe_decide(self, state: InstanceState, round_number: int) -> list[Action]:
        """As coordinator, broadcast the decision on a majority of acks."""
        if state.decision_sent or round_number not in state.proposal_sent_rounds:
            return []
        if len(state.acks.get(round_number, ())) < self.ctx.majority:
            return []
        state.decision_sent = True
        return self._announce_decision(state, round_number)

    def _announce_decision(self, state: InstanceState, round_number: int) -> list[Action]:
        """Disseminate the decision of *round_number*.

        Default: through the reliable broadcast module below. Its local
        self-delivery loops back as an RdeliverIndication, which is where
        this coordinator itself decides (single decide path). The
        monolithic stack overrides this with the §4.1/§4.3 fast paths.
        """
        return [EmitDown(self._decision_broadcast(state, round_number))]

    # -- suspicion-driven round changes ------------------------------------

    def _advance_past_suspects(
        self, state: InstanceState, suspects: frozenset[int]
    ) -> list[Action]:
        """Advance rounds while the current coordinator is suspected and
        this round's proposal has not been received (lazy rounds, §3.2).

        Bounded by n advances per stimulus so a pathological detector
        that suspects everyone cannot loop forever.
        """
        actions: list[Action] = []
        advances = 0
        while (
            state.decided is None
            and state.estimate is not None
            and state.coordinator() in suspects
            and advances < self.ctx.n
        ):
            advances += 1
            actions.extend(self._advance_round(state))
        return actions

    def _advance_round(self, state: InstanceState) -> list[Action]:
        state.round += 1
        new_coordinator = state.coordinator()
        estimate = Estimate(
            state.instance,
            state.round,
            state.estimate if state.estimate is not None else Batch(state.instance),
            state.ts,
        )
        if new_coordinator == self.ctx.pid:
            state.record_estimate(
                state.round, self.ctx.pid, estimate.ts, estimate.value
            )
            actions = self._maybe_propose_round(state, state.round)
        else:
            actions = [Send(new_coordinator, "ESTIMATE", estimate, estimate.wire_size)]
        # Announce the round change so every correct process catches up
        # and contributes an estimate — even processes that do not
        # themselves suspect anyone (see JoinRound).
        join = JoinRound(state.instance, state.round)
        actions.extend(
            Send(dst, "JOIN", join, join.wire_size) for dst in self.ctx.others
        )
        return actions

    def _on_join(self, sender: int, join: JoinRound) -> list[Action]:
        """Catch up to a round another process already advanced to.

        Joining a higher round unconditionally is safe (safety rests on
        majority locking, not on who advances when) and is what makes
        the lazy-rounds optimization live: the round's coordinator needs
        a majority of estimates, and only the processes that suspected
        would otherwise supply them. Decided instances answer with the
        decision instead, as for any laggard traffic.
        """
        state = self.instance(join.instance)
        if state.decided is not None:
            return self._help_decided(sender, state)
        self._materialize_estimate(state)
        actions: list[Action] = []
        while state.decided is None and state.round < join.round:
            actions.extend(self._advance_round(state))
        actions.extend(self._advance_past_suspects(state, self.ctx.suspects()))
        return actions

    def _materialize_estimate(self, state: InstanceState) -> None:
        """Hook: adopt pending local input as the instance's estimate
        before joining a round (the monolithic module overrides this to
        fold its message pool in; the modular variants keep estimates
        purely propose-driven)."""

    # -- decisions and recovery ---------------------------------------------

    def _on_rdeliver(self, payload: Any) -> list[Action]:
        if isinstance(payload, DecisionValue):
            return self._decide(self.instance(payload.instance), payload.value)
        if isinstance(payload, DecisionTag):
            state = self.instance(payload.instance)
            if state.decided is not None:
                return []
            value = state.proposals.get(payload.round)
            if value is not None:
                return self._decide(state, value)
            # Tag without the proposal: only possible when the deciding
            # coordinator crashed; fall back to explicit recovery (§3.2).
            state.awaiting_recovery_round = payload.round
            return self._request_recovery(state)
        raise TypeError(f"unexpected rdelivered payload {payload!r}")

    def _decide(self, state: InstanceState, value: Batch) -> list[Action]:
        if state.decided is not None:
            return []
        state.decided = value
        actions: list[Action] = []
        if state.awaiting_recovery_round is not None:
            state.awaiting_recovery_round = None
            actions.append(CancelTimer(f"recover-{state.instance}"))
        actions.extend(self._emit_decision(state, value))
        return actions

    def _emit_decision(self, state: InstanceState, value: Batch) -> list[Action]:
        """Hand the decision to the layer above.

        Default: a DecideIndication to the atomic broadcast module above.
        The monolithic stack overrides this to consume the decision
        in-module (there is no module above it except the application).
        """
        return [EmitUp(DecideIndication(state.instance, value))]

    def _request_recovery(self, state: InstanceState) -> list[Action]:
        request = RecoveryRequest(state.instance, state.awaiting_recovery_round or 0)
        actions: list[Action] = [
            Send(dst, "RECOVER_REQ", request, request.wire_size)
            for dst in self.ctx.others
        ]
        actions.append(
            StartTimer(
                f"recover-{state.instance}", RECOVERY_RETRY_DELAY, state.instance
            )
        )
        return actions

    def _retry_recovery(self, k: int) -> list[Action]:
        state = self.instance(k)
        if state.decided is not None or state.awaiting_recovery_round is None:
            return []
        return self._request_recovery(state)

    def _on_recovery_request(self, sender: int, request: RecoveryRequest) -> list[Action]:
        state = self.instance(request.instance)
        value = state.decided
        if value is None:
            # A decision tag exists, so the tagged round's proposal *is*
            # the decided value; reply if we hold it.
            value = state.proposals.get(request.round)
        if value is None:
            return []
        response = DecisionValue(request.instance, value)
        return [Send(sender, "RECOVER_RESP", response, response.wire_size)]

    def _on_recovery_response(self, response: DecisionValue) -> list[Action]:
        return self._decide(self.instance(response.instance), response.value)

    def _maybe_complete_recovery(self, state: InstanceState) -> list[Action]:
        """A late proposal can satisfy an outstanding tag recovery."""
        if state.awaiting_recovery_round is None or state.decided is not None:
            return []
        value = state.proposals.get(state.awaiting_recovery_round)
        if value is None:
            return []
        return self._decide(state, value)

    def _help_decided(self, sender: int, state: InstanceState) -> list[Action]:
        """Answer instance traffic from laggards with the full decision."""
        assert state.decided is not None
        response = DecisionValue(state.instance, state.decided)
        return [Send(sender, "RECOVER_RESP", response, response.wire_size)]
