"""Consensus protocols (the paper's Consensus module, §3.2).

Rotating-coordinator Chandra–Toueg consensus in two flavours: the
good-run-optimized variant used by the paper's modular stack, and the
textbook variant kept as an ablation baseline.
"""

from repro.consensus.base import RECOVERY_RETRY_DELAY, BaseConsensus
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.consensus.messages import (
    CONTROL_OVERHEAD,
    Ack,
    DecisionTag,
    DecisionValue,
    Estimate,
    Proposal,
    RecoveryRequest,
)
from repro.consensus.optimized import OptimizedConsensus

__all__ = [
    "CONTROL_OVERHEAD",
    "RECOVERY_RETRY_DELAY",
    "Ack",
    "BaseConsensus",
    "DecisionTag",
    "DecisionValue",
    "Estimate",
    "InstanceState",
    "OptimizedConsensus",
    "Proposal",
    "RecoveryRequest",
    "TextbookConsensus",
    "coordinator_of_round",
]
