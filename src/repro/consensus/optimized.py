"""Good-run-optimized Chandra–Toueg consensus (paper §3.2, Fig. 3).

Three optimizations over the textbook algorithm, following [25] (Urbán):

1. **No estimate phase in round 1** — the first-round coordinator
   proposes its own initial value directly, saving n-1 messages and one
   communication step per instance.
2. **Lazy rounds** — round r+1 starts only when the coordinator of
   round r is suspected (implemented in the shared base, used by both
   variants).
3. **DECISION tag** — the decision is reliably broadcast as a small tag
   naming the deciding round; receivers look the value up in that
   round's proposal. If the coordinator crashes before everyone has the
   proposal, the explicit recovery path of the base class kicks in
   ("additional communication steps may be required if the coordinator
   crashes").

In good runs an instance therefore costs: proposal to n-1 processes,
n-1 acks back, and a tag rbcast of (n-1)·⌊(n+1)/2⌋ small messages —
exactly the message pattern the paper's §5.2.1 counts for the modular
stack.
"""

from __future__ import annotations

from repro.consensus.base import BaseConsensus
from repro.consensus.instance import InstanceState
from repro.consensus.messages import DecisionTag, Proposal
from repro.stack.actions import Action, Send
from repro.stack.events import RbcastRequest


class OptimizedConsensus(BaseConsensus):
    """The consensus variant used by the paper's modular stack."""

    def _on_local_propose(self, state: InstanceState) -> list[Action]:
        if state.round != 1 or state.coordinator(1) != self.ctx.pid:
            return []  # non-coordinators just wait for the proposal
        if 1 in state.proposal_sent_rounds:
            return []
        assert state.estimate is not None
        value = state.estimate
        state.ts = 1
        state.proposals[1] = value
        state.proposal_sent_rounds.add(1)
        state.acks.setdefault(1, set()).add(self.ctx.pid)
        proposal = Proposal(state.instance, 1, value)
        return [
            Send(dst, "PROPOSAL", proposal, proposal.wire_size)
            for dst in self.ctx.others
        ]

    def _decision_broadcast(
        self, state: InstanceState, round_number: int
    ) -> RbcastRequest:
        tag = DecisionTag(state.instance, round_number)
        return RbcastRequest(tag, tag.wire_size)
