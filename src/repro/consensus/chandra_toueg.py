"""Textbook Chandra–Toueg consensus (all four phases, full decisions).

This is the unoptimized baseline kept for the ablation benches: round 1
runs the estimate phase (n-1 extra messages plus one extra communication
step per instance) and decisions are reliably broadcast with their full
value (large decision messages).

One deliberate deviation from the 1996 paper: rounds advance on
suspicion (lazily) rather than unconditionally after each ack, the same
round policy as the optimized variant. Free-running rounds would only
add junk traffic in good runs, making the unoptimized baseline look
*worse* — our variant is a conservative lower bound on the textbook
algorithm's cost, which keeps the measured optimization gains honest.
"""

from __future__ import annotations

from repro.consensus.base import BaseConsensus
from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.consensus.messages import DecisionValue, Estimate
from repro.stack.actions import Action, Send
from repro.stack.events import RbcastRequest


class TextbookConsensus(BaseConsensus):
    """Chandra–Toueg with the round-1 estimate phase and full decisions."""

    def _on_local_propose(self, state: InstanceState) -> list[Action]:
        assert state.estimate is not None
        round_number = state.round
        coordinator = coordinator_of_round(round_number, self.ctx.n)
        estimate = Estimate(state.instance, round_number, state.estimate, state.ts)
        if coordinator == self.ctx.pid:
            state.record_estimate(
                round_number, self.ctx.pid, estimate.ts, estimate.value
            )
            return self._maybe_propose_round(state, round_number)
        return [Send(coordinator, "ESTIMATE", estimate, estimate.wire_size)]

    def _decision_broadcast(
        self, state: InstanceState, round_number: int
    ) -> RbcastRequest:
        value = state.proposals[round_number]
        decision = DecisionValue(state.instance, value)
        return RbcastRequest(decision, decision.wire_size)
