"""Per-instance state of the rotating-coordinator consensus algorithm."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.types import Batch


def coordinator_of_round(round_number: int, n: int) -> int:
    """Rotating coordinator: round r is coordinated by ``(r-1) mod n``.

    Round 1 of *every* instance is coordinated by process 0 — the fact
    the monolithic stack's §4.1 optimization exploits (the decider of
    instance k is the first-round coordinator of instance k+1).
    """
    if round_number < 1:
        raise ValueError(f"rounds are 1-based, got {round_number}")
    return (round_number - 1) % n


@dataclass
class InstanceState:
    """Mutable state of one consensus instance at one process."""

    instance: int
    n: int
    #: Current round at this process (1-based, advances on suspicion or
    #: on receiving a proposal from a later round).
    round: int = 1
    #: Current estimate (None until this process proposes or adopts one).
    estimate: Batch | None = None
    #: Round in which the estimate was last adopted from a proposal.
    ts: int = 0
    #: Proposals received (or sent, at coordinators), by round.
    proposals: dict[int, Batch] = field(default_factory=dict)
    #: Rounds for which this process (as coordinator) sent a proposal.
    proposal_sent_rounds: set[int] = field(default_factory=set)
    #: Ack senders per round (coordinator bookkeeping; includes self).
    acks: dict[int, set[int]] = field(default_factory=dict)
    #: Estimates received per round: round -> sender -> (ts, value).
    estimates: dict[int, dict[int, tuple[int, Batch]]] = field(default_factory=dict)
    #: The decided value, once known.
    decided: Batch | None = None
    #: Whether this process (as coordinator) already broadcast a decision.
    decision_sent: bool = False
    #: Whether a recovery request is outstanding for a decision tag.
    awaiting_recovery_round: int | None = None

    def coordinator(self, round_number: int | None = None) -> int:
        """Coordinator of *round_number* (default: the current round)."""
        return coordinator_of_round(
            self.round if round_number is None else round_number, self.n
        )

    def record_estimate(self, round_number: int, sender: int, ts: int, value: Batch) -> None:
        """Store an estimate received for *round_number*."""
        self.estimates.setdefault(round_number, {})[sender] = (ts, value)

    def best_estimate(self, round_number: int) -> Batch:
        """The estimate with the largest timestamp for *round_number*.

        For timestamps ≥ 1 all tied estimates carry the same value (at
        most one proposal exists per round), so tie-breaks cannot affect
        the decided value. Timestamp-0 ties are genuine initial values
        and are broken in favour of larger batches (so pending messages
        win over empty estimates — a liveness concern after the initial
        coordinator crashes), then by sender id for determinism.
        """
        received = self.estimates.get(round_number, {})
        if not received:
            raise ValueError(f"no estimates recorded for round {round_number}")
        __, __, best_sender = max(
            (ts_value[0], len(ts_value[1]), sender)
            for sender, ts_value in received.items()
        )
        return received[best_sender][1]
