"""Ring Paxos atomic broadcast (extension beyond the reproduced paper).

Marandi et al.'s Ring Paxos (DSN 2010) reaches near-wire throughput by
disseminating values along a static ring of acceptors instead of having
one coordinator push to everyone: each link carries one copy of the
value per instance regardless of n, trading latency (a lap around the
ring) for per-node cost that stays O(1). This module re-asks the paper's
modularity question against that design, decomposed into the classical
Paxos roles as three microprotocols:

* :class:`RingLearner` (top) — delivers decided batches to the
  application in instance order and tracks in-flight submissions;
* :class:`RingProposer` (middle) — diffuses client submissions into the
  shared pool and proposes batches, one consensus instance at a time;
* :class:`RingAcceptor` (bottom) — the consensus core. Round 1 is the
  ring: the coordinator hands a :class:`RingToken` to its successor and
  the token circulates, accumulating votes. The node at which the token
  has majority votes *decides on the spot*, and the decision then rides
  the very same token for the rest of the lap (decisions piggybacked on
  ring traffic — no separate decision broadcast in good runs).

Safety rides on the Chandra–Toueg machinery of
:class:`~repro.consensus.base.BaseConsensus`: voting on the token is
exactly adopting the round-1 proposal (value ``v``, timestamp 1), and a
node votes only while still in round 1, so a ring decision implies a
majority locked ``(v, 1)`` — any later round's coordinator reads a
majority of estimates, intersects the voters, and re-proposes ``v``.
Suspicions fall back to the inherited rounds ≥ 2 (estimate/propose/ack,
direct sends), which is also how a crashed ring coordinator is replaced.

Ring repair: every node forwards to its nearest *non-suspected*
successor, re-routing in-flight tokens when the failure detector
suspects the node it last forwarded to, so the ring reconfigures around
a dead acceptor. A slow guard timer re-forwards stalled tokens (lost to
drops or healing partitions), and decided acceptors answer stale ring
traffic with the decision value directly, so a node the ring skipped —
e.g. while wrongly suspected — can always pull the outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.base import BaseConsensus
from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.consensus.messages import CONTROL_OVERHEAD, DecisionValue
from repro.net.message import NetMessage
from repro.net.wire import wire_payload
from repro.stack.actions import (
    Action,
    EmitDown,
    EmitUp,
    Send,
    SendToAll,
    StartTimer,
)
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    Event,
    ProposeRequest,
    batch_wire_size,
    message_wire_size,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage, Batch, MessageId

#: Modelled bytes per process id carried in a ring token's vote/learned sets.
PER_VOTE_OVERHEAD = 4

#: Period of the acceptor's token guard (re-forwards stalled laps).
RING_GUARD_INTERVAL = 0.25

#: How many decided successors a laggard reply may bundle beyond the
#: asked instance (turns the post-recovery catch-up crawl into a few
#: round trips instead of one per instance).
HELP_SPAN = 32

#: Per call, how many gap instances a freshly decided acceptor scans for
#: missed decisions (bounds the work of one stimulus).
GAP_SCAN_LIMIT = 256


@wire_payload
@dataclass(frozen=True, slots=True)
class RingToken:
    """The lap-carrier of one ring consensus instance.

    ``votes`` are the processes that adopted the round-1 value; the
    token is decided as soon as ``len(votes)`` reaches a majority.
    ``learned`` are the processes that have observed that decision. A
    ``value`` of ``None`` is a tag-only token, sent when the successor
    already voted and therefore holds the proposal locally.
    """

    instance: int
    value: Batch | None
    votes: tuple[int, ...]
    learned: tuple[int, ...]

    @property
    def wire_size(self) -> int:
        payload = 0 if self.value is None else batch_wire_size(self.value)
        ids = PER_VOTE_OVERHEAD * (len(self.votes) + len(self.learned))
        return payload + CONTROL_OVERHEAD + ids


class RingAcceptor(BaseConsensus):
    """Consensus with ring dissemination in round 1 (the acceptor role)."""

    name = "ringacceptor"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        #: Last (votes, learned) forwarded per undecided instance, for
        #: duplicate suppression and for re-routing on suspicion/guard.
        self._forwarded: dict[int, tuple[frozenset[int], frozenset[int]]] = {}
        #: Successor each undecided instance's token was last sent to.
        self._forward_dst: dict[int, int] = {}
        #: Cached value last forwarded (re-sent by repair).
        self._forward_value: dict[int, Batch] = {}
        self._guard_armed = False
        #: Contiguous decided prefix: every instance below is decided.
        self._floor = 0
        self._max_decided = -1

    # -- ring membership ----------------------------------------------------

    def _ring_members(self) -> frozenset[int]:
        """Reachable ring: everyone this process does not suspect."""
        suspects = self.ctx.suspects()
        return frozenset(
            p for p in range(self.ctx.n) if p == self.ctx.pid or p not in suspects
        )

    def _successor(self, members: frozenset[int]) -> int | None:
        """Nearest non-suspected successor in pid order (the static ring
        skips suspects — this is the repair-on-crash rule)."""
        for offset in range(1, self.ctx.n):
            candidate = (self.ctx.pid + offset) % self.ctx.n
            if candidate in members:
                return candidate
        return None

    # -- round 1: the ring pass --------------------------------------------

    def _on_local_propose(self, state: InstanceState) -> list[Action]:
        if state.round != 1 or coordinator_of_round(1, self.ctx.n) != self.ctx.pid:
            return []  # non-coordinators hold their estimate and wait
        if 1 in state.proposal_sent_rounds:
            return []
        assert state.estimate is not None
        value = state.estimate
        state.ts = 1
        state.proposals[1] = value
        state.proposal_sent_rounds.add(1)
        return self._circulate(
            state, value, frozenset({self.ctx.pid}), frozenset()
        )

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind == "RING":
            return self._on_ring_token(message.src, message.payload)
        return super().handle_message(message)

    def _on_ring_token(self, sender: int, token: RingToken) -> list[Action]:
        state = self.instance(token.instance)
        if state.decided is not None:
            # Stale or duplicate lap traffic: answer with the decision
            # directly (this is how a node the ring skipped pulls the
            # outcome once its own guard re-forwards).
            return self._help_decided(sender, state)
        value = token.value
        if value is None:
            value = state.proposals.get(1)
            if value is None:
                # A tag-only token without the locally adopted proposal:
                # the sender over-trusted our vote. Drop; rounds recover.
                return []
        votes = set(token.votes)
        learned = set(token.learned)
        if state.round == 1:
            # Voting = adopting the round-1 proposal, exactly like an ack
            # in the base machinery: lock (value, ts=1). A node PAST
            # round 1 must not vote — that guard is what lets the CT
            # majority-intersection argument absorb ring decisions.
            state.estimate = value
            state.ts = 1
            state.proposals.setdefault(1, value)
            votes.add(self.ctx.pid)
        actions: list[Action] = []
        if len(votes) >= self.ctx.majority:
            learned.add(self.ctx.pid)
            actions.extend(self._decide(state, value))
        actions.extend(
            self._circulate(state, value, frozenset(votes), frozenset(learned))
        )
        return actions

    def _circulate(
        self,
        state: InstanceState,
        value: Batch,
        votes: frozenset[int],
        learned: frozenset[int],
    ) -> list[Action]:
        """Forward the token to the ring successor if it still carries news."""
        members = self._ring_members()
        if learned >= members:
            return []  # the decision has completed its lap
        if len(votes) < self.ctx.majority and votes >= members:
            # Every reachable acceptor voted and it is still short of a
            # majority: the ring cannot decide; leave the instance to the
            # suspicion-driven rounds machinery.
            return []
        k = state.instance
        if state.decided is None:
            previous = self._forwarded.get(k)
            if (
                previous is not None
                and votes <= previous[0]
                and learned <= previous[1]
            ):
                return []  # duplicate: nothing the successor has not seen
        successor = self._successor(members)
        if successor is None:
            return []
        if state.decided is None:
            self._forwarded[k] = (votes, learned)
            self._forward_dst[k] = successor
            self._forward_value[k] = value
        token = RingToken(
            instance=k,
            value=None if successor in votes else value,
            votes=tuple(sorted(votes)),
            learned=tuple(sorted(learned)),
        )
        actions: list[Action] = [Send(successor, "RING", token, token.wire_size)]
        actions.extend(self._arm_guard())
        return actions

    # -- repair: re-route around suspects, re-forward stalled laps ----------

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        actions = self._repair(suspects)
        actions.extend(super().handle_suspicion(suspects))
        return actions

    def _repair(self, suspects: frozenset[int]) -> list[Action]:
        """Re-send in-flight tokens whose last hop is now suspected."""
        actions: list[Action] = []
        for k, dst in list(self._forward_dst.items()):
            if dst not in suspects:
                continue
            actions.extend(self._re_forward(k))
        return actions

    def _re_forward(self, k: int) -> list[Action]:
        record = self._forwarded.get(k)
        value = self._forward_value.get(k)
        if record is None or value is None:
            return []
        state = self.instance(k)
        if state.decided is not None:
            return []
        votes, learned = record
        # Bypass duplicate suppression: the point is to re-send.
        self._forwarded.pop(k, None)
        return self._circulate(state, value, votes, learned)

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name == "ring-guard":
            return self._on_guard()
        return super().handle_timer(name, payload)

    def _arm_guard(self) -> list[Action]:
        if self._guard_armed:
            return []
        self._guard_armed = True
        return [StartTimer("ring-guard", RING_GUARD_INTERVAL)]

    def _on_guard(self) -> list[Action]:
        self._guard_armed = False
        actions: list[Action] = []
        for k in sorted(self._forward_dst):
            actions.extend(self._re_forward(k))
        if self._forward_dst:
            actions.extend(self._arm_guard())
        return actions

    # -- decisions ---------------------------------------------------------

    def _decide(self, state: InstanceState, value: Batch) -> list[Action]:
        already = state.decided is not None
        actions = super()._decide(state, value)
        if already:
            return actions
        k = state.instance
        self._forwarded.pop(k, None)
        self._forward_dst.pop(k, None)
        self._forward_value.pop(k, None)
        if k > self._max_decided:
            self._max_decided = k
        actions.extend(self._recover_gaps())
        return actions

    def _recover_gaps(self) -> list[Action]:
        """Request decisions for instances the ring passed us by.

        Proposers only start instance k+1 after observing k decided
        somewhere, so a gap below the local maximum means the decision
        exists — pull it rather than stalling the learner forever.
        """
        while (
            self.has_instance(self._floor)
            and self._instances[self._floor].decided is not None
        ):
            self._floor += 1
        actions: list[Action] = []
        scanned = 0
        k = self._floor
        while k < self._max_decided and scanned < GAP_SCAN_LIMIT:
            state = self.instance(k)
            if state.decided is None and state.awaiting_recovery_round is None:
                state.awaiting_recovery_round = 1
                actions.extend(self._request_recovery(state))
            k += 1
            scanned += 1
        return actions

    def _announce_decision(self, state: InstanceState, round_number: int) -> list[Action]:
        # Rounds >= 2 fallback: there is no reliable broadcast module in
        # this stack (good runs disseminate on the ring), so a round
        # coordinator sends the full decision value directly. Safe even
        # if it crashes mid-send: survivors advance rounds and, by the
        # majority-locking argument, re-decide the same value.
        value = state.proposals[round_number]
        response = DecisionValue(state.instance, value)
        actions: list[Action] = [
            Send(dst, "RECOVER_RESP", response, response.wire_size)
            for dst in self.ctx.others
        ]
        actions.extend(self._decide(state, value))
        return actions

    def _help_decided(self, sender: int, state: InstanceState) -> list[Action]:
        """Bundle decided successors with the asked instance, shrinking a
        recovering node's catch-up from one round trip per instance to
        one per :data:`HELP_SPAN`."""
        actions = super()._help_decided(sender, state)
        k = state.instance + 1
        for _ in range(HELP_SPAN):
            if not self.has_instance(k):
                break
            decided = self._instances[k].decided
            if decided is None:
                break
            response = DecisionValue(k, decided)
            actions.append(
                Send(sender, "RECOVER_RESP", response, response.wire_size)
            )
            k += 1
        return actions

    # -- crash recovery -----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Rejoin at the WAL frontier: never chase pre-crash instances."""
        self._floor = next_instance
        self._max_decided = max(self._max_decided, next_instance - 1)


class RingProposer(Microprotocol):
    """Pool and propose (the proposer role).

    Client submissions are diffused to every peer proposer, so each
    process holds the full unordered pool and any round coordinator has
    every message available as its estimate — the same reduction the
    modular stack uses. One consensus instance runs at a time; a guard
    timer re-diffuses messages that linger (a sender may crash after
    reaching only some peers) and re-proposes.
    """

    name = "ringproposer"

    def __init__(
        self,
        ctx: ModuleContext,
        guard_timeout: float = 0.5,
        max_batch: int | None = None,
    ) -> None:
        super().__init__(ctx)
        self.guard_timeout = guard_timeout
        self.max_batch = max_batch
        self._pool: dict[MessageId, AppMessage] = {}
        self._arrival_generation: dict[MessageId, int] = {}
        self._generation = 0
        self._next_instance = 0
        self._running = False
        self._guard_armed = False

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, AbcastRequest):
            return self._on_abcast(event.message)
        if isinstance(event, DecideIndication):
            return self._on_decide(event.instance, event.value)
        return super().handle_event(event)

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind == "DIFFUSE":
            return self._on_diffuse(message.payload)
        return super().handle_message(message)

    def _on_abcast(self, message: AppMessage) -> list[Action]:
        self._pool[message.msg_id] = message
        self._arrival_generation[message.msg_id] = self._generation
        actions: list[Action] = [
            SendToAll("DIFFUSE", message, message_wire_size(message))
        ]
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _on_diffuse(self, message: AppMessage) -> list[Action]:
        if message.msg_id not in self._pool:
            self._pool[message.msg_id] = message
            self._arrival_generation[message.msg_id] = self._generation
        actions = self._maybe_propose()
        actions.extend(self._manage_guard())
        return actions

    def _on_decide(self, instance: int, batch: Batch) -> list[Action]:
        for message in batch.messages:
            self._pool.pop(message.msg_id, None)
            self._arrival_generation.pop(message.msg_id, None)
        actions: list[Action] = [EmitUp(DecideIndication(instance, batch))]
        if instance >= self._next_instance:
            self._next_instance = instance + 1
            self._running = False
            actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _maybe_propose(self) -> list[Action]:
        if self._running or not self._pool:
            return []
        self._running = True
        messages = tuple(self._pool.values())
        if self.max_batch is not None:
            messages = messages[: self.max_batch]
        batch = Batch(self._next_instance, messages)
        return [EmitDown(ProposeRequest(self._next_instance, batch))]

    # -- §3.3-style correctness guard ---------------------------------------

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name == "guard":
            return self._on_guard()
        return super().handle_timer(name, payload)

    def _manage_guard(self) -> list[Action]:
        if self._pool and not self._guard_armed:
            self._guard_armed = True
            return [StartTimer("guard", self.guard_timeout)]
        return []

    def _on_guard(self) -> list[Action]:
        self._guard_armed = False
        actions: list[Action] = []
        stale = [
            message
            for message in self._pool.values()
            if self._arrival_generation[message.msg_id] < self._generation
        ]
        for message in stale:
            actions.append(
                SendToAll("DIFFUSE", message, message_wire_size(message))
            )
        self._generation += 1
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    # -- crash recovery -----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Rejoin proposing at the group's frontier, not at instance 0."""
        self._next_instance = max(self._next_instance, next_instance)


class RingLearner(Microprotocol):
    """In-order delivery of decided batches (the learner role)."""

    name = "ringlearner"

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._next_deliver = 0
        self._pending: dict[int, Batch] = {}
        self._adelivered: set[MessageId] = set()
        self._in_flight: set[MessageId] = set()

    @property
    def next_instance(self) -> int:
        """Next undelivered consensus instance (progress probe)."""
        return self._next_deliver

    @property
    def unordered_count(self) -> int:
        """Own submissions not yet delivered (live backpressure probe)."""
        return len(self._in_flight)

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, AbcastRequest):
            self._in_flight.add(event.message.msg_id)
            return [EmitDown(event)]
        if isinstance(event, DecideIndication):
            return self._on_decide(event.instance, event.value)
        return super().handle_event(event)

    def _on_decide(self, instance: int, batch: Batch) -> list[Action]:
        if instance < self._next_deliver or instance in self._pending:
            return []  # duplicate (catch-up traffic re-decides old instances)
        self._pending[instance] = batch
        actions: list[Action] = []
        while self._next_deliver in self._pending:
            decided = self._pending.pop(self._next_deliver)
            for message in decided.in_delivery_order():
                if message.msg_id in self._adelivered:
                    continue
                self._adelivered.add(message.msg_id)
                self._in_flight.discard(message.msg_id)
                actions.append(EmitUp(AdeliverIndication(message)))
            self._next_deliver += 1
        return actions

    # -- crash recovery -----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Fast-forward past the WAL-recovered prefix."""
        self._next_deliver = max(self._next_deliver, next_instance)
        self._adelivered.update(delivered)
        self._pending = {
            k: batch for k, batch in self._pending.items() if k >= self._next_deliver
        }


def ring_stack(
    ctx: ModuleContext,
    *,
    guard_timeout: float = 0.5,
    max_batch: int | None = None,
) -> list[Microprotocol]:
    """The Ring Paxos stack, top to bottom: learner, proposer, acceptor."""
    return [
        RingLearner(ctx),
        RingProposer(ctx, guard_timeout=guard_timeout, max_batch=max_batch),
        RingAcceptor(ctx),
    ]
