"""Indirect consensus: ordering message *identifiers*, not payloads.

The paper's related work highlights Ekwall & Schiper's "Solving atomic
broadcast with indirect consensus" (DSN 2006, the paper's [12]) as the
technique that significantly reduced data on the wire while keeping the
modular reduction: consensus agrees on a batch of message *ids*; the
message *content* travels only once, in the diffusion step.

Per consensus this cuts the modular stack's data volume roughly in half
— from ``2(n-1)·M·l`` (diffusion + full proposal) to ``(n-1)·M·l``
(diffusion only; the proposal shrinks to ~16 bytes per id) — at the cost
of a new failure mode: a process can learn the decided *order* before it
holds the *content*. The reduction stays correct through an explicit
fetch protocol: delivery stalls at the gap, missing ids are requested
from all processes (every process keeps a bounded cache of recently
delivered payloads), and a retry timer covers races and crashes.

This module is an extension beyond the reproduced paper; the bench
``benchmarks/bench_extension_indirect.py`` measures what [12]'s idea
buys inside our calibrated model.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.abcast.modular import ModularAtomicBroadcast
from repro.net.message import NetMessage
from repro.net.wire import wire_payload
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    StartTimer,
)
from repro.stack.events import (
    AdeliverIndication,
    ProposeRequest,
    message_wire_size,
)
from repro.stack.module import ModuleContext
from repro.types import AppMessage, Batch, MessageId

#: Modelled bytes per message identifier on the wire.
ID_WIRE_SIZE = 16

#: Delay between retries of a content fetch.
FETCH_RETRY_DELAY = 0.2

#: How many delivered payloads each process keeps for fetch requests.
CONTENT_CACHE_SIZE = 4096


@wire_payload
@dataclass(frozen=True, slots=True)
class IdBatch:
    """A consensus value carrying message ids only.

    Duck-types the parts of :class:`~repro.types.Batch` the consensus
    machinery touches (``instance``, ``len``, ``size_bytes``), so the
    consensus module orders it without knowing payloads exist.
    """

    instance: int
    ids: tuple[MessageId, ...] = ()

    @property
    def size_bytes(self) -> int:
        # Ids are metadata; batch_wire_size adds PER_MESSAGE_OVERHEAD per
        # entry, which models the id list itself.
        return 0

    def __len__(self) -> int:
        return len(self.ids)


def decided_ids(value: Any) -> tuple[MessageId, ...]:
    """Ids of a decided value, whether indirect or a plain batch.

    Round changes can decide an empty placeholder :class:`Batch` (a
    never-proposed participant's estimate), so both shapes occur.
    """
    if isinstance(value, IdBatch):
        return value.ids
    if isinstance(value, Batch):
        return tuple(m.msg_id for m in value.messages)
    raise TypeError(f"unexpected consensus value {value!r}")


class IndirectModularAtomicBroadcast(ModularAtomicBroadcast):
    """The modular stack's abcast module, in indirect-consensus mode."""

    name = "abcast"

    def __init__(
        self,
        ctx: ModuleContext,
        guard_timeout: float = 0.5,
        max_batch: int | None = None,
    ) -> None:
        super().__init__(ctx, guard_timeout=guard_timeout, max_batch=max_batch)
        #: Recently delivered payloads, kept to answer fetch requests.
        self._content_cache: dict[MessageId, AppMessage] = {}
        self._cache_order: deque[MessageId] = deque()
        #: Ids currently being fetched (waiting for content).
        self._fetching: set[MessageId] = set()

    # -- proposing ids instead of payloads --------------------------------

    def _maybe_propose(self) -> list[Action]:
        if self._consensus_running or not self._unordered:
            return []
        self._consensus_running = True
        instance = self._next_decide
        ids = tuple(self._unordered.keys())
        if self.max_batch is not None:
            ids = ids[: self.max_batch]
        return [EmitDown(ProposeRequest(instance, IdBatch(instance, ids)))]

    # -- delivery with content fetching --------------------------------------

    def _on_decide(self, instance: int, batch: Any) -> list[Action]:
        if instance < self._next_decide:
            return []
        self._pending_decisions[instance] = batch
        return self._drain()

    def _drain(self) -> list[Action]:
        actions: list[Action] = []
        while self._next_decide in self._pending_decisions:
            value = self._pending_decisions[self._next_decide]
            missing = [
                mid
                for mid in decided_ids(value)
                if mid not in self._adelivered and mid not in self._unordered
            ]
            if missing and isinstance(value, Batch):
                # A plain batch carries its own payloads; admit them.
                for message in value.messages:
                    if message.msg_id not in self._adelivered:
                        self._unordered.setdefault(message.msg_id, message)
                        self._arrival_generation.setdefault(
                            message.msg_id, self._guard_generation
                        )
                missing = []
            if missing:
                # Total order forbids skipping: stall here and fetch.
                actions.extend(self._request_content(missing))
                break
            del self._pending_decisions[self._next_decide]
            for mid in sorted(decided_ids(value)):
                if mid in self._adelivered:
                    continue
                message = self._unordered.pop(mid)
                self._arrival_generation.pop(mid, None)
                self._adelivered.add(mid)
                self._remember_content(message)
                actions.append(EmitUp(AdeliverIndication(message)))
            self._next_decide += 1
            self._consensus_running = False
            if self._fetching:
                self._fetching.clear()
                actions.append(CancelTimer("fetch"))
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _request_content(self, missing: list[MessageId]) -> list[Action]:
        new = [mid for mid in missing if mid not in self._fetching]
        self._fetching.update(missing)
        if not new:
            return []
        payload = tuple(missing)
        size = ID_WIRE_SIZE * len(missing) + 8
        actions: list[Action] = [
            Send(dst, "FETCH", payload, size) for dst in self.ctx.others
        ]
        actions.append(StartTimer("fetch", FETCH_RETRY_DELAY, payload))
        return actions

    def _remember_content(self, message: AppMessage) -> None:
        if message.msg_id in self._content_cache:
            return
        self._content_cache[message.msg_id] = message
        self._cache_order.append(message.msg_id)
        while len(self._cache_order) > CONTENT_CACHE_SIZE:
            evicted = self._cache_order.popleft()
            self._content_cache.pop(evicted, None)

    # -- stimuli ---------------------------------------------------------------

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind == "FETCH":
            return self._on_fetch(message.src, message.payload)
        if message.kind == "CONTENT":
            return self._on_content(message.payload)
        return super().handle_message(message)

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name == "fetch":
            if not self._fetching:
                return []
            wanted = list(self._fetching)
            self._fetching.clear()
            return self._request_content(wanted)
        return super().handle_timer(name, payload)

    def _on_fetch(self, sender: int, wanted: tuple[MessageId, ...]) -> list[Action]:
        known = []
        for mid in wanted:
            message = self._unordered.get(mid) or self._content_cache.get(mid)
            if message is not None:
                known.append(message)
        if not known:
            return []
        size = sum(message_wire_size(m) for m in known) + 8
        return [Send(sender, "CONTENT", tuple(known), size)]

    def _on_content(self, messages: tuple[AppMessage, ...]) -> list[Action]:
        for message in messages:
            if message.msg_id in self._adelivered:
                continue
            self._unordered.setdefault(message.msg_id, message)
            self._arrival_generation.setdefault(
                message.msg_id, self._guard_generation
            )
        return self._drain()
