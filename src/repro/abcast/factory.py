"""Builds the module list of either stack from a :class:`StackConfig`."""

from __future__ import annotations

from repro.abcast.indirect import IndirectModularAtomicBroadcast
from repro.abcast.modular import ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.config import ConsensusVariant, StackConfig, StackKind
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.optimized import OptimizedConsensus
from repro.errors import ConfigurationError
from repro.stack.module import Microprotocol, ModuleContext


def build_stack(
    config: StackConfig,
    ctx: ModuleContext,
    *,
    max_batch: int | None = None,
) -> list[Microprotocol]:
    """Instantiate the protocol modules of one process, top to bottom.

    The modular stack is the paper's Fig. 1 (left): abcast over consensus
    over reliable broadcast, three separately composed modules. The
    monolithic stack (Fig. 1, right) is a single merged module.

    Args:
        config: Which stack and which protocol variants to build.
        ctx: The process's module context.
        max_batch: Flow-control cap on messages ordered per consensus
            (see :class:`~repro.config.FlowControlConfig`).
    """
    if config.kind is StackKind.MONOLITHIC:
        return [
            MonolithicAtomicBroadcast(ctx, config.optimizations, max_batch=max_batch)
        ]
    if config.kind is StackKind.SEQUENCER:
        return [SequencerAtomicBroadcast(ctx)]
    if config.kind is StackKind.MODULAR:
        if config.consensus is ConsensusVariant.TEXTBOOK:
            consensus: Microprotocol = TextbookConsensus(ctx)
        else:
            consensus = OptimizedConsensus(ctx)
        if config.consensus is ConsensusVariant.INDIRECT:
            abcast: Microprotocol = IndirectModularAtomicBroadcast(
                ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
            )
        else:
            abcast = ModularAtomicBroadcast(
                ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
            )
        return [
            abcast,
            consensus,
            ReliableBroadcast(ctx, variant=config.rbcast),
        ]
    raise ConfigurationError(f"unknown stack kind {config.kind!r}")
