"""Builds the module list of either stack from a :class:`StackConfig`.

Two entry points:

* :func:`build_stack` — the module list alone, for callers that manage
  their own :class:`~repro.stack.module.ModuleContext` (unit tests, the
  nemesis broken-stack fixtures);
* :func:`build_process` — modules plus a hosting runtime, built against
  the :class:`~repro.stack.interface.RuntimeProtocol` contract so the
  same wiring serves the simulator's
  :class:`~repro.stack.runtime.ProcessRuntime` and the live
  :class:`~repro.live.runtime.LiveRuntime`.
"""

from __future__ import annotations

from typing import Callable

from repro.abcast.indirect import IndirectModularAtomicBroadcast
from repro.abcast.modular import ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.config import ConsensusVariant, StackConfig, StackKind
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.optimized import OptimizedConsensus
from repro.errors import ConfigurationError
from repro.stack.interface import RuntimeProtocol
from repro.stack.module import Microprotocol, ModuleContext

#: Builds a runtime around a finished module list. The factory runs
#: after the modules exist because every runtime implementation takes
#: its stack at construction time.
RuntimeFactory = Callable[[list[Microprotocol]], RuntimeProtocol]

#: Signature of :func:`build_stack`, for pluggable replacements.
StackFactory = Callable[..., "list[Microprotocol]"]


def build_stack(
    config: StackConfig,
    ctx: ModuleContext,
    *,
    max_batch: int | None = None,
) -> list[Microprotocol]:
    """Instantiate the protocol modules of one process, top to bottom.

    The modular stack is the paper's Fig. 1 (left): abcast over consensus
    over reliable broadcast, three separately composed modules. The
    monolithic stack (Fig. 1, right) is a single merged module.

    Args:
        config: Which stack and which protocol variants to build.
        ctx: The process's module context.
        max_batch: Flow-control cap on messages ordered per consensus
            (see :class:`~repro.config.FlowControlConfig`).
    """
    if config.kind is StackKind.MONOLITHIC:
        return [
            MonolithicAtomicBroadcast(ctx, config.optimizations, max_batch=max_batch)
        ]
    if config.kind is StackKind.SEQUENCER:
        return [SequencerAtomicBroadcast(ctx)]
    if config.kind is StackKind.MODULAR:
        if config.consensus is ConsensusVariant.TEXTBOOK:
            consensus: Microprotocol = TextbookConsensus(ctx)
        else:
            consensus = OptimizedConsensus(ctx)
        if config.consensus is ConsensusVariant.INDIRECT:
            abcast: Microprotocol = IndirectModularAtomicBroadcast(
                ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
            )
        else:
            abcast = ModularAtomicBroadcast(
                ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
            )
        return [
            abcast,
            consensus,
            ReliableBroadcast(ctx, variant=config.rbcast),
        ]
    raise ConfigurationError(f"unknown stack kind {config.kind!r}")


def build_process(
    config: StackConfig,
    pid: int,
    n: int,
    runtime_factory: RuntimeFactory,
    *,
    max_batch: int | None = None,
    stack_factory: StackFactory | None = None,
) -> RuntimeProtocol:
    """Build one process: its module stack hosted on a runtime.

    The module context's ``suspects`` query must reach the runtime's
    failure detector, but the runtime cannot exist before its modules do
    — this helper closes that cycle (via a late-bound reference) so that
    neither the simulator nor the live deployment has to.

    Args:
        config: Which stack and which protocol variants to build.
        pid: This process's identifier.
        n: Group size.
        runtime_factory: Builds the hosting runtime from the finished
            module list (e.g. a ``ProcessRuntime`` or ``LiveRuntime``
            constructor closure).
        max_batch: Flow-control cap on messages ordered per consensus.
        stack_factory: Optional :func:`build_stack` replacement with the
            same signature (the nemesis swarm injects deliberately broken
            stacks through this).
    """
    make_stack = stack_factory if stack_factory is not None else build_stack
    holder: list[RuntimeProtocol] = []

    def suspects() -> frozenset[int]:
        return holder[0].suspects() if holder else frozenset()

    ctx = ModuleContext(pid=pid, n=n, suspects=suspects)
    modules = make_stack(config, ctx, max_batch=max_batch)
    runtime = runtime_factory(modules)
    holder.append(runtime)
    return runtime
