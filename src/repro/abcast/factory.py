"""Builds the module list of any stack from a :class:`StackConfig`.

Two entry points:

* :func:`build_stack` — the module list alone, for callers that manage
  their own :class:`~repro.stack.module.ModuleContext` (unit tests, the
  nemesis broken-stack fixtures);
* :func:`build_process` — modules plus a hosting runtime, built against
  the :class:`~repro.stack.interface.RuntimeProtocol` contract so the
  same wiring serves the simulator's
  :class:`~repro.stack.runtime.ProcessRuntime` and the live
  :class:`~repro.live.runtime.LiveRuntime`.

Registration is table-driven: :data:`_STACK_BUILDERS` maps each
:class:`~repro.config.StackKind` to its module-list builder, so adding a
stack means adding one row here plus a label in
:data:`repro.config.STACK_REGISTRY` — CLI ``--help``, sweeps, and
nemesis label validation pick it up automatically.
"""

from __future__ import annotations

from typing import Callable

from repro.abcast.batching import DistillationLayer
from repro.abcast.indirect import IndirectModularAtomicBroadcast
from repro.abcast.modular import ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.abcast.ringpaxos import ring_stack
from repro.abcast.sequencer import SequencerAtomicBroadcast
from repro.broadcast.reliable import ReliableBroadcast
from repro.config import ConsensusVariant, StackConfig, StackKind
from repro.consensus.chandra_toueg import TextbookConsensus
from repro.consensus.optimized import OptimizedConsensus
from repro.errors import ConfigurationError
from repro.stack.interface import RuntimeProtocol
from repro.stack.module import Microprotocol, ModuleContext

#: Builds a runtime around a finished module list. The factory runs
#: after the modules exist because every runtime implementation takes
#: its stack at construction time.
RuntimeFactory = Callable[[list[Microprotocol]], RuntimeProtocol]

#: Signature of :func:`build_stack`, for pluggable replacements.
StackFactory = Callable[..., "list[Microprotocol]"]

#: Module-list builder for one stack kind: (config, ctx, max_batch).
StackBuilder = Callable[
    [StackConfig, ModuleContext, "int | None"], "list[Microprotocol]"
]


def _build_monolithic(
    config: StackConfig, ctx: ModuleContext, max_batch: int | None
) -> list[Microprotocol]:
    return [MonolithicAtomicBroadcast(ctx, config.optimizations, max_batch=max_batch)]


def _build_sequencer(
    config: StackConfig, ctx: ModuleContext, max_batch: int | None
) -> list[Microprotocol]:
    return [SequencerAtomicBroadcast(ctx)]


def _build_modular(
    config: StackConfig, ctx: ModuleContext, max_batch: int | None
) -> list[Microprotocol]:
    if config.consensus is ConsensusVariant.TEXTBOOK:
        consensus: Microprotocol = TextbookConsensus(ctx)
    else:
        consensus = OptimizedConsensus(ctx)
    if config.consensus is ConsensusVariant.INDIRECT:
        abcast: Microprotocol = IndirectModularAtomicBroadcast(
            ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
        )
    else:
        abcast = ModularAtomicBroadcast(
            ctx, guard_timeout=config.guard_timeout, max_batch=max_batch
        )
    return [
        abcast,
        consensus,
        ReliableBroadcast(ctx, variant=config.rbcast),
    ]


def _build_ringpaxos(
    config: StackConfig, ctx: ModuleContext, max_batch: int | None
) -> list[Microprotocol]:
    return ring_stack(ctx, guard_timeout=config.guard_timeout, max_batch=max_batch)


#: The registration table. ``BATCHED_SEQUENCER`` reuses the sequencer
#: builder — the batching layer is prepended by :func:`build_stack`.
_STACK_BUILDERS: dict[StackKind, StackBuilder] = {
    StackKind.MONOLITHIC: _build_monolithic,
    StackKind.SEQUENCER: _build_sequencer,
    StackKind.MODULAR: _build_modular,
    StackKind.RINGPAXOS: _build_ringpaxos,
    StackKind.BATCHED_SEQUENCER: _build_sequencer,
}


def build_stack(
    config: StackConfig,
    ctx: ModuleContext,
    *,
    max_batch: int | None = None,
) -> list[Microprotocol]:
    """Instantiate the protocol modules of one process, top to bottom.

    The modular stack is the paper's Fig. 1 (left): abcast over consensus
    over reliable broadcast, three separately composed modules. The
    monolithic stack (Fig. 1, right) is a single merged module. The
    post-2007 additions (ring dissemination, distillation) register in
    :data:`_STACK_BUILDERS` alongside them.

    Args:
        config: Which stack and which protocol variants to build.
        ctx: The process's module context.
        max_batch: Flow-control cap on messages ordered per consensus
            (see :class:`~repro.config.FlowControlConfig`).
    """
    builder = _STACK_BUILDERS.get(config.kind)
    if builder is None:
        registered = ", ".join(sorted(kind.value for kind in _STACK_BUILDERS))
        raise ConfigurationError(
            f"unknown stack kind {config.kind!r} (registered stacks: {registered})"
        )
    modules = builder(config, ctx, max_batch)
    batching = config.batching
    if batching is None and config.kind is StackKind.BATCHED_SEQUENCER:
        batching = config.batching_or_default()
    if batching is not None:
        modules.insert(0, DistillationLayer(ctx, batching))
    return modules


def build_process(
    config: StackConfig,
    pid: int,
    n: int,
    runtime_factory: RuntimeFactory,
    *,
    max_batch: int | None = None,
    stack_factory: StackFactory | None = None,
) -> RuntimeProtocol:
    """Build one process: its module stack hosted on a runtime.

    The module context's ``suspects`` query must reach the runtime's
    failure detector, but the runtime cannot exist before its modules do
    — this helper closes that cycle (via a late-bound reference) so that
    neither the simulator nor the live deployment has to.

    Args:
        config: Which stack and which protocol variants to build.
        pid: This process's identifier.
        n: Group size.
        runtime_factory: Builds the hosting runtime from the finished
            module list (e.g. a ``ProcessRuntime`` or ``LiveRuntime``
            constructor closure).
        max_batch: Flow-control cap on messages ordered per consensus.
        stack_factory: Optional :func:`build_stack` replacement with the
            same signature (the nemesis swarm injects deliberately broken
            stacks through this).
    """
    make_stack = stack_factory if stack_factory is not None else build_stack
    holder: list[RuntimeProtocol] = []

    def suspects() -> frozenset[int]:
        return holder[0].suspects() if holder else frozenset()

    ctx = ModuleContext(pid=pid, n=n, suspects=suspects)
    modules = make_stack(config, ctx, max_batch=max_batch)
    runtime = runtime_factory(modules)
    holder.append(runtime)
    return runtime
