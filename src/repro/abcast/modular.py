"""Modular atomic broadcast (paper §3.3, Fig. 1 left / Fig. 4).

Chandra–Toueg reduction of atomic broadcast to consensus, implemented as
a module that treats consensus as a black box: it only ever exchanges
``ProposeRequest``/``DecideIndication`` events with the module below and
cannot see coordinators, rounds or consensus message flows — the
opacity whose performance cost the paper measures.

Protocol:

* ``abcast(m)`` — diffuse *m* to every process over plain quasi-reliable
  channels (the §3.3 optimization: no reliable broadcast for diffusion)
  and add it to the set of unordered messages.
* Whenever unordered messages exist and no consensus instance is
  running, propose the whole set as instance ``k`` (the next undecided
  instance).
* On ``decide(k, batch)`` — adeliver the batch in deterministic
  :class:`~repro.types.MessageId` order, skipping duplicates, then start
  the next instance if messages remain.

Correctness guard (§3.3): plain-channel diffusion can leave a message at
only a subset of processes if its sender crashes mid-diffusion. A guard
timer re-diffuses messages that stay unordered for more than
``guard_timeout`` seconds and re-attempts a proposal, which guarantees
every correct process (in particular, every future coordinator)
eventually holds the message. This replaces the paper's "start a
consensus even if no message arrives" rule by a mechanism with the same
effect and no idle-time traffic.
"""

from __future__ import annotations

from typing import Any

from repro.net.message import NetMessage
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    Send,
    StartTimer,
)
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    DecideIndication,
    Event,
    ProposeRequest,
    message_wire_size,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage, Batch, MessageId

#: Name of the §3.3 correctness guard timer.
GUARD_TIMER = "guard"


class ModularAtomicBroadcast(Microprotocol):
    """ABcast module of the modular stack; sits on top of consensus."""

    name = "abcast"

    def __init__(
        self,
        ctx: ModuleContext,
        guard_timeout: float = 0.5,
        max_batch: int | None = None,
    ) -> None:
        super().__init__(ctx)
        self.guard_timeout = guard_timeout
        self.max_batch = max_batch
        #: Received but not yet adelivered messages, insertion-ordered.
        self._unordered: dict[MessageId, AppMessage] = {}
        #: Guard generation at which each unordered message arrived; the
        #: guard only re-diffuses messages older than one full period.
        self._arrival_generation: dict[MessageId, int] = {}
        self._guard_generation = 0
        #: Ids already adelivered (cross-batch deduplication).
        self._adelivered: set[MessageId] = set()
        #: Next consensus instance to decide (== next to propose).
        self._next_decide = 0
        #: Whether a proposal for ``_next_decide`` is outstanding.
        self._consensus_running = False
        #: Decisions that arrived ahead of ``_next_decide``.
        self._pending_decisions: dict[int, Batch] = {}
        self._guard_armed = False

    # -- introspection (used by tests and the flow controller) ----------

    @property
    def unordered_count(self) -> int:
        """Number of messages awaiting ordering."""
        return len(self._unordered)

    @property
    def next_instance(self) -> int:
        """The next consensus instance this process will decide."""
        return self._next_decide

    # -- crash recovery ----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Fast-forward a freshly built stack to a recovered position.

        Called once, before any traffic, on a worker that restarted
        after a crash and caught up via WAL + state transfer:
        *delivered* ids were already adelivered by the previous
        incarnation (or applied during catch-up) and must never be
        adelivered again, and the next consensus instance this process
        participates in is *next_instance* — proposing instance 0 again
        would stall forever, because round-1 coordinators never re-run
        decided instances (laggards are served decisions on demand via
        the consensus recovery path instead).
        """
        self._next_decide = max(self._next_decide, next_instance)
        self._adelivered.update(delivered)
        for msg_id in delivered:
            self._unordered.pop(msg_id, None)
            self._arrival_generation.pop(msg_id, None)
        for instance in [i for i in self._pending_decisions if i < self._next_decide]:
            del self._pending_decisions[instance]

    # -- stimuli ---------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, AbcastRequest):
            return self._on_abcast(event.message)
        if isinstance(event, DecideIndication):
            return self._on_decide(event.instance, event.value)
        return super().handle_event(event)

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind != "DIFFUSE":
            return super().handle_message(message)
        return self._on_diffuse(message.payload)

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name != GUARD_TIMER:
            return super().handle_timer(name, payload)
        return self._on_guard_fired()

    # -- protocol --------------------------------------------------------

    def _on_abcast(self, message: AppMessage) -> list[Action]:
        self._unordered[message.msg_id] = message
        self._arrival_generation[message.msg_id] = self._guard_generation
        actions: list[Action] = [
            Send(dst, "DIFFUSE", message, message_wire_size(message))
            for dst in self.ctx.others
        ]
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _on_diffuse(self, message: AppMessage) -> list[Action]:
        if message.msg_id in self._adelivered or message.msg_id in self._unordered:
            return []
        self._unordered[message.msg_id] = message
        self._arrival_generation[message.msg_id] = self._guard_generation
        actions = self._maybe_propose()
        actions.extend(self._manage_guard())
        return actions

    def _on_decide(self, instance: int, batch: Batch) -> list[Action]:
        if instance < self._next_decide:
            return []  # duplicate decision (e.g. recovery race)
        self._pending_decisions[instance] = batch
        actions: list[Action] = []
        while self._next_decide in self._pending_decisions:
            decided = self._pending_decisions.pop(self._next_decide)
            for message in decided.in_delivery_order():
                if message.msg_id in self._adelivered:
                    continue
                self._adelivered.add(message.msg_id)
                self._unordered.pop(message.msg_id, None)
                self._arrival_generation.pop(message.msg_id, None)
                actions.append(EmitUp(AdeliverIndication(message)))
            self._next_decide += 1
            self._consensus_running = False
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _on_guard_fired(self) -> list[Action]:
        self._guard_armed = False
        self._guard_generation += 1
        if not self._unordered:
            return []
        # Re-diffuse messages that survived a full guard period without
        # being ordered (a healthy loaded system orders messages within
        # milliseconds, so only genuinely stuck messages qualify, e.g.
        # after their sender crashed mid-diffusion). Idempotent at
        # receivers; guarantees future coordinators hold these messages.
        actions: list[Action] = []
        for msg_id, message in self._unordered.items():
            if self._arrival_generation[msg_id] < self._guard_generation - 1:
                actions.extend(
                    Send(dst, "DIFFUSE", message, message_wire_size(message))
                    for dst in self.ctx.others
                )
        actions.extend(self._maybe_propose())
        actions.extend(self._manage_guard())
        return actions

    def _maybe_propose(self) -> list[Action]:
        if self._consensus_running or not self._unordered:
            return []
        self._consensus_running = True
        instance = self._next_decide
        messages = tuple(self._unordered.values())
        if self.max_batch is not None:
            messages = messages[: self.max_batch]
        batch = Batch(instance, messages)
        return [EmitDown(ProposeRequest(instance, batch))]

    def _manage_guard(self) -> list[Action]:
        if self._unordered and not self._guard_armed:
            self._guard_armed = True
            return [StartTimer(GUARD_TIMER, self.guard_timeout)]
        if not self._unordered and self._guard_armed:
            self._guard_armed = False
            return [CancelTimer(GUARD_TIMER)]
        return []
