"""Atomic broadcast — the paper's primary contribution, in both shapes.

:class:`~repro.abcast.modular.ModularAtomicBroadcast` composes with the
consensus and reliable broadcast modules (Fig. 1 left);
:class:`~repro.abcast.monolithic.MonolithicAtomicBroadcast` merges all
three protocols and applies the §4 optimizations (Fig. 1 right).
"""

from repro.abcast.factory import build_stack
from repro.abcast.indirect import IdBatch, IndirectModularAtomicBroadcast
from repro.abcast.messages import (
    AckWithDiffusion,
    CombinedProposal,
    Forward,
    JoinRound,
    RbDecision,
)
from repro.abcast.modular import GUARD_TIMER, ModularAtomicBroadcast
from repro.abcast.monolithic import MonolithicAtomicBroadcast
from repro.abcast.sequencer import SequencerAtomicBroadcast

__all__ = [
    "GUARD_TIMER",
    "IdBatch",
    "IndirectModularAtomicBroadcast",
    "AckWithDiffusion",
    "CombinedProposal",
    "Forward",
    "JoinRound",
    "ModularAtomicBroadcast",
    "MonolithicAtomicBroadcast",
    "SequencerAtomicBroadcast",
    "RbDecision",
    "build_stack",
]
