"""Wire payloads specific to the monolithic stack (paper §4, Fig. 6).

The monolithic module merges atomic broadcast, consensus and reliable
broadcast, which lets it combine logically distinct messages into single
transmissions:

* :class:`CombinedProposal` — "proposal k + decision k-1" (§4.1),
* :class:`AckWithDiffusion` — "ack + diffusion" (§4.2),
* :class:`Forward` — abcast messages sent straight to the coordinator
  when no consensus is in flight to piggyback on,
* :class:`RbDecision` — the relay-emulated decision broadcast used only
  when the §4.3 optimization is ablated away.

:class:`~repro.consensus.messages.JoinRound` used to live here but is
now part of the shared consensus machinery (every variant broadcasts it
on a round change); it is re-exported for compatibility.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.consensus.messages import Ack, DecisionTag, JoinRound, Proposal
from repro.net.wire import wire_payload
from repro.stack.events import message_wire_size
from repro.types import AppMessage

__all__ = [
    "Ack",
    "AckWithDiffusion",
    "CombinedProposal",
    "DecisionTag",
    "Forward",
    "JoinRound",
    "Proposal",
    "RbDecision",
]


@wire_payload
@dataclass(frozen=True, slots=True)
class CombinedProposal:
    """§4.1: the round-1 proposal of instance k, optionally carrying the
    decision of instance k-1 as a piggybacked tag."""

    proposal: Proposal
    decided: DecisionTag | None = None

    @property
    def wire_size(self) -> int:
        size = self.proposal.wire_size
        if self.decided is not None:
            size += 16  # the piggybacked (instance, round) tag
        return size


@wire_payload
@dataclass(frozen=True, slots=True)
class AckWithDiffusion:
    """§4.2: an ack carrying the sender's pending abcast messages."""

    ack: Ack
    messages: tuple[AppMessage, ...] = ()

    @property
    def wire_size(self) -> int:
        return self.ack.wire_size + sum(message_wire_size(m) for m in self.messages)


@wire_payload
@dataclass(frozen=True, slots=True)
class Forward:
    """Pending abcast messages sent to the coordinator outside any ack
    (used when the group is idle, so there is no ack to ride)."""

    messages: tuple[AppMessage, ...]

    @property
    def wire_size(self) -> int:
        return 8 + sum(message_wire_size(m) for m in self.messages)


@wire_payload
@dataclass(frozen=True, slots=True)
class RbDecision:
    """Decision tag wrapped for the relay-emulated reliable broadcast
    (ablation of §4.3 only)."""

    tag: DecisionTag
    origin: int

    @property
    def wire_size(self) -> int:
        return self.tag.wire_size + 8
