"""Monolithic atomic broadcast (paper §4, Fig. 1 right / Fig. 6).

One module implementing the merged abcast + consensus + rbcast protocol
with the paper's three good-run optimizations:

* **§4.1 — decision ⊕ next proposal.** Successive consensus instances
  run inside this module, so the coordinator knows it also coordinates
  instance k+1 and sends "proposal k+1 + decision k" as one message.
* **§4.2 — abcast ⊕ ack.** A process with messages to abcast does not
  diffuse them to everyone; it piggybacks them on its next ack to the
  coordinator (or forwards them directly when the group is idle), and
  re-sends them to the new coordinator via its estimate after a
  coordinator change.
* **§4.3 — cheap decision broadcast.** Decisions are sent plainly to
  all; the messages of instance k+1 act as acknowledgments of decision
  k, so no reliable-broadcast relaying is needed in good runs.

In good runs one consensus instance therefore costs exactly ``2(n-1)``
messages — the count of the paper's §5.2.1.

The module *extends* the shared consensus machinery of
:class:`~repro.consensus.base.BaseConsensus`: rounds ≥ 2 (after a
suspicion) fall back to the safe estimate/propose/ack path, decisions of
those rounds carry their full value, and the decision-tag recovery
protocol covers coordinator crashes — correctness in all runs, as the
paper requires, while the optimizations pay off in good runs only.

Each optimization can be disabled independently through
:class:`~repro.config.MonolithicOptimizations` for the ablation benches;
the disabled code paths fall back to modular-style behaviour (full
diffusion, standalone decisions, relay-emulated reliable broadcast).
"""

from __future__ import annotations

from typing import Any

from repro.abcast.messages import (
    AckWithDiffusion,
    CombinedProposal,
    Forward,
    RbDecision,
)
from repro.broadcast.reliable import relay_set
from repro.config import MonolithicOptimizations
from repro.consensus.base import BaseConsensus
from repro.consensus.instance import InstanceState, coordinator_of_round
from repro.consensus.messages import Ack, DecisionTag, DecisionValue, Proposal
from repro.net.message import NetMessage
from repro.stack.actions import Action, EmitUp, Send
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    Event,
    message_wire_size,
)
from repro.stack.module import ModuleContext
from repro.types import AppMessage, Batch, MessageId


class MonolithicAtomicBroadcast(BaseConsensus):
    """The paper's monolithic stack as a single microprotocol."""

    name = "mono"

    def __init__(
        self,
        ctx: ModuleContext,
        optimizations: MonolithicOptimizations | None = None,
        max_batch: int | None = None,
    ) -> None:
        super().__init__(ctx)
        self.opts = optimizations or MonolithicOptimizations()
        self.max_batch = max_batch
        #: Messages known to this process and not yet adelivered. At the
        #: coordinator this pools everything received for ordering; at
        #: other processes it holds their own pending messages (plus
        #: everything diffused, when §4.2 is ablated off).
        self._pool: dict[MessageId, AppMessage] = {}
        #: Ids already adelivered (cross-batch deduplication).
        self._adelivered: set[MessageId] = set()
        #: Own message ids already handed to the initial coordinator.
        self._relayed: set[MessageId] = set()
        self._next_decide = 0
        self._pending_decisions: dict[int, Batch] = {}
        #: Coordinator flag: a round-1 proposal is outstanding.
        self._instance_running = False
        #: Non-coordinator flag: the consensus pipeline is active, so
        #: pending messages should ride the next ack instead of being
        #: forwarded separately.
        self._expecting_combined = False
        #: Decision decided here but not yet announced to the group.
        self._unannounced: tuple[int, int] | None = None
        #: Instances whose relay-emulated decision we already re-sent.
        self._rb_seen: set[int] = set()
        #: Suppresses standalone forwards while handling a COMBINED
        #: (the ack piggyback will carry pending messages instead).
        self._suppress_forward = False
        self._initial_coordinator = coordinator_of_round(1, ctx.n)

    # -- introspection ---------------------------------------------------

    @property
    def is_initial_coordinator(self) -> bool:
        """Whether this process coordinates round 1 of every instance."""
        return self.ctx.pid == self._initial_coordinator

    @property
    def pool_count(self) -> int:
        """Messages known but not yet adelivered."""
        return len(self._pool)

    @property
    def next_instance(self) -> int:
        """The next consensus instance this process will adeliver."""
        return self._next_decide

    # -- crash recovery ----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Fast-forward a freshly built stack to a recovered position.

        Same contract as
        :meth:`repro.abcast.modular.ModularAtomicBroadcast.resume_at`:
        applied once before any traffic on a restarted worker, after it
        re-applied its WAL prefix and state-transferred the rest.
        """
        self._next_decide = max(self._next_decide, next_instance)
        self._adelivered.update(delivered)
        for msg_id in delivered:
            self._pool.pop(msg_id, None)
            self._relayed.discard(msg_id)
        for instance in [i for i in self._pending_decisions if i < self._next_decide]:
            del self._pending_decisions[instance]

    # -- stimuli -----------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, AbcastRequest):
            return self._on_abcast(event.message)
        # No ProposeRequest / RdeliverIndication: this module has no
        # neighbours below, so the base class paths must stay unreachable.
        return super(BaseConsensus, self).handle_event(event)

    def handle_message(self, message: NetMessage) -> list[Action]:
        kind = message.kind
        if kind == "COMBINED":
            return self._on_combined(message.src, message.payload)
        if kind == "ACKPIGGY":
            return self._on_ack_with_diffusion(message.src, message.payload)
        if kind == "FORWARD":
            return self._on_forward(message.payload)
        if kind == "M_DIFFUSE":
            return self._on_mono_diffuse(message.payload)
        if kind == "DECISION":
            return self._on_rdeliver(message.payload)
        if kind == "RB_DECISION":
            return self._on_rb_decision(message.payload)
        if kind == "JOIN":
            return self._on_join(message.src, message.payload)
        return super().handle_message(message)

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        actions: list[Action] = []
        if self._initial_coordinator in suspects:
            # §4.2: messages previously handed to the (now suspected)
            # coordinator must be piggybacked again on the estimates sent
            # to the new coordinator — their relay marks are void.
            self._relayed.clear()
            if self._pool or self.has_instance(self._next_decide):
                self._materialize_estimate(self.instance(self._next_decide))
        actions.extend(super().handle_suspicion(suspects))
        actions.extend(self._ensure_progress())
        return actions

    # -- abcast side -------------------------------------------------------

    def _on_abcast(self, message: AppMessage) -> list[Action]:
        self._pool[message.msg_id] = message
        if self.is_initial_coordinator:
            return self._maybe_start_instance()
        if not self.opts.piggyback_on_ack:
            # Ablation of §4.2: modular-style diffusion to everyone.
            actions: list[Action] = [
                Send(dst, "M_DIFFUSE", message, message_wire_size(message))
                for dst in self.ctx.others
            ]
            actions.extend(self._ensure_progress())
            return actions
        if self._expecting_combined:
            return []  # rides the next ack (§4.2, Fig. 6)
        if self._initial_coordinator in self.ctx.suspects():
            return self._join_and_advance()
        return self._forward_unrelayed()

    def _forward_unrelayed(self) -> list[Action]:
        pending = tuple(
            m for mid, m in self._pool.items() if mid not in self._relayed
        )
        if not pending:
            return []
        self._relayed.update(m.msg_id for m in pending)
        forward = Forward(pending)
        return [Send(self._initial_coordinator, "FORWARD", forward, forward.wire_size)]

    def _on_forward(self, forward: Forward) -> list[Action]:
        self._admit(forward.messages)
        return self._maybe_start_instance()

    def _on_mono_diffuse(self, message: AppMessage) -> list[Action]:
        self._admit((message,))
        if self.is_initial_coordinator:
            return self._maybe_start_instance()
        return self._ensure_progress()

    def _admit(self, messages: tuple[AppMessage, ...]) -> None:
        for message in messages:
            if message.msg_id not in self._adelivered:
                self._pool.setdefault(message.msg_id, message)

    # -- good-run fast path: coordinator ------------------------------------

    def _maybe_start_instance(self) -> list[Action]:
        if not self.is_initial_coordinator or self._instance_running:
            return []
        if not self._pool:
            return []
        instance = self._next_decide
        state = self.instance(instance)
        if state.decided is not None:
            return []
        if state.round != 1 or 1 in state.proposal_sent_rounds:
            # The instance already advanced past round 1 (suspicions);
            # leave it to the estimate/propose path of the base class.
            return []
        self._instance_running = True
        messages = tuple(self._pool.values())
        if self.max_batch is not None:
            messages = messages[: self.max_batch]
        batch = Batch(instance, messages)
        state.estimate = batch
        state.ts = 1
        state.proposals[1] = batch
        state.proposal_sent_rounds.add(1)
        state.acks.setdefault(1, set()).add(self.ctx.pid)
        decided_tag: DecisionTag | None = None
        if self.opts.combine_decision_with_proposal and self._unannounced is not None:
            decided_tag = DecisionTag(*self._unannounced)
            self._unannounced = None
        combined = CombinedProposal(Proposal(instance, 1, batch), decided_tag)
        return [
            Send(dst, "COMBINED", combined, combined.wire_size)
            for dst in self.ctx.others
        ]

    # -- good-run fast path: non-coordinators --------------------------------

    def _on_combined(self, sender: int, combined: CombinedProposal) -> list[Action]:
        actions: list[Action] = []
        if combined.decided is not None:
            self._suppress_forward = True
            try:
                actions.extend(self._on_rdeliver(combined.decided))
            finally:
                self._suppress_forward = False
        proposal = combined.proposal
        state = self.instance(proposal.instance)
        state.proposals[proposal.round] = proposal.value
        if state.decided is None and proposal.round >= state.round:
            state.round = proposal.round
            state.estimate = proposal.value
            state.ts = proposal.round
            piggyback = self._collect_piggyback() if self.opts.piggyback_on_ack else ()
            ack = AckWithDiffusion(
                ack=Ack(proposal.instance, proposal.round), messages=piggyback
            )
            actions.append(Send(sender, "ACKPIGGY", ack, ack.wire_size))
            self._expecting_combined = True
            actions.extend(self._advance_past_suspects(state, self.ctx.suspects()))
        actions.extend(self._maybe_complete_recovery(state))
        return actions

    def _collect_piggyback(self) -> tuple[AppMessage, ...]:
        pending = tuple(
            m for mid, m in self._pool.items() if mid not in self._relayed
        )
        self._relayed.update(m.msg_id for m in pending)
        return pending

    def _on_ack_with_diffusion(
        self, sender: int, ack: AckWithDiffusion
    ) -> list[Action]:
        self._admit(ack.messages)
        actions = self._on_ack(sender, ack.ack)
        # The ack may be a straggler for an instance that decided on an
        # earlier majority, in which case _on_ack is a no-op — but its
        # piggybacked messages still need an instance to order them. A
        # message riding the last ack of a drained pipeline would
        # otherwise be stranded in the pool forever (validity violation).
        actions.extend(self._maybe_start_instance())
        return actions

    # -- decision announcement (overrides the rbcast of the base class) -----

    def _announce_decision(self, state: InstanceState, round_number: int) -> list[Action]:
        value = state.proposals[round_number]
        self._unannounced = (state.instance, round_number)
        # Deciding locally may immediately start instance k+1, which
        # consumes the pending announcement as a §4.1 piggyback.
        actions = self._decide(state, value)
        if self._unannounced is None:
            return actions
        instance, decided_round = self._unannounced
        self._unannounced = None
        if decided_round > 1:
            # Bad-run path: the decider may not share round-1 state with
            # everyone, so ship the full value (safe against recovery).
            decision = DecisionValue(instance, value)
            actions.extend(
                Send(dst, "DECISION", decision, decision.wire_size)
                for dst in self.ctx.others
            )
            return actions
        tag = DecisionTag(instance, decided_round)
        if self.opts.cheap_decision_broadcast:
            # §4.3: plain send; consensus k+1 traffic acts as the ack.
            actions.extend(
                Send(dst, "DECISION", tag, tag.wire_size) for dst in self.ctx.others
            )
        else:
            actions.extend(self._rb_decision_sends(RbDecision(tag, self.ctx.pid)))
        return actions

    def _rb_decision_sends(self, rb: RbDecision) -> list[Action]:
        self._rb_seen.add(rb.tag.instance)
        relays = relay_set(rb.origin, self.ctx.n)
        rest = [
            p for p in range(self.ctx.n) if p not in relays and p != rb.origin
        ]
        ordered = [*relays, rb.origin, *rest]
        return [
            Send(dst, "RB_DECISION", rb, rb.wire_size)
            for dst in ordered
            if dst != self.ctx.pid
        ]

    def _on_rb_decision(self, rb: RbDecision) -> list[Action]:
        actions: list[Action] = []
        if rb.tag.instance not in self._rb_seen:
            self._rb_seen.add(rb.tag.instance)
            if self.ctx.pid in relay_set(rb.origin, self.ctx.n):
                actions.extend(self._rb_decision_sends_from_relay(rb))
        actions.extend(self._on_rdeliver(rb.tag))
        return actions

    def _rb_decision_sends_from_relay(self, rb: RbDecision) -> list[Action]:
        return [
            Send(dst, "RB_DECISION", rb, rb.wire_size)
            for dst in self.ctx.others
        ]

    # -- decision consumption (overrides the DecideIndication of the base) --

    def _emit_decision(self, state: InstanceState, value: Batch) -> list[Action]:
        instance = state.instance
        if instance < self._next_decide:
            return []
        self._pending_decisions[instance] = value
        actions: list[Action] = []
        progressed = False
        while self._next_decide in self._pending_decisions:
            batch = self._pending_decisions.pop(self._next_decide)
            for message in batch.in_delivery_order():
                if message.msg_id in self._adelivered:
                    continue
                self._adelivered.add(message.msg_id)
                self._pool.pop(message.msg_id, None)
                self._relayed.discard(message.msg_id)
                actions.append(EmitUp(AdeliverIndication(message)))
            self._next_decide += 1
            self._instance_running = False
            progressed = True
        if progressed and not self.is_initial_coordinator:
            # A decision reaching us outside a COMBINED means the
            # pipeline drained; new messages must be forwarded explicitly.
            self._expecting_combined = False
        actions.extend(self._ensure_progress())
        return actions

    def _ensure_progress(self) -> list[Action]:
        if self.is_initial_coordinator:
            return self._maybe_start_instance()
        if self._suppress_forward:
            return []
        if not self.opts.piggyback_on_ack:
            # Diffusion mode (§4.2 ablated): everyone already holds the
            # pool; after the initial coordinator is suspected, ordering
            # progresses through the estimate path.
            if self._pool and self._initial_coordinator in self.ctx.suspects():
                return self._join_and_advance()
            return []
        if all(mid in self._relayed for mid in self._pool):
            return []
        if self._initial_coordinator in self.ctx.suspects():
            return self._join_and_advance()
        if self._expecting_combined:
            return []
        return self._forward_unrelayed()

    # -- bad-run machinery ---------------------------------------------------

    def _materialize_estimate(self, state: InstanceState) -> None:
        """Adopt the local pool as this instance's initial value."""
        if state.estimate is None and state.decided is None:
            state.estimate = Batch(state.instance, tuple(self._pool.values()))

    def _join_and_advance(self) -> list[Action]:
        state = self.instance(self._next_decide)
        if state.decided is not None:
            return []
        self._materialize_estimate(state)
        return self._advance_past_suspects(state, self.ctx.suspects())

    # Round advancement, JOIN broadcasting and JOIN handling are all
    # inherited from BaseConsensus; _materialize_estimate above is the
    # hook that folds this module's pool into the joined instance.

    # The base class only calls this via paths we overrode, but keep it
    # defined for completeness (ablation tests may exercise it).
    def _decision_broadcast(self, state: InstanceState, round_number: int):
        raise NotImplementedError(
            "the monolithic module announces decisions via _announce_decision"
        )

    def _on_local_propose(self, state: InstanceState) -> list[Action]:
        raise NotImplementedError(
            "the monolithic module has no ProposeRequest interface"
        )
