"""Fixed-sequencer atomic broadcast — a non-consensus baseline.

The paper's related work contrasts its consensus-reduction stacks with
systems like Ensemble and Appia, where atomic broadcast "is not solved
by reduction to consensus, but rather relies on group membership". The
simplest member of that family is the fixed sequencer: every message is
sent to one distinguished process, which assigns global sequence numbers
and broadcasts; receivers deliver in sequence-number order. Per message
it costs n messages and two communication steps — cheaper than either of
the paper's stacks.

**Scope: good runs only.** Fail-over of a sequencer without an agreement
protocol (or a membership service, which is itself built on agreement)
cannot preserve uniform total order: a crashed sequencer may have
numbered-and-partially-sent messages that survivors cannot consistently
reconcile. That impossibility is precisely why the paper's stacks pay
for consensus. This module therefore *detects* a sequencer crash (via
the failure detector) and raises :class:`~repro.errors.ProtocolError`
instead of guessing — it exists as a performance reference point for the
extension bench (``benchmarks/bench_extension_sequencer.py``), where it
bounds what any fault-tolerant design gives up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.net.message import NetMessage
from repro.net.wire import wire_payload
from repro.stack.actions import Action, EmitUp, Send
from repro.stack.events import (
    AbcastRequest,
    AdeliverIndication,
    Event,
    message_wire_size,
)
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage

#: Bytes of sequencing metadata per sequenced message.
SEQUENCE_OVERHEAD = 12


@wire_payload
@dataclass(frozen=True, slots=True)
class Sequenced:
    """A message with its assigned global sequence number."""

    global_seq: int
    message: AppMessage

    @property
    def wire_size(self) -> int:
        return message_wire_size(self.message) + SEQUENCE_OVERHEAD


class SequencerAtomicBroadcast(Microprotocol):
    """Fixed-sequencer total ordering (good runs only; see module doc)."""

    name = "seq"

    #: The sequencer is process 0, mirroring the stacks' coordinator.
    SEQUENCER = 0

    def __init__(self, ctx: ModuleContext) -> None:
        super().__init__(ctx)
        self._next_assign = 0  # sequencer: next global sequence number
        self._next_deliver = 0  # everyone: next in-order delivery
        self._pending: dict[int, AppMessage] = {}

    @property
    def is_sequencer(self) -> bool:
        """Whether this process assigns sequence numbers."""
        return self.ctx.pid == self.SEQUENCER

    # -- stimuli -----------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if not isinstance(event, AbcastRequest):
            return super().handle_event(event)
        if self.is_sequencer:
            return self._sequence(event.message)
        forward_size = message_wire_size(event.message)
        return [Send(self.SEQUENCER, "TO_SEQ", event.message, forward_size)]

    def handle_message(self, message: NetMessage) -> list[Action]:
        if message.kind == "TO_SEQ":
            if not self.is_sequencer:
                raise ProtocolError(
                    f"p{self.ctx.pid} received TO_SEQ but is not the sequencer"
                )
            return self._sequence(message.payload)
        if message.kind == "SEQUENCED":
            return self._accept(message.payload)
        return super().handle_message(message)

    def handle_suspicion(self, suspects: frozenset[int]) -> list[Action]:
        if self.SEQUENCER in suspects and not self.is_sequencer:
            raise ProtocolError(
                "the sequencer is suspected: fixed-sequencer atomic broadcast "
                "cannot fail over without an agreement protocol (this baseline "
                "is good-runs-only; use the modular or monolithic stack)"
            )
        return []

    # -- protocol ------------------------------------------------------------

    def _sequence(self, message: AppMessage) -> list[Action]:
        sequenced = Sequenced(self._next_assign, message)
        self._next_assign += 1
        actions: list[Action] = [
            Send(dst, "SEQUENCED", sequenced, sequenced.wire_size)
            for dst in self.ctx.others
        ]
        actions.extend(self._accept(sequenced))
        return actions

    def _accept(self, sequenced: Sequenced) -> list[Action]:
        self._pending[sequenced.global_seq] = sequenced.message
        actions: list[Action] = []
        while self._next_deliver in self._pending:
            delivered = self._pending.pop(self._next_deliver)
            self._next_deliver += 1
            actions.append(EmitUp(AdeliverIndication(delivered)))
        return actions

    # -- introspection ----------------------------------------------------------

    @property
    def next_instance(self) -> int:
        """Delivered count (kept name-compatible with the other stacks
        so the experiment runner's progress probe works)."""
        return self._next_deliver
