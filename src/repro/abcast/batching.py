"""Chop Chop-style distillation layer (extension beyond the paper).

Camaioni et al.'s Chop Chop (2024) reaches line-rate atomic broadcast by
"distilling" client submissions into large batches before the ordering
protocol ever sees them, amortizing the per-message header and CPU cost
that otherwise dominates: ordering one batch of b messages costs the
protocol what ordering one message would, so per-message overhead drops
by roughly b.

:class:`DistillationLayer` reproduces the idea as a reusable
microprotocol that composes *on top of any stack* in this repo: it
aggregates local ``AbcastRequest`` submissions into a parcel (a single
container :class:`~repro.types.AppMessage` whose payload is the tuple of
original messages), hands the parcel one layer down, and unbatches
parcels coming back up — emitting one ``AdeliverIndication`` per
original message, in parcel order, so the layer is invisible to the
application except in throughput and latency.

Sealing triggers (either fires first):

* **size** — the parcel reached ``max_messages``;
* **time** — ``flush_interval`` elapsed since the first buffered
  message (bounding the latency a lonely message pays for batching).

Framing: the parcel's modelled wire size is the sum of the original
payload sizes plus :data:`PARCEL_HEADER` bytes per message (offset
table). Crucially the *original* message objects ride inside the parcel
untouched, so delivered messages keep their submission timestamps and
per-message latency is attributed from submission, not from parcel seal.

The registered ``batched-sequencer`` stack composes this layer over the
fixed sequencer — the repo's cheapest ordering core — as the headline
high-throughput configuration.
"""

from __future__ import annotations

from typing import Any

from repro.config import BatchingConfig
from repro.stack.actions import (
    Action,
    CancelTimer,
    EmitDown,
    EmitUp,
    StartTimer,
)
from repro.stack.events import AbcastRequest, AdeliverIndication, Event
from repro.stack.module import Microprotocol, ModuleContext
from repro.types import AppMessage, MessageId

#: Modelled framing bytes per message inside a parcel (offset table).
PARCEL_HEADER = 8

#: Parcel sequence numbers start here, far above any client sequence
#: number, so parcels are recognizable on delivery and never collide
#: with per-sender client ids.
PARCEL_SEQ_BASE = 2**32


def is_parcel(message: AppMessage) -> bool:
    """Whether *message* is a sealed parcel (vs. a client submission)."""
    return message.msg_id.seq >= PARCEL_SEQ_BASE


class DistillationLayer(Microprotocol):
    """Size/time-triggered batching of submissions into parcels."""

    name = "distill"

    def __init__(self, ctx: ModuleContext, config: BatchingConfig | None = None) -> None:
        super().__init__(ctx)
        self.config = config if config is not None else BatchingConfig()
        self._buffer: list[AppMessage] = []
        self._timer_armed = False
        self._sealed = 0  # parcels sealed locally (per-sender parcel seq)
        self._unbatched = 0  # parcels delivered (the progress probe)
        self._delivered: set[MessageId] = set()
        self._outstanding: set[MessageId] = set()  # own submissions in flight

    # -- stimuli -----------------------------------------------------------

    def handle_event(self, event: Event) -> list[Action]:
        if isinstance(event, AbcastRequest):
            return self._on_submit(event.message)
        if isinstance(event, AdeliverIndication):
            return self._on_deliver(event.message)
        return super().handle_event(event)

    def handle_timer(self, name: str, payload: Any) -> list[Action]:
        if name == "flush":
            return self._on_flush()
        return super().handle_timer(name, payload)

    # -- batching ----------------------------------------------------------

    def _on_submit(self, message: AppMessage) -> list[Action]:
        self._outstanding.add(message.msg_id)
        self._buffer.append(message)
        if len(self._buffer) >= self.config.max_messages:
            actions: list[Action] = []
            if self._timer_armed:
                self._timer_armed = False
                actions.append(CancelTimer("flush"))
            actions.extend(self._seal())
            return actions
        if not self._timer_armed:
            self._timer_armed = True
            return [StartTimer("flush", self.config.flush_interval)]
        return []

    def _on_flush(self) -> list[Action]:
        self._timer_armed = False
        if not self._buffer:
            return []  # raced with a size-triggered seal; nothing to do
        return self._seal()

    def _seal(self) -> list[Action]:
        parts = tuple(self._buffer)
        self._buffer.clear()
        parcel = AppMessage(
            msg_id=MessageId(self.ctx.pid, PARCEL_SEQ_BASE + self._sealed),
            size=sum(part.size for part in parts) + PARCEL_HEADER * len(parts),
            # The parcel inherits the oldest submission time so that any
            # layer below that reasons about age is conservative; the
            # per-message metrics come from the parts themselves.
            abcast_time=parts[0].abcast_time,
            payload=parts,
        )
        self._sealed += 1
        return [EmitDown(AbcastRequest(parcel))]

    # -- unbatching --------------------------------------------------------

    def _on_deliver(self, message: AppMessage) -> list[Action]:
        if not is_parcel(message):
            # Pass-through: a peer without a batching layer (or a
            # recovery path) delivered a bare client message.
            return self._deliver_part(message)
        self._unbatched += 1
        actions: list[Action] = []
        # Parts are emitted in parcel order — the order the sender
        # batched them — NOT re-sorted, so every process unbatches the
        # identical sequence and the total order extends to parts.
        for part in message.payload:
            actions.extend(self._deliver_part(part))
        return actions

    def _deliver_part(self, part: AppMessage) -> list[Action]:
        if part.msg_id in self._delivered:
            return []
        self._delivered.add(part.msg_id)
        self._outstanding.discard(part.msg_id)
        return [EmitUp(AdeliverIndication(part))]

    # -- introspection -----------------------------------------------------

    @property
    def next_instance(self) -> int:
        """Parcels delivered (name-compatible progress probe)."""
        return self._unbatched

    @property
    def unordered_count(self) -> int:
        """Own submissions not yet delivered back, whether still in the
        unsealed buffer or riding a parcel (live backpressure probe)."""
        return len(self._outstanding)

    # -- crash recovery ----------------------------------------------------

    def resume_at(self, next_instance: int, delivered: set[MessageId]) -> None:
        """Rejoin after a crash: *next_instance* is this layer's parcel
        count from the write-ahead log and *delivered* the client
        messages already handed to the application (never re-emitted).
        Parcel sequence numbers restart above the recovered count so a
        reborn process never reuses a pre-crash parcel id."""
        self._unbatched = max(self._unbatched, next_instance)
        self._sealed = max(self._sealed, next_instance)
        self._delivered.update(delivered)
