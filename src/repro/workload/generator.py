"""Symmetric workload generators (paper §5.1).

Every process abcasts fixed-size messages at a constant rate; the global
rate across all processes is the *offered load*. Attempts that hit the
flow-control window block and are injected as soon as a slot frees — the
paper's semantics, where the offered load is what the application tries
to abcast and the flow-control mechanism throttles it.

The early-latency clock ``t0`` of a message is the time its
``abcast(m)`` completes, i.e. when the message actually enters the stack
(after any flow-control blocking), matching the paper's definition.
"""

from __future__ import annotations

from typing import Callable

from repro.config import ArrivalProcess, WorkloadConfig
from repro.flowcontrol.window import BacklogWindow
from repro.sim.kernel import Kernel
from repro.stack.events import AbcastRequest
from repro.stack.interface import RuntimeProtocol
from repro.types import AppMessage, MessageId, SimTime

#: Called when a message is accepted into the stack (for metrics).
AcceptListener = Callable[[AppMessage], None]

#: Called on every abcast attempt, before flow control (for metrics).
OfferListener = Callable[[], None]


class FlowControlledSender:
    """Per-process workload source behind a flow-control window."""

    def __init__(
        self,
        runtime: RuntimeProtocol,
        window: BacklogWindow,
        message_size: int,
        *,
        on_accept: AcceptListener | None = None,
        on_offer: OfferListener | None = None,
    ) -> None:
        self.runtime = runtime
        self.window = window
        self.message_size = message_size
        self._on_accept = on_accept
        self._on_offer = on_offer
        self._next_seq = 0
        self._queued_attempts = 0
        self._offered = 0
        #: Ids of messages this sender injected and has not yet seen
        #: adelivered locally (the messages holding window slots).
        self._holding_slots: set[MessageId] = set()

    @property
    def offered(self) -> int:
        """Total abcast attempts made so far."""
        return self._offered

    @property
    def accepted(self) -> int:
        """Attempts that entered the stack so far."""
        return self._next_seq

    @property
    def queued(self) -> int:
        """Attempts currently blocked by flow control."""
        return self._queued_attempts

    def offer(self) -> None:
        """One abcast attempt (an arrival of the offered load)."""
        self._offered += 1
        if self._on_offer is not None:
            self._on_offer()
        if self.window.try_acquire():
            self._inject()
        else:
            self._queued_attempts += 1

    def on_own_delivery(self, message: AppMessage) -> None:
        """Local adelivery of one of this process's own messages.

        Ignores messages this sender did not inject (an application may
        drive the same stack directly, outside the workload generator).
        """
        if message.msg_id not in self._holding_slots:
            return
        self._holding_slots.discard(message.msg_id)
        self.window.release()
        if self._queued_attempts > 0 and self.window.try_acquire():
            self._queued_attempts -= 1
            self._inject()

    def _inject(self) -> None:
        message = AppMessage(
            msg_id=MessageId(self.runtime.pid, self._next_seq),
            size=self.message_size,
            abcast_time=self.runtime.now,
        )
        self._next_seq += 1
        self._holding_slots.add(message.msg_id)
        if self._on_accept is not None:
            self._on_accept(message)
        self.runtime.inject(AbcastRequest(message))


class ArrivalSchedule:
    """Schedules the offer() calls of one sender on the kernel."""

    def __init__(
        self,
        kernel: Kernel,
        sender: FlowControlledSender,
        workload: WorkloadConfig,
        n: int,
        *,
        stop_at: SimTime,
        rng_name: str,
    ) -> None:
        self._kernel = kernel
        self._sender = sender
        self._stop_at = stop_at
        self._rate = workload.per_process_rate(n)
        self._arrival = workload.arrival
        self._rng = kernel.rng.stream(rng_name)
        self._interval = 1.0 / self._rate

    def start(self) -> None:
        """Begin generating arrivals (with a random initial phase)."""
        first_delay = self._rng.random() * self._interval
        self._kernel.schedule(first_delay, self._tick)

    def _tick(self) -> None:
        if self._kernel.now > self._stop_at or not self._sender.runtime.alive:
            return
        self._sender.offer()
        if self._arrival is ArrivalProcess.POISSON:
            gap = self._rng.expovariate(self._rate)
        else:
            gap = self._interval
        self._kernel.schedule(gap, self._tick)
