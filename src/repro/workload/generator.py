"""Symmetric workload generators (paper §5.1).

Every process abcasts fixed-size messages at a constant rate; the global
rate across all processes is the *offered load*. Attempts that hit the
flow-control window block and are injected as soon as a slot frees — the
paper's semantics, where the offered load is what the application tries
to abcast and the flow-control mechanism throttles it.

The early-latency clock ``t0`` of a message is the time its
``abcast(m)`` completes, i.e. when the message actually enters the stack
(after any flow-control blocking), matching the paper's definition.
"""

from __future__ import annotations

import random
from typing import Callable, Protocol

from repro.config import ArrivalProcess, WorkloadConfig
from repro.errors import ConfigurationError
from repro.flowcontrol.window import BacklogWindow
from repro.sim.kernel import Kernel
from repro.stack.events import AbcastRequest
from repro.stack.interface import RuntimeProtocol
from repro.types import AppMessage, MessageId, SimTime

#: Called when a message is accepted into the stack (for metrics).
AcceptListener = Callable[[AppMessage], None]

#: Called on every abcast attempt, before flow control (for metrics).
OfferListener = Callable[[], None]

#: Called on every arrival, live or lazily materialized, before the
#: offer hits flow control (client-population attribution).
ArrivalListener = Callable[[], None]


class GapSampler(Protocol):
    """Inter-arrival law of one sender, decoupled from the scheduler.

    Every arrival process — the paper's two laws and the population
    layer's bursty/diurnal mixes — implements this protocol; the
    schedule itself never branches on the law. Samplers may be
    stateful; they must draw all randomness from the stream they were
    constructed with, so lazy materialization replays the exact draws
    the live ticking would have made.
    """

    def first_delay(self) -> float:
        """Delay of the first arrival (the schedule's random phase)."""
        ...

    def gap(self, at: SimTime) -> float:
        """Seconds until the next arrival, given the current one at *at*."""
        ...


class UniformGaps:
    """The paper's constant-rate law: fixed spacing, random phase."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        self._interval = 1.0 / rate
        self._rng = rng

    def first_delay(self) -> float:
        return self._rng.random() * self._interval

    def gap(self, at: SimTime) -> float:
        return self._interval


class PoissonGaps:
    """Poisson arrivals at a fixed mean rate."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        self._rate = rate
        self._interval = 1.0 / rate
        self._rng = rng

    def first_delay(self) -> float:
        return self._rng.random() * self._interval

    def gap(self, at: SimTime) -> float:
        return self._rng.expovariate(self._rate)


#: Registry of symmetric-workload arrival laws. Dispatch is by lookup,
#: not if/else chains, so an :class:`ArrivalProcess` member without a
#: registered sampler is a loud ConfigurationError — it can no longer
#: silently fall through to the constant-rate path.
GAP_SAMPLER_FACTORIES: dict[
    ArrivalProcess, Callable[[float, random.Random], GapSampler]
] = {
    ArrivalProcess.UNIFORM: UniformGaps,
    ArrivalProcess.POISSON: PoissonGaps,
}


def make_gap_sampler(
    workload: WorkloadConfig, n: int, rng: random.Random
) -> GapSampler:
    """The gap sampler for one process's share of *workload*.

    A configured client population takes precedence: its aggregate
    arrival law replaces the symmetric :class:`ArrivalProcess`.
    """
    rate = workload.per_process_rate(n)
    if workload.population is not None:
        from repro.workload.population import population_gap_sampler

        return population_gap_sampler(workload.population, rate, rng)
    factory = GAP_SAMPLER_FACTORIES.get(workload.arrival)
    if factory is None:
        raise ConfigurationError(
            f"no gap sampler registered for arrival process "
            f"{workload.arrival!r} (registered: "
            f"{', '.join(sorted(p.value for p in GAP_SAMPLER_FACTORIES))})"
        )
    return factory(rate, rng)


class FlowControlledSender:
    """Per-process workload source behind a flow-control window."""

    def __init__(
        self,
        runtime: RuntimeProtocol,
        window: BacklogWindow,
        message_size: int,
        *,
        on_accept: AcceptListener | None = None,
        on_offer: OfferListener | None = None,
    ) -> None:
        self.runtime = runtime
        self.window = window
        self.message_size = message_size
        self._on_accept = on_accept
        self._on_offer = on_offer
        self._schedule: "ArrivalSchedule | None" = None
        self._next_seq = 0
        self._queued_attempts = 0
        self._offered = 0
        #: Ids of messages this sender injected and has not yet seen
        #: adelivered locally (the messages holding window slots).
        self._holding_slots: set[MessageId] = set()

    @property
    def offered(self) -> int:
        """Total abcast attempts made so far."""
        return self._offered

    @property
    def accepted(self) -> int:
        """Attempts that entered the stack so far."""
        return self._next_seq

    @property
    def queued(self) -> int:
        """Attempts currently blocked by flow control."""
        return self._queued_attempts

    def offer(self) -> bool:
        """One abcast attempt (an arrival of the offered load).

        Returns:
            ``True`` if the attempt entered the stack, ``False`` if flow
            control blocked it (it stays queued until a slot frees).
        """
        self._offered += 1
        if self._on_offer is not None:
            self._on_offer()
        if self.window.try_acquire():
            self._inject()
            return True
        self._queued_attempts += 1
        return False

    def attach_schedule(self, schedule: "ArrivalSchedule") -> None:
        """Couple this sender to its arrival schedule (for lazy ticks)."""
        self._schedule = schedule

    def resume_from(self, next_seq: int) -> None:
        """Continue sequence numbering at *next_seq* (crash recovery).

        ``(sender, seq)`` is the global message identity; a restarted
        live worker must never reuse a sequence number its previous
        incarnation already accepted, or two distinct payloads would
        collide on one id. Never moves the counter backwards.
        """
        self._next_seq = max(self._next_seq, next_seq)

    def on_own_delivery(self, message: AppMessage) -> None:
        """Local adelivery of one of this process's own messages.

        Ignores messages this sender did not inject (an application may
        drive the same stack directly, outside the workload generator).
        """
        if message.msg_id not in self._holding_slots:
            return
        schedule = self._schedule
        if schedule is not None:
            # Account for arrivals that occurred while the window was
            # full (the schedule stops ticking when blocked); they must
            # be counted before this release, in their original order.
            schedule.catch_up()
        self._holding_slots.discard(message.msg_id)
        self.window.release()
        if self._queued_attempts > 0 and self.window.try_acquire():
            self._queued_attempts -= 1
            self._inject()
        if schedule is not None:
            schedule.resume()

    def _inject(self) -> None:
        message = AppMessage(
            msg_id=MessageId(self.runtime.pid, self._next_seq),
            size=self.message_size,
            abcast_time=self.runtime.now,
        )
        self._next_seq += 1
        self._holding_slots.add(message.msg_id)
        if self._on_accept is not None:
            self._on_accept(message)
        self.runtime.inject(AbcastRequest(message))


class ArrivalSchedule:
    """Schedules the offer() calls of one sender on the kernel.

    Blocked-tick batching: once an offer is refused by flow control,
    every subsequent arrival is also refused until a slot frees (slots
    free only on local adelivery of an own message). The schedule
    therefore stops posting per-arrival kernel events while blocked and
    reconstructs the skipped arrivals arithmetically — same counters,
    same RNG draws, same next-arrival times — when the sender releases a
    slot (:meth:`catch_up` / :meth:`resume`) or at the end of the run
    (:meth:`finalize`). Under saturation this removes roughly half of
    all kernel events.
    """

    def __init__(
        self,
        kernel: Kernel,
        sender: FlowControlledSender,
        workload: WorkloadConfig,
        n: int,
        *,
        stop_at: SimTime,
        rng_name: str,
        on_arrival: ArrivalListener | None = None,
    ) -> None:
        self._kernel = kernel
        self._sender = sender
        self._runtime = sender.runtime
        self._stop_at = stop_at
        self._rng = kernel.rng.stream(rng_name)
        self._sampler = make_gap_sampler(workload, n, self._rng)
        self._on_arrival = on_arrival
        #: Absolute time of the next (possibly unmaterialized) arrival.
        self._next_due: SimTime = 0.0
        #: True while the schedule is dormant behind a full window.
        self._lazy = False
        #: True once arrivals have permanently ended (past stop_at, or
        #: the process crashed).
        self._done = False
        sender.attach_schedule(self)

    def start(self) -> None:
        """Begin generating arrivals (with a random initial phase)."""
        self._next_due = self._kernel.now + self._sampler.first_delay()
        self._kernel.post(self._next_due, self._tick)

    def _arrived(self) -> None:
        if self._on_arrival is not None:
            self._on_arrival()

    def _tick(self) -> None:
        kernel = self._kernel
        now = kernel.now
        if now > self._stop_at or not self._runtime.alive:
            self._done = True
            return
        self._arrived()
        accepted = self._sender.offer()
        # Same now + gap arithmetic as the always-ticking variant; gap is
        # never negative, so the unchecked absolute-time post is safe.
        self._next_due = now + self._sampler.gap(now)
        if accepted:
            kernel.post(self._next_due, self._tick)
        else:
            # Window full: every arrival until the next release would be
            # refused too. Go dormant; the sender wakes us on release.
            self._lazy = True

    def _materialize_until(self, limit: SimTime) -> None:
        """Replay skipped arrivals with ``due <= limit``, in order."""
        crashed_at = self._runtime.crashed_at
        while True:
            due = self._next_due
            if due > limit:
                return
            if due > self._stop_at or (crashed_at is not None and due >= crashed_at):
                self._done = True
                return
            self._arrived()
            self._sender.offer()  # window is full: counts as blocked
            self._next_due = due + self._sampler.gap(due)

    def catch_up(self) -> None:
        """Account for arrivals skipped while dormant (before a release)."""
        if self._lazy and not self._done:
            self._materialize_until(self._kernel.now)

    def resume(self) -> None:
        """Return to live per-arrival ticking after a slot was released."""
        if not self._lazy or self._done:
            return
        self._lazy = False
        self._kernel.post(self._next_due, self._tick)

    def finalize(self) -> None:
        """Materialize arrivals still pending at the end of the run."""
        if self._lazy and not self._done:
            self._materialize_until(min(self._stop_at, self._kernel.now))
            self._done = True
