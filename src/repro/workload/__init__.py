"""Workload generation (the paper's symmetric constant-rate load)."""

from repro.workload.generator import (
    AcceptListener,
    ArrivalSchedule,
    FlowControlledSender,
)

__all__ = ["AcceptListener", "ArrivalSchedule", "FlowControlledSender"]
