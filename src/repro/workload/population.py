"""Lazy client-population workload model (ROADMAP: millions of users).

The paper's §5.1 workload is symmetric — n processes, one constant-rate
sender each. Real deployments front N ≫ n logical clients whose traffic
is skewed (a few hot clients dominate) and bursty (correlated on/off
phases, diurnal cycles). This module models such a population *lazily*:

* The simulator never schedules per-client events. Each process samples
  the **aggregate** arrival process of the ``clients / n`` clients it
  fronts (one kernel event per arrival), then attributes the arrival to
  a logical client drawn from a Zipf(s) rank distribution. Kernel event
  counts therefore scale with the offered load, not the population size
  — 10⁶ clients cost the same as 10².
* Every aggregate law is **mean-preserving**: burstiness and diurnal
  cycles reshape *when* arrivals happen, never how many per second on
  average, so sweeps against ``offered_load`` stay comparable across
  arrival laws.

Three aggregate laws (:class:`~repro.config.ClientArrival`):

POISSON
    Superposition of independent per-client Poisson streams is itself
    Poisson at the aggregate rate — sampled directly.
BURSTY
    An interrupted Poisson process (two-state Markov-modulated on/off
    source). ON periods send at ``rate / duty_cycle`` so the mean stays
    ``rate``; the index of dispersion of counts exceeds 1 (the property
    wall in ``tests/unit/workload/test_population.py`` pins this).
DIURNAL
    Non-homogeneous Poisson with a raised-cosine intensity over
    ``diurnal_period`` seconds, sampled by thinning; the peak is
    normalized so the cycle-average intensity equals ``rate``.

Zipf attribution uses rejection inversion (Hörmann & Derflinger 1996),
O(1) per sample with no per-client weight table — the other half of
keeping 10⁶⁺ clients free.
"""

from __future__ import annotations

import math
import random

from repro.config import ClientArrival, ClientPopulationConfig
from repro.errors import ConfigurationError
from repro.types import SimTime


class ZipfSampler:
    """Zipf(s) ranks in ``1..size`` by rejection inversion, O(1)/draw.

    For exponent ``s = 0`` every rank is equally likely (plain uniform
    draw). For ``s > 0``, P(rank = r) ∝ r^-s; the implementation follows
    Hörmann & Derflinger's rejection-inversion scheme (the same one
    Apache Commons Math ships), which needs no precomputed weight array
    and so costs O(1) memory regardless of the population size.
    """

    def __init__(self, size: int, s: float, rng: random.Random) -> None:
        if size < 1:
            raise ConfigurationError(f"zipf support must be >= 1: {size}")
        if s < 0:
            raise ConfigurationError(f"zipf exponent must be >= 0: {s}")
        self._size = size
        self._s = s
        self._rng = rng
        if s > 0:
            self._h_integral_x1 = self._h_integral(1.5) - 1.0
            self._h_integral_max = self._h_integral(size + 0.5)
            # Acceptance shortcut: k - x <= threshold always accepts
            # (Hörmann & Derflinger's s constant).
            self._threshold = 2.0 - self._h_integral_inverse(
                self._h_integral(2.5) - self._h(2.0)
            )

    def _h(self, x: float) -> float:
        """The density envelope h(x) = x^-s."""
        return math.exp(-self._s * math.log(x))

    def _h_integral(self, x: float) -> float:
        """H(x) = ∫ h, with the s = 1 logarithm handled exactly."""
        log_x = math.log(x)
        return self._helper2((1.0 - self._s) * log_x) * log_x

    def _h_integral_inverse(self, x: float) -> float:
        t = x * (1.0 - self._s)
        if t < -1.0:
            t = -1.0  # clamp numerical noise at the left edge
        return math.exp(self._helper1(t) * x)

    @staticmethod
    def _helper1(x: float) -> float:
        """log1p(x)/x, continuous at 0."""
        if abs(x) > 1e-8:
            return math.log1p(x) / x
        return 1.0 - x * (0.5 - x * (1.0 / 3.0 - 0.25 * x))

    @staticmethod
    def _helper2(x: float) -> float:
        """expm1(x)/x, continuous at 0."""
        if abs(x) > 1e-8:
            return math.expm1(x) / x
        return 1.0 + x * 0.5 * (1.0 + x * (1.0 / 3.0) * (1.0 + 0.25 * x))

    def sample(self) -> int:
        """One rank in ``1..size`` (1 is the most active client)."""
        if self._s == 0.0:
            return self._rng.randrange(self._size) + 1
        while True:
            u = self._h_integral_max + self._rng.random() * (
                self._h_integral_x1 - self._h_integral_max
            )
            x = self._h_integral_inverse(u)
            k = int(x + 0.5)
            if k < 1:
                k = 1
            elif k > self._size:
                k = self._size
            if k - x <= self._threshold or u >= (
                self._h_integral(k + 0.5) - self._h(k)
            ):
                return k


class PopulationPoissonGaps:
    """Aggregate POISSON law: superposed client streams, rate = *rate*."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        self._rate = rate
        self._rng = rng

    def first_delay(self) -> float:
        # Memoryless: the time to the first arrival is itself Exp(rate),
        # which doubles as the random phase.
        return self._rng.expovariate(self._rate)

    def gap(self, at: SimTime) -> float:
        return self._rng.expovariate(self._rate)


class BurstyGaps:
    """Interrupted Poisson process: Markov-modulated on/off aggregate.

    The source alternates exponentially-distributed ON periods (mean
    ``burst_on``) and OFF periods (mean ``burst_off``). While ON it
    emits Poisson arrivals at ``rate / duty_cycle``, so the long-run
    mean rate is exactly ``rate``; while OFF it is silent. Gaps that
    straddle one or more OFF periods are lengthened by the silent time,
    which is what makes the count process overdispersed (burstiness
    index > 1) relative to plain Poisson.
    """

    def __init__(
        self, rate: float, config: ClientPopulationConfig, rng: random.Random
    ) -> None:
        self._on_rate = rate / config.duty_cycle
        self._mean_on = config.burst_on
        self._mean_off = config.burst_off
        self._rng = rng
        #: Seconds of ON time left in the current ON period.
        self._on_left = rng.expovariate(1.0 / self._mean_on)

    def _next_gap(self) -> float:
        # Draw the gap in "ON time", then stretch it by every OFF period
        # the ON clock runs through before covering it.
        gap = self._rng.expovariate(self._on_rate)
        elapsed = 0.0
        while gap > self._on_left:
            gap -= self._on_left
            elapsed += self._on_left
            if self._mean_off > 0:
                elapsed += self._rng.expovariate(1.0 / self._mean_off)
            self._on_left = self._rng.expovariate(1.0 / self._mean_on)
        self._on_left -= gap
        return elapsed + gap

    def first_delay(self) -> float:
        return self._next_gap()

    def gap(self, at: SimTime) -> float:
        return self._next_gap()


class DiurnalGaps:
    """Non-homogeneous Poisson with a raised-cosine day/night cycle.

    The intensity is ``λ(t) = peak * (trough + (1 - trough) *
    (1 - cos(2πt/period)) / 2)`` — lowest at t = 0 (mod period), highest
    half a period later — with ``peak`` normalized so the cycle-average
    intensity is exactly *rate*. Sampling is Lewis–Shedler thinning
    against the constant envelope ``peak``: candidate gaps are
    Exp(peak), each accepted with probability ``λ(t)/peak``.
    """

    def __init__(
        self, rate: float, config: ClientPopulationConfig, rng: random.Random
    ) -> None:
        self._period = config.diurnal_period
        self._trough = config.diurnal_trough
        # Cycle average of the modulation term is (trough + 1) / 2.
        self._peak = 2.0 * rate / (1.0 + config.diurnal_trough)
        self._rng = rng

    def _intensity(self, at: float) -> float:
        phase = 2.0 * math.pi * (at / self._period)
        modulation = self._trough + (1.0 - self._trough) * 0.5 * (
            1.0 - math.cos(phase)
        )
        return self._peak * modulation

    def _thin_from(self, at: float) -> float:
        clock = at
        while True:
            clock += self._rng.expovariate(self._peak)
            if self._rng.random() * self._peak <= self._intensity(clock):
                return clock - at

    def first_delay(self) -> float:
        return self._thin_from(0.0)

    def gap(self, at: SimTime) -> float:
        return self._thin_from(at)


def population_gap_sampler(
    config: ClientPopulationConfig, rate: float, rng: random.Random
):
    """The aggregate gap sampler for one process's client pool."""
    if config.arrival is ClientArrival.POISSON:
        return PopulationPoissonGaps(rate, rng)
    if config.arrival is ClientArrival.BURSTY:
        return BurstyGaps(rate, config, rng)
    if config.arrival is ClientArrival.DIURNAL:
        return DiurnalGaps(rate, config, rng)
    raise ConfigurationError(
        f"no aggregate gap sampler for client arrival {config.arrival!r}"
    )


class ClientPool:
    """The logical clients fronted by one process, attributed lazily.

    Ranks are per-pool (1 = the pool's hottest client); the global
    client id of rank r at process pid in a group of n is
    ``pid + n * (r - 1)``, which keeps ids disjoint across pools and
    stable under the deal-around-the-table split of
    :meth:`ClientPopulationConfig.clients_of`.
    """

    def __init__(
        self,
        config: ClientPopulationConfig,
        pid: int,
        n: int,
        rng: random.Random,
    ) -> None:
        self.pid = pid
        self._n = n
        self.size = config.clients_of(pid, n)
        self._zipf = ZipfSampler(self.size, config.zipf_s, rng)
        #: Arrivals per local rank; sparse — hot ranks dominate.
        self._arrivals_by_rank: dict[int, int] = {}

    def on_arrival(self) -> int:
        """Attribute one arrival; returns the global client id."""
        rank = self._zipf.sample()
        self._arrivals_by_rank[rank] = self._arrivals_by_rank.get(rank, 0) + 1
        return self.pid + self._n * (rank - 1)

    @property
    def arrivals(self) -> int:
        """Total arrivals attributed to this pool."""
        return sum(self._arrivals_by_rank.values())

    @property
    def active_clients(self) -> int:
        """Distinct clients of this pool that sent at least once."""
        return len(self._arrivals_by_rank)

    def rank_counts(self) -> dict[int, int]:
        """Arrival counts keyed by local rank (1 = hottest)."""
        return dict(self._arrivals_by_rank)


class ClientPopulation:
    """All client pools of one run, one per process.

    Attribution draws come from dedicated RNG streams
    (``workload.p{pid}.clients``), disjoint from the gap-sampler
    streams, so adding a population never perturbs the arrival-time
    draws of the underlying schedule — and vice versa.
    """

    def __init__(
        self,
        config: ClientPopulationConfig,
        n: int,
        stream_of,
    ) -> None:
        self.config = config
        self._pools = [
            ClientPool(config, pid, n, stream_of(f"workload.p{pid}.clients"))
            for pid in range(n)
        ]

    def pool(self, pid: int) -> ClientPool:
        return self._pools[pid]

    def arrival_hook(self, pid: int):
        """An :data:`~repro.workload.generator.ArrivalListener` for *pid*."""
        pool = self._pools[pid]

        def hook() -> None:
            pool.on_arrival()

        return hook

    @property
    def active_clients(self) -> int:
        """Distinct clients across all pools that sent at least once."""
        return sum(pool.active_clients for pool in self._pools)

    @property
    def arrivals(self) -> int:
        return sum(pool.arrivals for pool in self._pools)
