"""Backlog-window flow control (paper §5.1).

Both stacks use the same mechanism: each process may have at most
``window`` of its own abcast messages accepted-but-not-yet-adelivered
(its *backlog*); further abcast events block until a slot frees. Under
saturation this is what bounds the number of messages ordered per
consensus execution (the paper's M ≈ 4) and produces the latency and
throughput plateaus of Figs. 8–10, as well as the observation that n = 7
sustains a higher throughput than n = 3 (a larger group is allowed a
larger aggregate backlog).
"""

from __future__ import annotations

from repro.errors import FlowControlError


class BacklogWindow:
    """A counting window of in-flight slots for one process."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise FlowControlError(f"window capacity must be >= 1, got {capacity}")
        self._capacity = capacity
        self._in_flight = 0
        self._total_blocked = 0

    @property
    def capacity(self) -> int:
        """Maximum simultaneous in-flight own messages."""
        return self._capacity

    @property
    def in_flight(self) -> int:
        """Currently held slots."""
        return self._in_flight

    @property
    def total_blocked(self) -> int:
        """How many acquisition attempts were refused so far."""
        return self._total_blocked

    @property
    def available(self) -> int:
        """Free slots."""
        return self._capacity - self._in_flight

    def try_acquire(self) -> bool:
        """Take a slot if one is free; record a block otherwise."""
        if self._in_flight < self._capacity:
            self._in_flight += 1
            return True
        self._total_blocked += 1
        return False

    def release(self) -> None:
        """Return a slot (the own message was adelivered locally).

        Raises:
            FlowControlError: If no slot is held — releasing more than
                was acquired indicates a delivery-accounting bug.
        """
        if self._in_flight <= 0:
            raise FlowControlError("release() without a held flow-control slot")
        self._in_flight -= 1
