"""Flow control (the paper's backlog-window mechanism, §5.1)."""

from repro.flowcontrol.window import BacklogWindow

__all__ = ["BacklogWindow"]
