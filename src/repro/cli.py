"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro figure8            # early latency vs offered load
    python -m repro figure9            # early latency vs message size
    python -m repro figure10           # throughput vs offered load
    python -m repro figure11           # throughput vs message size
    python -m repro figures            # all four (sharing sweeps)
    python -m repro sweep              # both sweeps, no rendering
    python -m repro analysis           # §5.2 analytical tables + validation
    python -m repro ablation           # per-optimization ablation (§4)
    python -m repro predict            # design-time performance prediction
    python -m repro all                # everything above
    python -m repro latencydist        # latency-distribution histogram figure
    python -m repro nemesis            # adversarial sweep (see below)
    python -m repro live               # run a stack over real TCP (see below)
    python -m repro profile            # cost-of-modularity profiler (see below)

The ``profile`` command runs one traced simulation per stack at a
common configuration point and prints where the CPU time went: a
per-stack/per-layer latency-attribution table, the measured modularity
overhead (boundary-crossing time over total attributed time) and a
representative message's critical path. ``--trace-out trace.json``
additionally writes every span as Chrome-trace/Perfetto JSON — open it
at https://ui.perfetto.dev::

    python -m repro profile --stacks monolithic,modular
    python -m repro profile --stacks modular --trace-out trace.json

``--clients N --zipf S --client-arrival {poisson,bursty,diurnal}``
attach a lazy client-population model (N logical clients, Zipf(S)
activity skew, the chosen aggregate arrival law) to the workload of the
``sweep``, ``latencydist`` and ``live`` commands; see
:mod:`repro.workload.population`.

``--fast`` uses a reduced grid and a single seed (seconds instead of
minutes); ``--seeds N`` controls the ensemble size; ``--csv DIR`` also
writes each regenerated figure's data as CSV into DIR.

``--jobs N`` fans the sweep grid (and the nemesis cases) out over N
worker processes. Results are merged in submission order, so the output
— including a ``--json-out`` export — is byte-identical for every job
count; parallelism only changes the wall-clock time.

The ``nemesis`` command sweeps randomized fault schedules across the
fault-tolerant stacks and checks the four atomic-broadcast properties
online, plus liveness::

    python -m repro nemesis --seeds 50            # randomized sweep
    python -m repro nemesis --faultload churn     # one named scenario
    python -m repro nemesis --faultload fl.json   # schedule from a file
    python -m repro nemesis --replay ce.json      # re-run a counterexample

On failure it shrinks the schedule to a 1-minimal counterexample,
writes it as JSON (``--out DIR``) and prints the replay command; the
exit code is 1 so CI fails loudly.

``nemesis --live`` compiles the *same* faultload onto a real deployment
(OS processes, TCP): crashes become timed ``SIGKILL`` + restart with
write-ahead-log recovery, partitions and delay spikes become transport
link directives. The merged per-worker delivery logs are then checked
against the same four invariants plus liveness::

    python -m repro nemesis --live --faultload crash-leader --stack modular
    python -m repro nemesis --live --replay ce.json

The ``live`` command deploys the *same* protocol stacks over real
asyncio TCP sockets between OS processes on localhost (see
:mod:`repro.live`)::

    python -m repro live --n 3 --stack monolithic --load 100 --duration 5
    python -m repro live --stack modular --compare   # sim vs live, side by side
    python -m repro live --json                      # RunResult-schema JSON
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.performance_model import predict_gap
from repro.config import (
    STACK_LABELS,
    ClientArrival,
    ClientPopulationConfig,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
    stack_from_label,
)
from repro.errors import ConfigurationError, ReproError
from repro.experiments.ablation import ablation_table, run_ablation
from repro.experiments.export import write_sweep_csv, write_sweeps_json
from repro.experiments.figures import (
    FAST_LOADS,
    FAST_SEEDS,
    FAST_SIZES,
    FigureReport,
    all_figures,
    figure8,
    figure9,
    figure10,
    figure11,
    latency_distribution,
)
from repro.experiments.report import format_table, sweep_table
from repro.experiments.sweeps import (
    DEFAULT_SEEDS,
    PAPER_LOADS,
    PAPER_SIZES,
    run_load_sweep,
    run_size_sweep,
)
from repro.experiments.tables import analytical_table, validation_table
from repro.nemesis import swarm as nemesis_swarm
from repro.nemesis.schedule import SCENARIOS, resolve_faultload

COMMANDS = (
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figures",
    "sweep",
    "analysis",
    "ablation",
    "predict",
    "all",
    "latencydist",
    "nemesis",
    "live",
    "profile",
)


def prediction_table(
    group_sizes: tuple[int, ...] = (3, 7),
    sizes: tuple[int, ...] = (64, 1024, 16384),
) -> str:
    """Design-time saturation-throughput predictions (no simulation)."""
    headers = ["n", "size (B)", "T modular (msg/s)", "T monolithic (msg/s)", "gain"]
    rows = []
    for n in group_sizes:
        for size in sizes:
            gap = predict_gap(n, 4, size)
            rows.append(
                [
                    str(n),
                    str(size),
                    f"{gap.modular.saturation_throughput:.0f}",
                    f"{gap.monolithic.saturation_throughput:.0f}",
                    f"+{100 * gap.throughput_gain:.0f}%",
                ]
            )
    return format_table(headers, rows)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'On the Cost of Modularity in "
            "Atomic Broadcast' (Rütti et al., DSN 2007)."
        ),
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced parameter grid and a single seed",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="number of seeds per point (default: 3, or 1 with --fast)",
    )
    parser.add_argument(
        "--csv",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each regenerated figure's data as CSV into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "worker processes for sweep/nemesis grids (default: 1, "
            "serial); results are identical for any value"
        ),
    )
    parser.add_argument(
        "--json-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write the regenerated sweep data as canonical JSON "
            "(byte-identical across runs and --jobs values)"
        ),
    )
    parser.add_argument(
        "--stacks",
        default=None,
        metavar="A,B,...",
        help=(
            "comma-separated stacks for sweep/figure/nemesis commands "
            f"(known: {', '.join(nemesis_swarm.STACKS)}; defaults: the "
            "paper's modular+monolithic for sweeps and figures, "
            f"{','.join(nemesis_swarm.DEFAULT_STACKS)} for nemesis)"
        ),
    )
    population = parser.add_argument_group("client population options")
    population.add_argument(
        "--clients",
        type=int,
        default=None,
        metavar="N",
        help=(
            "attach a lazy client-population model of N logical clients "
            "to the workload (sweep/latencydist/live commands)"
        ),
    )
    population.add_argument(
        "--zipf",
        type=float,
        default=None,
        metavar="S",
        help="Zipf activity-skew exponent of the population (default: 1.1)",
    )
    population.add_argument(
        "--client-arrival",
        choices=tuple(arrival.value for arrival in ClientArrival),
        default=None,
        help="aggregate arrival law of the population (default: poisson)",
    )
    nemesis = parser.add_argument_group("nemesis options")
    nemesis.add_argument(
        "--faultload",
        default=None,
        metavar="SPEC",
        help=(
            "fixed faultload instead of randomized schedules: a named "
            f"scenario ({', '.join(SCENARIOS)}) or a JSON file"
        ),
    )
    nemesis.add_argument(
        "--replay",
        type=Path,
        default=None,
        metavar="CASE.json",
        help="re-run one saved counterexample and report its violations",
    )
    nemesis.add_argument(
        "--n",
        type=int,
        default=3,
        metavar="N",
        help="group size for nemesis and live runs (default: 3)",
    )
    nemesis.add_argument(
        "--out",
        type=Path,
        default=Path("nemesis-failures"),
        metavar="DIR",
        help="directory for shrunk counterexample JSON files",
    )
    nemesis.add_argument(
        "--no-shrink",
        action="store_true",
        help="report failures without shrinking them first",
    )
    nemesis.add_argument(
        "--live",
        action="store_true",
        help=(
            "run the faultload against a real TCP deployment (SIGKILL + "
            "WAL recovery) instead of the simulator; needs --faultload "
            "or --replay"
        ),
    )
    nemesis.add_argument(
        "--restart-delay",
        type=float,
        default=None,
        metavar="SECONDS",
        help="delay between a live SIGKILL and the restart (default: 0.4)",
    )
    live = parser.add_argument_group("live options")
    live.add_argument(
        "--stack",
        choices=STACK_LABELS,
        default="monolithic",
        help="protocol stack to deploy (default: monolithic)",
    )
    live.add_argument(
        "--load",
        type=float,
        default=100.0,
        metavar="MSGS/S",
        help="offered load across the group (default: 100)",
    )
    live.add_argument(
        "--size",
        type=int,
        default=1024,
        metavar="BYTES",
        help="message payload size (default: 1024)",
    )
    live.add_argument(
        "--duration",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="measurement window length (default: 5)",
    )
    live.add_argument(
        "--warmup",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="warm-up before the window opens (default: 0.5)",
    )
    live.add_argument(
        "--compare",
        action="store_true",
        help="also run the matched simulation and print both side by side",
    )
    live.add_argument(
        "--json",
        action="store_true",
        help="emit the result as RunResult-schema JSON instead of a table",
    )
    obs = parser.add_argument_group("observability options")
    obs.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "write causal spans as Chrome-trace/Perfetto JSON "
            "(profile and live commands; open at https://ui.perfetto.dev)"
        ),
    )
    obs.add_argument(
        "--trace-cap",
        type=int,
        default=None,
        metavar="N",
        help=(
            "span-trace ring-buffer capacity; the oldest records are "
            "evicted (and counted) beyond N (default: 200000 for "
            "profile, off for live unless --trace-out is given)"
        ),
    )
    return parser


def _maybe_export(report: FigureReport, csv_dir: Path | None) -> None:
    if csv_dir is None:
        return
    csv_dir.mkdir(parents=True, exist_ok=True)
    name = report.figure.lower().replace(" ", "")
    target = csv_dir / f"{name}.csv"
    write_sweep_csv(report.sweep, target)
    print(f"[csv] wrote {target}")


def _print_violations(result: "nemesis_swarm.CaseResult") -> None:
    from repro.obs.format import format_trace_slice

    for violation in result.violations:
        print(f"  {violation}")
    trace = result.violations[-1].trace_slice if result.violations else ()
    if trace:
        print("  trace slice (most recent events):")
        for line in format_trace_slice(trace[-12:]).splitlines():
            print(f"    {line}")


def _run_nemesis_live(args: argparse.Namespace) -> int:
    from repro.live.deploy import LiveSpec
    from repro.live.faults import DEFAULT_RESTART_DELAY, run_nemesis_live

    if args.replay is not None:
        case = nemesis_swarm.load_case(args.replay)
        print(f"replaying live: {case.describe()}")
        faultload, stack, n = case.faultload, case.stack, case.n
    elif args.faultload is not None:
        faultload = resolve_faultload(args.faultload, n=args.n)
        stack, n = args.stack, args.n
    else:
        raise ConfigurationError(
            "nemesis --live needs a fixed schedule: pass --faultload SPEC "
            "(named scenario or JSON file) or --replay CASE.json"
        )
    spec = LiveSpec(
        n=n,
        stack=stack,
        load=args.load,
        size=args.size,
        duration=args.duration,
        warmup=args.warmup,
    )
    restart_delay = (
        args.restart_delay if args.restart_delay is not None
        else DEFAULT_RESTART_DELAY
    )
    report = run_nemesis_live(spec, faultload, restart_delay=restart_delay)
    print(f"live faultload on stack={stack} n={n}:")
    for line in report.timeline:
        print(f"  {line}")
    recovered = (
        ", ".join(f"worker {pid}" for pid in report.recovered) or "none"
    )
    print(
        f"merged logs: {report.accepted} accepted, {report.deliveries} "
        f"deliveries checked; kills={report.kills} restarts={report.restarts} "
        f"recovered={recovered}"
    )
    if report.wal_truncated_bytes:
        print(f"WAL torn tails truncated: {report.wal_truncated_bytes} bytes")
    if report.backpressure_stalls:
        print(f"backpressure stalls: {report.backpressure_stalls}")
    if report.passed:
        print("PASS: all invariants held across crash and recovery")
        return 0
    print(f"FAIL: {len(report.violations)} violation(s)")
    for violation in report.violations:
        print(f"  {violation}")
    return 1


def _run_nemesis(args: argparse.Namespace) -> int:
    if args.live:
        return _run_nemesis_live(args)
    if args.replay is not None:
        case = nemesis_swarm.load_case(args.replay)
        print(f"replaying {case.describe()}")
        result = nemesis_swarm.run_case(case)
        if result.passed:
            print(f"PASS: {result.deliveries} deliveries, all invariants held")
            return 0
        print(f"FAIL: {len(result.violations)} violation(s)")
        _print_violations(result)
        return 1

    stacks_arg = (
        args.stacks
        if args.stacks is not None
        else ",".join(nemesis_swarm.DEFAULT_STACKS)
    )
    stacks = tuple(label for label in stacks_arg.split(",") if label)
    unknown = [label for label in stacks if label not in nemesis_swarm.STACKS]
    if unknown:
        raise ConfigurationError(
            f"unknown stack label(s) for --stacks: {', '.join(unknown)} "
            f"(known: {', '.join(nemesis_swarm.STACKS)})"
        )
    seed_count = args.seeds if args.seeds else 20
    seeds = range(1, seed_count + 1)

    if args.faultload is not None:
        faultload = resolve_faultload(args.faultload, n=args.n)
        cases = [
            nemesis_swarm.NemesisCase(
                stack=stack, seed=seed, n=args.n, fd="oracle", faultload=faultload
            )
            for seed in seeds
            for stack in stacks
        ]
    else:
        cases = [
            nemesis_swarm.generate_case(stack, seed, args.n)
            for seed in seeds
            for stack in stacks
        ]

    report = nemesis_swarm.SwarmReport()
    results = nemesis_swarm.run_cases(cases, jobs=args.jobs)
    report.results.extend(results)
    for result in results:
        if not result.passed:
            minimal = (
                result
                if args.no_shrink
                else nemesis_swarm.shrink_case(result.case)
            )
            report.counterexamples.append(
                nemesis_swarm.Counterexample(original=result, minimal=minimal)
            )
    print(report.summary())
    if report.ok:
        return 0
    args.out.mkdir(parents=True, exist_ok=True)
    for index, ce in enumerate(report.counterexamples):
        case = ce.minimal.case
        path = args.out / f"{case.stack}-seed{case.seed}-{index}.json"
        nemesis_swarm.save_case(case, path)
        print(f"counterexample written: {path}")
        print(f"  replay with: {nemesis_swarm.repro_command(path)}")
        _print_violations(ce.minimal)
    return 1


def _live_summary(result: dict, observability: dict | None = None) -> str:
    from repro.obs.telemetry import telemetry_rows

    metrics = result["metrics"]
    config = result["config"]
    latency = metrics["latency_mean"]
    rows = [
        ["throughput (msgs/s)", f"{metrics['throughput']:.1f}"],
        ["offered rate (msgs/s)", f"{metrics['offered_rate']:.1f}"],
        [
            "early latency mean (ms)",
            f"{latency * 1e3:.2f}" if latency is not None else "n/a",
        ],
        ["latency samples", str(metrics["latency_count"])],
        ["consensus instances", str(result["instances_decided"])],
        ["net messages sent", str(result["network"].get("messages_sent", 0))],
        ["blocked attempts", str(metrics["blocked_attempts"])],
    ]
    p999 = metrics.get("latency_p999")
    if p999 is not None:
        rows.insert(3, ["latency p999 (ms)", f"{p999 * 1e3:.2f}"])
    if metrics.get("active_clients"):
        rows.append(["active logical clients", str(metrics["active_clients"])])
    if metrics.get("boundary_crossings"):
        rows.append(
            ["boundary crossings", str(metrics["boundary_crossings"])]
        )
    if observability is not None:
        rows.extend(telemetry_rows(observability.get("telemetry", {})))
        if observability.get("trace_dropped"):
            rows.append(
                ["trace records dropped", str(observability["trace_dropped"])]
            )
    title = (
        f"live run: stack={config['stack']} n={config['n']} "
        f"load={config['load']:g} size={config['message_size']} "
        f"duration={config['duration']:g}s"
    )
    return title + "\n" + format_table(["metric", "value"], rows)


def _run_live(args: argparse.Namespace) -> int:
    from repro.live.compare import comparison_table, run_comparison
    from repro.live.deploy import LiveSpec, run_live

    population = _population(args)
    trace_cap = args.trace_cap
    if trace_cap is None and args.trace_out is not None:
        from repro.obs.profile import DEFAULT_TRACE_CAP

        trace_cap = DEFAULT_TRACE_CAP
    spec = LiveSpec(
        n=args.n,
        stack=args.stack,
        load=args.load,
        size=args.size,
        duration=args.duration,
        warmup=args.warmup,
        clients=population.clients if population is not None else 0,
        zipf_s=population.zipf_s if population is not None else 1.1,
        client_arrival=population.arrival.value
        if population is not None
        else "poisson",
        trace_cap=trace_cap or 0,
    )
    if args.compare:
        results = run_comparison(spec)
        if args.json:
            print(json.dumps(results, indent=2))
        else:
            print("sim vs live, matched parameters:")
            print(comparison_table(results))
        return 0
    observability: dict = {}
    result = run_live(spec, observability=observability)
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(_live_summary(result, observability))
    if args.trace_out is not None:
        from repro.obs.perfetto import write_chrome_trace
        from repro.obs.spans import spans_from_serialized

        spans = spans_from_serialized(observability.get("spans", ()))
        target = write_chrome_trace(args.trace_out, spans)
        print(f"[trace] wrote {len(spans)} spans to {target}")
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """The cost-of-modularity profiler: traced runs + attribution tables."""
    from repro.obs.profile import (
        DEFAULT_TRACE_CAP,
        critical_path_summary,
        export_chrome_trace,
        layer_table,
        run_profile,
        summary_table,
    )

    labels = tuple(
        label
        for label in (args.stacks or "monolithic,modular").split(",")
        if label
    )
    if not labels:
        raise ConfigurationError("--stacks must name at least one stack")
    for label in labels:
        stack_from_label(label)  # raises with the sorted registry
    seed = args.seeds if args.seeds else 1
    runs = run_profile(
        labels,
        n=args.n,
        load=args.load,
        size=args.size,
        duration=args.duration,
        warmup=args.warmup,
        seed=seed,
        trace_cap=args.trace_cap or DEFAULT_TRACE_CAP,
    )
    print(
        f"profile: n={args.n} load={args.load:g} size={args.size} "
        f"duration={args.duration:g}s seed={seed}"
    )
    print()
    print(summary_table(runs))
    print()
    print("per-layer CPU attribution over the measurement window:")
    print(layer_table(runs))
    for run in runs:
        print()
        print(critical_path_summary(run))
    if args.trace_out is not None:
        target = export_chrome_trace(runs, args.trace_out)
        print()
        print(f"[trace] wrote Perfetto JSON to {target}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Configuration and deployment errors (unknown stack labels, bad
    faultload files, a live group failing to come up) exit with status 2
    and a one-line ``error:`` message, not a traceback.
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(args)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"run '{parser.prog} --help' for usage", file=sys.stderr)
        return 2


def _resolved_seeds(args: argparse.Namespace) -> tuple[int, ...]:
    if args.seeds:
        return tuple(range(1, args.seeds + 1))
    return FAST_SEEDS if args.fast else DEFAULT_SEEDS


def _sweep_stacks(args: argparse.Namespace) -> tuple[StackKind, ...] | None:
    """Resolve ``--stacks`` labels to sweepable stack kinds.

    ``None`` (flag not given) keeps each sweep's paper defaults. Labels
    must be kind-pure: ``indirect`` is a consensus-variant twist on the
    modular *kind*, so a sweep keyed by :class:`StackKind` cannot
    represent it as a separate curve.
    """
    if args.stacks is None:
        return None
    kinds = []
    for label in args.stacks.split(","):
        if not label:
            continue
        config = stack_from_label(label)  # raises with the sorted registry
        if config != StackConfig(kind=config.kind):
            raise ConfigurationError(
                f"stack {label!r} is not sweepable: sweeps vary the stack "
                "kind only (pick one of: "
                + ", ".join(sorted(k.value for k in StackKind))
                + ")"
            )
        kinds.append(config.kind)
    if not kinds:
        raise ConfigurationError("--stacks must name at least one stack")
    return tuple(kinds)


def _population(args: argparse.Namespace) -> ClientPopulationConfig | None:
    """The client population requested on the command line, if any."""
    if args.clients is None and args.zipf is None and args.client_arrival is None:
        return None
    kwargs: dict = {}
    if args.clients is not None:
        kwargs["clients"] = args.clients
    if args.zipf is not None:
        kwargs["zipf_s"] = args.zipf
    if args.client_arrival is not None:
        kwargs["arrival"] = ClientArrival(args.client_arrival)
    return ClientPopulationConfig(**kwargs)


def _population_base(args: argparse.Namespace) -> RunConfig | None:
    """A sweep base config carrying the CLI's client population."""
    population = _population(args)
    if population is None:
        return None
    return RunConfig(workload=WorkloadConfig(population=population))


def _run_sweep(args: argparse.Namespace) -> int:
    """Run the load and size sweeps without the figure rendering."""
    seeds = _resolved_seeds(args)
    stacks = _sweep_stacks(args)
    stack_kwargs = {} if stacks is None else {"stacks": stacks}
    base = _population_base(args)
    if base is not None:
        stack_kwargs["base"] = base
    load_sweep = run_load_sweep(
        loads=FAST_LOADS if args.fast else PAPER_LOADS,
        seeds=seeds,
        jobs=args.jobs,
        **stack_kwargs,
    )
    size_sweep = run_size_sweep(
        sizes=FAST_SIZES if args.fast else PAPER_SIZES,
        seeds=seeds,
        jobs=args.jobs,
        **stack_kwargs,
    )
    if args.json_out is not None:
        write_sweeps_json(
            {"offered_load": load_sweep, "message_size": size_sweep},
            args.json_out,
        )
        print(f"[json] wrote {args.json_out}")
        return 0
    print("load sweep: early latency (ms) by offered load (msgs/s)")
    print(sweep_table(load_sweep, "latency", x_label="load"))
    print()
    print("load sweep: delivery latency p50 (ms) by offered load (msgs/s)")
    print(sweep_table(load_sweep, "latency_p50", x_label="load"))
    print()
    print("load sweep: delivery latency p99 (ms) by offered load (msgs/s)")
    print(sweep_table(load_sweep, "latency_p99", x_label="load"))
    print()
    print("load sweep: delivery latency p999 (ms) by offered load (msgs/s)")
    print(sweep_table(load_sweep, "latency_p999", x_label="load"))
    print()
    print("load sweep: throughput (msgs/s) by offered load (msgs/s)")
    print(sweep_table(load_sweep, "throughput", x_label="load"))
    print()
    print("size sweep: early latency (ms) by message size (bytes)")
    print(sweep_table(size_sweep, "latency", x_label="size"))
    print()
    print("size sweep: throughput (msgs/s) by message size (bytes)")
    print(sweep_table(size_sweep, "throughput", x_label="size"))
    return 0


def _run_latencydist(args: argparse.Namespace) -> int:
    """Render the latency-distribution histogram of one sweep point.

    Runs one (n, stack, load) point — ``--n``, ``--stack``, ``--load``
    from the live option group — with the CLI's client population (a
    default population when no flags are given; this figure exists to
    show what a skewed client fleet experiences) and prints the full
    log-bucketed histogram with p50/p99/p999 markers.
    """
    population = _population(args) or ClientPopulationConfig()
    base = RunConfig(workload=WorkloadConfig(population=population))
    stack = stack_from_label(args.stack)
    sweep = run_load_sweep(
        loads=(args.load,),
        message_size=args.size,
        group_sizes=(args.n,),
        stacks=(stack.kind,),
        seeds=_resolved_seeds(args),
        base=base,
        jobs=args.jobs,
    )
    report = latency_distribution(sweep)
    print(report)
    point = sweep.points[0]
    print(
        f"clients={population.clients} zipf_s={population.zipf_s:g} "
        f"arrival={population.arrival.value} active="
        f"{sum(r.metrics.active_clients for r in point.runs)}"
    )
    if args.json_out is not None:
        _export_json({sweep.parameter: sweep}, args.json_out)
    return 0


def _export_json(sweeps: dict, path: Path | None) -> None:
    if path is None:
        return
    write_sweeps_json(sweeps, path)
    print(f"[json] wrote {path}")


def _dispatch(args: argparse.Namespace) -> int:
    seeds = tuple(range(1, args.seeds + 1)) if args.seeds else None

    def emit(text: object) -> None:
        print(text)
        print()

    command = args.command
    if command == "nemesis":
        return _run_nemesis(args)
    if command == "live":
        return _run_live(args)
    if command == "profile":
        return _run_profile(args)
    if command == "sweep":
        return _run_sweep(args)
    if command == "latencydist":
        return _run_latencydist(args)
    if command in ("figure8", "figure9", "figure10", "figure11"):
        figure_fn = {
            "figure8": figure8,
            "figure9": figure9,
            "figure10": figure10,
            "figure11": figure11,
        }[command]
        report = figure_fn(
            fast=args.fast, seeds=seeds, jobs=args.jobs, stacks=_sweep_stacks(args)
        )
        emit(report)
        _maybe_export(report, args.csv)
        if args.json_out is not None:
            _export_json({report.sweep.parameter: report.sweep}, args.json_out)
    if command in ("figures", "all"):
        reports = all_figures(
            fast=args.fast, seeds=seeds, jobs=args.jobs, stacks=_sweep_stacks(args)
        )
        for report in reports:
            emit(report)
            _maybe_export(report, args.csv)
        if args.json_out is not None:
            _export_json(
                {
                    reports[0].sweep.parameter: reports[0].sweep,
                    reports[1].sweep.parameter: reports[1].sweep,
                },
                args.json_out,
            )
    if command in ("predict", "all"):
        print("Design-time prediction (no simulation; repro.analysis.predict_gap):")
        emit(prediction_table())
    if command in ("analysis", "all"):
        print("Analytical evaluation (paper §5.2):")
        emit(analytical_table())
        print("Simulator validation (measured vs closed-form, steady state):")
        emit(validation_table())
    if command in ("ablation", "all"):
        print("Ablation of the monolithic optimizations (n=3, 16 KiB, loaded):")
        rows = run_ablation(seeds=(1,) if args.fast else (1, 2))
        emit(ablation_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
