"""Command-line interface: regenerate any of the paper's experiments.

Usage::

    python -m repro figure8            # early latency vs offered load
    python -m repro figure9            # early latency vs message size
    python -m repro figure10           # throughput vs offered load
    python -m repro figure11           # throughput vs message size
    python -m repro figures            # all four (sharing sweeps)
    python -m repro analysis           # §5.2 analytical tables + validation
    python -m repro ablation           # per-optimization ablation (§4)
    python -m repro predict            # design-time performance prediction
    python -m repro all                # everything above

``--fast`` uses a reduced grid and a single seed (seconds instead of
minutes); ``--seeds N`` controls the ensemble size; ``--csv DIR`` also
writes each regenerated figure's data as CSV into DIR.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.analysis.performance_model import predict_gap
from repro.experiments.ablation import ablation_table, run_ablation
from repro.experiments.export import write_sweep_csv
from repro.experiments.figures import (
    FigureReport,
    all_figures,
    figure8,
    figure9,
    figure10,
    figure11,
)
from repro.experiments.report import format_table
from repro.experiments.tables import analytical_table, validation_table

COMMANDS = (
    "figure8",
    "figure9",
    "figure10",
    "figure11",
    "figures",
    "analysis",
    "ablation",
    "predict",
    "all",
)


def prediction_table(
    group_sizes: tuple[int, ...] = (3, 7),
    sizes: tuple[int, ...] = (64, 1024, 16384),
) -> str:
    """Design-time saturation-throughput predictions (no simulation)."""
    headers = ["n", "size (B)", "T modular (msg/s)", "T monolithic (msg/s)", "gain"]
    rows = []
    for n in group_sizes:
        for size in sizes:
            gap = predict_gap(n, 4, size)
            rows.append(
                [
                    str(n),
                    str(size),
                    f"{gap.modular.saturation_throughput:.0f}",
                    f"{gap.monolithic.saturation_throughput:.0f}",
                    f"+{100 * gap.throughput_gain:.0f}%",
                ]
            )
    return format_table(headers, rows)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiments of 'On the Cost of Modularity in "
            "Atomic Broadcast' (Rütti et al., DSN 2007)."
        ),
    )
    parser.add_argument("command", choices=COMMANDS)
    parser.add_argument(
        "--fast",
        action="store_true",
        help="reduced parameter grid and a single seed",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=None,
        metavar="N",
        help="number of seeds per point (default: 3, or 1 with --fast)",
    )
    parser.add_argument(
        "--csv",
        type=Path,
        default=None,
        metavar="DIR",
        help="also write each regenerated figure's data as CSV into DIR",
    )
    return parser


def _maybe_export(report: FigureReport, csv_dir: Path | None) -> None:
    if csv_dir is None:
        return
    csv_dir.mkdir(parents=True, exist_ok=True)
    name = report.figure.lower().replace(" ", "")
    target = csv_dir / f"{name}.csv"
    write_sweep_csv(report.sweep, target)
    print(f"[csv] wrote {target}")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    seeds = tuple(range(1, args.seeds + 1)) if args.seeds else None

    def emit(text: object) -> None:
        print(text)
        print()

    command = args.command
    if command in ("figure8", "figure9", "figure10", "figure11"):
        figure_fn = {
            "figure8": figure8,
            "figure9": figure9,
            "figure10": figure10,
            "figure11": figure11,
        }[command]
        report = figure_fn(fast=args.fast, seeds=seeds)
        emit(report)
        _maybe_export(report, args.csv)
    if command in ("figures", "all"):
        for report in all_figures(fast=args.fast, seeds=seeds):
            emit(report)
            _maybe_export(report, args.csv)
    if command in ("predict", "all"):
        print("Design-time prediction (no simulation; repro.analysis.predict_gap):")
        emit(prediction_table())
    if command in ("analysis", "all"):
        print("Analytical evaluation (paper §5.2):")
        emit(analytical_table())
        print("Simulator validation (measured vs closed-form, steady state):")
        emit(validation_table())
    if command in ("ablation", "all"):
        print("Ablation of the monolithic optimizations (n=3, 16 KiB, loaded):")
        rows = run_ablation(seeds=(1,) if args.fast else (1, 2))
        emit(ablation_table(rows))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
