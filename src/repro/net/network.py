"""The simulated full-mesh network.

Models the paper's testbed transport: every pair of processes is
connected by a quasi-reliable, FIFO, bidirectional channel (the paper's
Fortika used TCP connections over switched Gigabit Ethernet).

Timing model per message:

1. *NIC serialization* — each process has one transmit NIC of finite
   bandwidth; messages leave in FIFO order, each occupying the NIC for
   ``wire_size / bandwidth`` seconds. This captures sender-side
   contention when broadcasting large proposals.
2. *Propagation* — a constant one-way delay (wire + switch).
3. *Per-pair FIFO* — arrivals on a (src, dst) pair never reorder, as TCP
   guarantees.

Quasi-reliability: if neither endpoint crashes, every message arrives
(the simulator never loses messages unless a fault filter drops them).
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.config import NetworkConfig
from repro.errors import NetworkError
from repro.net.faults import FaultInjector, Verdict
from repro.net.message import NetMessage
from repro.net.stats import NetworkStats
from repro.sim.kernel import Kernel
from repro.sim.tracing import NullTraceRecorder, TraceRecorder
from repro.types import SimTime

#: Callback invoked when a message arrives at a live destination.
DeliverFn = Callable[[NetMessage], None]


class Network:
    """Full mesh of quasi-reliable FIFO channels with NIC modelling.

    Deliberately *not* slotted: tests wrap :meth:`transmit` with spies,
    which needs a writable instance ``__dict__``.
    """

    def __init__(
        self,
        kernel: Kernel,
        n: int,
        config: NetworkConfig,
        *,
        stats: NetworkStats | None = None,
        faults: FaultInjector | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if n < 2:
            raise NetworkError(f"network needs at least 2 processes, got {n}")
        self._kernel = kernel
        self.n = n
        self.config = config
        self.stats = stats if stats is not None else NetworkStats()
        self.faults = faults if faults is not None else FaultInjector()
        self._trace = trace if trace is not None else NullTraceRecorder()
        self._deliver: list[DeliverFn | None] = [None] * n
        #: Time at which each process's transmit NIC becomes free.
        self._nic_free: list[SimTime] = [0.0] * n
        #: Per-pair one-way delays, precomputed (NetworkConfig is frozen,
        #: so these cannot change mid-run).
        self._delay: list[list[float]] = [
            [config.delay(src, dst) for dst in range(n)] for src in range(n)
        ]
        self._bandwidth = config.bandwidth
        #: Last scheduled arrival per (src, dst), for FIFO enforcement.
        #: Indexed ``[src][dst]`` — a flat n×n matrix beats a dict keyed
        #: by (src, dst) tuples on every single message.
        self._last_arrival: list[list[SimTime]] = [[0.0] * n for __ in range(n)]

    def register(self, process: int, deliver: DeliverFn) -> None:
        """Attach the receive handler of *process*."""
        if not 0 <= process < self.n:
            raise NetworkError(f"unknown process {process} (n={self.n})")
        self._deliver[process] = deliver

    def transmit(self, message: NetMessage, depart_time: SimTime) -> None:
        """Put *message* on the wire at *depart_time*.

        *depart_time* is when the sending CPU finished preparing the
        message (it must not precede the current simulated time). The
        message then waits for the sender NIC, serializes at link
        bandwidth, propagates, and is delivered unless a fault filter
        drops it or the destination has crashed by arrival time.
        """
        src = message.src
        dst = message.dst
        if dst >= self.n or dst < 0:
            raise NetworkError(f"message to unknown process: {message}")
        if depart_time < self._kernel.now:
            raise NetworkError(
                f"depart_time {depart_time} is in the past (now={self._kernel.now})"
            )
        trace = self._trace
        if self.faults.is_crashed(src):
            # Fail-stop guard: a crashed process never puts *new* frames
            # on the wire. (Frames handed to the NIC before the crash
            # were transmitted before mark_crashed ran, so they still
            # depart — the documented in-flight semantics.)
            self.stats.on_send_after_crash(message)
            if trace.enabled:
                trace.record(depart_time, "net.crashed_send", src, message)
            return
        self.stats.on_transmit(message)
        if trace.enabled:
            trace.record(depart_time, "net.send", src, message)

        nic_free = self._nic_free
        tx_start = nic_free[src]
        if depart_time > tx_start:
            tx_start = depart_time
        tx_end = tx_start + message.wire_size / self._bandwidth
        nic_free[src] = tx_end

        arrival = tx_end + self._delay[src][dst]
        decision = self.faults.judge(message)
        if decision.verdict is Verdict.DROP:
            if trace.enabled:
                trace.record(arrival, "net.drop", dst, message)
            return
        arrival += decision.extra_delay

        row = self._last_arrival[src]
        if arrival < row[dst]:
            arrival = row[dst]
        row[dst] = arrival

        # arrival >= depart_time >= now (extra_delay is never negative),
        # so the unchecked fast path is safe.
        self._kernel.post(arrival, partial(self._arrive, message))

    def _arrive(self, message: NetMessage) -> None:
        """Hand an arriving message to the destination, if still alive."""
        dst = message.dst
        if self.faults.is_crashed(dst):
            self._trace.record(self._kernel.now, "net.dead_drop", dst, message)
            return
        deliver = self._deliver[dst]
        if deliver is None:
            raise NetworkError(f"no receiver registered for process {dst}")
        if self._trace.enabled:
            self._trace.record(self._kernel.now, "net.recv", dst, message)
        deliver(message)
