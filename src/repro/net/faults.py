"""Network fault injection.

The paper's measurements are over *good runs*, but the protocols must be
correct in all runs. The :class:`FaultInjector` lets tests and examples
crash processes at scheduled times (or at precise protocol points, via
manual calls) and perturb message delivery (drops and extra delays).

Note on semantics: crashing a process does *not* retract messages it
already handed to its NIC — exactly as on a real host, where frames
queued in the kernel may still leave after the application dies. This is
what makes "sender crashes mid-diffusion" scenarios (the reason for the
§3.3 guard timer) expressible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable

from repro.net.message import NetMessage


class Verdict(enum.Enum):
    """Decision of a message filter."""

    DELIVER = "deliver"
    DROP = "drop"


@dataclass(frozen=True, slots=True)
class FilterDecision:
    """Outcome of filtering one message."""

    verdict: Verdict
    extra_delay: float = 0.0

    @classmethod
    def deliver(cls, extra_delay: float = 0.0) -> "FilterDecision":
        return cls(Verdict.DELIVER, extra_delay)

    @classmethod
    def drop(cls) -> "FilterDecision":
        return cls(Verdict.DROP)


#: A message filter inspects a message and decides its fate.
MessageFilter = Callable[[NetMessage], FilterDecision]

#: Shared "deliver unperturbed" decision: the overwhelmingly common case,
#: returned as a singleton so fault-free runs allocate nothing per message.
_DELIVER_CLEAN = FilterDecision(Verdict.DELIVER, 0.0)
_DROP = FilterDecision(Verdict.DROP, 0.0)


def deliver_all(message: NetMessage) -> FilterDecision:  # noqa: ARG001
    """Default filter: every message is delivered unperturbed."""
    return FilterDecision.deliver()


class FaultInjector:
    """Composable message filtering plus crash bookkeeping.

    Filters are applied in registration order; the first non-DELIVER
    verdict wins, and extra delays accumulate across DELIVER verdicts.
    """

    __slots__ = ("_filters", "_crashed")

    def __init__(self) -> None:
        self._filters: list[MessageFilter] = []
        self._crashed: set[int] = set()

    def add_filter(self, message_filter: MessageFilter) -> None:
        """Register a message filter."""
        self._filters.append(message_filter)

    def drop_matching(self, predicate: Callable[[NetMessage], bool]) -> None:
        """Drop every message for which *predicate* is true."""

        def _filter(message: NetMessage) -> FilterDecision:
            if predicate(message):
                return FilterDecision.drop()
            return FilterDecision.deliver()

        self.add_filter(_filter)

    def delay_matching(
        self, predicate: Callable[[NetMessage], bool], extra_delay: float
    ) -> None:
        """Add *extra_delay* seconds to every matching message."""

        def _filter(message: NetMessage) -> FilterDecision:
            if predicate(message):
                return FilterDecision.deliver(extra_delay)
            return FilterDecision.deliver()

        self.add_filter(_filter)

    def mark_crashed(self, process: int) -> None:
        """Record that *process* has crashed (messages to it are dropped)."""
        self._crashed.add(process)

    def is_crashed(self, process: int) -> bool:
        """Whether *process* has crashed."""
        return process in self._crashed

    @property
    def crashed(self) -> frozenset[int]:
        """Set of processes known to have crashed."""
        return frozenset(self._crashed)

    def judge(self, message: NetMessage) -> FilterDecision:
        """Apply all filters (and crash state) to *message*."""
        if message.dst in self._crashed:
            return _DROP
        if not self._filters:
            return _DELIVER_CLEAN
        total_delay = 0.0
        for message_filter in self._filters:
            decision = message_filter(message)
            if decision.verdict is Verdict.DROP:
                return decision
            total_delay += decision.extra_delay
        if total_delay == 0.0:
            return _DELIVER_CLEAN
        return FilterDecision.deliver(total_delay)
