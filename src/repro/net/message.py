"""Wire message model.

Messages carry a protocol *kind* (e.g. ``"PROPOSAL"``), the name of the
destination *module* (so the receiving stack can route them), an opaque
payload, and explicit size accounting. Sizes are modelled, not measured:
``payload_size`` is the number of bytes the real system would serialize,
and ``header_size`` covers transport framing plus the stacked per-module
headers of the composition framework.

For the live runtime (:mod:`repro.live`) messages must actually cross
process boundaries: :func:`encode_message` / :func:`decode_message`
round-trip a :class:`NetMessage` through an explicit, versioned JSON
wire format (see :mod:`repro.net.wire` — no pickling, unregistered
payload types are rejected loudly).
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError
from repro.net.wire import WIRE_FORMAT_VERSION, check_version, decode_value, encode_value

_MSG_COUNTER = itertools.count()


@dataclass(slots=True)
class NetMessage:
    """One point-to-point message on the simulated network.

    Attributes:
        kind: Protocol-level message type, used for statistics and traces.
        module: Name of the module that sent it; the receiving stack
            dispatches it to the module registered under the same name.
        src: Sending process.
        dst: Receiving process.
        payload: Opaque protocol content (never serialized in the
            simulator; only its modelled size matters for timing).
        payload_size: Modelled serialized size of the payload in bytes.
        header_size: Modelled framing bytes (transport + module headers).
        uid: Unique id for tracing and FIFO bookkeeping.
        wire_size: Total bytes occupying the link (computed; a plain
            attribute rather than a property because it is read several
            times per message on the simulator's hottest paths).
    """

    kind: str
    module: str
    src: int
    dst: int
    payload: Any
    payload_size: int
    header_size: int
    uid: int = field(default_factory=_MSG_COUNTER.__next__)
    wire_size: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise NetworkError(f"negative payload size: {self.payload_size}")
        if self.header_size < 0:
            raise NetworkError(f"negative header size: {self.header_size}")
        if self.src == self.dst:
            raise NetworkError(f"message from {self.src} to itself")
        self.wire_size = self.payload_size + self.header_size

    def __str__(self) -> str:
        return (
            f"{self.kind}({self.src}->{self.dst}, {self.wire_size}B, "
            f"module={self.module})"
        )


def encode_message(message: NetMessage) -> bytes:
    """Serialize *message* for the live transport (versioned, no pickle).

    ``uid`` travels too: it is only unique per sending process, but the
    receiving side uses it for tracing, never as a global key.
    """
    document = {
        "v": WIRE_FORMAT_VERSION,
        "kind": message.kind,
        "module": message.module,
        "src": message.src,
        "dst": message.dst,
        "payload": encode_value(message.payload),
        "payload_size": message.payload_size,
        "header_size": message.header_size,
        "uid": message.uid,
    }
    return json.dumps(document, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> NetMessage:
    """Inverse of :func:`encode_message`.

    Raises :class:`~repro.errors.NetworkError` on malformed input or a
    wire-format version this build does not speak.
    """
    try:
        document = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise NetworkError(f"malformed wire message: {exc}") from exc
    if not isinstance(document, dict):
        raise NetworkError(f"malformed wire message: {document!r}")
    check_version(document.get("v"))
    try:
        return NetMessage(
            kind=document["kind"],
            module=document["module"],
            src=document["src"],
            dst=document["dst"],
            payload=decode_value(document["payload"]),
            payload_size=document["payload_size"],
            header_size=document["header_size"],
            uid=document["uid"],
        )
    except KeyError as exc:
        raise NetworkError(f"wire message missing field {exc}") from exc
