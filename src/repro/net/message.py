"""Wire message model.

Messages carry a protocol *kind* (e.g. ``"PROPOSAL"``), the name of the
destination *module* (so the receiving stack can route them), an opaque
payload, and explicit size accounting. Sizes are modelled, not measured:
``payload_size`` is the number of bytes the real system would serialize,
and ``header_size`` covers transport framing plus the stacked per-module
headers of the composition framework.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.errors import NetworkError

_MSG_COUNTER = itertools.count()


@dataclass(slots=True)
class NetMessage:
    """One point-to-point message on the simulated network.

    Attributes:
        kind: Protocol-level message type, used for statistics and traces.
        module: Name of the module that sent it; the receiving stack
            dispatches it to the module registered under the same name.
        src: Sending process.
        dst: Receiving process.
        payload: Opaque protocol content (never serialized in the
            simulator; only its modelled size matters for timing).
        payload_size: Modelled serialized size of the payload in bytes.
        header_size: Modelled framing bytes (transport + module headers).
        uid: Unique id for tracing and FIFO bookkeeping.
    """

    kind: str
    module: str
    src: int
    dst: int
    payload: Any
    payload_size: int
    header_size: int
    uid: int = field(default_factory=lambda: next(_MSG_COUNTER))

    def __post_init__(self) -> None:
        if self.payload_size < 0:
            raise NetworkError(f"negative payload size: {self.payload_size}")
        if self.header_size < 0:
            raise NetworkError(f"negative header size: {self.header_size}")
        if self.src == self.dst:
            raise NetworkError(f"message from {self.src} to itself")

    @property
    def wire_size(self) -> int:
        """Total bytes occupying the link."""
        return self.payload_size + self.header_size

    def __str__(self) -> str:
        return (
            f"{self.kind}({self.src}->{self.dst}, {self.wire_size}B, "
            f"module={self.module})"
        )
