"""Network accounting.

Counts messages and bytes put on the wire, broken down by message kind
and by sending module. These counters are what we check the paper's §5.2
analytical formulas against: the per-consensus message counts of the
modular and monolithic stacks must match
``(n-1)(M + 2 + ⌊(n+1)/2⌋)`` and ``2(n-1)`` respectively in good runs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.net.message import NetMessage


@dataclass
class NetworkStats:
    """Mutable per-run network counters."""

    messages_sent: int = 0
    bytes_sent: int = 0
    payload_bytes_sent: int = 0
    #: Transmit attempts stifled because the sender had already crashed
    #: (fail-stop: a dead process must not put new frames on the wire).
    sends_after_crash: int = 0
    messages_by_kind: Counter = field(default_factory=Counter)
    bytes_by_kind: Counter = field(default_factory=Counter)
    messages_by_module: Counter = field(default_factory=Counter)

    def on_transmit(self, message: NetMessage) -> None:
        """Record one message put on the wire."""
        self.messages_sent += 1
        self.bytes_sent += message.wire_size
        self.payload_bytes_sent += message.payload_size
        self.messages_by_kind[message.kind] += 1
        self.bytes_by_kind[message.kind] += message.wire_size
        self.messages_by_module[message.module] += 1

    def on_send_after_crash(self, message: NetMessage) -> None:  # noqa: ARG002
        """Record one transmit attempt by an already-crashed sender."""
        self.sends_after_crash += 1

    def reset(self) -> None:
        """Zero all counters (called at the end of warm-up)."""
        self.messages_sent = 0
        self.bytes_sent = 0
        self.payload_bytes_sent = 0
        self.sends_after_crash = 0
        self.messages_by_kind.clear()
        self.bytes_by_kind.clear()
        self.messages_by_module.clear()

    def snapshot(self) -> dict:
        """A plain-dict copy, convenient for reports and assertions."""
        return {
            "messages_sent": self.messages_sent,
            "bytes_sent": self.bytes_sent,
            "payload_bytes_sent": self.payload_bytes_sent,
            "sends_after_crash": self.sends_after_crash,
            "messages_by_kind": dict(self.messages_by_kind),
            "bytes_by_kind": dict(self.bytes_by_kind),
            "messages_by_module": dict(self.messages_by_module),
        }
