"""Network substrate: quasi-reliable FIFO channels over a modelled LAN.

Replaces the paper's TCP-over-Gigabit-Ethernet transport with a timing
model (NIC serialization + propagation + per-pair FIFO) plus fault
injection and message/byte accounting.
"""

from repro.net.faults import FaultInjector, FilterDecision, Verdict, deliver_all
from repro.net.message import NetMessage
from repro.net.network import Network
from repro.net.stats import NetworkStats

__all__ = [
    "FaultInjector",
    "FilterDecision",
    "NetMessage",
    "Network",
    "NetworkStats",
    "Verdict",
    "deliver_all",
]
