"""Versioned wire codec for protocol payloads.

The simulator never serializes payloads (only their modelled sizes
matter), but the live runtime puts real bytes on real TCP sockets, so
every payload type needs an explicit, versioned encoding. Rather than
pickling — fragile across versions and an arbitrary-code-execution hole
on untrusted input — payloads are encoded as tagged JSON:

* scalars (``None``, ``bool``, ``int``, ``float``, ``str``) pass through;
* containers become ``{"$t": "tuple"|"list"|"dict"|"frozenset", ...}``;
* ``bytes`` become ``{"$t": "bytes", "hex": ...}``;
* registered dataclasses become ``{"$t": "<tag>", "f": {field: value}}``.

Payload dataclasses opt in with the :func:`wire_payload` decorator; the
codec refuses anything unregistered, loudly, in both directions. The
overall wire format (including the :class:`~repro.net.message.NetMessage`
envelope built on top of this codec) is versioned by
:data:`WIRE_FORMAT_VERSION`; decoders reject frames from a different
version instead of guessing.
"""

from __future__ import annotations

from dataclasses import fields, is_dataclass
from typing import Any, TypeVar

from repro.errors import NetworkError

#: Version of the whole wire format (payload codec + message envelope).
#: Bump on any incompatible change; decoders reject other versions.
WIRE_FORMAT_VERSION = 1

_T = TypeVar("_T")

#: Reserved container tags (not usable by payload classes).
_CONTAINER_TAGS = frozenset({"tuple", "list", "dict", "frozenset", "bytes"})

_BY_TAG: dict[str, type] = {}
_BY_TYPE: dict[type, str] = {}
_payloads_loaded = False


def _field_names(cls: type) -> tuple[str, ...]:
    """Wire field names of a registered payload class."""
    if is_dataclass(cls):
        return tuple(f.name for f in fields(cls))
    return cls._fields  # NamedTuple


def wire_payload(cls: type[_T]) -> type[_T]:
    """Class decorator registering a payload class with the codec.

    Payloads are dataclasses or NamedTuples (both expose their fields by
    name and reconstruct from keyword arguments). The class name is its
    wire tag, so renaming a registered class is a wire-format change
    (bump :data:`WIRE_FORMAT_VERSION`).
    """
    tag = cls.__name__
    if not is_dataclass(cls) and not (
        issubclass(cls, tuple) and hasattr(cls, "_fields")
    ):
        raise TypeError(f"wire payloads must be dataclasses or NamedTuples: {cls!r}")
    if tag in _CONTAINER_TAGS:
        raise TypeError(f"payload tag {tag!r} collides with a container tag")
    registered = _BY_TAG.get(tag)
    if registered is not None and registered is not cls:
        raise TypeError(f"duplicate wire payload tag {tag!r}")
    _BY_TAG[tag] = cls
    _BY_TYPE[cls] = tag
    return cls


def _ensure_payloads() -> None:
    """Import every module that declares wire payloads (idempotent).

    Decoding may run before any payload class has been touched (e.g. the
    first frame a live worker receives), so the codec pulls the known
    payload modules in lazily; their :func:`wire_payload` decorators do
    the actual registration. Core value types register here directly
    because :mod:`repro.types` is a leaf module that must not depend on
    the network layer.
    """
    global _payloads_loaded
    if _payloads_loaded:
        return
    _payloads_loaded = True
    from repro import types

    for core in (types.MessageId, types.AppMessage, types.Batch):
        wire_payload(core)
    import repro.abcast.indirect  # noqa: F401  (registers IdBatch)
    import repro.abcast.messages  # noqa: F401
    import repro.abcast.ringpaxos  # noqa: F401  (registers RingToken)
    import repro.abcast.sequencer  # noqa: F401  (registers Sequenced)
    import repro.broadcast.reliable  # noqa: F401  (registers RbMessage)
    import repro.consensus.messages  # noqa: F401


def encode_value(value: Any) -> Any:
    """Encode *value* into a JSON-serializable structure."""
    _ensure_payloads()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    # Registered payloads take precedence over the container branches:
    # NamedTuple payloads (e.g. MessageId) are tuples too, and must
    # round-trip as their registered type, not as a bare tuple.
    tag = _BY_TYPE.get(type(value))
    if tag is not None:
        return {
            "$t": tag,
            "f": {
                name: encode_value(getattr(value, name))
                for name in _field_names(type(value))
            },
        }
    if isinstance(value, bytes):
        return {"$t": "bytes", "hex": value.hex()}
    if isinstance(value, tuple):
        return {"$t": "tuple", "items": [encode_value(v) for v in value]}
    if isinstance(value, list):
        return {"$t": "list", "items": [encode_value(v) for v in value]}
    if isinstance(value, frozenset):
        items = sorted((encode_value(v) for v in value), key=repr)
        return {"$t": "frozenset", "items": items}
    if isinstance(value, dict):
        return {
            "$t": "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in value.items()],
        }
    raise NetworkError(
        f"cannot serialize unregistered payload type {type(value).__name__!r}; "
        "register it with @repro.net.wire.wire_payload"
    )


def decode_value(encoded: Any) -> Any:
    """Decode a structure produced by :func:`encode_value`."""
    _ensure_payloads()
    if encoded is None or isinstance(encoded, (bool, int, float, str)):
        return encoded
    if isinstance(encoded, list):  # only produced inside container tags
        return [decode_value(v) for v in encoded]
    if not isinstance(encoded, dict):
        raise NetworkError(f"malformed wire value: {encoded!r}")
    tag = encoded.get("$t")
    if tag == "bytes":
        return bytes.fromhex(encoded["hex"])
    if tag == "tuple":
        return tuple(decode_value(v) for v in encoded["items"])
    if tag == "list":
        return [decode_value(v) for v in encoded["items"]]
    if tag == "frozenset":
        return frozenset(decode_value(v) for v in encoded["items"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in encoded["items"]}
    cls = _BY_TAG.get(tag)
    if cls is None:
        raise NetworkError(f"unknown wire payload tag {tag!r}")
    try:
        return cls(**{name: decode_value(v) for name, v in encoded["f"].items()})
    except (KeyError, TypeError) as exc:
        raise NetworkError(f"malformed {tag!r} payload: {exc}") from exc


def check_version(version: Any) -> None:
    """Reject frames from an incompatible wire-format version."""
    if version != WIRE_FORMAT_VERSION:
        raise NetworkError(
            f"unsupported wire format version {version!r} "
            f"(this build speaks version {WIRE_FORMAT_VERSION})"
        )
