"""Exception hierarchy for the repro library.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library failures with a single ``except`` clause
while still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the simulation kernel is used incorrectly.

    Examples: scheduling an event in the past, running a kernel that has
    already been stopped, or exceeding the configured event budget.
    """


class ConfigurationError(ReproError):
    """Raised when an experiment or stack configuration is invalid."""


class NetworkError(ReproError):
    """Raised on invalid network operations (unknown process, bad size)."""


class ProtocolError(ReproError):
    """Raised when a protocol module receives an event it cannot handle.

    A ``ProtocolError`` in a simulation run indicates a bug in a protocol
    implementation, never an expected runtime condition: protocols are
    required to tolerate crashes and suspicions without raising.
    """


class CrashedProcessError(ReproError):
    """Raised when code attempts to drive a process that has crashed."""


class DeploymentError(ReproError):
    """Raised when a live deployment fails to come up or report back.

    Examples: a worker process dying before the run completes, the group
    not becoming ready within the deadline, or the control channel
    closing before every worker sent its final counters.
    """


class FlowControlError(ReproError):
    """Raised on invalid flow-control usage (e.g. releasing unheld slots)."""


class MetricsError(ReproError):
    """Raised when metric collection is queried in an invalid state."""


class OrderingViolation(ReproError):
    """Raised by the safety checker when an atomic broadcast property fails.

    The message carries a human-readable description of the violated
    property (validity, uniform agreement, integrity or total order) and
    the processes/messages involved.
    """


class LivenessViolation(ReproError):
    """Raised by the nemesis liveness watchdog when progress stalls.

    Emitted when, after the last injected fault has healed, correct
    processes hold undelivered messages yet make no delivery progress
    within the configured bound. The message carries the outstanding
    message ids and a slice of the recent event trace.
    """


class StationarityWarning(UserWarning):
    """Warning emitted when a run did not reach a stationary state.

    Measurements from such runs are still returned, but the harness flags
    them so that sweep results can highlight unreliable points.
    """
