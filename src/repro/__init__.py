"""repro — a reproduction of "On the Cost of Modularity in Atomic Broadcast".

Rütti, Mena, Ekwall, Schiper; DSN 2007.

The library implements both of the paper's atomic broadcast stacks — a
modular composition (abcast / consensus / reliable broadcast) and a
monolithic merged protocol with the paper's three cross-module
optimizations — on top of a deterministic discrete-event simulation of
the paper's testbed (CPU cost model, Gigabit-Ethernet-like network,
failure detectors, flow control), plus the full benchmark harness that
regenerates the paper's figures and analytical tables.

Quickstart::

    from repro import RunConfig, StackConfig, StackKind, run_simulation

    config = RunConfig(n=3, stack=StackConfig(kind=StackKind.MONOLITHIC))
    result = run_simulation(config, seed=1)
    print(result.metrics.latency_mean, result.metrics.throughput)
"""

from repro.analysis import compare as analytical_compare
from repro.config import (
    ArrivalProcess,
    ConsensusVariant,
    CpuCosts,
    CrashEvent,
    DelaySpike,
    FailureDetectorConfig,
    FailureDetectorKind,
    FaultloadConfig,
    FlowControlConfig,
    LinkFaultMode,
    LossBurst,
    MonolithicOptimizations,
    NetworkConfig,
    PartitionEvent,
    ReliableBroadcastVariant,
    RunConfig,
    StackConfig,
    StackKind,
    WorkloadConfig,
    WrongSuspicion,
    modular_stack,
    monolithic_stack,
)
from repro.errors import (
    ConfigurationError,
    OrderingViolation,
    ProtocolError,
    ReproError,
    SimulationError,
)
from repro.experiments.runner import RunResult, Simulation, run_simulation
from repro.metrics.ordering import OrderingChecker
from repro.types import AppMessage, Batch, MessageId

__version__ = "1.0.0"

__all__ = [
    "AppMessage",
    "ArrivalProcess",
    "Batch",
    "ConfigurationError",
    "ConsensusVariant",
    "CpuCosts",
    "CrashEvent",
    "DelaySpike",
    "FailureDetectorConfig",
    "FailureDetectorKind",
    "FaultloadConfig",
    "FlowControlConfig",
    "LinkFaultMode",
    "LossBurst",
    "MessageId",
    "MonolithicOptimizations",
    "NetworkConfig",
    "OrderingChecker",
    "OrderingViolation",
    "PartitionEvent",
    "ProtocolError",
    "ReliableBroadcastVariant",
    "ReproError",
    "RunConfig",
    "RunResult",
    "Simulation",
    "SimulationError",
    "StackConfig",
    "StackKind",
    "WorkloadConfig",
    "WrongSuspicion",
    "analytical_compare",
    "modular_stack",
    "monolithic_stack",
    "run_simulation",
    "__version__",
]
