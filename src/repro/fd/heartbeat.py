"""Heartbeat failure detector.

The realistic detector: every process periodically sends a small
heartbeat message to every other process; a peer silent for longer than
``timeout`` becomes suspected, and is un-suspected as soon as it is
heard from again (eventually-strong ◇S behaviour with real messages and
real CPU/network cost).

Used by the fault-tolerance tests and the fault-injection example. The
performance experiments use the oracle detector instead, so heartbeat
traffic does not distort the good-run measurements (the paper's cluster
paid this cost too, but at negligible rates relative to the workload).
"""

from __future__ import annotations

from repro.fd.base import FailureDetector
from repro.net.message import NetMessage

#: Modelled size of a heartbeat payload in bytes.
HEARTBEAT_SIZE = 8


class HeartbeatFailureDetector(FailureDetector):
    """◇S-style detector based on periodic heartbeats and timeouts."""

    def __init__(self, heartbeat_interval: float, timeout: float) -> None:
        super().__init__()
        if heartbeat_interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0: {heartbeat_interval}")
        if timeout <= heartbeat_interval:
            raise ValueError(
                f"timeout ({timeout}) must exceed the heartbeat interval "
                f"({heartbeat_interval}) or everyone is suspected immediately"
            )
        self.heartbeat_interval = heartbeat_interval
        self.timeout = timeout
        self._last_heard: dict[int, float] = {}

    def start(self) -> None:
        now = self.runtime.now
        for peer in range(self.runtime.n):
            if peer != self.runtime.pid:
                self._last_heard[peer] = now
        self._send_heartbeats()
        self._check_timeouts()

    def handle_message(self, message: NetMessage) -> None:
        if message.kind != "HEARTBEAT":
            # Unknown FD traffic is a protocol bug, not liveness evidence:
            # delegate to the base (which raises) and, defensively, never
            # fall through to the aliveness bookkeeping below.
            super().handle_message(message)
            return
        self._last_heard[message.src] = self.runtime.now
        if message.src in self.suspects():
            self._unsuspect(message.src)

    def _send_heartbeats(self) -> None:
        for peer in self._last_heard:
            self.runtime.fd_send(peer, "HEARTBEAT", None, HEARTBEAT_SIZE)
        self.runtime.fd_schedule(self.heartbeat_interval, self._send_heartbeats)

    def _check_timeouts(self) -> None:
        now = self.runtime.now
        suspects = set(self.suspects())
        for peer, heard in self._last_heard.items():
            if now - heard > self.timeout:
                suspects.add(peer)
        self._publish(frozenset(suspects))
        self.runtime.fd_schedule(self.heartbeat_interval, self._check_timeouts)
