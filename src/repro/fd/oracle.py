"""Oracle failure detector.

An omniscient detector used by the performance experiments: it suspects
a process a fixed ``detection_delay`` after its actual crash and never
suspects a live process. This keeps FD traffic off the network so that
good-run measurements (the paper's workload) are not perturbed, while
still driving the protocols' round-change logic correctly in the
fault-tolerance integration tests.

In failure-detector terms this implements an eventually perfect detector
(◇P ⊆ ◇S), which is stronger than the ◇S the algorithms require —
acceptable because the experiments never rely on wrong suspicions (use
:class:`~repro.fd.scripted.ScriptedFailureDetector` for those).
"""

from __future__ import annotations

from repro.fd.base import FailureDetector


class OracleFailureDetector(FailureDetector):
    """Suspects crashed processes after a fixed detection delay."""

    def __init__(self, detection_delay: float) -> None:
        super().__init__()
        if detection_delay < 0:
            raise ValueError(f"detection delay must be >= 0: {detection_delay}")
        self.detection_delay = detection_delay

    def observe_crash(self, process: int) -> None:
        """Inform the oracle that *process* just crashed.

        Called by the experiment runner at crash-injection time; the
        suspicion is published ``detection_delay`` seconds later.
        """
        self.runtime.fd_schedule(
            self.detection_delay, lambda: self._suspect(process)
        )
