"""Scripted failure detector for deterministic tests.

Suspicions and un-suspicions are declared up front as (time, process)
pairs; the detector publishes them at exactly those simulated times.
This is how tests inject *wrong* suspicions (suspecting a live
coordinator) to exercise round changes while the suspected process keeps
running — a scenario the oracle detector cannot produce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fd.base import FailureDetector


@dataclass(frozen=True, slots=True)
class SuspicionEdit:
    """One scripted change of the suspect set."""

    time: float
    process: int
    suspected: bool


class ScriptedFailureDetector(FailureDetector):
    """Publishes a pre-declared schedule of suspicion changes."""

    def __init__(self, script: list[SuspicionEdit] | None = None) -> None:
        super().__init__()
        self._script: list[SuspicionEdit] = list(script or [])

    def suspect_at(self, time: float, process: int) -> None:
        """Add *process* to the suspect set at simulated *time*."""
        self._script.append(SuspicionEdit(time, process, True))

    def unsuspect_at(self, time: float, process: int) -> None:
        """Remove *process* from the suspect set at simulated *time*."""
        self._script.append(SuspicionEdit(time, process, False))

    def start(self) -> None:
        now = self.runtime.now
        for edit in sorted(self._script, key=lambda e: e.time):
            delay = max(0.0, edit.time - now)
            if edit.suspected:
                self.runtime.fd_schedule(delay, lambda p=edit.process: self._suspect(p))
            else:
                self.runtime.fd_schedule(
                    delay, lambda p=edit.process: self._unsuspect(p)
                )
