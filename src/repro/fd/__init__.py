"""Failure detectors (the paper's FD module, §2.1).

Three implementations behind one interface: an omniscient oracle for
clean performance runs, a scripted detector for deterministic tests of
wrong suspicions, and a heartbeat-based ◇S detector exchanging real
network messages.
"""

from repro.fd.base import FailureDetector
from repro.fd.heartbeat import HEARTBEAT_SIZE, HeartbeatFailureDetector
from repro.fd.oracle import OracleFailureDetector
from repro.fd.scripted import ScriptedFailureDetector, SuspicionEdit

__all__ = [
    "HEARTBEAT_SIZE",
    "FailureDetector",
    "HeartbeatFailureDetector",
    "OracleFailureDetector",
    "ScriptedFailureDetector",
    "SuspicionEdit",
]
