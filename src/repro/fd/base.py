"""Failure detector interface.

The paper's system model (§2.1) equips every process with a local
failure detector module whose output — a possibly inaccurate set of
suspected processes — can change over time. Protocol modules query the
current output through their :class:`~repro.stack.module.ModuleContext`
and are notified of changes via ``handle_suspicion``.

A detector is attached to exactly one
:class:`~repro.stack.runtime.ProcessRuntime`; it uses the runtime for
timers (:meth:`fd_schedule`) and, for the heartbeat implementation, real
network messages (:meth:`fd_send`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ProtocolError
from repro.net.message import NetMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.stack.interface import RuntimeProtocol


class FailureDetector:
    """Base failure detector: maintains and publishes a suspect set.

    Detectors talk to their process exclusively through the
    :class:`~repro.stack.interface.RuntimeProtocol` surface (``now``,
    ``n``, ``fd_send``, ``fd_schedule``, ``on_suspicion_change``), so the
    same detector runs unchanged on the simulated and the live runtime.
    """

    def __init__(self) -> None:
        self._suspects: frozenset[int] = frozenset()
        self._runtime: "RuntimeProtocol | None" = None

    @property
    def runtime(self) -> "RuntimeProtocol":
        """The runtime this detector is attached to."""
        if self._runtime is None:
            raise ProtocolError("failure detector is not attached to a runtime")
        return self._runtime

    def attach(self, runtime: "RuntimeProtocol") -> None:
        """Bind this detector to its process runtime (called by the runtime)."""
        self._runtime = runtime

    def start(self) -> None:
        """Hook invoked when the process stack starts. Default: nothing."""

    def suspects(self) -> frozenset[int]:
        """Current detector output."""
        return self._suspects

    def handle_message(self, message: NetMessage) -> None:
        """React to a network message routed to the ``fd`` module."""
        raise ProtocolError(
            f"failure detector received unexpected message {message.kind!r}"
        )

    def force_suspect(self, process: int) -> None:
        """Externally inject a (possibly wrong) suspicion.

        Nemesis hook: models the detector's permitted inaccuracy (◇S
        output may be arbitrarily wrong for a while). Works on every
        detector kind; a heartbeat detector will naturally retract the
        suspicion when the suspect is next heard from.
        """
        self._suspect(process)

    def retract_suspicion(self, process: int) -> None:
        """Externally retract a suspicion (nemesis hook)."""
        self._unsuspect(process)

    def _publish(self, new_suspects: frozenset[int]) -> None:
        """Update the suspect set and notify the stack if it changed."""
        if new_suspects == self._suspects:
            return
        self._suspects = new_suspects
        self.runtime.on_suspicion_change(new_suspects)

    def _suspect(self, process: int) -> None:
        self._publish(self._suspects | {process})

    def _unsuspect(self, process: int) -> None:
        self._publish(self._suspects - {process})
